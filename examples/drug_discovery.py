#!/usr/bin/env python
"""Drug discovery: iterative refinement over user-defined attributes.

Section II's motivating application is Molegro Virtual Docker: protein
structures live one-per-file (10^7–10^8 files in production), each with
hundreds of computed attributes, and the pipeline repeatedly narrows the
candidate set — "find proteins similar to the promising ones from the
last round" — using a file-search service instead of rescanning.

Propeller is a *general-purpose* search service: indices over arbitrary
user-defined attributes, here a K-D tree on (binding_energy, mass) plus a
B+tree on a single score.
"""

import random

from repro import IndexKind, PropellerService

N_PROTEINS = 2_000
ROUNDS = 4


def main() -> None:
    service = PropellerService(num_index_nodes=4)
    client = service.make_client()
    client.create_index("docking_kd", IndexKind.KDTREE,
                        ["binding_energy", "mass"])
    client.create_index("by_score", IndexKind.BTREE, ["docking_score"])

    vfs = service.vfs
    vfs.mkdir("/proteins")
    rng = random.Random(7)
    for i in range(N_PROTEINS):
        path = f"/proteins/p{i:05d}.pdb"
        vfs.write_file(path, rng.randint(10_000, 500_000), pid=1)
        vfs.setattr(path, "binding_energy", rng.uniform(-12.0, 0.0))
        vfs.setattr(path, "mass", rng.uniform(10.0, 900.0))
        vfs.setattr(path, "docking_score", rng.uniform(0.0, 1.0))
        client.index_path(path, pid=1)
    client.flush_updates()

    # Round 0: a broad window.
    energy_cut, mass_low, mass_high = -6.0, 50.0, 700.0
    candidates = client.search(
        f"binding_energy<{energy_cut} & mass>{mass_low} & mass<{mass_high}")
    print(f"round 0: {len(candidates)} candidates "
          f"(energy<{energy_cut}, {mass_low}<mass<{mass_high})")

    # Refinement loop: after each docking round, re-score the survivors
    # and tighten the window around what worked.
    for round_no in range(1, ROUNDS + 1):
        for path in candidates:
            # The docking computation updates the file and its attributes;
            # re-indexing is inline, so the next query sees fresh scores.
            new_score = rng.uniform(0.0, 1.0)
            vfs.setattr(path, "docking_score", new_score, pid=2)
            client.index_path(path, pid=2)
        client.flush_updates()
        energy_cut -= 1.0
        candidates = client.search(
            f"binding_energy<{energy_cut} & mass>{mass_low} & mass<{mass_high}"
            " & docking_score>0.5")
        truth = [p for p, inode in vfs.namespace.files()
                 if inode.attributes.get("binding_energy", 0) < energy_cut
                 and mass_low < inode.attributes.get("mass", 0) < mass_high
                 and inode.attributes.get("docking_score", 0) > 0.5]
        assert candidates == sorted(truth), "stale scores would corrupt the run"
        print(f"round {round_no}: {len(candidates)} candidates "
              f"(energy<{energy_cut}, score>0.5) — consistent with all "
              "updates")

    reduction = N_PROTEINS / max(1, len(candidates))
    print(f"\ninput reduced {reduction:.0f}x across {ROUNDS} refinement "
          "rounds without a single rescan.")


if __name__ == "__main__":
    main()
