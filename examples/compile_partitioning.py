#!/usr/bin/env python
"""Access-causality partitioning of a real build workload, end to end.

Walks the paper's Section III pipeline on the Thrift compile model:

1. generate the build's open/close trace and extract causality,
2. assemble the Access-Causality Graph and find its connected components
   (Figure 7's two disjoint sub-graphs),
3. bisect the largest component METIS-style into balanced halves with a
   minimal cut (Table II),
4. replay the same build against a live Propeller cluster and show the
   Master Node arriving at the same co-location: each compile lands in
   few partitions, so its index updates never fan out.
"""

from repro import IndexKind, PropellerService
from repro.core import AccessCausalityGraph, PartitioningPolicy, bisect, causal_pairs
from repro.core.partitioner import partition_components
from repro.workloads.apps import THRIFT_SPEC, CompileApplication


def main() -> None:
    # 1-2. Trace -> ACG -> components.
    app = CompileApplication(THRIFT_SPEC)
    graph = app.build_acg()
    components = graph.connected_components()
    print(f"Thrift build ACG: {graph.vertex_count} files, "
          f"{graph.edge_count} edges, total weight {graph.total_weight}")
    print(f"connected components: {[len(c) for c in components]} "
          "(independent build targets — zero inter-component accesses)")

    # 3. Balanced minimal cut of the largest component.
    adjacency = graph.subgraph(components[0]).undirected_adjacency()
    result = bisect(adjacency)
    print(f"bisection of largest component: sides "
          f"{len(result.side_a)}/{len(result.side_b)}, cut "
          f"{result.cut_weight} edges-weight "
          f"({100 * result.cut_fraction:.2f}% of total)")

    # Policy layer: whole-graph partitioning with clustering + splitting.
    partitions = partition_components(
        graph, PartitioningPolicy(split_threshold=300, cluster_target=50))
    print(f"policy partitions (threshold 300): "
          f"{sorted(len(p) for p in partitions)}")

    # 4. The live system reaches the same locality on its own (small
    # split threshold so background splits are visible at this scale).
    service = PropellerService(
        num_index_nodes=4,
        policy=PartitioningPolicy(split_threshold=300, cluster_target=50))
    client = service.make_client()
    client.create_index("by_size", IndexKind.BTREE, ["size"])
    vfs = service.vfs
    for d in ("src", "include", "build", "bin"):
        vfs.mkdir(f"/src/thrift/{d}", parents=True)

    # Replay the build trace against the live service: reads open files,
    # writes append and trigger inline indexing, ACGs flush per process.
    from repro.workloads.replay import replay_trace

    stats = replay_trace(service, client, app.trace(), app.path_of)
    print(f"replayed {stats.events} events from {stats.processes} processes "
          f"({stats.files_created} files, {stats.index_updates} index updates)")
    service.master.poll_heartbeats()

    # How spread out did one compile's updates end up?
    object_partitions = set()
    for unit in range(20):
        path = app.path_of(app.object_ids[unit])
        ino = vfs.stat(path).ino
        object_partitions.add(service.master.partitions.partition_of(ino))
    print(f"first 20 compile outputs live in {len(object_partitions)} "
          f"partition(s) out of {service.acg_count()} total — index "
          "updates stay partition-local.")
    got = client.search("size>0")
    assert len(got) == vfs.namespace.file_count
    print("cluster search returns every indexed file: OK")


if __name__ == "__main__":
    main()
