#!/usr/bin/env python
"""Operating a Propeller cluster: stats, rebalancing, failure, failover.

The previous examples show the *search* side; this one shows the
operator's side of Section IV — the Master Node coordinating background
maintenance: observing load, splitting and migrating ACGs, checkpointing
to shared storage, and recovering from an Index Node loss.
"""

from repro import IndexKind, PropellerService
from repro.core import PartitioningPolicy


def show_loads(service, label):
    loads = {n: service.master.partitions.node_load(n)
             for n in service.master.index_nodes}
    print(f"{label:<28} " + "  ".join(f"{n}={v}" for n, v in loads.items()))


def main() -> None:
    service = PropellerService(
        num_index_nodes=4,
        policy=PartitioningPolicy(split_threshold=120, cluster_target=40))
    client = service.make_client()
    client.create_index("by_size", IndexKind.BTREE, ["size"])
    vfs = service.vfs

    # Three applications write their file sets (distinct processes →
    # distinct ACGs, co-located by causality).
    vfs.mkdir("/work")
    for app, n_files in enumerate((90, 90, 150)):   # app2 outgrows the limit
        pid = 100 + app
        vfs.mkdir(f"/work/app{app}", parents=True)
        for i in range(n_files):
            path = f"/work/app{app}/out{i:03d}.dat"
            vfs.write_file(path, 1000 + i, pid=pid)
            client.index_path(path, pid=pid)
        client.process_finished(pid)
    client.flush_updates()
    service.commit_all()
    show_loads(service, "after ingest:")

    # Background maintenance: heartbeats trigger splits of oversized ACGs.
    service.master.poll_heartbeats()
    print(f"splits performed: {len(service.master.splits)}")
    show_loads(service, "after splits:")

    # Operator-driven rebalancing.
    moves = service.master.rebalance(tolerance=0.2)
    print(f"rebalance moved {moves} partition(s)")
    show_loads(service, "after rebalance:")

    # EXPLAIN: which access path will each ACG use?
    sample = list(client.explain("size>1050").items())[:2]
    for acg_id, plans in sample:
        print(f"explain size>1050 @ ACG {acg_id}: {plans[0]}")

    # Durability: checkpoint everything to the shared file system, then
    # lose a node and fail its partitions over.
    service._checkpoint_all()
    victim = max(service.master.index_nodes,
                 key=service.master.partitions.node_load)
    before = client.search("size>0")
    service.fail_node(victim)
    moved = service.failover(victim)
    print(f"node {victim} failed; {moved} partition(s) adopted by survivors")
    after = client.search("size>0")
    assert after == before, "failover must preserve results"
    show_loads(service, "after failover:")

    # Structured health snapshot.
    stats = service.stats()
    print(f"stats: {stats['indexed_files']} files in {stats['partitions']} "
          f"partitions, {stats['network_messages']} RPC messages, "
          f"{stats['splits']} splits")


if __name__ == "__main__":
    main()
