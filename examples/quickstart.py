#!/usr/bin/env python
"""Quickstart: a 4-node Propeller cluster in ~40 lines.

Builds a deployment, creates the three standard index kinds, writes some
files through the traced virtual file system, indexes them, and runs both
forms of file search — the API form and the dynamic query-directory form.
"""

from repro import IndexKind, PropellerService


def main() -> None:
    # One Master Node + four Index Nodes behind a simulated GigE switch.
    service = PropellerService(num_index_nodes=4)
    client = service.make_client()

    # User-defined indices with globally unique names (Section IV):
    # a B+tree over file size, a hash index over path keywords, and a
    # K-D tree over (size, mtime) for multi-attribute range queries.
    client.create_index("by_size", IndexKind.BTREE, ["size"])
    client.create_index("by_keyword", IndexKind.HASH, ["keyword"])
    client.create_index("inode_kd", IndexKind.KDTREE, ["size", "mtime"])

    # Write files through the shared VFS.  pid identifies the writing
    # process — Propeller's client watches open/close per process to
    # build the Access-Causality Graph.
    vfs = service.vfs
    vfs.mkdir("/data")
    for i in range(200):
        size = 64 * 1024**2 if i % 20 == 0 else 4096
        vfs.write_file(f"/data/file{i:03d}.bin", size, pid=1)
        client.index_path(f"/data/file{i:03d}.bin", pid=1)

    # API-form search.
    big = client.search("size>16m")
    print(f"size>16m              -> {len(big)} files, e.g. {big[0]}")

    # Conjunctions, units and keywords.
    recent_big = client.search("size>16m & mtime<1day")
    print(f"size>16m & mtime<1day -> {len(recent_big)} files")
    by_name = client.search("keyword:file010")
    print(f"keyword:file010       -> {by_name}")

    # Dynamic query-directory form: listing /data/?size>16m IS the query.
    scoped = client.search_directory("/data/?size>16m")
    assert scoped == big

    # Results are always consistent with acknowledged updates: grow one
    # file and search again, no crawler delay.
    from repro.fs import OpenMode
    fd = vfs.open("/data/file001.bin", OpenMode.WRITE, pid=1)
    vfs.write(fd, 128 * 1024**2)
    vfs.close(fd)
    client.index_path("/data/file001.bin", pid=1)
    assert "/data/file001.bin" in client.search("size>100m")
    print("inline re-index visible immediately: OK")

    print(f"ACGs: {service.acg_count()}, indexed files: "
          f"{service.total_indexed_files()}, virtual time: "
          f"{service.clock.now():.4f}s")


if __name__ == "__main__":
    main()
