#!/usr/bin/env python
"""Log analytics: real-time indexing under a heavy ingest stream.

The paper's motivating workload (Section I): log-analytics pipelines index
large volumes of logs in real time, then data scientists issue a handful
of ad-hoc queries.  File-search results must be strongly consistent with
the files — an analytics job reading a stale result set silently loses
data.

This example ingests a simulated log stream (rotating services writing
segments), queries Propeller and a crawling search engine side by side,
and shows that only Propeller's answers are complete at every instant.
"""

import random

from repro import IndexKind, PropellerService
from repro.baselines.crawler import CrawlerConfig, CrawlerSearchEngine
from repro.metrics.recall import recall
from repro.sim.events import EventLoop

SERVICES = ("auth", "billing", "search", "ingest")
SEGMENTS_PER_TICK = 5
TICKS = 40
QUERY = "size>8m & mtime<1h"


def main() -> None:
    service = PropellerService(num_index_nodes=4)
    client = service.make_client()
    client.create_index("by_size", IndexKind.BTREE, ["size"])
    client.create_index("by_kw", IndexKind.HASH, ["keyword"])

    vfs, clock = service.vfs, service.clock
    loop = EventLoop(clock)
    crawler = CrawlerSearchEngine(
        vfs, loop,
        CrawlerConfig(reindex_rate_fps=20.0, pass_trigger_dirty=64,
                      type_filter=lambda p, i: True))  # logs are a known type

    for svc in SERVICES:
        vfs.mkdir(f"/logs/{svc}", parents=True)

    rng = random.Random(0)
    segment = 0
    worst_crawler_recall = 1.0
    for tick in range(TICKS):
        # Ingest: each service rotates segments; a few are big.
        for _ in range(SEGMENTS_PER_TICK):
            svc = SERVICES[segment % len(SERVICES)]
            size = 16 * 1024**2 if rng.random() < 0.25 else 256 * 1024
            path = f"/logs/{svc}/segment-{segment:05d}.log"
            vfs.write_file(path, size, pid=10 + segment % 4)
            client.index_path(path, pid=10 + segment % 4)
            segment += 1
        loop.run_until(clock.now() + 5.0)

        # Ad-hoc query: "which big segments landed in the last hour?"
        truth = [p for p, i in vfs.namespace.files()
                 if i.size > 8 * 1024**2 and i.mtime > clock.now() - 3600]
        propeller_answer = client.search(QUERY)
        crawler_answer = crawler.query(QUERY)
        propeller_recall = recall(propeller_answer, truth)
        crawler_recall = recall(crawler_answer, truth)
        worst_crawler_recall = min(worst_crawler_recall, crawler_recall)
        assert propeller_recall == 1.0, "Propeller must never miss a segment"
        if tick % 8 == 0:
            print(f"t={clock.now():7.1f}s segments={segment:4d} "
                  f"propeller recall=100% crawler recall="
                  f"{100 * crawler_recall:5.1f}%")

    print(f"\ningested {segment} segments; Propeller recall stayed 100%;")
    print(f"the crawling engine's recall dropped to "
          f"{100 * worst_crawler_recall:.1f}% at its worst (it indexes "
          "asynchronously).")
    # Route the analytics job by the search result instead of scanning:
    work_list = client.search(QUERY)
    print(f"analytics job input reduced to {len(work_list)} of "
          f"{vfs.namespace.file_count} files.")


if __name__ == "__main__":
    main()
