"""K-D tree: range queries vs linear-filter oracle, tombstones, serialization."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.indexstructures.kdtree import KDTreeIndex


def test_empty_tree():
    tree = KDTreeIndex(dimensions=2)
    assert len(tree) == 0
    assert tree.get((0, 0)) == []
    assert list(tree.range((None, None), (None, None))) == []


def test_insert_get_exact_point():
    tree = KDTreeIndex(dimensions=2)
    tree.insert((1.0, 2.0), "a")
    assert tree.get((1.0, 2.0)) == ["a"]
    assert tree.get((1.0, 2.1)) == []


def test_multimap_at_same_point():
    tree = KDTreeIndex(dimensions=2)
    tree.insert((1, 1), "a")
    tree.insert((1, 1), "b")
    assert sorted(tree.get((1, 1))) == ["a", "b"]


def test_dimension_validation():
    with pytest.raises(ValueError):
        KDTreeIndex(dimensions=0)
    tree = KDTreeIndex(dimensions=2)
    with pytest.raises(TypeError):
        tree.insert((1, 2, 3), "x")
    with pytest.raises(TypeError):
        tree.insert(5, "x")


def test_range_bounds_validation():
    tree = KDTreeIndex(dimensions=2)
    with pytest.raises(TypeError):
        list(tree.range((None,), (None, None)))


def test_orthogonal_range_query():
    tree = KDTreeIndex(dimensions=2)
    for x in range(5):
        for y in range(5):
            tree.insert((x, y), (x, y))
    got = sorted(v for _, v in tree.range((1, 2), (3, 3)))
    want = sorted((x, y) for x in range(1, 4) for y in range(2, 4))
    assert got == want


def test_range_unbounded_axis():
    tree = KDTreeIndex(dimensions=2)
    for i in range(10):
        tree.insert((i, i * 10), i)
    got = sorted(v for _, v in tree.range((5, None), (None, None)))
    assert got == [5, 6, 7, 8, 9]


def test_remove_value_and_tombstone():
    tree = KDTreeIndex(dimensions=1)
    tree.insert((1,), "a")
    tree.insert((1,), "b")
    assert tree.remove((1,), "a") == 1
    assert tree.get((1,)) == ["b"]
    assert tree.remove((1,)) == 1
    assert tree.get((1,)) == []
    assert list(tree.range((None,), (None,))) == []


def test_reinsert_after_delete():
    tree = KDTreeIndex(dimensions=1)
    tree.insert((1,), "a")
    tree.remove((1,))
    tree.insert((1,), "b")
    assert tree.get((1,)) == ["b"]


def test_remove_missing_returns_zero():
    tree = KDTreeIndex(dimensions=1)
    assert tree.remove((9,)) == 0
    tree.insert((1,), "a")
    assert tree.remove((1,), "zzz") == 0


def test_tombstone_rebuild_triggers():
    tree = KDTreeIndex(dimensions=1)
    for i in range(40):
        tree.insert((i,), i)
    for i in range(30):
        tree.remove((i,))
    # Most nodes are tombstones; rebuild should have compacted.
    assert tree._tombstones / max(1, tree._live_points + tree._tombstones) <= 0.5
    assert sorted(v for _, v in tree.items()) == list(range(30, 40))


def test_bulk_load_balanced():
    pairs = [((float(i), float(i % 7)), i) for i in range(127)]
    tree = KDTreeIndex.bulk_load(2, pairs)
    assert len(tree) == 127
    got = sorted(v for _, v in tree.range((None, None), (None, None)))
    assert got == list(range(127))


def test_serialize_roundtrip():
    rng = random.Random(7)
    tree = KDTreeIndex(dimensions=3)
    for i in range(100):
        tree.insert((rng.random(), rng.random(), rng.random()), i)
    clone = KDTreeIndex.deserialize(tree.serialize())
    assert sorted(clone.items()) == sorted(tree.items())
    assert clone.dimensions == 3


def test_serialize_skips_tombstones():
    tree = KDTreeIndex(dimensions=1)
    tree.insert((1,), "a")
    tree.insert((2,), "b")
    tree.remove((1,))
    clone = KDTreeIndex.deserialize(tree.serialize())
    assert sorted(clone.items()) == [((2.0,), "b")]


def test_page_hook_called():
    touched = []
    tree = KDTreeIndex(dimensions=2, page_hook=lambda n, w: touched.append((n, w)))
    for i in range(20):
        tree.insert((i, i), i)
    list(tree.range((0, 0), (5, 5)))
    assert touched


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)), max_size=150),
       st.tuples(st.integers(0, 20), st.integers(0, 20)),
       st.tuples(st.integers(0, 20), st.integers(0, 20)))
def test_property_range_equals_linear_filter(points, lows, highs):
    lo = (min(lows[0], highs[0]), min(lows[1], highs[1]))
    hi = (max(lows[0], highs[0]), max(lows[1], highs[1]))
    tree = KDTreeIndex(dimensions=2)
    for i, p in enumerate(points):
        tree.insert(p, i)
    got = sorted(v for _, v in tree.range(lo, hi))
    want = sorted(i for i, p in enumerate(points)
                  if lo[0] <= p[0] <= hi[0] and lo[1] <= p[1] <= hi[1])
    assert got == want


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.booleans(), st.integers(0, 15)), max_size=200))
def test_property_insert_delete_oracle(ops):
    tree = KDTreeIndex(dimensions=1)
    oracle = {}
    for is_insert, x in ops:
        point = (float(x),)
        if is_insert:
            tree.insert(point, x)
            oracle.setdefault(point, set()).add(x)
        else:
            assert tree.remove(point) == len(oracle.pop(point, set()))
    assert {(p, v) for p, v in tree.items()} == {
        (p, v) for p, vs in oracle.items() for v in vs}
