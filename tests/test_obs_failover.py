"""Fault injection under observation: a search against a dead node must
surface as an errored span, and failover must advance the master's
registry counters (failovers, reassigned partitions)."""

import pytest

from repro.cluster import PropellerService
from repro.core.partitioner import PartitioningPolicy
from repro.errors import NodeDown
from repro.indexstructures import IndexKind


def build(nodes=3, split=40):
    service = PropellerService(
        num_index_nodes=nodes,
        policy=PartitioningPolicy(split_threshold=split, cluster_target=15))
    client = service.make_client()
    client.create_index("by_size", IndexKind.BTREE, ["size"])
    return service, client


def index_files(service, client, n, pid=7):
    if not service.vfs.exists("/d"):
        service.vfs.mkdir("/d", parents=True)
    for i in range(n):
        service.vfs.write_file(f"/d/c{pid}_{i:03d}", 100 + i, pid=pid)
        client.index_path(f"/d/c{pid}_{i:03d}", pid=pid)
    client.flush_updates()


def loaded_node(service):
    """The index node carrying the most partitions."""
    return max(service.master.index_nodes,
               key=service.master.partitions.node_load)


class TestSearchAgainstDeadNode:
    def test_search_degrades_and_leg_span_is_errored(self):
        """The fan-out leg that hit the dead node errors its span, but
        the search itself degrades instead of failing: the root span
        completes and the answer names the unreachable partitions."""
        service, client = build()
        index_files(service, client, 30)
        service.enable_tracing()
        victim = loaded_node(service)
        service.fail_node(victim)
        answer = client.search_detailed("size>0")
        assert answer.degraded
        assert answer.unreachable_nodes == [victim]
        assert answer.unreachable_partitions
        root = service.tracer.last_root("search")
        assert root is not None
        assert root.status == "ok"
        # The failing fan-out leg still carries the error.
        errored = [s for s in root.walk()
                   if s.name == "rpc:search" and s.status == "error"]
        assert errored
        assert errored[0].attributes["target"] == victim
        assert "NodeDown" in (errored[0].error or "")

    def test_up_gauge_tracks_failure_and_recovery(self):
        service, client = build()
        index_files(service, client, 10)
        victim = loaded_node(service)
        assert service.registry.value(f"cluster.{victim}.up") is True
        service.fail_node(victim)
        assert service.registry.value(f"cluster.{victim}.up") is False
        assert service.stats()["nodes"][victim]["up"] is False
        service.index_nodes[victim].endpoint.recover()
        assert service.registry.value(f"cluster.{victim}.up") is True


class TestFailoverMetrics:
    def test_failover_counters_advance_and_search_recovers(self):
        service, client = build()
        index_files(service, client, 30)
        service._checkpoint_all()          # durable state to fail over from
        service.enable_tracing()
        reg = service.registry

        victim = loaded_node(service)
        victim_parts = [p for p in service.master.partitions.partitions()
                        if p.node == victim]
        assert victim_parts
        service.fail_node(victim)
        moved = service.failover(victim)
        assert moved == len(victim_parts)

        assert reg.value("cluster.master.failovers") == 1
        assert reg.value("cluster.master.reassigned_partitions") == moved
        # The failover itself was traced.
        span = service.tracer.last_root("failover")
        assert span is not None
        assert span.attributes["failed_node"] == victim
        assert span.attributes["moved"] == moved

        # The cluster serves the full dataset again from the survivors.
        results = client.search("size>0")
        assert len(results) == 30
        root = service.tracer.last_root("search")
        assert root.status == "ok"

    def test_failover_without_checkpoint_counts_lost_partitions(self):
        service, client = build()
        index_files(service, client, 30)
        victim = loaded_node(service)
        lost = len([p for p in service.master.partitions.partitions()
                    if p.node == victim])
        service.fail_node(victim)
        moved = service.failover(victim)   # nothing durable: nothing moves
        assert moved == 0
        reg = service.registry
        assert reg.value("cluster.master.failovers") == 1
        assert reg.value("cluster.master.partitions_lost") == lost
        assert reg.value("cluster.master.reassigned_partitions") == 0

    def test_double_failover_accumulates(self):
        service, client = build(nodes=4)
        index_files(service, client, 30, pid=7)
        index_files(service, client, 30, pid=8)
        service._checkpoint_all()
        # One heartbeat round teaches the Master the node loads, so each
        # failover adopts onto a genuinely idle survivor.
        service.master.poll_heartbeats()
        reg = service.registry
        victims = [n for n in service.master.index_nodes
                   if any(r.file_count
                          for r in service.index_nodes[n].replicas.values())][:2]
        total_moved = 0
        for victim in victims:
            service.fail_node(victim)
            total_moved += service.failover(victim)
        assert reg.value("cluster.master.failovers") == len(victims)
        assert reg.value("cluster.master.reassigned_partitions") == total_moved
        assert total_moved >= 1
        assert len(client.search("size>0")) == 60
