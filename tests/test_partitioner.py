"""Partitioning policy: components -> partitions, clustering, splitting."""

import pytest

from repro.core.acg import AccessCausalityGraph
from repro.core.partitioner import (
    PartitioningPolicy,
    partition_components,
    split_partition,
)


def chain_component(graph, start, length):
    for i in range(start, start + length - 1):
        graph.add_causality(i, i + 1)
    return set(range(start, start + length))


def test_policy_validation():
    with pytest.raises(ValueError):
        PartitioningPolicy(split_threshold=1)
    with pytest.raises(ValueError):
        PartitioningPolicy(cluster_target=0)


def test_each_large_component_is_a_partition():
    graph = AccessCausalityGraph()
    a = chain_component(graph, 0, 20)
    b = chain_component(graph, 100, 30)
    policy = PartitioningPolicy(split_threshold=1000, cluster_target=10)
    partitions = partition_components(graph, policy)
    assert sorted(map(len, partitions)) == [20, 30]
    assert {frozenset(p) for p in partitions} == {frozenset(a), frozenset(b)}


def test_small_components_are_packed_together():
    graph = AccessCausalityGraph()
    for i in range(10):
        chain_component(graph, i * 10, 3)  # 10 components of 3 files
    policy = PartitioningPolicy(split_threshold=1000, cluster_target=9)
    partitions = partition_components(graph, policy)
    # Packed into partitions of about 9 files each.
    assert all(len(p) >= 3 for p in partitions)
    assert sum(len(p) for p in partitions) == 30
    assert len(partitions) <= 4


def test_app_labels_prevent_cross_app_packing():
    graph = AccessCausalityGraph()
    chain_component(graph, 0, 2)
    chain_component(graph, 10, 2)
    chain_component(graph, 100, 2)
    chain_component(graph, 110, 2)
    policy = PartitioningPolicy(split_threshold=1000, cluster_target=100)
    partitions = partition_components(
        graph, policy, app_of=lambda f: "app1" if f < 100 else "app2")
    assert len(partitions) == 2
    assert {frozenset(p) for p in partitions} == {
        frozenset({0, 1, 10, 11}), frozenset({100, 101, 110, 111})}


def test_oversized_component_is_split():
    graph = AccessCausalityGraph()
    chain_component(graph, 0, 100)
    policy = PartitioningPolicy(split_threshold=40, cluster_target=5)
    partitions = partition_components(graph, policy)
    assert all(len(p) <= 40 for p in partitions)
    assert sum(len(p) for p in partitions) == 100
    covered = set()
    for p in partitions:
        assert not covered & p
        covered |= p


def test_split_partition_balanced_halves():
    graph = AccessCausalityGraph()
    files = chain_component(graph, 0, 60)
    halves = split_partition(graph, files, PartitioningPolicy(split_threshold=30))
    assert len(halves) == 2
    assert halves[0] | halves[1] == files
    assert not halves[0] & halves[1]
    assert abs(len(halves[0]) - len(halves[1])) <= 8


def test_split_partition_spreads_orphans():
    graph = AccessCausalityGraph()
    chain_component(graph, 0, 10)
    files = set(range(10)) | {500, 501, 502, 503}  # 4 files the ACG never saw
    halves = split_partition(graph, files)
    assert halves[0] | halves[1] == files
    assert abs(len(halves[0]) - len(halves[1])) <= 3


def test_split_single_file_partition():
    graph = AccessCausalityGraph()
    graph.add_file(1)
    assert split_partition(graph, {1}) == [{1}]


def test_isolated_files_form_their_own_pool():
    graph = AccessCausalityGraph()
    for i in range(5):
        graph.add_file(i)
    policy = PartitioningPolicy(split_threshold=100, cluster_target=3)
    partitions = partition_components(graph, policy)
    assert sum(len(p) for p in partitions) == 5
