"""Partition lifecycle bookkeeping (the Master Node's metadata)."""

import pytest

from repro.core.partition_manager import PartitionManager
from repro.errors import UnknownAcg


def test_new_partition_and_lookup():
    manager = PartitionManager()
    partition = manager.new_partition(files=[1, 2, 3], node="in1")
    assert partition.size == 3
    assert manager.partition_of(2) == partition.partition_id
    assert manager.get(partition.partition_id).node == "in1"


def test_unknown_partition_raises():
    with pytest.raises(UnknownAcg):
        PartitionManager().get(99)


def test_add_file_moves_between_partitions():
    manager = PartitionManager()
    a = manager.new_partition(files=[1])
    b = manager.new_partition()
    manager.add_file(b.partition_id, 1)
    assert manager.partition_of(1) == b.partition_id
    assert a.size == 0
    assert b.size == 1


def test_add_file_same_partition_is_noop():
    manager = PartitionManager()
    a = manager.new_partition(files=[1])
    manager.add_file(a.partition_id, 1)
    assert a.size == 1


def test_remove_file():
    manager = PartitionManager()
    a = manager.new_partition(files=[1, 2])
    assert manager.remove_file(1) == a.partition_id
    assert manager.partition_of(1) is None
    assert a.size == 1
    assert manager.remove_file(99) is None


def test_node_load_and_least_loaded():
    manager = PartitionManager()
    manager.new_partition(files=[1, 2, 3], node="a")
    manager.new_partition(files=[4], node="b")
    assert manager.node_load("a") == 3
    assert manager.node_load("b") == 1
    assert manager.least_loaded(["a", "b", "c"]) == "c"
    assert manager.least_loaded(["a", "b"]) == "b"


def test_least_loaded_requires_nodes():
    with pytest.raises(ValueError):
        PartitionManager().least_loaded([])


def test_split_moves_second_half():
    manager = PartitionManager()
    original = manager.new_partition(files=range(10), node="a")
    stay, moved = set(range(5)), set(range(5, 10))
    old, new = manager.split(original.partition_id, [stay, moved], new_node="b")
    assert old.files == stay
    assert new.files == moved
    assert new.node == "b"
    assert manager.partition_of(7) == new.partition_id


def test_split_validates_halves():
    manager = PartitionManager()
    original = manager.new_partition(files=[1, 2, 3])
    with pytest.raises(ValueError):
        manager.split(original.partition_id, [{1}, {2}])  # missing 3
    with pytest.raises(ValueError):
        manager.split(original.partition_id, [{1, 2}, {2, 3}])  # overlap
    with pytest.raises(ValueError):
        manager.split(original.partition_id, [{1, 2, 3}])  # not 2 halves


def test_drop_partition_requires_empty():
    manager = PartitionManager()
    partition = manager.new_partition(files=[1])
    with pytest.raises(ValueError):
        manager.drop_partition(partition.partition_id)
    manager.remove_file(1)
    manager.drop_partition(partition.partition_id)
    with pytest.raises(UnknownAcg):
        manager.get(partition.partition_id)


def test_records_roundtrip_preserves_ids():
    manager = PartitionManager()
    a = manager.new_partition(files=[1, 2], node="x")
    manager.new_partition(files=[3])
    clone = PartitionManager.from_records(manager.to_records())
    assert clone.partition_of(1) == a.partition_id
    assert clone.get(a.partition_id).node == "x"
    # New ids continue after the restored maximum.
    fresh = clone.new_partition()
    assert fresh.partition_id > a.partition_id
