"""Extendible hash index: directory/bucket invariants and oracle tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.indexstructures.hashindex import ExtendibleHashIndex, _stable_hash


def test_empty_index():
    index = ExtendibleHashIndex()
    assert len(index) == 0
    assert index.get("missing") == []


def test_insert_get():
    index = ExtendibleHashIndex()
    index.insert("key", 1)
    assert index.get("key") == [1]


def test_multimap_accumulates():
    index = ExtendibleHashIndex()
    index.insert("k", 1)
    index.insert("k", 2)
    assert sorted(index.get("k")) == [1, 2]
    assert len(index) == 2


def test_duplicate_pair_idempotent():
    index = ExtendibleHashIndex()
    index.insert("k", 1)
    index.insert("k", 1)
    assert len(index) == 1


def test_bucket_capacity_validation():
    with pytest.raises(ValueError):
        ExtendibleHashIndex(bucket_capacity=0)


def test_splits_preserve_contents():
    index = ExtendibleHashIndex(bucket_capacity=2)
    for i in range(200):
        index.insert(f"key{i}", i)
    index.check_invariants()
    for i in range(200):
        assert index.get(f"key{i}") == [i]
    assert index.global_depth > 1


def test_remove_value():
    index = ExtendibleHashIndex()
    index.insert("k", 1)
    index.insert("k", 2)
    assert index.remove("k", 1) == 1
    assert index.get("k") == [2]


def test_remove_key_entirely():
    index = ExtendibleHashIndex()
    index.insert("k", 1)
    index.insert("k", 2)
    assert index.remove("k") == 2
    assert "k" not in index


def test_remove_missing():
    index = ExtendibleHashIndex()
    assert index.remove("ghost") == 0
    index.insert("k", 1)
    assert index.remove("k", 99) == 0


def test_items_cover_everything():
    index = ExtendibleHashIndex(bucket_capacity=3)
    pairs = {(f"k{i}", i) for i in range(100)}
    for k, v in pairs:
        index.insert(k, v)
    assert set(index.items()) == pairs


def test_mixed_key_types_rejected_only_for_unhashable():
    index = ExtendibleHashIndex()
    index.insert(5, "int")
    index.insert(5.5, "float")
    index.insert(("a", 1), "tuple")
    with pytest.raises(TypeError):
        index.insert(["list"], "bad")


def test_stable_hash_is_deterministic():
    assert _stable_hash("hello") == _stable_hash("hello")
    assert _stable_hash(42) == _stable_hash(42)
    assert _stable_hash(("a", 1)) == _stable_hash(("a", 1))


def test_page_hook_called():
    touched = []
    index = ExtendibleHashIndex(bucket_capacity=2,
                                page_hook=lambda b, w: touched.append((b, w)))
    for i in range(20):
        index.insert(i, i)
    assert touched


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.text(max_size=8), st.integers(0, 10)), max_size=300),
       st.integers(1, 8))
def test_property_matches_dict_oracle(pairs, capacity):
    index = ExtendibleHashIndex(bucket_capacity=capacity)
    oracle = {}
    for key, value in pairs:
        index.insert(key, value)
        oracle.setdefault(key, set()).add(value)
    index.check_invariants()
    for key, values in oracle.items():
        assert set(index.get(key)) == values
    assert len(index) == sum(len(v) for v in oracle.values())


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.booleans(), st.integers(0, 50)), max_size=300))
def test_property_insert_delete_oracle(ops):
    index = ExtendibleHashIndex(bucket_capacity=2)
    oracle = {}
    for is_insert, key in ops:
        if is_insert:
            index.insert(key, key)
            oracle.setdefault(key, set()).add(key)
        else:
            assert index.remove(key) == len(oracle.pop(key, set()))
    index.check_invariants()
    assert set(index.items()) == {(k, v) for k, vs in oracle.items() for v in vs}
