"""Network model and the simulated RPC layer."""

import pytest

from repro.errors import ClusterError, NodeDown
from repro.sim.clock import SimClock
from repro.sim.network import NetworkModel
from repro.sim.rpc import RpcEndpoint, RpcNetwork


@pytest.fixture
def net():
    return NetworkModel(SimClock())


def test_message_cost_has_latency_floor(net):
    assert net.message_cost(0) == pytest.approx(net.latency_s)


def test_send_charges_clock(net):
    net.send(125_000_000)  # one second of line rate + latency
    assert net.clock.now() == pytest.approx(1.0 + net.latency_s)


def test_fanout_charges_slowest_leg_only(net):
    net.fanout([100, 125_000_000, 100])
    assert net.clock.now() == pytest.approx(1.0 + net.latency_s, rel=1e-3)
    assert net.stats.messages == 3


def test_local_send_is_cheap(net):
    # Loopback pays a process-boundary crossing (~25us) but never the
    # wire latency or serialization delay.
    net.send_local(1 << 20)
    assert net.clock.now() < net.latency_s
    assert net.clock.now() == pytest.approx(25e-6)


def test_stats_accumulate(net):
    net.send(100)
    net.send(200)
    assert net.stats.messages == 2
    assert net.stats.bytes_sent == 300


def make_rpc():
    net = NetworkModel(SimClock())
    rpc = RpcNetwork(net)
    endpoint = RpcEndpoint("node1")
    endpoint.register("echo", lambda x: x * 2)
    rpc.add_endpoint(endpoint)
    return rpc, endpoint


def test_rpc_call_runs_handler():
    rpc, _ = make_rpc()
    assert rpc.call("node1", "echo", 21) == 42


def test_rpc_call_charges_round_trip():
    rpc, _ = make_rpc()
    rpc.call("node1", "echo", 1)
    assert rpc.network.clock.now() >= 2 * rpc.network.latency_s


def test_rpc_local_call_cheap():
    rpc, _ = make_rpc()
    rpc.call("node1", "echo", 1, local=True)
    # Two loopback crossings, but cheaper than one wire round trip.
    assert rpc.network.clock.now() < 2 * rpc.network.latency_s
    assert rpc.network.clock.now() == pytest.approx(50e-6)


def test_rpc_unknown_endpoint():
    rpc, _ = make_rpc()
    with pytest.raises(ClusterError):
        rpc.call("ghost", "echo", 1)


def test_rpc_unknown_method():
    rpc, _ = make_rpc()
    with pytest.raises(ClusterError):
        rpc.call("node1", "nope")


def test_rpc_duplicate_endpoint_rejected():
    rpc, endpoint = make_rpc()
    with pytest.raises(ClusterError):
        rpc.add_endpoint(RpcEndpoint("node1"))


def test_rpc_duplicate_handler_rejected():
    _, endpoint = make_rpc()
    with pytest.raises(ClusterError):
        endpoint.register("echo", lambda: None)


def test_failed_node_raises_node_down():
    rpc, endpoint = make_rpc()
    endpoint.fail()
    with pytest.raises(NodeDown):
        rpc.call("node1", "echo", 1)
    endpoint.recover()
    assert rpc.call("node1", "echo", 3) == 6


def test_multicall_fans_out():
    net = NetworkModel(SimClock())
    rpc = RpcNetwork(net)
    for name in ("a", "b", "c"):
        ep = RpcEndpoint(name)
        ep.register("who", lambda n=name: n)
        rpc.add_endpoint(ep)
    outcomes = rpc.multicall(["a", "b", "c"], "who")
    assert sorted(outcomes) == ["a", "b", "c"]
    assert all(o.ok for o in outcomes.values())
    assert [outcomes[t].value for t in ("a", "b", "c")] == ["a", "b", "c"]


def test_multicall_reports_per_target_errors():
    """A dead target degrades its own entry without masking the others."""
    net = NetworkModel(SimClock())
    rpc = RpcNetwork(net)
    for name in ("a", "b"):
        ep = RpcEndpoint(name)
        ep.register("who", lambda n=name: n)
        rpc.add_endpoint(ep)
    rpc.endpoint("b").fail()
    outcomes = rpc.multicall(["a", "b"], "who")
    assert outcomes["a"].ok and outcomes["a"].value == "a"
    assert not outcomes["b"].ok
    assert isinstance(outcomes["b"].error, NodeDown)


def test_multicall_empty():
    rpc, _ = make_rpc()
    assert rpc.multicall([], "echo") == {}


# -- retry policy ------------------------------------------------------------------


def make_retry_rpc(policy):
    import random

    net = NetworkModel(SimClock())
    rpc = RpcNetwork(net, retry_policy=policy, rng=random.Random(7))
    endpoint = RpcEndpoint("node1")
    endpoint.register("echo", lambda x: x * 2)
    rpc.add_endpoint(endpoint)
    return rpc, endpoint


class DropFirstN:
    """Fault hook that loses the first ``n`` messages, then heals."""

    delay_s = 0.0

    def __init__(self, n):
        self.n = n

    def message_fate(self, target, method):
        if self.n > 0:
            self.n -= 1
            return "drop"
        return "ok"

    def extra_latency_s(self, node):
        return 0.0


def test_retry_survives_transient_message_loss():
    from repro.sim.rpc import RetryPolicy

    rpc, endpoint = make_retry_rpc(RetryPolicy(max_attempts=3))
    rpc.faults = DropFirstN(2)
    # Two lost messages burn two timeouts, the third attempt lands.
    assert rpc.call("node1", "echo", 21) == 42
    assert rpc.network.clock.now() >= 2 * 0.25


def test_retry_gives_up_after_max_attempts():
    from repro.sim.rpc import RetryPolicy

    rpc, endpoint = make_retry_rpc(RetryPolicy(max_attempts=3))
    endpoint.fail()
    with pytest.raises(NodeDown):
        rpc.call("node1", "echo", 1)


def test_retry_backoff_advances_virtual_time():
    from repro.sim.rpc import RetryPolicy

    policy = RetryPolicy(max_attempts=3, base_backoff_s=0.05,
                         backoff_multiplier=2.0, jitter_frac=0.0)
    rpc, endpoint = make_retry_rpc(policy)
    endpoint.fail()
    with pytest.raises(NodeDown):
        rpc.call("node1", "echo", 1)
    # Two backoffs were charged between the three attempts: 0.05 + 0.10.
    assert rpc.network.clock.now() >= 0.15


def test_retry_budget_caps_total_burn():
    from repro.errors import RpcTimeout
    from repro.sim.rpc import RetryPolicy

    policy = RetryPolicy(max_attempts=100, timeout_s=0.25, budget_s=1.0,
                         jitter_frac=0.0)
    rpc, endpoint = make_retry_rpc(policy)

    class DropEverything:
        delay_s = 0.0

        def message_fate(self, target, method):
            return "drop"

        def extra_latency_s(self, node):
            return 0.0

    rpc.faults = DropEverything()
    start = rpc.network.clock.now()
    with pytest.raises(RpcTimeout):
        rpc.call("node1", "echo", 1)
    # The budget bounds the burn: a handful of timeouts + backoffs, far
    # short of the 100 attempts the policy would otherwise allow.
    assert rpc.network.clock.now() - start < 3.0


def test_backoff_grows_and_caps():
    import random

    from repro.sim.rpc import RetryPolicy

    policy = RetryPolicy(base_backoff_s=0.05, backoff_multiplier=2.0,
                         max_backoff_s=0.2, jitter_frac=0.0)
    rng = random.Random(0)
    assert policy.backoff_s(1, rng) == pytest.approx(0.05)
    assert policy.backoff_s(2, rng) == pytest.approx(0.10)
    assert policy.backoff_s(3, rng) == pytest.approx(0.20)
    assert policy.backoff_s(10, rng) == pytest.approx(0.20)  # capped
