"""Network model and the simulated RPC layer."""

import pytest

from repro.errors import ClusterError, NodeDown
from repro.sim.clock import SimClock
from repro.sim.network import NetworkModel
from repro.sim.rpc import RpcEndpoint, RpcNetwork


@pytest.fixture
def net():
    return NetworkModel(SimClock())


def test_message_cost_has_latency_floor(net):
    assert net.message_cost(0) == pytest.approx(net.latency_s)


def test_send_charges_clock(net):
    net.send(125_000_000)  # one second of line rate + latency
    assert net.clock.now() == pytest.approx(1.0 + net.latency_s)


def test_fanout_charges_slowest_leg_only(net):
    net.fanout([100, 125_000_000, 100])
    assert net.clock.now() == pytest.approx(1.0 + net.latency_s, rel=1e-3)
    assert net.stats.messages == 3


def test_local_send_is_cheap(net):
    # Loopback pays a process-boundary crossing (~25us) but never the
    # wire latency or serialization delay.
    net.send_local(1 << 20)
    assert net.clock.now() < net.latency_s
    assert net.clock.now() == pytest.approx(25e-6)


def test_stats_accumulate(net):
    net.send(100)
    net.send(200)
    assert net.stats.messages == 2
    assert net.stats.bytes_sent == 300


def make_rpc():
    net = NetworkModel(SimClock())
    rpc = RpcNetwork(net)
    endpoint = RpcEndpoint("node1")
    endpoint.register("echo", lambda x: x * 2)
    rpc.add_endpoint(endpoint)
    return rpc, endpoint


def test_rpc_call_runs_handler():
    rpc, _ = make_rpc()
    assert rpc.call("node1", "echo", 21) == 42


def test_rpc_call_charges_round_trip():
    rpc, _ = make_rpc()
    rpc.call("node1", "echo", 1)
    assert rpc.network.clock.now() >= 2 * rpc.network.latency_s


def test_rpc_local_call_cheap():
    rpc, _ = make_rpc()
    rpc.call("node1", "echo", 1, local=True)
    # Two loopback crossings, but cheaper than one wire round trip.
    assert rpc.network.clock.now() < 2 * rpc.network.latency_s
    assert rpc.network.clock.now() == pytest.approx(50e-6)


def test_rpc_unknown_endpoint():
    rpc, _ = make_rpc()
    with pytest.raises(ClusterError):
        rpc.call("ghost", "echo", 1)


def test_rpc_unknown_method():
    rpc, _ = make_rpc()
    with pytest.raises(ClusterError):
        rpc.call("node1", "nope")


def test_rpc_duplicate_endpoint_rejected():
    rpc, endpoint = make_rpc()
    with pytest.raises(ClusterError):
        rpc.add_endpoint(RpcEndpoint("node1"))


def test_rpc_duplicate_handler_rejected():
    _, endpoint = make_rpc()
    with pytest.raises(ClusterError):
        endpoint.register("echo", lambda: None)


def test_failed_node_raises_node_down():
    rpc, endpoint = make_rpc()
    endpoint.fail()
    with pytest.raises(NodeDown):
        rpc.call("node1", "echo", 1)
    endpoint.recover()
    assert rpc.call("node1", "echo", 3) == 6


def test_multicall_fans_out():
    net = NetworkModel(SimClock())
    rpc = RpcNetwork(net)
    for name in ("a", "b", "c"):
        ep = RpcEndpoint(name)
        ep.register("who", lambda n=name: n)
        rpc.add_endpoint(ep)
    assert rpc.multicall(["a", "b", "c"], "who") == ["a", "b", "c"]


def test_multicall_empty():
    rpc, _ = make_rpc()
    assert rpc.multicall([], "echo") == []
