"""Machine and Cluster composition."""

import pytest

from repro.sim.clock import SimClock
from repro.sim.machine import Cluster, Machine, MachineSpec


def test_machine_defaults():
    machine = Machine(SimClock())
    assert machine.name == "node"
    assert machine.spec.ram_bytes == 4 * 1024**3


def test_compute_charges_at_cpu_rate():
    machine = Machine(SimClock(), MachineSpec(cpu_ops_per_s=1e9))
    machine.compute(5e8)
    assert machine.clock.now() == pytest.approx(0.5)


def test_drop_caches_resets_page_cache_and_head():
    machine = Machine(SimClock())
    machine.page_cache.touch("x", 0)
    machine.drop_caches()
    assert machine.page_cache.touch("x", 0) is False


def test_cluster_shares_clock():
    cluster = Cluster(["a", "b"])
    cluster["a"].compute(1e9)
    assert cluster["b"].clock.now() > 0


def test_cluster_machines_have_own_disks():
    cluster = Cluster(["a", "b"])
    cluster["a"].disk.read(0, 4096)
    assert cluster["b"].disk.stats.reads == 0


def test_cluster_len_and_iter():
    cluster = Cluster(["a", "b", "c"])
    assert len(cluster) == 3
    assert sorted(m.name for m in cluster) == ["a", "b", "c"]


def test_cluster_spec_propagates():
    spec = MachineSpec(ram_bytes=1024**3)
    cluster = Cluster(["a"], spec=spec)
    assert cluster["a"].spec.ram_bytes == 1024**3


def test_cluster_drop_caches_all_nodes():
    cluster = Cluster(["a", "b"])
    cluster["a"].page_cache.touch("x", 0)
    cluster["b"].page_cache.touch("x", 0)
    cluster.drop_caches()
    assert cluster["a"].page_cache.touch("x", 0) is False
    assert cluster["b"].page_cache.touch("x", 0) is False
