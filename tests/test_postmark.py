"""PostMark benchmark implementation (Table VI substrate)."""

import pytest

from repro.fs.passthrough import PROFILES, ProfiledFS
from repro.fs.vfs import VirtualFileSystem
from repro.sim.clock import SimClock
from repro.workloads.postmark import PostMarkConfig, run_postmark

SMALL = PostMarkConfig(files=500, subdirs=10, transactions=300, seed=1)


def run_on(profile, config=SMALL, index_hook=None):
    vfs = VirtualFileSystem(SimClock())
    pfs = ProfiledFS(vfs, PROFILES[profile], index_hook=index_hook)
    return run_postmark(pfs, config), vfs


def test_report_fields_consistent():
    report, _ = run_on("ext4")
    assert report.fs_name == "ext4"
    assert report.files_created >= SMALL.files
    assert report.total_seconds == pytest.approx(
        report.creation_seconds + report.transaction_seconds +
        report.deletion_seconds)
    assert report.files_created_per_second > 0
    assert report.bytes_written > 0


def test_namespace_empty_after_run():
    _, vfs = run_on("ext4")
    leftover = [p for p, _ in vfs.namespace.files()]
    assert leftover == []


def test_deterministic_for_seed():
    r1, _ = run_on("ext4")
    r2, _ = run_on("ext4")
    assert r1.total_seconds == r2.total_seconds
    assert r1.files_created == r2.files_created


def test_table6_ordering_of_file_systems():
    """Native > pass-through FUSE > heavy FUSE file systems — the
    qualitative ordering of Table VI."""
    rates = {name: run_on(name)[0].files_created_per_second
             for name in ("ext4", "ptfs", "ntfs-3g", "zfs-fuse")}
    assert rates["ext4"] > rates["ptfs"] > rates["ntfs-3g"] > rates["zfs-fuse"]


def test_inline_indexing_costs_throughput():
    plain, _ = run_on("ptfs")
    taxed, _ = run_on("ptfs", index_hook=lambda p, i: None)
    # A no-op hook is free; a real one charges time.
    vfs = VirtualFileSystem(SimClock())
    pfs = ProfiledFS(vfs, PROFILES["ptfs"],
                     index_hook=lambda p, i: vfs.clock.charge(200e-6))
    indexed = run_postmark(pfs, SMALL)
    assert indexed.files_created_per_second < plain.files_created_per_second


def test_transactions_do_read_and_append():
    report, _ = run_on("ext4", PostMarkConfig(files=200, subdirs=5,
                                              transactions=500, seed=3))
    assert report.bytes_read > 0
    assert report.transaction_seconds > 0
