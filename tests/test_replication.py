"""repro.replication: replica sets, promotion failover, hedged search.

Covers the RF>1 subsystem end to end — log semantics, streaming
convergence, promotion-based failover (and its deferred outcome),
hedged search legs against stragglers, the partial-results deadline
path, the follower crash-restart heal, and the chaos ``replicas
converge`` invariant at RF=2.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos.runner import run_chaos
from repro.cluster import PropellerService
from repro.cluster.messages import IndexUpdate, ReplicaSearchReply, UpdateAck
from repro.core.partitioner import PartitioningPolicy
from repro.errors import ClusterError, NodeDown
from repro.indexstructures import IndexKind
from repro.obs.metrics import MetricsRegistry
from repro.replication import HedgedReply, HedgePolicy, ReplicationLog
from repro.sim.clock import SimClock
from repro.sim.machine import Machine
from repro.sim.rpc import CallOutcome, HedgedOutcome

HEARTBEAT_PERIOD_S = 5.0


def make_replicated(nodes=3, rf=2, files=60):
    """(service, client, paths): an indexed RF>1 deployment, converged."""
    service = PropellerService(
        num_index_nodes=nodes, replication_factor=rf,
        policy=PartitioningPolicy(split_threshold=20, cluster_target=10))
    client = service.make_client()
    client.create_index("by_size", IndexKind.BTREE, ["size"])
    vfs = service.vfs
    vfs.mkdir("/data")
    paths = []
    for i in range(files):
        path = f"/data/f{i:04d}.bin"
        vfs.write_file(path, 1024 * (i + 1), pid=9)
        paths.append(path)
    client.index_paths(paths, pid=9)
    client.flush_updates()
    service.advance(2 * HEARTBEAT_PERIOD_S)
    service.sync_replication()
    return service, client, paths


def assert_converged(service):
    """Every live follower matches its primary's log and store."""
    master = service.master
    checked = 0
    for acg_id in master.replica_sets.partitions():
        partition = next((p for p in master.partitions.partitions()
                          if p.partition_id == acg_id), None)
        if partition is None or not partition.node:
            continue
        primary = service.index_nodes[partition.node]
        if not primary.endpoint.up:
            continue
        state = primary.repl.get(acg_id)
        rs = master.replica_sets.state(acg_id)
        if state is None or rs is None:
            continue
        primary_ids = set(primary.replicas[acg_id].store.file_ids())
        for follower in rs.followers:
            fnode = service.index_nodes[follower]
            if not fnode.endpoint.up:
                continue
            fstate = fnode.followers.get(acg_id)
            assert fstate is not None, (acg_id, follower)
            assert fstate.applied_seq == state.log.last_seq, (acg_id, follower)
            assert set(fstate.replica.store.file_ids()) == primary_ids
            checked += 1
    assert checked > 0, "no replicated partition was actually checked"


# -- ReplicationLog -----------------------------------------------------------

def test_replication_log_append_and_since():
    log = ReplicationLog()
    assert log.last_seq == 0
    u1 = IndexUpdate.upsert(1, {"size": 1})
    u2 = IndexUpdate.upsert(2, {"size": 2})
    assert log.append(u1) == 1
    assert log.append(u2) == 2
    assert log.last_seq == 2
    assert log.since(0) == ((1, u1), (2, u2))
    assert log.since(1) == ((2, u2),)
    assert log.since(2) == ()


def test_replication_log_trim_makes_prefix_unservable():
    log = ReplicationLog()
    updates = [IndexUpdate.upsert(i, {"size": i}) for i in range(1, 6)]
    for u in updates:
        log.append(u)
    log.trim_to(3)
    assert log.since(3) == ((4, updates[3]), (5, updates[4]))
    assert log.since(2) is None  # trimmed away: caller must snapshot
    assert log.last_seq == 5


def test_replication_log_base_continues_sequence():
    log = ReplicationLog(base=7)
    assert log.last_seq == 7
    assert log.append(IndexUpdate.upsert(1, {})) == 8
    assert log.since(6) is None  # before the base: not servable


# -- streaming convergence ----------------------------------------------------

def test_followers_converge_after_indexing():
    service, client, paths = make_replicated()
    assert_converged(service)
    # Every replicated partition has exactly rf - 1 followers.
    for acg_id in service.master.replica_sets.partitions():
        rs = service.master.replica_sets.state(acg_id)
        assert len(rs.followers) == service.replication_factor - 1


def test_route_table_carries_replicas():
    service, client, _ = make_replicated()
    client.search("size>=0")
    assert client._route_replicas, "client learned no replica routes"
    for acg_id, replicas in client._route_replicas.items():
        rs = service.master.replica_sets.state(acg_id)
        assert tuple(sorted(replicas)) == tuple(sorted(rs.followers))


def test_client_learns_ack_watermarks():
    service, client, _ = make_replicated()
    assert client._repl_seq_seen, "no UpdateAck carried a sequence"
    for acg_id, seq in client._repl_seq_seen.items():
        node = service.index_nodes[service.master.route_of(acg_id)] \
            if hasattr(service.master, "route_of") else None
        assert seq > 0


# -- promotion failover -------------------------------------------------------

def test_failover_promotes_caught_up_follower():
    service, client, paths = make_replicated()
    before = sorted(client.search("size>=0"))
    victim = "in1"
    owned = [p.partition_id for p in service.master.partitions.partitions()
             if p.node == victim]
    assert owned, "victim owned no partitions; rebalance the test setup"
    service.fail_node(victim)
    moved = service.failover(victim)
    assert moved == len(owned)
    event = service.master.failover_log[-1]
    assert event.outcome == "promoted"
    assert sorted(event.promoted) == sorted(owned)
    assert not event.moved  # nothing went through checkpoint adoption
    assert dict(event.watermarks).keys() == set(owned)
    promotions = service.registry.counter("cluster.master.promotions").value
    assert promotions == len(owned)
    # The promoted copies serve the full dataset.
    assert sorted(client.search("size>=0")) == before


def test_failover_deferred_when_followers_lag():
    service, client, _ = make_replicated()
    victim = "in1"
    owned = [p.partition_id for p in service.master.partitions.partitions()
             if p.node == victim]
    assert owned
    # Strand the victim's partitions: every follower of them is wound
    # back (simulated lag), and checkpoint adoption is ruled out by
    # failing every survivor's endpoint... instead, roll the follower
    # watermark back and fail the *other* survivors so no adopter exists.
    for name, node in service.index_nodes.items():
        for acg_id, fstate in node.followers.items():
            if acg_id in owned:
                fstate.applied_seq = 0
    service.fail_node(victim)
    for name in service.index_nodes:
        if name != victim:
            service.index_nodes[name].endpoint.fail()
    with pytest.raises(ClusterError):
        service.failover(victim)
    event = service.master.failover_log[-1]
    assert event.outcome == "deferred"
    assert sorted(event.deferred) == sorted(owned)
    # The deferred event reports how far behind the best candidate was.
    assert dict(event.watermarks).keys() <= set(owned)
    deferred = service.registry.counter(
        "cluster.master.failover_deferred").value
    assert deferred == 1


# -- replication epochs are log generations -----------------------------------

def test_set_followers_force_bump_zeroes_watermarks():
    from repro.replication import ReplicaSetManager

    mgr = ReplicaSetManager(rf=2)
    epoch = mgr.set_followers(1, ("in2",))
    mgr.record_primary(1, epoch, 40, (("in2", 40),))
    mgr.record_follower(1, "in2", epoch, 40)
    st = mgr.state(1)
    assert st.primary_seq == 40 and st.applied["in2"] == 40
    # Same membership without force: steady-state retries don't churn.
    assert mgr.set_followers(1, ("in2",)) == epoch
    assert st.primary_seq == 40
    # Forced bump = new log generation: the old watermarks are not
    # comparable to the new log's sequences and must go, not max-fold.
    assert mgr.set_followers(1, ("in2",), force=True) == epoch + 1
    assert st.primary_seq == 0
    assert st.applied == {"in2": 0} and st.acked == {"in2": 0}
    # Late old-generation reports are rejected outright.
    mgr.record_primary(1, epoch, 40, (("in2", 40),))
    mgr.record_follower(1, "in2", epoch, 40)
    assert st.primary_seq == 0 and st.applied["in2"] == 0


def test_node_side_epoch_bump_resets_master_watermarks():
    from repro.replication import ReplicaSetManager

    mgr = ReplicaSetManager(rf=2)
    epoch = mgr.set_followers(1, ("in2",))
    mgr.record_primary(1, epoch, 40, (("in2", 40),))
    mgr.record_follower(1, "in2", epoch, 40)
    # The primary restarted its log generation (self-bump in
    # ``_reset_repl``) and its heartbeat reached the Master before the
    # Master's own forced bump: the newer epoch is adopted and the old
    # generation's maxima dropped wholesale.
    mgr.record_primary(1, epoch + 1, 2, (("in2", 2),))
    st = mgr.state(1)
    assert st.repl_epoch == epoch + 1
    assert st.primary_seq == 2
    assert st.applied == {"in2": 0}
    assert st.acked == {"in2": 2}


def test_failover_never_promotes_stale_generation_follower():
    service, client, paths = make_replicated()
    victim = "in1"
    owned = [p.partition_id for p in service.master.partitions.partitions()
             if p.node == victim]
    assert owned
    primary = service.index_nodes[victim]
    # The primary restarts its partitions' log generations (what a
    # split/merge/adoption does) and the self-bump reaches the Master
    # via a heartbeat.  The followers still hold high watermarks of the
    # *previous* generation — numerically "caught up", semantically
    # stale.
    for acg_id in owned:
        primary._reset_repl(acg_id)
    service.master.report_heartbeat(primary.make_heartbeat())
    for acg_id in owned:
        rs = service.master.replica_sets.state(acg_id)
        assert rs.primary_seq == 0, "old-generation primary_seq survived"
    service.fail_node(victim)
    try:
        service.failover(victim)
    except ClusterError:
        pass  # an all-deferred round raises; the point is no promotion
    event = service.master.failover_log[-1]
    assert not event.promoted
    assert service.registry.counter("cluster.master.promotions").value == 0


def test_install_follower_fenced_below_current_epoch():
    from repro.cluster.index_node import IndexNode
    from repro.errors import StaleReplEpoch

    node = IndexNode("f1", Machine(SimClock()))
    node.handle_install_follower(1, "p1", 3, 5, [], [(1, {"size": 1}, "/a")])
    before = node.followers[1]
    # A deposed primary's stale snapshot must not rewind the replica.
    with pytest.raises(StaleReplEpoch):
        node.handle_install_follower(1, "p0", 2, 0, [], [])
    assert node.followers[1] is before
    assert before.repl_epoch == 3 and before.applied_seq == 5
    # Same-epoch re-install stays allowed: the live primary re-bootstraps
    # within a generation (e.g. after trimming past a follower's ack).
    node.handle_install_follower(1, "p1", 3, 7, [], [])
    assert node.followers[1].applied_seq == 7


def test_install_follower_fenced_against_own_primary_claim():
    from repro.cluster.index_node import IndexNode, PrimaryReplState
    from repro.errors import StaleReplEpoch

    node = IndexNode("n1", Machine(SimClock()))
    node.repl[1] = PrimaryReplState(repl_epoch=4)
    # At or below the node's own primary epoch the installer is the
    # stale one — rejected, claim kept.
    with pytest.raises(StaleReplEpoch):
        node.handle_install_follower(1, "p0", 4, 0, [], [])
    assert 1 in node.repl
    # Strictly above it, this node's claim is the stale one: it cedes
    # the partition and becomes a follower of the newer primary.
    node.handle_install_follower(1, "p2", 5, 3, [], [])
    assert 1 not in node.repl
    assert node.followers[1].repl_epoch == 5


def test_membership_bump_refreshes_retained_follower_epochs():
    service, client, paths = make_replicated(nodes=4, rf=3)
    oracle = sorted(client.search("size>=0"))
    # Knock one node out and rebuild every ring it belonged to.  Rings
    # that merely *changed membership* bump the epoch without restarting
    # the log, so the retained follower has nothing to stream — it must
    # still be told the new epoch (empty apply), or its heartbeats and
    # live watermark answers would keep the old epoch and promotion
    # would refuse a genuinely caught-up replica.
    victim = "in1"
    service.fail_node(victim)
    service.failover(victim)
    service.sync_replication()
    for acg_id in service.master.replica_sets.partitions():
        rs = service.master.replica_sets.state(acg_id)
        for follower in rs.followers:
            fstate = service.index_nodes[follower].followers.get(acg_id)
            if fstate is not None:
                assert fstate.repl_epoch >= rs.repl_epoch, (acg_id, follower)
    # After heartbeats re-report at the refreshed epoch, a retained
    # follower is fully viable again: the next primary death promotes.
    service.advance(2 * HEARTBEAT_PERIOD_S)
    victim2 = sorted({p.node for p in service.master.partitions.partitions()
                      if p.node})[0]
    service.fail_node(victim2)
    service.failover(victim2)
    assert service.master.failover_log[-1].outcome == "promoted"
    assert sorted(client.search("size>=0")) == oracle


def test_deposed_primary_self_fences_instead_of_clobbering():
    service, client, paths = make_replicated(nodes=4, rf=3)
    victim = "in1"
    owned = [p.partition_id for p in service.master.partitions.partitions()
             if p.node == victim]
    assert owned
    victim_node = service.index_nodes[victim]
    assert any(a in victim_node.repl for a in owned)
    # Partition the primary away (endpoint down, state intact), promote
    # a follower, and rebuild the new primaries' replica rings.
    service.fail_node(victim)
    service.failover(victim)
    assert service.master.failover_log[-1].outcome == "promoted"
    service.sync_replication()
    # The deposed primary comes back still believing it owns the
    # partitions and runs its catch-up duty; forcing every ack slot to
    # -1 drives the snapshot-install path — the exact shape that used
    # to blindly overwrite the new generation's replicas.
    victim_node.endpoint.recover()
    deposed_before = victim_node.repl_deposed
    stale_acgs = [a for a in sorted(victim_node.repl) if a in owned]
    assert stale_acgs
    for acg_id in stale_acgs:
        st = victim_node.repl[acg_id]
        for follower in st.followers:
            st.acked[follower] = -1
        victim_node._sync_followers(acg_id)
    # Every stale claim was fenced and dropped, not retried.
    assert victim_node.repl_deposed >= deposed_before + len(stale_acgs)
    for acg_id in stale_acgs:
        assert acg_id not in victim_node.repl
    # No current-generation replica was rewound below the Master's epoch.
    for acg_id in owned:
        rs = service.master.replica_sets.state(acg_id)
        for follower in rs.followers:
            fstate = service.index_nodes[follower].followers.get(acg_id)
            if fstate is not None:
                assert fstate.repl_epoch >= rs.repl_epoch
    assert_converged(service)


# -- hedged search ------------------------------------------------------------

def test_hedged_search_beats_straggling_primary():
    from repro.chaos.faults import FaultInjector

    service, client, paths = make_replicated()
    oracle = sorted(client.search("size>=0"))
    faults = FaultInjector(seed=7, registry=service.registry)
    service.rpc.faults = faults
    primaries = {p.node for p in service.master.partitions.partitions()
                 if p.node}
    straggler = sorted(primaries)[0]
    faults.slow_node(straggler, 1.0)  # way past the 50ms hedge delay
    got = sorted(client.search("size>=0"))
    assert got == oracle
    hedges = service.registry.counter("cluster.client.hedges").value
    wins = service.registry.counter("cluster.client.hedge_wins").value
    assert hedges > 0
    assert wins > 0


def test_hedge_policy_delay_tracks_p95():
    registry = MetricsRegistry()
    policy = HedgePolicy(registry, default_delay_s=0.05)
    assert policy.delay_s() == pytest.approx(0.05)  # too few samples
    for _ in range(20):
        policy.observe(0.010)
    policy.observe(10.0)
    assert 0.005 < policy.delay_s() < 1.0  # p95-derived, not the max


class _FakeClock:
    def __init__(self, now=0.0):
        self._now = now

    def now(self):
        return self._now

    def advance_to(self, t):
        assert t >= self._now
        self._now = t


def _hedge_client():
    """A client-shaped object good enough to call ``_resolve_hedge``."""
    service = PropellerService(num_index_nodes=2, replication_factor=2)
    return service.make_client()


def test_resolve_hedge_prefers_first_sound_answer():
    client = _hedge_client()
    policy = client.hedging
    clock = _FakeClock()
    reply = ReplicaSearchReply(node="in2", epoch=3, results=["r"])
    out = HedgedOutcome(primary=CallOutcome(ok=True, value="primary"),
                        secondary=CallOutcome(ok=True, value=reply),
                        primary_end=0.1, secondary_end=0.2, hedged=True)
    ctx = {"lagging": set()}
    got = client._resolve_hedge(clock, 0.0, out, policy, ctx, None)
    assert got == "primary"
    assert clock.now() == pytest.approx(0.1)

    clock = _FakeClock()
    out = HedgedOutcome(primary=CallOutcome(ok=True, value="primary"),
                        secondary=CallOutcome(ok=True, value=reply),
                        primary_end=0.3, secondary_end=0.2, hedged=True)
    got = client._resolve_hedge(clock, 0.0, out, policy, ctx, None)
    assert isinstance(got, HedgedReply)
    assert got.from_replica and got.results == ["r"]
    assert clock.now() == pytest.approx(0.2)


def test_resolve_hedge_lagging_needs_deadline_opt_in():
    client = _hedge_client()
    policy = client.hedging
    lagging_reply = ReplicaSearchReply(node="in2", epoch=3, results=["r"],
                                       lagging=(4,))
    down = NodeDown("in1 is down")
    out = HedgedOutcome(primary=CallOutcome(ok=False, error=down),
                        secondary=CallOutcome(ok=True, value=lagging_reply),
                        primary_end=0.1, secondary_end=0.2, hedged=True)
    # Without the opt-in a lagging answer is refused: the leg fails.
    with pytest.raises(NodeDown):
        client._resolve_hedge(_FakeClock(), 0.0, out, policy,
                              {"lagging": set()}, None)
    # An in-deadline lagging answer is accepted and recorded.
    ctx = {"lagging": set()}
    got = client._resolve_hedge(_FakeClock(), 0.0, out, policy, ctx, 1.0)
    assert isinstance(got, HedgedReply)
    assert got.lagging == (4,)
    assert ctx["lagging"] == {4}
    # The deadline is a real time bound, not just an opt-in flag: a
    # lagging answer that landed after it (0.2 > 0.15) is refused too.
    ctx = {"lagging": set()}
    with pytest.raises(NodeDown):
        client._resolve_hedge(_FakeClock(), 0.0, out, policy, ctx, 0.15)
    assert ctx["lagging"] == set()


def test_search_deadline_marks_answer_partial():
    service, client, paths = make_replicated()
    victim = "in1"
    owned = [p.partition_id for p in service.master.partitions.partitions()
             if p.node == victim]
    assert owned
    # Wind the surviving followers of the victim's partitions back so
    # their answers are lagging, then kill the primary without failover.
    for name, node in service.index_nodes.items():
        for acg_id, fstate in node.followers.items():
            if acg_id in owned and fstate.applied_seq > 0:
                fstate.applied_seq -= 1
    service.fail_node(victim)
    answer = client.search_detailed("size>=0", deadline_s=5.0)
    assert answer.partial
    assert set(answer.lagging_partitions) <= set(owned)
    partials = service.registry.counter(
        "cluster.client.partial_searches").value
    assert partials >= 1


# -- messages -----------------------------------------------------------------

def test_update_ack_is_int_compatible():
    ack = UpdateAck(3, acg_id=7, seq=12, repl_epoch=2)
    assert ack == 3
    assert ack + 1 == 4
    assert ack.acg_id == 7 and ack.seq == 12 and ack.repl_epoch == 2


# -- replica apply idempotency (property) -------------------------------------

N_RECORDS = 12


def _fresh_follower():
    node_machine = Machine(SimClock())
    from repro.cluster.index_node import IndexNode
    node = IndexNode("f1", node_machine)
    node.handle_install_follower(1, "p1", repl_epoch=1, seq=0,
                                 specs=[], files=[])
    return node


@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.tuples(st.integers(0, N_RECORDS - 1), st.integers(1, N_RECORDS),
              st.integers(1, 3)),
    max_size=12))
def test_replicate_apply_idempotent_under_resend_and_reorder(chunks):
    """Any storm of re-sent / overlapping / out-of-order log suffixes at
    non-decreasing-enough epochs leaves the replica equal to one clean
    in-order apply: duplicates skip, gaps stop, nothing double-applies."""
    records = [(i + 1, IndexUpdate.upsert(i + 1, {"size": i + 1}))
               for i in range(N_RECORDS)]
    node = _fresh_follower()
    max_epoch = 1
    for start, end, epoch in chunks:
        if start >= end:
            continue
        if epoch < max_epoch:
            with pytest.raises(ClusterError):
                node.handle_replicate_apply(1, epoch, records[start:end])
            continue
        max_epoch = max(max_epoch, epoch)
        applied = node.handle_replicate_apply(1, epoch, records[start:end])
        st_state = node.followers[1]
        assert applied == st_state.applied_seq
        # The applied prefix is always exactly files 1..applied.
        assert set(st_state.replica.store.file_ids()) == set(
            range(1, applied + 1))
    # A final in-order full stream always converges the replica.
    node.handle_replicate_apply(1, max_epoch, records)
    st_state = node.followers[1]
    assert st_state.applied_seq == N_RECORDS
    assert set(st_state.replica.store.file_ids()) == set(
        range(1, N_RECORDS + 1))


def test_replicate_apply_survives_promotion():
    node = _fresh_follower()
    records = [(i + 1, IndexUpdate.upsert(i + 1, {"size": i + 1}))
               for i in range(5)]
    node.handle_replicate_apply(1, 1, records)
    applied, count = node.handle_promote_replica(1, repl_epoch=2)
    assert (applied, count) == (5, 5)
    # Re-delivery of the old stream after promotion cannot corrupt the
    # now-primary copy: the follower identity is gone.
    from repro.errors import UnknownAcg
    with pytest.raises(UnknownAcg):
        node.handle_replicate_apply(1, 1, records)
    assert set(node.replicas[1].store.file_ids()) == {1, 2, 3, 4, 5}
    # The primary continues the sequence from its applied watermark.
    assert node.repl[1].log.last_seq == 5


# -- histogram percentiles ----------------------------------------------------

def test_histogram_percentile_accessors():
    registry = MetricsRegistry()
    hist = registry.histogram("t.lat", unit="s")
    for i in range(1, 101):
        hist.observe(i / 100.0)
    assert hist.p50 == pytest.approx(0.50, abs=0.02)
    assert hist.p95 == pytest.approx(0.95, abs=0.02)
    assert hist.p99 == pytest.approx(0.99, abs=0.02)
    summary = hist.summary()
    assert summary["p50"] == hist.p50
    assert summary["p95"] == hist.p95
    assert summary["p99"] == hist.p99


# -- follower crash-restart heal ----------------------------------------------

def test_master_heals_follower_that_lost_its_replica():
    service, client, _ = make_replicated()
    assert_converged(service)
    # Pick any replicated partition and crash-restart its follower: the
    # volatile replica dies, but the primary still records it caught up.
    acg_id = service.master.replica_sets.partitions()[0]
    rs = service.master.replica_sets.state(acg_id)
    partition = next(p for p in service.master.partitions.partitions()
                     if p.partition_id == acg_id)
    follower = rs.followers[0]
    fnode = service.index_nodes[follower]
    primary = service.index_nodes[partition.node]
    assert primary.repl[acg_id].acked[follower] > 0
    fnode.crash()
    fnode.restart()
    assert acg_id not in fnode.followers  # replica really is gone
    # The heartbeat round notices the silent follower and voids its ack.
    service.advance(2 * HEARTBEAT_PERIOD_S)
    service.sync_replication()
    assert_converged(service)


# -- chaos at RF=2 ------------------------------------------------------------

def test_chaos_rf2_clean_and_deterministic():
    report = run_chaos(seed=1, steps=40, rf=2)
    assert report["violations"] == []
    assert report["rf"] == 2
    counters = report["counters"]
    assert counters.get("cluster.master.promotions", 0) > 0
    again = run_chaos(seed=1, steps=40, rf=2)
    assert json.dumps(report, sort_keys=True) == json.dumps(
        again, sort_keys=True)
