"""The Master metadata WAL: append/replay, torn tails, term fencing,
checkpoint truncation, and the standby tail protocol's building blocks."""

import pytest

from repro.cluster.meta_wal import MetaState, MetaWal
from repro.errors import StaleMasterTerm


def populated_records():
    """A representative mutation history (term, kind, *payload)."""
    return [
        ("term", 1, "master"),
        ("member", "in1"),
        ("member", "in2"),
        ("index", "by_size", "btree", ("size",)),
        ("newpart", 1, "in1"),
        ("file", 101, 1),
        ("file", 102, 1),
        ("epoch", 2, 1),
        ("place", 1, "in2"),
        ("repl", 1, 3, ("in1",)),
        ("sync", 1, 1),
        ("finish", "in1", 1, "in2", 2),
    ]


class TestMetaState:
    def test_apply_and_snapshot_roundtrip(self):
        state = MetaState()
        for record in populated_records():
            state.apply((1,) + tuple(record))
        restored = MetaState.from_snapshot(state.snapshot())
        assert restored.snapshot() == state.snapshot()
        assert restored.partitions[1][0] == "in2"
        assert restored.partitions[1][1] == {101, 102}
        assert restored.file_map == {101: 1, 102: 1}
        assert restored.epoch == 2
        assert restored.repl[1] == (3, ("in1",))
        assert restored.syncs == {1: True}
        assert restored.finishes == {("in1", 1): ("in2", 2)}

    def test_file_move_and_unfile(self):
        state = MetaState()
        state.apply((1, "newpart", 1, "in1"))
        state.apply((1, "newpart", 2, "in2"))
        state.apply((1, "file", 7, 1))
        state.apply((1, "file", 7, 2))  # move
        assert state.file_map[7] == 2
        assert 7 not in state.partitions[1][1]
        state.apply((1, "unfile", 7))
        assert 7 not in state.file_map

    def test_droppart_forgets_files(self):
        state = MetaState()
        state.apply((1, "newpart", 1, "in1"))
        state.apply((1, "file", 7, 1))
        state.apply((1, "droppart", 1))
        assert state.partitions == {}
        assert state.file_map == {}

    def test_unknown_kind_is_skipped(self):
        state = MetaState()
        state.apply((1, "from_the_future", "whatever"))
        assert state.snapshot() == MetaState().snapshot()


class TestMetaWal:
    def _filled(self):
        wal = MetaWal()
        for record in populated_records():
            wal.append(1, tuple(record))
        return wal

    def test_append_replay_is_deterministic(self):
        wal = self._filled()
        state_a = wal.recover()
        state_b = wal.recover()
        assert state_a.snapshot() == state_b.snapshot()
        assert state_a.partitions[1][1] == {101, 102}
        assert wal.seq == len(populated_records())

    def test_torn_tail_drops_only_the_torn_record(self):
        wal = self._filled()
        wal.simulate_torn_tail(5)
        state = wal.recover()
        assert wal.replay_dropped_total == 1
        # The surviving prefix replays intact: the torn record was the
        # final "finish" intent, so everything before it is present.
        assert state.finishes == {}
        assert state.partitions[1][0] == "in2"
        assert wal.seq == len(populated_records()) - 1

    def test_append_fences_stale_terms(self):
        wal = MetaWal()
        wal.append(2, ("term", 2, "master2"))
        with pytest.raises(StaleMasterTerm) as exc:
            wal.append(1, ("member", "in1"))
        assert exc.value.term == 2
        # Equal and higher terms still append.
        wal.append(2, ("member", "in1"))
        wal.append(3, ("term", 3, "master"))
        assert wal.highest_term == 3

    def test_install_fences_stale_snapshots(self):
        wal = MetaWal()
        wal.append(3, ("term", 3, "master"))
        image = MetaState().snapshot()
        with pytest.raises(StaleMasterTerm):
            wal.install(image, seq=10, term=2)
        wal.install(image, seq=10, term=3)
        assert wal.seq == 10 and wal.base == 10

    def test_checkpoint_truncates_and_seq_survives(self):
        wal = self._filled()
        seq_before = wal.seq
        wal.checkpoint(wal.recover().snapshot())
        assert wal.seq == seq_before          # never resets
        assert wal.base == seq_before
        assert wal.entries == []
        wal.append(1, ("member", "in3"))
        assert wal.seq == seq_before + 1
        # A tail request from before the checkpoint must re-bootstrap.
        assert wal.entries_since(seq_before - 1) is None
        assert wal.entries_since(seq_before) == [(1, "member", "in3")]
        # Recovery from snapshot + post-checkpoint records replays all.
        state = wal.recover()
        assert "in3" in state.members and "in1" in state.members

    def test_entries_since_empty_tail(self):
        wal = self._filled()
        assert wal.entries_since(wal.seq) == []
        assert len(wal.entries_since(0)) == wal.seq
