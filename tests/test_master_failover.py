"""Master failover end to end: warm standby promotion on lease expiry,
term fencing of the deposed Master, client re-homing, acked updates
surviving a Master restart via meta-WAL replay, and the master-fault
chaos mode's determinism."""

import pytest

from repro.chaos import ChaosRunner, build_schedule
from repro.cluster import PropellerService
from repro.core.partitioner import PartitioningPolicy
from repro.errors import StaleMasterTerm
from repro.indexstructures import IndexKind


def build(nodes=3, rf=2):
    service = PropellerService(
        num_index_nodes=nodes, replication_factor=rf, standby_master=True,
        policy=PartitioningPolicy(split_threshold=10**9, cluster_target=8))
    client = service.make_client()
    client.create_index("by_size", IndexKind.BTREE, ["size"])
    return service, client


def index_files(service, client, n, pid=7):
    if not service.vfs.exists("/d"):
        service.vfs.mkdir("/d", parents=True)
    paths = []
    for i in range(n):
        path = f"/d/f{pid}_{i:03d}"
        service.vfs.write_file(path, 100 + i, pid=100 + i)
        client.index_path(path, pid=100 + i)
        paths.append(path)
    client.flush_updates()
    return paths


# -- standby promotion -----------------------------------------------------------


def test_standby_promotes_on_lease_expiry():
    service, client = build()
    paths = index_files(service, client, 20)
    service.commit_all()
    assert service.master.endpoint.name == "master"
    epoch_before = service.master.partitions.epoch

    service.crash_master()
    # Three missed 2s lease ticks expire the lease; promotion bumps the
    # term and the deployment re-points at the new acting Master.
    service.advance(12.0)
    assert service.master.endpoint.name == "master2"
    assert service.master.acting
    assert service.master.term == 2
    # Epochs continue monotonically: no client refresh storm.
    assert service.master.partitions.epoch >= epoch_before
    assert service.journal.count("master.promote") == 1


def test_client_rehomes_to_promoted_master():
    service, client = build()
    paths = index_files(service, client, 12)
    service.commit_all()
    answer_before = sorted(client.search("size>0"))
    assert answer_before == sorted(paths)

    service.crash_master()
    service.advance(12.0)
    # The next Master-bound call fails over to the standby candidate.
    answer_after = sorted(client.search("size>0"))
    assert answer_after == answer_before
    assert client.master_rehomes >= 1


def test_acked_updates_survive_promotion():
    """Everything the cluster acknowledged before the Master crash is
    still indexed and searchable under the promoted Master."""
    service, client = build()
    paths = index_files(service, client, 25)
    service.commit_all()
    service.crash_master()
    service.advance(12.0)
    assert sorted(client.search("size>0")) == sorted(paths)
    # And the promoted Master accepts new work.
    more = index_files(service, client, 5, pid=9)
    assert sorted(client.search("size>0")) == sorted(paths + more)


# -- fencing the deposed Master --------------------------------------------------


def test_restarted_ex_master_is_fenced_and_rejoins_as_standby():
    service, client = build()
    index_files(service, client, 10)
    service.commit_all()
    service.crash_master()
    service.advance(12.0)
    assert service.master.endpoint.name == "master2"

    # The ex-Master replays its own meta-WAL, which still says it owns
    # term 1 — it comes back *believing* it is acting.
    service.restart_master("master")
    old = next(m for m in service.masters if m.endpoint.name == "master")
    assert old.acting and old.term == 1

    # The next heartbeat round fences its stale term: Index Nodes raise
    # StaleMasterTerm, it self-deposes, and exactly one Master acts.
    service.advance(6.0)
    assert not old.acting
    assert sum(n.master_fences for n in service.index_nodes.values()) >= 1
    assert service.journal.count("master.fence") >= 1
    assert service.journal.count("master.depose") >= 1
    acting = [m for m in service.masters if m.endpoint.up and m.acting]
    assert [m.endpoint.name for m in acting] == ["master2"]

    # The deposed Master re-tails the new acting Master's meta-log.
    service.advance(6.0)
    assert service.master_status()["standby_lag"] == 0


def test_node_fences_stale_term_rpc_directly():
    service, client = build()
    index_files(service, client, 6)
    node = next(iter(service.index_nodes.values()))
    # Teach the node a newer term, then replay an older one.
    node._fence_term(3, "heartbeat")
    with pytest.raises(StaleMasterTerm) as exc:
        node._fence_term(2, "heartbeat")
    assert exc.value.term == 3
    assert node.master_fences == 1
    # Term 0 (unstamped, e.g. client-originated paths) always passes.
    node._fence_term(0, "search")


# -- meta-WAL restart (no promotion) ---------------------------------------------


def test_master_restart_replays_identical_state():
    """A crash-restart with no standby promotion in between replays the
    meta-WAL into byte-identical durable state at the same term."""
    service, client = build()
    paths = index_files(service, client, 18)
    service.commit_all()
    master = service.master
    before = master._build_meta_state().snapshot()
    term_before = master.term

    service.crash_master()
    service.restart_master()          # immediate: lease never expires
    assert master.acting and master.term == term_before
    assert master._build_meta_state().snapshot() == before
    assert service.journal.count("master.restart") == 1
    assert sorted(client.search("size>0")) == sorted(paths)


def test_master_restart_survives_torn_meta_tail():
    service, client = build()
    index_files(service, client, 10)
    master = service.master
    service.crash_master()
    master.meta_wal.simulate_torn_tail(4)
    service.restart_master()
    assert master.meta_wal.replay_dropped_total == 1
    assert master.acting
    # The cluster still serves after the torn-tail replay.
    assert len(client.search("size>0")) == 10


def test_checkpoint_folds_meta_wal():
    service, client = build()
    index_files(service, client, 8)
    master = service.master
    assert master.meta_wal.checkpoints_taken == 0
    service._checkpoint_all()
    assert master.meta_wal.checkpoints_taken == 1
    assert master.meta_wal.base == master.meta_wal.seq
    # Restart after the checkpoint: snapshot-only replay.
    service.crash_master()
    service.restart_master()
    assert master.acting
    assert len(client.search("size>0")) == 8


# -- status surface --------------------------------------------------------------


def test_master_status_reports_roles_and_lag():
    service, client = build()
    index_files(service, client, 6)
    service.advance(4.0)  # a couple of standby ticks
    status = service.master_status()
    assert status["acting"] == "master"
    assert status["term"] == 1
    assert status["roles"]["master"]["role"] == "acting"
    assert status["roles"]["master2"]["role"] == "standby"
    assert status["standby_lag"] == 0
    assert status["fences"] == 0


# -- chaos: master faults --------------------------------------------------------


def test_schedule_without_master_faults_is_unchanged():
    """The flag-off program must stay byte-identical to the historical
    generator output (same seed, same draws, same steps)."""
    baseline = build_schedule(11, 40, 3)
    explicit = build_schedule(11, 40, 3, master_faults=False)
    assert baseline == explicit
    assert all(s.op not in ("master_crash", "master_isolation")
               for s in baseline)


def test_schedule_with_master_faults_contains_new_ops():
    program = build_schedule(0, 60, 3, master_faults=True)
    ops = {s.op for s in program}
    assert "master_crash" in ops and "master_isolation" in ops


def test_master_fault_chaos_is_deterministic_and_clean():
    runs = []
    for _ in range(2):
        runner = ChaosRunner(0, steps=30, nodes=3, rf=2, master_faults=True)
        runner.run()
        runs.append(runner.report_json())
    assert runs[0] == runs[1]
    import json

    report = json.loads(runs[0])
    assert report["violations"] == []
    assert report["master_faults"] is True
    # The program actually failed the control plane.
    assert report["master"]["promotions"] >= 1
