"""Failure injection: crashes, WAL recovery, node failures, ACG loss."""

import pytest

from repro.cluster import PropellerService
from repro.cluster.index_node import IndexNode
from repro.cluster.master import MasterNode
from repro.core.partitioner import PartitioningPolicy
from repro.errors import NodeDown
from repro.indexstructures import IndexKind
from repro.query.planner import IndexSpec
from repro.sim.clock import SimClock
from repro.sim.machine import Cluster, Machine
from repro.sim.rpc import RpcNetwork


def build(nodes=2):
    service = PropellerService(
        num_index_nodes=nodes,
        policy=PartitioningPolicy(split_threshold=200, cluster_target=50))
    client = service.make_client()
    client.create_index("by_size", IndexKind.BTREE, ["size"])
    return service, client


def populate(service, client, n=60):
    vfs = service.vfs
    vfs.mkdir("/d")
    for i in range(n):
        vfs.write_file(f"/d/f{i:03d}", 100 + i, pid=1)
        client.index_path(f"/d/f{i:03d}", pid=1)
    client.flush_updates()


def test_index_node_crash_then_wal_recovery():
    """Acknowledged-but-uncommitted updates survive a crash via the WAL."""
    service, client = build(nodes=1)
    populate(service, client, n=40)
    node = service.index_nodes["in1"]
    pending = len(node.cache)
    assert pending > 0
    # Crash: lose the in-memory cache, keep the WAL bytes.
    wal_bytes = bytearray(node.wal._buffer)
    replacement = IndexNode("in1-reborn", Machine(SimClock()))
    replacement.handle_create_index(IndexSpec("by_size", IndexKind.BTREE, ("size",)))
    replacement.wal._buffer = wal_bytes
    recovered = replacement.recover_from_wal()
    assert recovered == 40
    total = sum(r.file_count for r in replacement.replicas.values())
    assert total == 40


def test_torn_wal_tail_loses_only_last_record():
    service, client = build(nodes=1)
    # Legacy per-update records: one torn frame loses exactly one update.
    service.index_nodes["in1"].group_commit = False
    populate(service, client, n=10)
    node = service.index_nodes["in1"]
    node.wal.simulate_torn_tail(5)
    replacement = IndexNode("r", Machine(SimClock()))
    replacement.handle_create_index(IndexSpec("by_size", IndexKind.BTREE, ("size",)))
    replacement.wal._buffer = bytearray(node.wal._buffer)
    assert replacement.recover_from_wal() == 9


def test_torn_wal_tail_drops_whole_batch_record():
    """Group commit makes the WAL unit the batch: a torn tail can only
    drop whole batch records, never leave a partially-applied envelope."""
    service, client = build(nodes=1)
    populate(service, client, n=10)  # one flush -> one batch record
    node = service.index_nodes["in1"]
    assert node.wal.fsyncs == 1
    node.wal.simulate_torn_tail(5)
    replacement = IndexNode("r", Machine(SimClock()))
    replacement.handle_create_index(IndexSpec("by_size", IndexKind.BTREE, ("size",)))
    replacement.wal._buffer = bytearray(node.wal._buffer)
    # The torn frame was the whole 10-update envelope: recovery sees
    # none of it (atomic loss), rather than 9 of 10 (partial apply).
    assert replacement.recover_from_wal() == 0
    assert replacement.wal.replay_dropped == 1


def test_search_degrades_when_node_down():
    """A dead Index Node degrades the answer instead of failing it: the
    surviving legs' paths come back, and the verdict names exactly which
    partitions (and which node) the answer is missing."""
    service, client = build(nodes=2)
    populate(service, client, n=60)
    full = client.search("size>0")
    # The search fans out to every *placed* partition (the Master no
    # longer tracks per-file membership), so every partition routed to
    # the dead node is reported unreachable.
    dead_partitions = sorted(
        p.partition_id for p in service.master.partitions.partitions()
        if p.node == "in1")
    service.index_nodes["in1"].endpoint.fail()
    answer = client.search_detailed("size>0")
    assert answer.degraded
    assert answer.unreachable_nodes == ["in1"]
    assert answer.unreachable_partitions == dead_partitions
    assert set(answer.paths) <= set(full)
    assert len(answer.paths) < len(full)


def test_recovered_node_serves_again():
    service, client = build(nodes=2)
    populate(service, client, n=60)
    want = client.search("size>0")
    service.index_nodes["in1"].endpoint.fail()
    service.index_nodes["in1"].endpoint.recover()
    assert client.search("size>0") == want


def test_master_checkpoint_restore_preserves_routing():
    """MN metadata is periodically flushed to shared storage; a restored
    MN routes identically."""
    service, client = build(nodes=2)
    populate(service, client, n=80)
    records = service.master.checkpoint()
    cluster2 = Cluster(["mn2"])
    restored = MasterNode.restore(cluster2["mn2"], RpcNetwork(cluster2.network),
                                  records, list(service.master.index_nodes))
    for _, inode in service.vfs.namespace.files():
        assert restored.partitions.partition_of(inode.ino) == \
            service.master.partitions.partition_of(inode.ino)


def test_acg_loss_does_not_affect_search_correctness():
    """Propeller's weak ACG consistency: dropping a client's cached ACG
    loses placement quality, never result accuracy."""
    service, client = build(nodes=2)
    vfs = service.vfs
    vfs.mkdir("/d")
    for i in range(30):
        vfs.write_file(f"/d/f{i}", 50 + i, pid=1)
        client.index_path(f"/d/f{i}", pid=1)
    client.flush_updates()
    # Simulate losing the client-side ACG before flush.
    client.access_manager.drain()
    client.flush_acg()   # flushes an empty graph
    got = client.search("size>0")
    assert got == sorted(p for p, _ in vfs.namespace.files())


def test_duplicate_index_updates_are_idempotent():
    service, client = build(nodes=1)
    vfs = service.vfs
    vfs.mkdir("/d")
    vfs.write_file("/d/f", 100, pid=1)
    for _ in range(5):
        client.index_path("/d/f", pid=1)
    client.flush_updates()
    assert client.search("size==100") == ["/d/f"]
    assert service.total_indexed_files() == 1


def test_cache_commit_order_preserved_for_same_file():
    """Later updates win: re-upsert then delete leaves nothing behind."""
    service, client = build(nodes=1)
    vfs = service.vfs
    vfs.mkdir("/d")
    vfs.write_file("/d/f", 100, pid=1)
    client.index_path("/d/f", pid=1)
    inode = vfs.stat("/d/f")
    client.delete_path_index(inode.ino)
    client.flush_updates()
    assert client.search("size>0") == []
