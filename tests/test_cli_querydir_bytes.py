"""CLI, VFS byte content, and namespace-integrated query directories."""

import io
import sys

import pytest

from repro.cli import main
from repro.cluster import PropellerService
from repro.errors import QueryError
from repro.fs.vfs import OpenMode, VirtualFileSystem
from repro.indexstructures import IndexKind
from repro.sim.clock import SimClock


# -- VFS byte content --------------------------------------------------------

def test_write_read_bytes_roundtrip():
    vfs = VirtualFileSystem(SimClock())
    vfs.mkdir("/s")
    vfs.write_bytes("/s/blob", b"hello world")
    assert vfs.read_bytes("/s/blob") == b"hello world"
    assert vfs.stat("/s/blob").size == 11


def test_write_bytes_replaces_content():
    vfs = VirtualFileSystem(SimClock())
    vfs.write_bytes("/f", b"aaaa")
    vfs.write_bytes("/f", b"bb")
    assert vfs.read_bytes("/f") == b"bb"
    assert vfs.stat("/f").size == 2


def test_size_only_write_invalidates_bytes():
    vfs = VirtualFileSystem(SimClock())
    vfs.write_bytes("/f", b"content")
    fd = vfs.open("/f", OpenMode.WRITE)
    vfs.write(fd, 100)
    vfs.close(fd)
    assert vfs.read_bytes("/f") == b""       # content no longer known
    assert vfs.stat("/f").size == 107


def test_read_bytes_of_size_only_file_is_empty():
    vfs = VirtualFileSystem(SimClock())
    vfs.write_file("/f", 4096)
    assert vfs.read_bytes("/f") == b""


def test_system_pids_invisible_to_access_manager():
    from repro.fs.interceptor import FileAccessManager

    vfs = VirtualFileSystem(SimClock())
    fam = FileAccessManager()
    vfs.add_observer(fam)
    vfs.write_bytes("/checkpoint", b"x", pid=-1)
    vfs.write_file("/user", 10, pid=5)
    assert fam.peek().vertex_count == 1


# -- query directories through the VFS -----------------------------------------

def make_service():
    service = PropellerService(num_index_nodes=2)
    client = service.make_client()
    client.create_index("by_size", IndexKind.BTREE, ["size"])
    vfs = service.vfs
    vfs.mkdir("/data")
    vfs.write_file("/data/big.bin", 64 * 1024**2, pid=1)
    vfs.write_file("/data/small.bin", 10, pid=1)
    client.index_paths(["/data/big.bin", "/data/small.bin"], pid=1)
    client.flush_updates()
    return service, client


def test_readdir_query_directory_runs_search():
    service, _ = make_service()
    assert service.vfs.readdir("/data/?size>16m") == ["/data/big.bin"]


def test_readdir_query_directory_scopes_to_prefix():
    service, client = make_service()
    service.vfs.mkdir("/other")
    service.vfs.write_file("/other/huge", 64 * 1024**2, pid=1)
    client.index_path("/other/huge", pid=1)
    assert service.vfs.readdir("/data/?size>16m") == ["/data/big.bin"]


def test_readdir_plain_directory_still_lists():
    service, _ = make_service()
    assert service.vfs.readdir("/data") == ["big.bin", "small.bin"]


def test_readdir_query_without_handler_raises():
    vfs = VirtualFileSystem(SimClock())
    with pytest.raises(QueryError):
        vfs.readdir("/x/?size>1")


# -- CLI ---------------------------------------------------------------------------

def run_cli(argv, capsys):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_cli_demo(capsys):
    code, out, _ = run_cli(["demo", "--nodes", "2", "--files", "300"], capsys)
    assert code == 0
    assert "index node" in out
    assert "size>16m" in out
    assert "node loads" in out


def test_cli_query_finds_files(capsys):
    code, out, _ = run_cli(
        ["query", "size>16m", "--files", "300", "--nodes", "1", "--limit", "3"],
        capsys)
    assert code == 0
    assert "matches in" in out


def test_cli_query_bad_syntax(capsys):
    code, _, err = run_cli(["query", "size >", "--files", "10"], capsys)
    assert code == 2
    assert "error" in err


def test_cli_partition_app(capsys):
    code, out, _ = run_cli(["partition", "--app", "git", "--k", "3"], capsys)
    assert code == 0
    assert "ACG from git" in out
    assert "3-way partition" in out
    assert "cut weight" in out


def test_cli_partition_unknown_app(capsys):
    code, _, err = run_cli(["partition", "--app", "emacs"], capsys)
    assert code == 2
    assert "unknown app" in err


def test_cli_partition_from_trace_file(tmp_path, capsys):
    trace = tmp_path / "build.trace"
    trace.write_text(
        "# synthetic\n"
        "7 r /a.c 0.0\n7 r /a.h 1.0\n7 w /a.o 2.0\n"
        "8 r /b.c 3.0\n8 w /b.o 4.0\n")
    code, out, _ = run_cli(["partition", "--trace", str(trace)], capsys)
    assert code == 0
    assert "5 files" in out


def test_cli_results_missing_dir(tmp_path, capsys):
    code, _, err = run_cli(["results", "--dir", str(tmp_path / "nope")], capsys)
    assert code == 2


def test_cli_results_prints_tables(tmp_path, capsys):
    (tmp_path / "x.txt").write_text("Table X\nrow 1\n")
    code, out, _ = run_cli(["results", "--dir", str(tmp_path)], capsys)
    assert code == 0
    assert "Table X" in out
