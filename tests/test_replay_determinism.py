"""Trace replay against a live service, and whole-system determinism."""

import pytest

from repro.cluster import PropellerService
from repro.core.partitioner import PartitioningPolicy
from repro.core.trace import AccessEvent
from repro.indexstructures import IndexKind
from repro.workloads.apps import THRIFT_SPEC, CompileApplication, scaled_spec
from repro.workloads.replay import replay_trace


def build(threshold=1000):
    service = PropellerService(
        num_index_nodes=2,
        policy=PartitioningPolicy(split_threshold=threshold, cluster_target=100))
    client = service.make_client()
    client.create_index("by_size", IndexKind.BTREE, ["size"])
    client.create_index("by_kw", IndexKind.HASH, ["keyword"])
    return service, client


def ev(pid, fid, mode, t):
    return AccessEvent(pid=pid, file_id=fid,
                       read="r" in mode, write="w" in mode, t_open=t)


def test_replay_creates_files_and_indexes_writes():
    service, client = build()
    events = [ev(1, 0, "r", 0.0), ev(1, 1, "r", 1.0), ev(1, 2, "w", 2.0)]
    stats = replay_trace(service, client, events,
                         path_of=lambda f: f"/t/file{f}")
    assert stats.events == 3
    assert stats.files_created == 3
    assert stats.reads == 2
    assert stats.index_updates >= 3
    assert stats.processes == 1
    assert service.vfs.namespace.file_count == 3


def test_replay_repeated_writes_append():
    service, client = build()
    events = [ev(1, 0, "w", 0.0), ev(1, 0, "w", 1.0), ev(1, 0, "w", 2.0)]
    stats = replay_trace(service, client, events,
                         path_of=lambda f: "/t/out", write_bytes=100)
    assert service.vfs.stat("/t/out").size == 300
    assert stats.writes == 2          # first write was the create


def test_replay_builds_same_acg_as_generator():
    service, client = build()
    app = CompileApplication(scaled_spec(THRIFT_SPEC, 0.15))
    replay_trace(service, client, app.trace(), app.path_of)
    reference = app.build_acg()
    # The service-side ACGs (union over replicas) carry the same total
    # causality weight as the offline-built graph.
    total_weight = sum(replica.graph.total_weight
                       for node in service.index_nodes.values()
                       for replica in node.replicas.values())
    assert total_weight == reference.total_weight


def test_replay_searchable_afterwards():
    service, client = build()
    app = CompileApplication(scaled_spec(THRIFT_SPEC, 0.1))
    stats = replay_trace(service, client, app.trace(), app.path_of)
    got = client.search("size>0")
    assert len(got) == service.vfs.namespace.file_count
    assert stats.index_updates > 0


def test_replay_without_indexing():
    service, client = build()
    events = [ev(1, 0, "w", 0.0)]
    stats = replay_trace(service, client, events,
                         path_of=lambda f: "/t/x", index_on_write=False)
    assert stats.index_updates == 0
    assert client.search("size>0") == []


def test_replay_colocates_compile_outputs():
    service, client = build(threshold=5000)
    app = CompileApplication(scaled_spec(THRIFT_SPEC, 0.2))
    replay_trace(service, client, app.trace(), app.path_of)
    partitions = set()
    for unit in range(10):
        ino = service.vfs.stat(app.path_of(app.object_ids[unit])).ino
        partitions.add(service.master.partitions.partition_of(ino))
    assert len(partitions) <= 2


# -- determinism ---------------------------------------------------------------------

def run_whole_workload():
    service, client = build()
    app = CompileApplication(scaled_spec(THRIFT_SPEC, 0.1))
    replay_trace(service, client, app.trace(), app.path_of)
    service.master.poll_heartbeats()
    results = client.search("size>2000")
    return service.clock.now(), tuple(results), service.acg_count()


def test_whole_system_is_deterministic():
    """Two identical runs produce identical virtual times, results and
    partition counts — no hidden dependence on set/dict iteration order
    or the process hash seed."""
    assert run_whole_workload() == run_whole_workload()
