"""Spectral bisection baseline."""

import pytest

from repro.core.metis import cut_of
from repro.core.spectral import fiedler_vector, spectral_bisect


def two_cliques(k):
    adj = {i: {} for i in range(2 * k)}
    for base in (0, k):
        for i in range(base, base + k):
            for j in range(base, base + k):
                if i != j:
                    adj[i][j] = 10
    adj[k - 1][k] = 1
    adj[k][k - 1] = 1
    return adj


def test_two_cliques_split_at_bridge_small():
    adj = two_cliques(6)
    result = spectral_bisect(adj)
    assert result.cut_weight == 1
    assert result.side_a | result.side_b == set(adj)


def test_two_cliques_split_at_bridge_large():
    # > 64 vertices exercises the sparse Lanczos path.
    adj = two_cliques(40)
    result = spectral_bisect(adj)
    assert result.cut_weight == 1


def test_path_graph_splits_in_middle():
    n = 20
    adj = {i: {} for i in range(n)}
    for i in range(n - 1):
        adj[i][i + 1] = 1
        adj[i + 1][i] = 1
    result = spectral_bisect(adj)
    assert result.cut_weight == 1
    # The two halves are the two ends of the path.
    assert max(result.side_a) < min(result.side_b) or max(result.side_b) < min(result.side_a)


def test_single_vertex():
    result = spectral_bisect({1: {}})
    assert result.side_a == {1}
    assert result.cut_weight == 0


def test_two_vertices():
    adj = {1: {2: 4}, 2: {1: 4}}
    result = spectral_bisect(adj)
    assert result.cut_weight == 4


def test_fiedler_vector_signs_separate_cliques():
    adj = two_cliques(5)
    fiedler = fiedler_vector(adj)
    vertices = sorted(adj)
    signs = {v: fiedler[i] > 0 for i, v in enumerate(vertices)}
    left = {v for v in vertices if signs[v]}
    assert left in ({0, 1, 2, 3, 4}, {5, 6, 7, 8, 9})


def test_balance_is_half():
    adj = two_cliques(10)
    result = spectral_bisect(adj)
    assert result.balance == pytest.approx(0.5)
