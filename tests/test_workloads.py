"""Workload generators: Table I sets, compile apps, datasets, streams."""

import pytest

from repro.core.partitioner import PartitioningPolicy, partition_components
from repro.fs.vfs import VirtualFileSystem
from repro.sim.clock import SimClock
from repro.workloads.apps import (
    GIT_SPEC,
    LINUX_SPEC,
    TABLE1_OVERLAPS,
    TABLE1_TOTALS,
    THRIFT_SPEC,
    CompileApplication,
    CompileAppSpec,
    scaled_spec,
    table1_file_sets,
    table1_overlap_matrix,
)
from repro.workloads.datasets import APP_TEMPLATES, populate_app_tree, populate_namespace
from repro.workloads.mixed import MixedWorkloadConfig, mixed_stream
from repro.workloads.tracegen import (
    grouped_update_requests,
    partition_files,
    random_update_requests,
)


# -- Table I ------------------------------------------------------------------

def test_table1_totals_exact():
    sets = table1_file_sets()
    for name, total in TABLE1_TOTALS.items():
        assert len(sets[name]) == total


def test_table1_pairwise_overlaps_exact():
    sets = table1_file_sets()
    for pair, count in TABLE1_OVERLAPS.items():
        a, b = sorted(pair)
        assert len(sets[a] & sets[b]) == count


def test_table1_matrix_shape():
    rows = table1_overlap_matrix(table1_file_sets())
    assert len(rows) == 4
    assert rows[0][1] == "N/A"
    assert "31 (1.36%)" in rows[0]  # apt-get row, firefox column


# -- compile applications ------------------------------------------------------------

def test_spec_vertex_counts_match_table2():
    assert THRIFT_SPEC.vertex_count == 775
    assert GIT_SPEC.vertex_count == 1018
    assert LINUX_SPEC.vertex_count == 62331


def test_spec_validation():
    with pytest.raises(ValueError):
        CompileAppSpec("x", units=1, headers=5, groups=2, headers_per_unit=1)
    with pytest.raises(ValueError):
        CompileAppSpec("x", units=5, headers=1, groups=2, headers_per_unit=1)
    with pytest.raises(ValueError):
        CompileAppSpec("x", units=5, headers=5, groups=1, headers_per_unit=1,
                       rebuilds=0)


def test_thrift_acg_matches_paper_shape():
    graph = CompileApplication(THRIFT_SPEC).build_acg()
    assert graph.vertex_count == 775
    # Edge and weight totals within 5% of Table II (8698 / 55454).
    assert abs(graph.edge_count - 8698) / 8698 < 0.05
    assert abs(graph.total_weight - 55454) / 55454 < 0.05
    # Figure 7: disconnected components.
    assert len(graph.connected_components()) == 2


def test_git_acg_matches_paper_shape():
    graph = CompileApplication(GIT_SPEC).build_acg()
    assert graph.vertex_count == 1018
    assert abs(graph.edge_count - 2925) / 2925 < 0.08
    assert abs(graph.total_weight - 4162) / 4162 < 0.08


def test_components_are_per_group():
    spec = CompileAppSpec("t", units=20, headers=10, groups=4,
                          headers_per_unit=2)
    graph = CompileApplication(spec).build_acg()
    assert len(graph.connected_components()) == 4


def test_trace_is_time_ordered_per_process():
    app = CompileApplication(CompileAppSpec("t", units=5, headers=5, groups=1,
                                            headers_per_unit=2))
    events = app.trace()
    by_pid = {}
    for event in events:
        by_pid.setdefault(event.pid, []).append(event.t_open)
    for times in by_pid.values():
        assert times == sorted(times)


def test_scaled_spec_shrinks():
    small = scaled_spec(LINUX_SPEC, 0.1)
    assert small.units == 2800
    assert small.vertex_count < LINUX_SPEC.vertex_count
    assert scaled_spec(LINUX_SPEC, 1.0) is LINUX_SPEC


def test_path_of_covers_all_ids():
    app = CompileApplication(THRIFT_SPEC)
    paths = {app.path_of(i) for i in range(app.file_count)}
    assert len(paths) == app.file_count


def test_acg_partitioning_of_thrift_yields_small_cut():
    """End-to-end Section III claim: partitioning the Thrift ACG by
    components + bisection keeps inter-partition weight tiny."""
    graph = CompileApplication(THRIFT_SPEC).build_acg()
    policy = PartitioningPolicy(split_threshold=400, cluster_target=50)
    partitions = partition_components(graph, policy)
    assert sum(len(p) for p in partitions) == graph.vertex_count
    for p in partitions:
        assert len(p) <= 400


# -- dataset builders ---------------------------------------------------------------------

def test_populate_app_tree_counts():
    vfs = VirtualFileSystem(SimClock())
    template = APP_TEMPLATES["firefox"]
    paths = populate_app_tree(vfs, "/apps/firefox", template)
    assert len(paths) == template.files
    assert vfs.namespace.file_count == template.files


def test_populate_namespace_exact_total():
    vfs = VirtualFileSystem(SimClock())
    paths = populate_namespace(vfs, 2345)
    assert len(paths) == 2345
    assert vfs.namespace.file_count == 2345


def test_populate_namespace_has_big_files():
    vfs = VirtualFileSystem(SimClock())
    populate_namespace(vfs, 3000)
    big = [p for p, i in vfs.namespace.files() if i.size > 16 * 1024**2]
    assert big  # size>16MB queries must have non-trivial answers


def test_populate_deterministic_for_seed():
    vfs_a = VirtualFileSystem(SimClock())
    vfs_b = VirtualFileSystem(SimClock())
    populate_namespace(vfs_a, 500, seed=7)
    populate_namespace(vfs_b, 500, seed=7)
    sizes_a = sorted(i.size for _, i in vfs_a.namespace.files())
    sizes_b = sorted(i.size for _, i in vfs_b.namespace.files())
    assert sizes_a == sizes_b


# -- update streams ------------------------------------------------------------------------

def test_partition_files():
    groups = partition_files(list(range(10)), 3)
    assert groups == [[0, 1, 2], [3, 4, 5], [6, 7, 8], [9]]
    with pytest.raises(ValueError):
        partition_files([1], 0)


def test_random_update_requests_deterministic():
    files = list(range(100))
    assert random_update_requests(files, 50, seed=1) == \
        random_update_requests(files, 50, seed=1)
    assert len(random_update_requests(files, 50)) == 50


def test_grouped_update_requests_confined():
    groups = partition_files(list(range(100)), 10)
    stream = grouped_update_requests(groups, 200, touched_groups=3, seed=2)
    touched = {f // 10 for f in stream}
    assert len(touched) <= 3
    with pytest.raises(ValueError):
        grouped_update_requests(groups, 10, touched_groups=0)
    with pytest.raises(ValueError):
        grouped_update_requests(groups, 10, touched_groups=99)


# -- mixed stream -----------------------------------------------------------------------------

def test_mixed_stream_structure():
    config = MixedWorkloadConfig(n_updates=2048, search_every=1024,
                                 commit_every=500)
    ops = list(mixed_stream([f"/f{i}" for i in range(10)], config))
    kinds = [k for k, _ in ops]
    assert kinds.count("update") == 2048
    assert kinds.count("search") == 2
    assert kinds.count("commit") == 4
    # A search at position 1024 comes after exactly 1024 updates.
    updates_before_first_search = kinds.index("search")
    assert kinds[:updates_before_first_search].count("update") == 1024


def test_mixed_stream_requires_paths():
    with pytest.raises(ValueError):
        list(mixed_stream([]))
