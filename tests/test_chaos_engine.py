"""The chaos subsystem: seeded fault injection, schedule generation,
the invariant checker's ledger, and the runner's determinism contract."""

import random

import pytest

from repro.chaos import (AckLedger, ChaosRunner, ExcuseWindow, FaultInjector,
                         build_schedule, run_chaos)
from repro.obs.metrics import MetricsRegistry


# -- FaultInjector ----------------------------------------------------------------


class TestFaultInjector:
    def test_quiescent_by_default(self):
        faults = FaultInjector(seed=1)
        assert faults.quiescent
        assert faults.message_fate("in1", "search") == "ok"
        assert faults.extra_latency_s("in1") == 0.0
        assert not faults.disk_read_fails()

    def test_same_seed_same_fates(self):
        a, b = FaultInjector(seed=9), FaultInjector(seed=9)
        for f in (a, b):
            f.set_message_faults(drop=0.3, duplicate=0.2, delay=0.1)
        fates_a = [a.message_fate("in1", "m") for _ in range(200)]
        fates_b = [b.message_fate("in1", "m") for _ in range(200)]
        assert fates_a == fates_b
        assert "drop" in fates_a and "duplicate" in fates_a

    def test_immune_target_never_faulted_but_consumes_draw(self):
        """Immunity must not desynchronize the RNG stream: an immune
        message burns the same single draw a faultable one would."""
        a = FaultInjector(seed=9, immune_targets={"master"})
        b = FaultInjector(seed=9)
        a.set_message_faults(drop=1.0)
        b.set_message_faults(drop=1.0)
        assert a.message_fate("master", "route") == "ok"
        assert b.message_fate("master", "route") == "drop"
        # Streams stay aligned after the immune draw.
        a.set_message_faults(drop=0.5)
        b.set_message_faults(drop=0.5)
        assert ([a.message_fate("in1", "m") for _ in range(50)]
                == [b.message_fate("in1", "m") for _ in range(50)])

    def test_slow_node_and_clear(self):
        faults = FaultInjector(seed=0)
        faults.slow_node("in2", 0.25)
        assert faults.extra_latency_s("in2") == 0.25
        assert faults.extra_latency_s("in1") == 0.0
        faults.clear_message_faults()
        assert faults.extra_latency_s("in2") == 0.0
        assert faults.quiescent

    def test_disk_errors_and_counters(self):
        reg = MetricsRegistry()
        faults = FaultInjector(seed=3, registry=reg)
        faults.set_disk_error_rate(1.0)
        assert faults.disk_read_fails()
        assert faults.disk_errors == 1
        assert reg.value("chaos.disk_errors") == 1
        faults.set_disk_error_rate(0.0)
        assert not faults.disk_read_fails()

    def test_summary_is_plain_data(self):
        faults = FaultInjector(seed=0)
        faults.set_message_faults(drop=1.0)
        faults.message_fate("in1", "m")
        summary = faults.summary()
        assert summary["dropped"] == 1


# -- schedules --------------------------------------------------------------------


class TestSchedule:
    def test_same_seed_same_program(self):
        a = build_schedule(seed=4, steps=40, nodes=3)
        b = build_schedule(seed=4, steps=40, nodes=3)
        assert a == b

    def test_different_seed_differs(self):
        assert (build_schedule(seed=4, steps=40, nodes=3)
                != build_schedule(seed=5, steps=40, nodes=3))

    def test_opens_with_data(self):
        program = build_schedule(seed=0, steps=10, nodes=2)
        assert len(program) == 10
        assert program[0].op == "create_files"
        assert program[0].params["count"] >= 8

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            build_schedule(seed=0, steps=0, nodes=2)
        with pytest.raises(ValueError):
            build_schedule(seed=0, steps=5, nodes=0)

    def test_node_ordinals_in_range(self):
        for step in build_schedule(seed=1, steps=200, nodes=3):
            if "node" in step.params:
                assert 0 <= step.params["node"] < 3


# -- the ack ledger's excuse rules ----------------------------------------------


class TestAckLedger:
    def test_excused_only_inside_window_and_after_checkpoint(self):
        ledger = AckLedger()
        ledger.created(1, "/a", 0.0)
        ledger.acked(1, 10.0, partition=5)
        assert not ledger.excused_missing(ledger.files[1])
        # Failover of partition 5 whose victim checkpointed at t=4:
        # an ack at t=10 postdates the checkpoint and is excused.
        ledger.add_window({5}, after_t=4.0, reason="failover_of_in1")
        assert ledger.excused_missing(ledger.files[1])

    def test_ack_before_checkpoint_not_excused(self):
        """An ack the victim's checkpoint already covered is NOT excused:
        the adopter restored that checkpoint, so the file must be live."""
        ledger = AckLedger()
        ledger.created(1, "/a", 0.0)
        ledger.acked(1, 2.0, partition=5)
        ledger.add_window({5}, after_t=4.0, reason="failover_of_in1")
        assert not ledger.excused_missing(ledger.files[1])

    def test_wal_tail_excuse(self):
        ledger = AckLedger()
        ledger.created(7, "/b", 0.0)
        ledger.acked(7, 1.0, partition=2)
        ledger.excuse_wal_tail([7])
        assert ledger.excused_missing(ledger.files[7])


# -- the runner's determinism contract --------------------------------------------


class TestChaosRunner:
    def test_same_seed_bit_identical_reports(self):
        a = ChaosRunner(5, steps=25, nodes=3)
        b = ChaosRunner(5, steps=25, nodes=3)
        ra, rb = a.run(), b.run()
        assert a.report_json() == b.report_json()
        assert ra["violations"] == []
        assert rb["violations"] == []

    def test_different_seeds_diverge(self):
        a = ChaosRunner(5, steps=25, nodes=3)
        b = ChaosRunner(6, steps=25, nodes=3)
        a.run(), b.run()
        assert a.report_json() != b.report_json()

    def test_fixed_seeds_hold_invariants(self):
        for seed in (0, 1, 2, 3):
            report = run_chaos(seed=seed, steps=30, nodes=3)
            assert report["violations"] == [], f"seed {seed}"

    def test_report_shape(self):
        report = run_chaos(seed=7, steps=20, nodes=3)
        for key in ("seed", "steps", "nodes", "virtual_time_s",
                    "files_created", "counters", "violations",
                    "injected", "live_nodes"):
            assert key in report
        assert report["seed"] == 7
        assert report["files_created"] > 0

    def test_batching_on_off_same_outcome_under_faults(self):
        """The batched hot path (group-commit WAL, bulk apply, coalesced
        client envelopes) must be invisible to the fault model: one RF=2
        schedule run both ways holds every invariant, and the cluster
        walks through the *same* failover history — batching changes
        costs, never outcomes."""
        on = ChaosRunner(seed=3, steps=40, nodes=3, rf=2, batching=True)
        off = ChaosRunner(seed=3, steps=40, nodes=3, rf=2, batching=False)
        ron, roff = on.run(), off.run()
        assert ron["violations"] == []
        assert roff["violations"] == []
        jon = on.service.journal.digest()["by_type"]
        joff = off.service.journal.digest()["by_type"]
        keys = [k for k in set(jon) | set(joff)
                if k.startswith("failover.")]
        for key in sorted(keys):
            assert jon.get(key, 0) == joff.get(key, 0), key
        assert (ron["counters"].get("cluster.master.failovers", 0)
                == roff["counters"].get("cluster.master.failovers", 0))

    def test_exercises_faults(self):
        """A long-enough program actually injects faults — the engine is
        not vacuously green."""
        report = run_chaos(seed=3, steps=50, nodes=3)
        injected = report["injected"]
        assert injected["dropped"] + injected["delayed"] + injected["duplicated"] > 0
        assert report["counters"].get("cluster.master.failovers", 0) >= 1


# -- CLI --------------------------------------------------------------------------


class TestChaosCli:
    def test_chaos_smoke_exits_zero(self, capsys):
        from repro.cli import main

        assert main(["chaos", "--seed", "0", "--steps", "15"]) == 0
        out = capsys.readouterr().out
        assert "deterministic" in out
        assert "0 invariant violations" in out

    def test_chaos_json_report(self, capsys):
        import json

        from repro.cli import main

        assert main(["chaos", "--seed", "1", "--steps", "12", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["seed"] == 1
        assert report["violations"] == []
