"""Model-based testing of cluster *operations*.

Where ``test_stateful_service`` interleaves data-path operations, this
machine interleaves the control plane — splits, migrations, merges,
rebalancing, checkpoints and node failovers — with live updates and
searches, asserting that no maintenance operation can ever change what a
search returns.
"""

import random

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.cluster import PropellerService
from repro.core.partitioner import PartitioningPolicy
from repro.indexstructures import IndexKind


class OperationsMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self) -> None:
        self.service = PropellerService(
            num_index_nodes=4,
            policy=PartitioningPolicy(split_threshold=25, cluster_target=8))
        self.client = self.service.make_client(batch_size=4)
        self.client.create_index("by_size", IndexKind.BTREE, ["size"])
        self.service.vfs.mkdir("/d")
        self.model = {}
        self.counter = 0
        self.rng = random.Random(0)

    # -- data plane ---------------------------------------------------------

    @rule(count=st.integers(1, 12), size=st.integers(1, 10_000))
    def add_files(self, count, size):
        pid = 1 + self.counter // 10
        for _ in range(count):
            path = f"/d/f{self.counter:05d}"
            self.counter += 1
            self.service.vfs.write_file(path, size + self.counter, pid=pid)
            self.client.index_path(path, pid=pid)
            self.model[path] = size + self.counter

    @rule()
    def delete_one(self):
        if not self.model:
            return
        path = sorted(self.model)[self.rng.randrange(len(self.model))]
        self.service.vfs.unlink(path, pid=1)
        del self.model[path]

    # -- control plane ----------------------------------------------------------

    @rule()
    def heartbeats_and_splits(self):
        self.service.master.poll_heartbeats()

    @rule()
    def rebalance(self):
        self.service.master.rebalance(tolerance=0.3)

    @rule()
    def migrate_random_partition(self):
        master = self.service.master
        placed = [p for p in master.partitions.partitions()
                  if p.files and p.node]
        if not placed:
            return
        partition = placed[self.rng.randrange(len(placed))]
        target = master.index_nodes[self.rng.randrange(len(master.index_nodes))]
        if target != partition.node:
            master.migrate_partition(partition.partition_id, target)

    @rule()
    def merge_smalls(self):
        self.service.master.merge_small_partitions(min_size=4)

    @rule()
    def checkpoint(self):
        self.service._checkpoint_all()

    @rule()
    def fail_and_recover_a_node(self):
        master = self.service.master
        if len(master.index_nodes) <= 2:
            return
        # Checkpoint first so failover is lossless in this machine.
        self.service.commit_all()
        self.service._checkpoint_all()
        victim = master.index_nodes[self.rng.randrange(len(master.index_nodes))]
        self.service.fail_node(victim)
        self.service.failover(victim)

    @rule()
    def pass_time(self):
        self.service.advance(6.0)

    # -- the one property that matters ----------------------------------------------

    @rule(threshold=st.integers(0, 20_000))
    def search_matches_model(self, threshold):
        got = set(self.client.search(f"size>{threshold}"))
        want = {p for p, size in self.model.items() if size > threshold}
        assert got == want, sorted(got ^ want)[:5]

    @invariant()
    def loads_account_for_every_file(self):
        if not hasattr(self, "service"):
            return
        master = self.service.master
        total = sum(master.partitions.node_load(n) for n in master.index_nodes)
        mapped = sum(p.size for p in master.partitions.partitions())
        assert total == mapped


TestOperations = OperationsMachine.TestCase
TestOperations.settings = settings(max_examples=10, stateful_step_count=30,
                                   deadline=None)
