"""Exporter round-trips: span trees and registry snapshots must survive
``json.dumps``/``loads`` unchanged, and the fixed-width renderers must
mark errors and format histogram statistics in their own unit."""

import json

import pytest

from repro.obs.export import (
    journal_to_dict,
    journal_to_json,
    registry_to_dict,
    registry_to_json,
    render_journal,
    render_registry,
    render_slo,
    render_span_tree,
    slo_to_dict,
    slo_to_json,
    span_to_dict,
    span_to_json,
)
from repro.obs.journal import EventJournal
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SloSpec, SloTracker
from repro.obs.tracing import Tracer
from repro.sim.clock import SimClock


def build_span_tree():
    clock = SimClock()
    tracer = Tracer(clock)
    with tracer.span("search", query="size>1m") as root:
        with tracer.span("route"):
            clock.charge(0.001)
        with tracer.span("probe", node="in1") as probe:
            clock.charge(0.004)
            probe.record("groups", 3)
        try:
            with tracer.span("probe", node="in2"):
                clock.charge(0.002)
                raise RuntimeError("node down")
        except RuntimeError:
            pass
    return root


class TestSpanRoundTrip:
    def test_json_round_trip_is_lossless(self):
        root = build_span_tree()
        d = span_to_dict(root)
        assert json.loads(span_to_json(root)) == json.loads(
            json.dumps(d, sort_keys=True))
        assert json.loads(json.dumps(d)) == d

    def test_dict_carries_tree_and_error(self):
        d = span_to_dict(build_span_tree())
        assert d["name"] == "search"
        assert d["attributes"] == {"query": "size>1m"}
        children = d["children"]
        assert [c["name"] for c in children] == ["route", "probe", "probe"]
        assert children[1]["metrics"] == {"groups": 3}
        failed = children[2]
        assert failed["status"] == "error"
        assert "node down" in failed["error"]

    def test_render_span_tree_marks_errors(self):
        text = render_span_tree(build_span_tree(), title="q")
        assert "ERROR:" in text and "node down" in text
        assert "  probe" in text        # children indent under the root
        assert "query=size>1m" in text


class TestRegistryRoundTrip:
    def build_registry(self):
        reg = MetricsRegistry()
        reg.counter("cluster.updates").inc(7)
        reg.gauge("cluster.freshness.worst_s").set(1.5)
        h = reg.histogram("cluster.in1.staleness_s", unit="s")
        for v in (0.010, 0.020, 0.500):
            h.observe(v)
        faults = reg.histogram("node.page_faults", unit="count")
        faults.observe(12)
        return reg

    def test_json_round_trip_is_lossless(self):
        reg = self.build_registry()
        d = registry_to_dict(reg)
        assert json.loads(registry_to_json(reg)) == json.loads(
            json.dumps(d, sort_keys=True))

    def test_snapshot_has_every_instrument_once(self):
        reg = self.build_registry()
        d = registry_to_dict(reg)
        assert d["cluster.updates"] == 7
        assert d["cluster.freshness.worst_s"] == 1.5
        assert d["cluster.in1.staleness_s"]["count"] == 3
        assert sorted(d) == sorted(set(d))

    def test_prefix_filters_both_exporters(self):
        reg = self.build_registry()
        d = registry_to_dict(reg, prefix="cluster.")
        assert "node.page_faults" not in d
        assert "cluster.updates" in d
        text = render_registry(reg, prefix="cluster.")
        assert "node.page_faults" not in text

    def test_items_iterates_instruments_with_prefix(self):
        reg = self.build_registry()
        names = [name for name, _ in reg.items("cluster.")]
        assert names == sorted(names)
        assert all(n.startswith("cluster.") for n in names)
        assert len(list(reg.items())) == 4

    def test_render_formats_histograms_per_unit(self):
        text = render_registry(self.build_registry())
        # Second-valued histogram statistics use duration formatting...
        assert "20.00ms" in text       # p50 of the staleness histogram
        # ...while count-valued ones stay plain numbers (no "12.0s").
        assert "12.0s" not in text
        assert "page_faults" in text


class TestJournalRoundTrip:
    def build_journal(self, maxlen=8192):
        clock = SimClock()
        journal = EventJournal(clock, maxlen=maxlen)
        journal.emit("node.crash", node="in2", torn_tail_bytes=17)
        clock.charge(1.0)
        journal.emit("repl.epoch_bump", acg_id=3, repl_epoch=2,
                     reason="promotion", followers=["in1"])
        clock.charge(0.5)
        journal.emit("route.epoch_bump", node="master", acg_id=3,
                     route_epoch=5)
        return journal

    def test_json_round_trip_is_lossless(self):
        journal = self.build_journal()
        d = journal_to_dict(journal)
        assert json.loads(journal_to_json(journal)) == json.loads(
            json.dumps(d, sort_keys=True))
        assert json.loads(json.dumps(d)) == d

    def test_dict_carries_digest_and_ordered_events(self):
        d = journal_to_dict(self.build_journal())
        assert d["digest"]["total"] == 3 and d["digest"]["truncated"] == 0
        assert [e["seq"] for e in d["events"]] == [1, 2, 3]
        assert d["events"][1]["detail"]["reason"] == "promotion"
        # tail= keeps the digest but trims the events.
        tailed = journal_to_dict(self.build_journal(), tail=1)
        assert len(tailed["events"]) == 1
        assert tailed["digest"]["total"] == 3

    def test_truncation_marker_survives_round_trip_and_render(self):
        journal = self.build_journal(maxlen=2)
        d = json.loads(journal_to_json(journal))
        assert d["digest"]["truncated"] == 1
        assert d["digest"]["retained"] == 2
        assert d["digest"]["by_type"]["node.crash"] == 1  # evicted, counted
        text = render_journal(journal, tail=10)
        assert "1 evicted" in text and "3 total" in text

    def test_render_journal_shows_context_and_detail(self):
        text = render_journal(self.build_journal(), title="events")
        assert "repl.epoch_bump" in text
        assert "acg=3" in text and "re=2" in text and "rte=5" in text
        assert "reason=promotion" in text


class TestSloRoundTrip:
    def build_tracker(self):
        clock = SimClock()
        registry = MetricsRegistry()
        spec = SloSpec("lat", "svc.latency_s", target=1.0, budget=0.01,
                       fast_window_s=10.0, slow_window_s=60.0)
        tracker = SloTracker(clock, registry, specs=(spec,))
        hist = registry.histogram("svc.latency_s")
        tracker.sample()
        for _ in range(5):
            hist.observe(4.0)
        clock.charge(1.0)
        tracker.sample()
        return tracker

    def test_json_round_trip_is_lossless(self):
        tracker = self.build_tracker()
        d = slo_to_dict(tracker)
        assert json.loads(slo_to_json(tracker)) == json.loads(
            json.dumps(d, sort_keys=True))
        assert json.loads(json.dumps(d)) == d

    def test_dict_matches_tracker_state(self):
        tracker = self.build_tracker()
        d = slo_to_dict(tracker)
        assert d["breached_now"] == ["lat"]
        assert d["specs"]["lat"]["breaches"] == 1
        assert d["specs"]["lat"]["observed"] == 4.0

    def test_render_slo_marks_breaches(self):
        text = render_slo(self.build_tracker())
        assert "BREACHED" in text
        assert "lat" in text and "burn(fast)" in text
