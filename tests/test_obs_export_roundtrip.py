"""Exporter round-trips: span trees and registry snapshots must survive
``json.dumps``/``loads`` unchanged, and the fixed-width renderers must
mark errors and format histogram statistics in their own unit."""

import json

import pytest

from repro.obs.export import (
    registry_to_dict,
    registry_to_json,
    render_registry,
    render_span_tree,
    span_to_dict,
    span_to_json,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.sim.clock import SimClock


def build_span_tree():
    clock = SimClock()
    tracer = Tracer(clock)
    with tracer.span("search", query="size>1m") as root:
        with tracer.span("route"):
            clock.charge(0.001)
        with tracer.span("probe", node="in1") as probe:
            clock.charge(0.004)
            probe.record("groups", 3)
        try:
            with tracer.span("probe", node="in2"):
                clock.charge(0.002)
                raise RuntimeError("node down")
        except RuntimeError:
            pass
    return root


class TestSpanRoundTrip:
    def test_json_round_trip_is_lossless(self):
        root = build_span_tree()
        d = span_to_dict(root)
        assert json.loads(span_to_json(root)) == json.loads(
            json.dumps(d, sort_keys=True))
        assert json.loads(json.dumps(d)) == d

    def test_dict_carries_tree_and_error(self):
        d = span_to_dict(build_span_tree())
        assert d["name"] == "search"
        assert d["attributes"] == {"query": "size>1m"}
        children = d["children"]
        assert [c["name"] for c in children] == ["route", "probe", "probe"]
        assert children[1]["metrics"] == {"groups": 3}
        failed = children[2]
        assert failed["status"] == "error"
        assert "node down" in failed["error"]

    def test_render_span_tree_marks_errors(self):
        text = render_span_tree(build_span_tree(), title="q")
        assert "ERROR:" in text and "node down" in text
        assert "  probe" in text        # children indent under the root
        assert "query=size>1m" in text


class TestRegistryRoundTrip:
    def build_registry(self):
        reg = MetricsRegistry()
        reg.counter("cluster.updates").inc(7)
        reg.gauge("cluster.freshness.worst_s").set(1.5)
        h = reg.histogram("cluster.in1.staleness_s", unit="s")
        for v in (0.010, 0.020, 0.500):
            h.observe(v)
        faults = reg.histogram("node.page_faults", unit="count")
        faults.observe(12)
        return reg

    def test_json_round_trip_is_lossless(self):
        reg = self.build_registry()
        d = registry_to_dict(reg)
        assert json.loads(registry_to_json(reg)) == json.loads(
            json.dumps(d, sort_keys=True))

    def test_snapshot_has_every_instrument_once(self):
        reg = self.build_registry()
        d = registry_to_dict(reg)
        assert d["cluster.updates"] == 7
        assert d["cluster.freshness.worst_s"] == 1.5
        assert d["cluster.in1.staleness_s"]["count"] == 3
        assert sorted(d) == sorted(set(d))

    def test_prefix_filters_both_exporters(self):
        reg = self.build_registry()
        d = registry_to_dict(reg, prefix="cluster.")
        assert "node.page_faults" not in d
        assert "cluster.updates" in d
        text = render_registry(reg, prefix="cluster.")
        assert "node.page_faults" not in text

    def test_items_iterates_instruments_with_prefix(self):
        reg = self.build_registry()
        names = [name for name, _ in reg.items("cluster.")]
        assert names == sorted(names)
        assert all(n.startswith("cluster.") for n in names)
        assert len(list(reg.items())) == 4

    def test_render_formats_histograms_per_unit(self):
        text = render_registry(self.build_registry())
        # Second-valued histogram statistics use duration formatting...
        assert "20.00ms" in text       # p50 of the staleness histogram
        # ...while count-valued ones stay plain numbers (no "12.0s").
        assert "12.0s" not in text
        assert "page_faults" in text
