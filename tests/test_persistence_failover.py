"""Shared-storage persistence and Index-Node failover."""

import pytest

from repro.cluster import PropellerService
from repro.cluster.persistence import (
    PROPELLER_ROOT,
    checkpoint_replica,
    dump_replica,
    list_checkpoints,
    load_replica_payload,
    read_checkpoint,
    replica_path,
)
from repro.core.partitioner import PartitioningPolicy
from repro.errors import ClusterError, UnknownIndexNode
from repro.indexstructures import IndexKind


def build(nodes=3):
    service = PropellerService(
        num_index_nodes=nodes,
        policy=PartitioningPolicy(split_threshold=500, cluster_target=60))
    client = service.make_client()
    client.create_index("by_size", IndexKind.BTREE, ["size"])
    client.create_index("by_kw", IndexKind.HASH, ["keyword"])
    return service, client


def populate(service, client, n=150):
    vfs = service.vfs
    vfs.mkdir("/d")
    for i in range(n):
        vfs.write_file(f"/d/f{i:03d}", 100 + i, pid=1)
        client.index_path(f"/d/f{i:03d}", pid=1)
    client.flush_updates()
    # Co-locate some causality so ACGs have edges worth persisting.
    client.flush_acg()
    service.commit_all()


def a_replica(service):
    for node in service.index_nodes.values():
        for replica in node.replicas.values():
            if replica.file_count:
                return node, replica
    raise AssertionError("no populated replica")


# -- checkpoint format ----------------------------------------------------------

def test_dump_load_roundtrip():
    service, client = build()
    populate(service, client)
    _, replica = a_replica(service)
    payload = load_replica_payload(dump_replica(replica))
    assert payload["acg_id"] == replica.acg_id
    assert {s.name for s in payload["specs"]} == set(replica.specs)
    assert len(payload["files"]) == replica.file_count
    got_edges = {(u, v, w) for u, v, w in payload["acg_records"] if v != -1}
    assert got_edges == set(replica.graph.edges())


def test_checkpoint_crc_detects_corruption():
    service, client = build()
    populate(service, client)
    _, replica = a_replica(service)
    data = bytearray(dump_replica(replica))
    data[30] ^= 0xFF
    with pytest.raises(ClusterError):
        load_replica_payload(bytes(data))


def test_bad_magic_rejected():
    with pytest.raises(ClusterError):
        load_replica_payload(b"NOPE" + b"\x00" * 32)


def test_checkpoint_files_land_on_shared_vfs():
    service, client = build()
    populate(service, client)
    node, replica = a_replica(service)
    path = checkpoint_replica(service.vfs, node.name, replica)
    assert path == replica_path(node.name, replica.acg_id)
    assert service.vfs.exists(path)
    assert path in list_checkpoints(service.vfs, node.name)
    payload = read_checkpoint(service.vfs, path)
    assert payload["acg_id"] == replica.acg_id


def test_checkpoint_to_shared_covers_all_replicas():
    service, client = build()
    populate(service, client)
    for node in service.index_nodes.values():
        count = node.checkpoint_to_shared()
        assert count == len(node.replicas)
        assert len(list_checkpoints(service.vfs, node.name)) == count


def test_list_checkpoints_empty_for_unknown_node():
    service, _ = build()
    assert list_checkpoints(service.vfs, "ghost") == []


# -- adoption / failover ---------------------------------------------------------

def test_adopt_acg_restores_search_results():
    service, client = build()
    populate(service, client)
    node, replica = a_replica(service)
    path = checkpoint_replica(service.vfs, node.name, replica)
    other = next(n for n in service.index_nodes.values() if n is not node)
    adopted = other.endpoint.dispatch("adopt_acg", path)
    assert adopted == replica.file_count
    twin = other.replica(replica.acg_id)
    assert twin.file_count == replica.file_count
    assert set(twin.specs) == set(replica.specs)


def test_failover_preserves_query_results():
    service, client = build()
    populate(service, client)
    before = client.search("size>0")
    service._checkpoint_all()
    victim = max(service.master.index_nodes,
                 key=service.master.partitions.node_load)
    service.fail_node(victim)
    moved = service.failover(victim)
    assert moved >= 1
    assert victim not in service.master.index_nodes
    assert client.search("size>0") == before


def test_failover_requires_survivors():
    service, client = build(nodes=1)
    populate(service, client, n=20)
    service._checkpoint_all()
    with pytest.raises(ClusterError):
        service.failover("in1")


def test_failover_unknown_node():
    service, _ = build()
    with pytest.raises(UnknownIndexNode):
        service.master.failover("ghost")


def test_detect_failed_nodes_by_heartbeat_age():
    service, client = build()
    populate(service, client, n=20)
    service.master.poll_heartbeats()
    assert service.master.detect_failed_nodes(timeout_s=15) == []
    service.clock.charge(20.0)
    assert set(service.master.detect_failed_nodes(timeout_s=15)) == \
        set(service.master.index_nodes)
    # A fresh round of heartbeats clears the suspicion.
    service.master.poll_heartbeats()
    assert service.master.detect_failed_nodes(timeout_s=15) == []


def test_poll_heartbeats_tolerates_down_node():
    service, client = build()
    populate(service, client, n=20)
    service.fail_node("in1")
    service.master.poll_heartbeats()  # must not raise
    service.clock.charge(20.0)
    assert "in1" in service.master.detect_failed_nodes(timeout_s=15)


def test_updates_after_checkpoint_are_lost_on_failover():
    """Documents the durability boundary: failover restores the last
    checkpoint; post-checkpoint updates lived in the dead node's WAL."""
    service, client = build()
    populate(service, client)
    service._checkpoint_all()
    vfs = service.vfs
    vfs.write_file("/d/late", 10_000, pid=1)
    client.index_path("/d/late", pid=1)
    client.flush_updates()
    service.commit_all()
    # The client placed the update, so its route cache — not the Master's
    # file map — knows which partition holds the late file.
    route = client._file_routes[vfs.stat("/d/late").ino]
    victim = service.master.partitions.get(route).node
    service.fail_node(victim)
    service.failover(victim)
    assert "/d/late" not in client.search("size>0")
