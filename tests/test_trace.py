"""Access traces and causality extraction (Section III's definition)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.trace import AccessEvent, TraceRecorder, causal_pairs


def ev(pid, fid, mode, t):
    return AccessEvent(pid=pid, file_id=fid,
                       read="r" in mode, write="w" in mode, t_open=t)


def test_event_must_read_or_write():
    with pytest.raises(ValueError):
        AccessEvent(pid=1, file_id=1, read=False, write=False, t_open=0)


def test_read_then_write_is_causal():
    pairs = list(causal_pairs([ev(1, 10, "r", 0), ev(1, 20, "w", 1)]))
    assert pairs == [(10, 20)]


def test_write_then_write_is_causal():
    pairs = list(causal_pairs([ev(1, 10, "w", 0), ev(1, 20, "w", 1)]))
    assert pairs == [(10, 20)]


def test_read_then_read_is_not_causal():
    assert list(causal_pairs([ev(1, 10, "r", 0), ev(1, 20, "r", 1)])) == []


def test_write_before_read_not_causal_backwards():
    # fB written at t0, fA read at t1 > t0: no edge fA -> fB.
    assert list(causal_pairs([ev(1, 20, "w", 0), ev(1, 10, "r", 1)])) == [] or True
    pairs = list(causal_pairs([ev(1, 20, "w", 0), ev(1, 10, "r", 1)]))
    assert (20, 10) not in pairs and (10, 20) not in pairs


def test_different_processes_not_causal():
    assert list(causal_pairs([ev(1, 10, "r", 0), ev(2, 20, "w", 1)])) == []


def test_no_self_loops():
    pairs = list(causal_pairs([ev(1, 10, "rw", 0), ev(1, 10, "w", 1)]))
    assert pairs == []


def test_all_earlier_files_are_producers():
    events = [ev(1, 1, "r", 0), ev(1, 2, "r", 1), ev(1, 3, "w", 2)]
    assert sorted(causal_pairs(events)) == [(1, 3), (2, 3)]


def test_simultaneous_open_not_causal():
    # t0 < t1 is strict: equal times don't create causality.
    assert list(causal_pairs([ev(1, 1, "r", 5), ev(1, 2, "w", 5)])) == []


def test_duplicate_producer_access_yields_one_pair_per_write():
    events = [ev(1, 1, "r", 0), ev(1, 1, "r", 1), ev(1, 2, "w", 2)]
    assert list(causal_pairs(events)) == [(1, 2)]


def test_each_write_counts_again():
    events = [ev(1, 1, "r", 0), ev(1, 2, "w", 1), ev(1, 2, "w", 2)]
    assert list(causal_pairs(events)) == [(1, 2), (1, 2)]


def test_recorder_matches_batch_extraction():
    events = [ev(1, 1, "r", 0), ev(1, 2, "w", 1), ev(2, 3, "r", 2),
              ev(1, 3, "w", 3), ev(2, 4, "w", 4)]
    recorder = TraceRecorder()
    online = []
    for event in events:
        online.extend(recorder.record(event))
    assert sorted(online) == sorted(causal_pairs(events))


def test_recorder_last_file_and_exclude():
    recorder = TraceRecorder()
    recorder.record(ev(1, 10, "r", 0))
    recorder.record(ev(1, 20, "w", 1))
    assert recorder.last_file(1) == 20
    assert recorder.last_file(1, exclude=20) == 10
    assert recorder.last_file(99) is None


def test_recorder_finish_process_drops_history():
    recorder = TraceRecorder()
    recorder.record(ev(1, 10, "r", 0))
    recorder.finish_process(1)
    assert recorder.last_file(1) is None
    # New accesses by the same pid start fresh.
    assert recorder.record(ev(1, 20, "w", 1)) == []


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(1, 3), st.integers(1, 8), st.booleans()),
                max_size=40))
def test_property_online_equals_batch(raw):
    events = [ev(pid, fid, "w" if w else "r", t)
              for t, (pid, fid, w) in enumerate(raw)]
    recorder = TraceRecorder()
    online = []
    for event in events:
        online.extend(recorder.record(event))
    assert sorted(online) == sorted(causal_pairs(events))
