"""Query AST evaluation and the query-language parser."""

import pytest

from repro.errors import QueryError
from repro.query.ast import (
    And,
    Compare,
    Keyword,
    Not,
    Or,
    RelativeAge,
    attributes_referenced,
    conjuncts,
    matches,
)
from repro.query.parser import parse_query, parse_query_directory


def m(pred, attrs, keywords=frozenset(), now=1000.0):
    return matches(pred, attrs, frozenset(keywords), now)


# -- AST evaluation -------------------------------------------------------------

def test_compare_ops():
    attrs = {"size": 10}
    assert m(Compare("size", ">", 5), attrs)
    assert not m(Compare("size", ">", 10), attrs)
    assert m(Compare("size", ">=", 10), attrs)
    assert m(Compare("size", "==", 10), attrs)
    assert m(Compare("size", "!=", 11), attrs)
    assert m(Compare("size", "<", 11), attrs)
    assert m(Compare("size", "<=", 10), attrs)


def test_unknown_op_rejected():
    with pytest.raises(QueryError):
        Compare("size", "~", 5)


def test_missing_attribute_never_matches():
    assert not m(Compare("size", ">", 0), {})
    assert not m(Compare("size", "!=", 5), {})


def test_type_mismatch_never_matches():
    assert not m(Compare("size", ">", 5), {"size": "a-string"})


def test_relative_age_resolution():
    # mtime < 1 day == modified within the last day == mtime > now - 86400.
    pred = Compare("mtime", "<", RelativeAge(86400))
    assert m(pred, {"mtime": 999_000}, now=1_000_000)
    assert not m(pred, {"mtime": 100}, now=1_000_000)


def test_relative_age_flips_all_ops():
    assert Compare("mtime", "<", RelativeAge(10)).resolved(100).op == ">"
    assert Compare("mtime", ">", RelativeAge(10)).resolved(100).op == "<"
    assert Compare("mtime", "<=", RelativeAge(10)).resolved(100).op == ">="
    assert Compare("mtime", ">=", RelativeAge(10)).resolved(100).op == "<="
    assert Compare("mtime", "<", RelativeAge(10)).resolved(100).value == 90


def test_keyword_match():
    assert m(Keyword("firefox"), {}, {"firefox", "bin"})
    assert not m(Keyword("chrome"), {}, {"firefox"})


def test_boolean_combinators():
    attrs = {"size": 10}
    big = Compare("size", ">", 5)
    small = Compare("size", "<", 5)
    assert m(And((big, Compare("size", "<", 20))), attrs)
    assert not m(And((big, small)), attrs)
    assert m(Or((small, big)), attrs)
    assert not m(Not(big), attrs)
    assert m(Not(small), attrs)


def test_operator_sugar():
    a, b = Compare("size", ">", 1), Compare("size", "<", 9)
    assert isinstance(a & b, And)
    assert isinstance(a | b, Or)
    assert isinstance(~a, Not)


def test_attributes_referenced():
    pred = And((Compare("size", ">", 1),
                Or((Compare("mtime", "<", 2), Keyword("x")))))
    assert attributes_referenced(pred) == {"size", "mtime"}


def test_conjuncts_flattening():
    a, b, c = (Compare("x", ">", i) for i in range(3))
    assert list(conjuncts(And((a, And((b, c)))))) == [a, b, c]
    assert list(conjuncts(a)) == [a]


# -- parser ------------------------------------------------------------------------

def test_parse_simple_compare():
    assert parse_query("size > 100") == Compare("size", ">", 100)


def test_parse_size_units():
    assert parse_query("size>1m").value == 1024**2
    assert parse_query("size>1g").value == 1024**3
    assert parse_query("size>16mb").value == 16 * 1024**2
    assert parse_query("size>2k").value == 2048


def test_parse_time_units():
    assert parse_query("mtime<1day").value == RelativeAge(86400.0)
    assert parse_query("mtime<1week").value == RelativeAge(604800.0)
    assert parse_query("mtime<2h").value == RelativeAge(7200.0)


def test_parse_float_literal():
    assert parse_query("score>2.5").value == 2.5


def test_parse_negative_literals():
    assert parse_query("energy<-8").value == -8
    assert parse_query("score>=-2.5").value == -2.5


def test_parse_string_literal():
    assert parse_query("owner == 'john'").value == "john"
    assert parse_query('owner == "john"').value == "john"


def test_parse_bareword_literal():
    assert parse_query("owner == john").value == "john"


def test_parse_keyword_term():
    assert parse_query("keyword:firefox") == Keyword("firefox")
    assert parse_query("keyword:FireFox") == Keyword("firefox")


def test_parse_paper_queries():
    q1 = parse_query("size > 1g & mtime < 1day")
    assert isinstance(q1, And) and len(q1.children) == 2
    q2 = parse_query("keyword:firefox & mtime < 1week")
    assert isinstance(q2.children[0], Keyword)


def test_parse_or_and_precedence():
    # a & b | c & d  parses as (a&b) | (c&d)
    pred = parse_query("size>1 & size<5 | mtime>2 & mtime<9")
    assert isinstance(pred, Or)
    assert all(isinstance(c, And) for c in pred.children)


def test_parse_parentheses_and_not():
    pred = parse_query("!(size>1 | size<0)")
    assert isinstance(pred, Not)
    assert isinstance(pred.child, Or)


def test_parse_errors():
    for bad in ("", "   ", "size >", "size ~ 3", "keyword:", "(size>1",
                "size>1 size<2", "size>1 &", "badunit>3qq"):
        with pytest.raises(QueryError):
            parse_query(bad)


def test_parse_colon_only_for_keyword():
    with pytest.raises(QueryError):
        parse_query("size:100")


def test_parse_query_directory():
    scope, pred = parse_query_directory("/foo/bar/?size>1m")
    assert scope == "/foo/bar"
    assert pred == Compare("size", ">", 1024**2)


def test_parse_query_directory_root():
    scope, _ = parse_query_directory("/?size>1")
    assert scope == "/"


def test_parse_query_directory_requires_question_mark():
    with pytest.raises(QueryError):
        parse_query_directory("/foo/bar")
