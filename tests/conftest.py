"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.cluster import PropellerService
from repro.core.partitioner import PartitioningPolicy
from repro.fs.vfs import VirtualFileSystem
from repro.indexstructures import IndexKind
from repro.sim.clock import SimClock
from repro.sim.machine import Machine


@pytest.fixture
def clock() -> SimClock:
    return SimClock()


@pytest.fixture
def machine(clock: SimClock) -> Machine:
    return Machine(clock)


@pytest.fixture
def vfs(clock: SimClock) -> VirtualFileSystem:
    return VirtualFileSystem(clock)


@pytest.fixture
def service() -> PropellerService:
    """A 4-Index-Node Propeller deployment with a small split threshold
    so partitioning behaviour is observable at test scale."""
    return PropellerService(
        num_index_nodes=4,
        policy=PartitioningPolicy(split_threshold=500, cluster_target=100),
    )


@pytest.fixture
def indexed_service(service: PropellerService):
    """(service, client) with the three standard indices created."""
    client = service.make_client()
    client.create_index("by_size", IndexKind.BTREE, ["size"])
    client.create_index("by_kw", IndexKind.HASH, ["keyword"])
    client.create_index("inode_kd", IndexKind.KDTREE, ["size", "mtime"])
    return service, client
