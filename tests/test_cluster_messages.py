"""Message types: construction helpers, wire-size estimates, immutability."""

import pytest

from repro.cluster.messages import (
    Heartbeat,
    IndexUpdate,
    RouteEntry,
    SearchResult,
    UpdateOp,
)


def test_upsert_helper_sorts_attrs():
    update = IndexUpdate.upsert(7, {"size": 10, "mtime": 2.0}, path="/f")
    assert update.op is UpdateOp.UPSERT
    assert update.attrs == (("mtime", 2.0), ("size", 10))
    assert update.attr_dict == {"size": 10, "mtime": 2.0}
    assert update.path == "/f"


def test_delete_helper():
    update = IndexUpdate.delete(9)
    assert update.op is UpdateOp.DELETE
    assert update.file_id == 9
    assert update.attrs == ()
    assert update.path is None


def test_updates_are_hashable_and_comparable():
    a = IndexUpdate.upsert(1, {"size": 5})
    b = IndexUpdate.upsert(1, {"size": 5})
    c = IndexUpdate.upsert(1, {"size": 6})
    assert a == b
    assert a != c
    assert len({a, b, c}) == 2


def test_updates_are_immutable():
    update = IndexUpdate.upsert(1, {"size": 5})
    with pytest.raises(AttributeError):
        update.file_id = 2


def test_wire_bytes_scales_with_content():
    small = IndexUpdate.upsert(1, {"size": 5})
    big = IndexUpdate.upsert(1, {"size": 5, "mtime": 1.0, "uid": 0},
                             path="/a/very/long/path/name.bin")
    assert big.wire_bytes() > small.wire_bytes()
    assert small.wire_bytes() > 0


def test_route_entry_fields():
    route = RouteEntry(file_id=1, acg_id=2, node="in1")
    assert (route.file_id, route.acg_id, route.node) == (1, 2, "in1")


def test_search_result_defaults():
    result = SearchResult(node="in1", acg_id=3)
    assert result.file_ids == frozenset()
    assert result.paths == ()


def test_heartbeat_acg_sizes_tuple():
    heartbeat = Heartbeat(node="in1", timestamp=1.5,
                          acg_sizes=((1, 10), (2, 20)))
    assert dict(heartbeat.acg_sizes) == {1: 10, 2: 20}
    assert heartbeat.free_bytes == 0
