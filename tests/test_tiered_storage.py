"""Tiered index storage: frozen segments, the segment cache, the
simulated object store, and the freeze/thaw/hydrate lifecycle.

The load-bearing property throughout is *byte-identical answers*: a
frozen partition must return exactly what the live B+tree/hash path
would, whether the answer came from the summary sidecar (provably
empty), the segment cache, a fresh hydration, or the
degrade-to-live-replica fallback.
"""

import pytest

from repro.chaos.faults import FaultInjector
from repro.cluster import PropellerService
from repro.cluster.segments import (
    SegmentCache,
    SegmentView,
    TierPolicy,
    dump_segment,
    is_segment,
    load_segment,
    load_segment_payload,
    segment_key,
)
from repro.core.partitioner import PartitioningPolicy
from repro.errors import SegmentCorruption
from repro.fs.vfs import OpenMode
from repro.indexstructures import IndexKind
from repro.query import parse_query
from repro.query.executor import AttributeStore
from repro.sim.clock import SimClock
from repro.sim.objectstore import ObjectStoreModel, SimObjectStore


def build(tiering=False, **tier_kwargs):
    service = PropellerService(
        num_index_nodes=3,
        policy=PartitioningPolicy(split_threshold=500, cluster_target=24),
    )
    client = service.make_client()
    client.create_index("by_size", IndexKind.BTREE, ["size"])
    if tiering:
        service.set_tiering(True, **tier_kwargs)
    return service, client


def populate(service, client, n=120, pid=9):
    vfs = service.vfs
    vfs.mkdir("/data")
    paths = []
    for i in range(n):
        size = 64 * 1024**2 if i % 10 == 0 else 1024 + 7 * i
        path = f"/data/file{i:05d}.bin"
        vfs.write_file(path, size, pid=pid)
        paths.append(path)
    client.index_paths(paths, pid=pid)
    client.flush_updates()
    service.commit_all()
    return paths


def freeze_all(service):
    """Advance past the freeze age so every cold partition freezes."""
    service.advance(30.0)
    return sum(len(n.frozen) for n in service.index_nodes.values())


# -- segment round-trip -----------------------------------------------------------


class TestSegmentRoundTrip:
    def test_dump_load_preserves_search_answers(self):
        service, client = build()
        populate(service, client)
        node = next(n for n in service.index_nodes.values() if n.replicas)
        now = service.clock.now()
        predicate = parse_query("size>16m")
        for acg_id, replica in sorted(node.replicas.items()):
            data = dump_segment(replica, node.name)
            assert is_segment(data)
            view = load_segment(data)
            assert view.acg_id == acg_id
            assert view.file_count() == replica.file_count
            oracle = {fid for fid in replica.store.file_ids()
                      if replica.store.attrs(fid)["size"] > 16 * 1024**2}
            assert view.search(predicate, now) == oracle
            # Postings-assisted and scan answers agree too.
            kw = parse_query("keyword:file00010")
            assert view.search(kw, now, use_postings=True) \
                == view.search(kw, now, use_postings=False)

    def test_dump_is_canonical(self):
        service, client = build()
        populate(service, client, n=40)
        node = next(n for n in service.index_nodes.values() if n.replicas)
        replica = node.replicas[min(node.replicas)]
        assert dump_segment(replica, node.name) \
            == dump_segment(replica, node.name)

    def test_payload_shape_matches_checkpoint(self):
        service, client = build()
        populate(service, client, n=40)
        node = next(n for n in service.index_nodes.values() if n.replicas)
        replica = node.replicas[min(node.replicas)]
        payload = load_segment_payload(dump_segment(replica, node.name))
        assert payload["acg_id"] == replica.acg_id
        assert len(payload["files"]) == replica.file_count
        for _fid, attrs, path in payload["files"]:
            assert "path" not in attrs
            assert path.startswith("/data/")

    def test_corruption_detected(self):
        service, client = build()
        populate(service, client, n=40)
        node = next(n for n in service.index_nodes.values() if n.replicas)
        replica = node.replicas[min(node.replicas)]
        data = dump_segment(replica, node.name)
        with pytest.raises(SegmentCorruption):
            load_segment(b"JUNK" + data[4:])
        with pytest.raises(SegmentCorruption):
            load_segment(data[:-3])  # torn tail fails the CRC
        flipped = bytearray(data)
        flipped[40] ^= 0xFF
        with pytest.raises(SegmentCorruption):
            load_segment(bytes(flipped))


# -- freeze / search equivalence --------------------------------------------------


class TestFreezeSearchEquivalence:
    def test_frozen_answers_byte_identical_to_live(self):
        cold_service, cold_client = build(tiering=True, freeze_age_s=3.0,
                                          min_bytes=1)
        live_service, live_client = build()
        populate(cold_service, cold_client)
        populate(live_service, live_client)
        assert freeze_all(cold_service) > 0
        live_service.advance(30.0)
        for query in ("size>16m", "size<=2000", "keyword:file00013"):
            assert cold_client.search(query) == live_client.search(query)

    def test_pruned_equals_unpruned_on_frozen(self):
        service, client = build(tiering=True, freeze_age_s=3.0, min_bytes=1)
        populate(service, client)
        assert freeze_all(service) > 0
        client.prune_searches = False
        unpruned = client.search("size>16m")
        client.prune_searches = True
        assert client.search("size>16m") == unpruned

    def test_summary_prunes_provably_empty_frozen_partition(self):
        service, client = build(tiering=True, freeze_age_s=3.0, min_bytes=1)
        populate(service, client)
        assert freeze_all(service) > 0
        client.prune_searches = False  # force fan-out to the frozen nodes
        assert client.search("size>900g") == []
        prunes = sum(n.tier_summary_prunes
                     for n in service.index_nodes.values())
        hydrations = sum(n.tier_hydrations
                         for n in service.index_nodes.values())
        assert prunes > 0
        assert hydrations == 0  # the cold tier was never touched

    def test_repeat_search_hits_segment_or_result_cache(self):
        service, client = build(tiering=True, freeze_age_s=3.0, min_bytes=1)
        populate(service, client)
        assert freeze_all(service) > 0
        first = client.search("size>16m")
        store_gets = service.object_store.stats.gets
        assert client.search("size>16m") == first
        assert service.object_store.stats.gets == store_gets


# -- thaw -------------------------------------------------------------------------


class TestThaw:
    def test_write_thaws_and_search_sees_it(self):
        service, client = build(tiering=True, freeze_age_s=3.0, min_bytes=1)
        populate(service, client)
        assert freeze_all(service) > 0
        vfs = service.vfs
        fd = vfs.open("/data/file00001.bin", OpenMode.WRITE, pid=9)
        vfs.write(fd, 128 * 1024**2)
        vfs.close(fd)
        client.index_path("/data/file00001.bin", pid=9)
        client.flush_updates()
        assert "/data/file00001.bin" in client.search("size>100m")
        assert sum(n.tier_thaws for n in service.index_nodes.values()) >= 1

    def test_thaw_deletes_cold_object(self):
        service, client = build(tiering=True, freeze_age_s=3.0, min_bytes=1)
        populate(service, client)
        assert freeze_all(service) > 0
        frozen_keys = {f.key for n in service.index_nodes.values()
                       for f in n.frozen.values()}
        assert frozen_keys <= set(service.object_store.keys())
        service.set_tiering(False)
        assert all(not n.frozen for n in service.index_nodes.values())
        for key in frozen_keys:
            assert not service.object_store.exists(key)

    def test_refreeze_after_thaw(self):
        service, client = build(tiering=True, freeze_age_s=3.0, min_bytes=1)
        populate(service, client)
        assert freeze_all(service) > 0
        vfs = service.vfs
        fd = vfs.open("/data/file00002.bin", OpenMode.WRITE, pid=9)
        vfs.write(fd, 4096)
        vfs.close(fd)
        client.index_path("/data/file00002.bin", pid=9)
        client.flush_updates()
        before = sum(len(n.frozen) for n in service.index_nodes.values())
        service.advance(30.0)
        after = sum(len(n.frozen) for n in service.index_nodes.values())
        assert after > before
        assert client.search("keyword:file00002") == ["/data/file00002.bin"]


# -- fault paths ------------------------------------------------------------------


class TestColdTierFaults:
    def _frozen_node(self, service):
        return next(n for n in service.index_nodes.values() if n.frozen)

    def test_object_errors_degrade_to_live_replica(self):
        service, client = build(tiering=True, freeze_age_s=3.0, min_bytes=1)
        populate(service, client)
        assert freeze_all(service) > 0
        oracle = client.search("size>16m")
        faults = FaultInjector(3, journal=service.journal)
        faults.set_object_error_rate(1.0)
        service.object_store.faults = faults
        for node in service.index_nodes.values():
            node.drop_caches()
        assert client.search("size>16m") == oracle
        assert sum(n.tier_fallbacks
                   for n in service.index_nodes.values()) >= 1
        # Partitions stay frozen: availability degraded, tiering intact.
        assert sum(len(n.frozen) for n in service.index_nodes.values()) > 0
        faults.clear_object_faults()
        for node in service.index_nodes.values():
            node.drop_caches()
        assert client.search("size>16m") == oracle

    def test_corrupt_segment_repairs_from_live_replica(self):
        service, client = build(tiering=True, freeze_age_s=3.0, min_bytes=1)
        populate(service, client)
        assert freeze_all(service) > 0
        oracle = client.search("size>16m")
        store = service.object_store
        for key in store.keys():
            good = store._objects[key]
            store._objects[key] = good[:-4] + b"\x00\x00\x00\x00"
        for node in service.index_nodes.values():
            node.drop_caches()
        assert client.search("size>16m") == oracle
        repaired = sum(n.tier_repairs for n in service.index_nodes.values())
        assert repaired >= 1
        # The re-dumped segments are valid again: a cold re-read hydrates.
        for node in service.index_nodes.values():
            node.drop_caches()
        hydrations = sum(n.tier_hydrations
                         for n in service.index_nodes.values())
        assert client.search("size>16m") == oracle
        assert sum(n.tier_hydrations
                   for n in service.index_nodes.values()) > hydrations

    def test_slow_hydration_charges_time_but_answers(self):
        service, client = build(tiering=True, freeze_age_s=3.0, min_bytes=1)
        populate(service, client)
        assert freeze_all(service) > 0
        oracle = client.search("size>16m")
        faults = FaultInjector(3, journal=service.journal)
        faults.set_hydration_delay(0.5, probability=1.0)
        service.object_store.faults = faults
        for node in service.index_nodes.values():
            node.drop_caches()
        before = service.clock.now()
        assert client.search("size>16m") == oracle
        assert service.clock.now() - before >= 0.5


# -- segment cache ----------------------------------------------------------------


def _view(acg_id, nbytes):
    """A SegmentView whose resident footprint is roughly ``nbytes``."""
    store = AttributeStore()
    i = 0
    while store.estimated_bytes() < nbytes:
        store.put(acg_id * 10000 + i, {"size": i}, f"/f{i}")
        i += 1
    return SegmentView(acg_id=acg_id, specs=[], store=store, acg_records=[],
                       postings={}, snapshot=None, serialized_bytes=nbytes)


class TestSegmentCache:
    def test_lru_eviction_under_byte_budget(self):
        cache = SegmentCache(budget_bytes=4096, admit_fraction=1.0)
        a, b, c = _view(1, 1500), _view(2, 1500), _view(3, 1500)
        cache.put("a", a)
        cache.put("b", b)
        assert cache.get("a") is a  # touch: b is now LRU
        cache.put("c", c)
        assert "b" not in cache
        assert cache.get("a") is a and cache.get("c") is c
        assert cache.stats.evictions == 1
        assert cache.estimated_bytes() <= 4096

    def test_admission_rejects_oversized(self):
        cache = SegmentCache(budget_bytes=4096, admit_fraction=0.25)
        small, huge = _view(1, 500), _view(2, 3000)
        assert cache.put("small", small)
        assert not cache.put("huge", huge)
        assert cache.stats.rejected == 1
        assert "small" in cache and "huge" not in cache

    def test_resize_shrink_evicts(self):
        cache = SegmentCache(budget_bytes=8192, admit_fraction=1.0)
        for i in range(4):
            cache.put(f"k{i}", _view(i, 1500))
        cache.resize(2048)
        assert cache.estimated_bytes() <= 2048
        assert len(cache) < 4
        with pytest.raises(ValueError):
            cache.resize(0)

    def test_hit_rate(self):
        cache = SegmentCache(budget_bytes=4096, admit_fraction=1.0)
        cache.put("a", _view(1, 500))
        cache.get("a")
        cache.get("missing")
        assert cache.stats.hit_rate() == 0.5


# -- tier policy ------------------------------------------------------------------


def test_tier_policy():
    policy = TierPolicy(freeze_age_s=60.0, min_bytes=4096)
    assert policy.should_freeze(100.0, 40.0, 5000)
    assert not policy.should_freeze(100.0, 50.0, 5000)  # too recent
    assert not policy.should_freeze(100.0, 40.0, 100)   # too small


# -- simulated object store -------------------------------------------------------


class TestSimObjectStore:
    def test_request_latency_lands_on_the_clock(self):
        clock = SimClock()
        store = SimObjectStore(clock)
        store.put("k", b"x" * 1000)
        put_t = clock.now()
        assert put_t >= store.model.put_cost_s(1000)
        assert store.get("k") == b"x" * 1000
        assert clock.now() - put_t >= store.model.get_cost_s(1000)

    def test_missing_key_raises_after_paying(self):
        from repro.errors import ObjectStoreError

        clock = SimClock()
        store = SimObjectStore(clock)
        with pytest.raises(ObjectStoreError):
            store.get("nope")
        assert clock.now() > 0.0
        assert store.stats.errors == 1

    def test_storage_cost_accrues_over_virtual_time(self):
        clock = SimClock()
        store = SimObjectStore(clock)
        store.put("k", b"x" * 1024**2)
        base = store.simulated_cost_usd()
        clock.advance_to(clock.now() + 3600.0)
        assert store.simulated_cost_usd() > base

    def test_deterministic_costs(self):
        def run():
            clock = SimClock()
            store = SimObjectStore(clock)
            for i in range(5):
                store.put(f"k{i}", bytes(100 * (i + 1)))
            for i in range(5):
                store.get(f"k{i}")
            store.delete("k0")
            return (clock.now(), store.simulated_cost_usd(),
                    store.stored_bytes(), store.keys())

        assert run() == run()

    def test_overwrite_and_delete_track_bytes(self):
        store = SimObjectStore(SimClock())
        store.put("k", b"a" * 100)
        store.put("k", b"b" * 40)
        assert store.stored_bytes() == 40
        assert store.delete("k")
        assert not store.delete("k")
        assert store.stored_bytes() == 0


# -- index cache accounting (satellite) -------------------------------------------


class TestIndexCacheAccounting:
    def test_flush_commits_counted_separately(self):
        service, client = build()
        vfs = service.vfs
        vfs.mkdir("/data")
        vfs.write_file("/data/a.bin", 1024, pid=9)
        client.index_path("/data/a.bin", pid=9)
        client.flush_updates()
        node = next(n for n in service.index_nodes.values()
                    if n.cache.pending_acgs())
        assert node.cache.estimated_bytes() > 0
        before = node.cache.stats.search_commits
        node.cache.commit_all()
        assert node.cache.stats.flush_commits >= 1
        assert node.cache.stats.search_commits == before
        assert node.cache.estimated_bytes() == 0


# -- residency reporting ----------------------------------------------------------


class TestResidencyReporting:
    def test_heartbeats_report_tier_residency_to_master(self):
        service, client = build(tiering=True, freeze_age_s=3.0, min_bytes=1)
        populate(service, client)
        assert freeze_all(service) > 0
        residency = service.master.tier_residency()
        want = {name: tuple(sorted(node.frozen))
                for name, node in service.index_nodes.items()}
        assert residency == want
        assert any(residency.values())

    def test_memory_tiers_table(self):
        service, client = build(tiering=True, freeze_age_s=3.0, min_bytes=1)
        populate(service, client)
        assert freeze_all(service) > 0
        client.search("size>16m")  # hydrate something
        rows = service.memory_tiers()
        assert [r["node"] for r in rows] == sorted(service.index_nodes)
        frozen_rows = [r for r in rows if r["frozen_acgs"]]
        assert frozen_rows
        assert any(r["frozen"] > 0 for r in frozen_rows)
        assert all(r["ram_budget"] > 0 for r in rows)
        assert "tiers" in service.status()

    def test_tier_gauges_registered(self):
        service, client = build(tiering=True, freeze_age_s=3.0, min_bytes=1)
        populate(service, client)
        assert freeze_all(service) > 0
        client.search("size>16m")
        registry = service.registry
        assert registry.value("tier.frozen_partitions") > 0
        assert registry.value("tier.object_store.bytes") > 0
        assert registry.value("tier.object_store.cost_usd") > 0
        pending = sum(
            registry.value(f"cluster.{name}.cache.pending_bytes")
            for name in service.index_nodes)
        assert pending == 0  # everything committed after the searches


# -- segments as the transfer format ----------------------------------------------


class TestSegmentTransferFormat:
    def test_checkpoint_of_frozen_partition_is_a_segment(self):
        service, client = build(tiering=True, freeze_age_s=3.0, min_bytes=1)
        populate(service, client)
        assert freeze_all(service) > 0
        node = next(n for n in service.index_nodes.values() if n.frozen)
        node.checkpoint_to_shared()
        from repro.cluster.persistence import replica_path

        acg_id = min(node.frozen)
        data = service.vfs.read_bytes(replica_path(node.name, acg_id))
        assert is_segment(data)

    def test_crash_restart_recovers_from_segment_checkpoint(self):
        service, client = build(tiering=True, freeze_age_s=3.0, min_bytes=1)
        populate(service, client)
        assert freeze_all(service) > 0
        oracle = client.search("size>16m")
        node = next(n for n in service.index_nodes.values() if n.frozen)
        node.checkpoint_to_shared()
        node.crash()
        node.restart()
        assert not node.frozen  # tier state is volatile
        assert client.search("size>16m") == oracle

    def test_migration_ships_segment_when_tiering_on(self):
        service, client = build(tiering=True, freeze_age_s=3.0, min_bytes=1)
        populate(service, client)
        oracle = client.search("size>16m")
        placed = [p for p in service.master.partitions.partitions() if p.node]
        victim = placed[0]
        target = next(name for name in sorted(service.index_nodes)
                      if name != victim.node)
        service.master.migrate_partition(victim.partition_id, target)
        assert client.search("size>16m") == oracle


# -- determinism ------------------------------------------------------------------


class TestTieringDeterminism:
    def test_tiered_run_is_deterministic(self):
        def run():
            service, client = build(tiering=True, freeze_age_s=3.0,
                                    min_bytes=1)
            populate(service, client, n=80)
            freeze_all(service)
            got = client.search("size>16m")
            return (got, service.clock.now(),
                    service.object_store.simulated_cost_usd(),
                    sorted(service.object_store.keys()))

        assert run() == run()

    def test_segment_key_shape(self):
        assert segment_key("in1", 7) == "segments/in1/acg00000007.seg"
