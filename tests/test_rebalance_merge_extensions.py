"""Rebalancing/merging, sorted search, static partitioning, Impressions
namespaces, and B+tree bulk loading."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import PropellerService
from repro.core.partitioner import PartitioningPolicy
from repro.core.static_partitioning import (
    hash_partition,
    namespace_partition,
    partition_sizes,
    partitions_touched,
)
from repro.errors import ClusterError, UnknownIndexNode
from repro.fs.vfs import VirtualFileSystem
from repro.indexstructures import IndexKind
from repro.indexstructures.btree import BPlusTree
from repro.sim.clock import SimClock
from repro.workloads.impressions import ImpressionsConfig, generate_impressions


def build(nodes=3, split=500, target=30):
    service = PropellerService(
        num_index_nodes=nodes,
        policy=PartitioningPolicy(split_threshold=split, cluster_target=target))
    client = service.make_client()
    client.create_index("by_size", IndexKind.BTREE, ["size"])
    return service, client


def populate(service, client, n=120, files_per_process=30):
    """Write files as several independent processes so causality hints
    produce several partitions (one application ≈ one partition)."""
    vfs = service.vfs
    vfs.mkdir("/d")
    for i in range(n):
        pid = 1 + i // files_per_process
        vfs.write_file(f"/d/f{i:03d}", 100 + i, pid=pid)
        client.index_path(f"/d/f{i:03d}", pid=pid)
        if (i + 1) % files_per_process == 0:
            client.access_manager.process_finished(pid)
    client.flush_updates()
    service.commit_all()


# -- migration / rebalance / merge ----------------------------------------------

def hosted_files(service, p):
    """Files a partition's owner actually holds.  The Master only learns
    sizes from heartbeats now, so tests read the node side directly."""
    node = service.index_nodes.get(p.node) if p.node else None
    replica = node.replicas.get(p.partition_id) if node else None
    return replica.file_count if replica else 0


def node_files(service, name):
    return sum(r.file_count
               for r in service.index_nodes[name].replicas.values())


def test_migrate_partition_moves_data_and_serves():
    service, client = build()
    populate(service, client)
    partition = next(p for p in service.master.partitions.partitions()
                     if hosted_files(service, p))
    size = hosted_files(service, partition)
    source = partition.node
    target = next(n for n in service.master.index_nodes if n != source)
    before = client.search("size>0")
    moved = service.master.migrate_partition(partition.partition_id, target)
    assert moved == size
    assert partition.node == target
    assert partition.partition_id not in service.index_nodes[source].replicas
    assert client.search("size>0") == before


def test_migrate_to_same_node_is_noop():
    service, client = build()
    populate(service, client)
    partition = next(p for p in service.master.partitions.partitions()
                     if hosted_files(service, p))
    assert service.master.migrate_partition(partition.partition_id,
                                            partition.node) == 0


def test_migrate_to_unknown_node():
    service, client = build()
    populate(service, client)
    partition = service.master.partitions.partitions()[0]
    with pytest.raises(UnknownIndexNode):
        service.master.migrate_partition(partition.partition_id, "ghost")


def test_rebalance_levels_loads():
    service, client = build(nodes=3)
    populate(service, client, n=150)
    master = service.master
    # Skew everything onto one node first.
    heavy = master.index_nodes[0]
    for partition in master.partitions.partitions():
        if partition.node != heavy and hosted_files(service, partition):
            master.migrate_partition(partition.partition_id, heavy)
    assert node_files(service, heavy) == 150
    before = client.search("size>0")
    # Rebalancing works off heartbeat-reported sizes; drive one round.
    master.poll_heartbeats()
    moves = master.rebalance(tolerance=0.25)
    assert moves >= 1
    loads = [node_files(service, n) for n in master.index_nodes]
    biggest = max(hosted_files(service, p)
                  for p in master.partitions.partitions())
    assert max(loads) <= (sum(loads) / len(loads)) * 1.25 + biggest
    assert client.search("size>0") == before


def test_rebalance_single_node_is_noop():
    service, client = build(nodes=1)
    populate(service, client, n=40)
    assert service.master.rebalance() == 0


def test_merge_partitions_absorbs_and_serves():
    service, client = build()
    populate(service, client)
    parts = [p for p in service.master.partitions.partitions()
             if hosted_files(service, p)]
    assert len(parts) >= 2
    keep, absorb = parts[0], parts[1]
    absorbed_files = set(
        service.index_nodes[absorb.node]
        .replicas[absorb.partition_id].store.file_ids())
    before = client.search("size>0")
    moved = service.master.merge_partitions(keep.partition_id, absorb.partition_id)
    assert moved == len(absorbed_files)
    assert absorbed_files <= keep.files
    assert client.search("size>0") == before
    # The absorbed id is gone from the partition map.
    from repro.errors import UnknownAcg
    with pytest.raises(UnknownAcg):
        service.master.partitions.get(absorb.partition_id)


def test_merge_with_itself_rejected():
    service, client = build()
    populate(service, client)
    partition = service.master.partitions.partitions()[0]
    with pytest.raises(ClusterError):
        service.master.merge_partitions(partition.partition_id,
                                        partition.partition_id)


def test_merge_small_partitions_defragments():
    service, client = build(target=10)
    populate(service, client, n=44)   # leaves a few small partitions
    small_before = [p for p in service.master.partitions.partitions()
                    if p.files and p.size < 5]
    before = client.search("size>0")
    service.master.merge_small_partitions(min_size=5)
    small_after = [p for p in service.master.partitions.partitions()
                   if p.files and p.size < 5]
    assert len(small_after) <= 1
    assert client.search("size>0") == before


# -- sorted / limited search -------------------------------------------------------

def test_search_sort_by_size_descending_with_limit():
    service, client = build()
    populate(service, client, n=30)
    top3 = client.search("size>0", sort_by="size", descending=True, limit=3)
    assert top3 == ["/d/f029", "/d/f028", "/d/f027"]


def test_search_sort_ascending():
    service, client = build()
    populate(service, client, n=10)
    ordered = client.search("size>0", sort_by="size")
    assert ordered[0] == "/d/f000"
    assert ordered[-1] == "/d/f009"


def test_search_default_order_with_limit():
    service, client = build()
    populate(service, client, n=10)
    assert client.search("size>0", limit=2) == ["/d/f000", "/d/f001"]


def test_search_sort_by_user_attribute_missing_sorts_last():
    service, client = build()
    populate(service, client, n=4)
    service.vfs.setattr("/d/f002", "rank", 1.0)
    client.index_path("/d/f002", pid=1)
    ordered = client.search("size>0", sort_by="rank")
    assert ordered[0] == "/d/f002"        # only file with the attribute


# -- static partitioning ----------------------------------------------------------------

PATHS = [f"/usr/lib/l{i}" for i in range(10)] + \
        [f"/var/log/g{i}" for i in range(10)] + \
        [f"/home/john/h{i}" for i in range(10)]


def test_namespace_partition_by_top_level():
    mapping = namespace_partition(PATHS, depth=1)
    assert len(set(mapping.values())) == 3
    assert mapping["/usr/lib/l0"] == mapping["/usr/lib/l9"]


def test_namespace_partition_depth_two():
    mapping = namespace_partition(PATHS, depth=2)
    assert mapping["/usr/lib/l0"] != mapping["/var/log/g0"]


def test_namespace_partition_giga_split():
    paths = [f"/big/dir/f{i:04d}" for i in range(100)]
    mapping = namespace_partition(paths, depth=2, group_size=30)
    assert len(set(mapping.values())) == 4      # ceil(100/30)


def test_namespace_partition_validation():
    with pytest.raises(ValueError):
        namespace_partition(PATHS, depth=0)


def test_hash_partition_spread_and_stability():
    mapping = hash_partition(PATHS, 4)
    assert set(mapping.values()) <= set(range(4))
    assert mapping == hash_partition(PATHS, 4)
    with pytest.raises(ValueError):
        hash_partition(PATHS, 0)


def test_partitions_touched_and_sizes():
    mapping = namespace_partition(PATHS, depth=1)
    stream = ["/usr/lib/l1", "/usr/lib/l2", "/home/john/h1"]
    assert partitions_touched(mapping, stream) == 2
    assert partition_sizes(mapping) == [10, 10, 10]


# -- Impressions namespaces ----------------------------------------------------------------

def test_impressions_exact_file_count_and_determinism():
    vfs_a = VirtualFileSystem(SimClock())
    paths_a = generate_impressions(vfs_a, config=ImpressionsConfig(
        total_files=500, seed=3))
    assert len(paths_a) == 500
    assert vfs_a.namespace.file_count == 500
    vfs_b = VirtualFileSystem(SimClock())
    paths_b = generate_impressions(vfs_b, config=ImpressionsConfig(
        total_files=500, seed=3))
    sizes_a = sorted(i.size for _, i in vfs_a.namespace.files())
    sizes_b = sorted(i.size for _, i in vfs_b.namespace.files())
    assert sizes_a == sizes_b
    assert paths_a == paths_b


def test_impressions_size_distribution_shape():
    vfs = VirtualFileSystem(SimClock())
    generate_impressions(vfs, config=ImpressionsConfig(total_files=2_000, seed=1))
    sizes = sorted(i.size for _, i in vfs.namespace.files())
    median = sizes[len(sizes) // 2]
    assert 256 <= median <= 256 * 1024          # small-file body
    assert sizes[-1] > 4 * 1024**2              # heavy tail exists
    assert sizes[-1] > 50 * median


def test_impressions_has_depth_and_fanout():
    vfs = VirtualFileSystem(SimClock())
    generate_impressions(vfs, config=ImpressionsConfig(
        total_files=3_000, fanout_dir_probability=0.05, seed=2))
    depths = [p.count("/") for p, _ in vfs.namespace.files()]
    assert max(depths) >= 4
    # Some directory got the giant-fan-out treatment.
    from collections import Counter
    dirs = Counter(p.rsplit("/", 1)[0] for p, _ in vfs.namespace.files())
    assert max(dirs.values()) >= 400


# -- B+tree bulk load ------------------------------------------------------------------------

def test_bulk_load_matches_inserted_tree():
    rng = random.Random(0)
    pairs = [(rng.randrange(500), i) for i in range(800)]
    bulk = BPlusTree.bulk_load(pairs, order=16)
    bulk.check_invariants()
    reference = BPlusTree(order=16)
    for k, v in pairs:
        reference.insert(k, v)
    assert sorted(bulk.items()) == sorted(reference.items())
    assert len(bulk) == len(reference)


def test_bulk_load_empty():
    tree = BPlusTree.bulk_load([])
    assert len(tree) == 0
    tree.check_invariants()


def test_bulk_load_supports_deletes_afterwards():
    pairs = [(i, i) for i in range(200)]
    tree = BPlusTree.bulk_load(pairs, order=8)
    for i in range(0, 200, 2):
        assert tree.remove(i) == 1
    tree.check_invariants()
    assert [k for k, _ in tree.items()] == list(range(1, 200, 2))


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 300), st.integers(0, 5)), max_size=400),
       st.integers(4, 32))
def test_property_bulk_load_oracle(pairs, order):
    tree = BPlusTree.bulk_load(pairs, order=order)
    tree.check_invariants()
    oracle = {}
    for k, v in pairs:
        oracle.setdefault(k, set()).add(v)
    for k, values in oracle.items():
        assert set(tree.get(k)) == values
    assert len(tree) == sum(len(v) for v in oracle.values())
