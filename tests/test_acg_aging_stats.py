"""ACG aging (decay/prune) and service introspection stats."""

import pytest

from repro.cluster import PropellerService
from repro.core.acg import AccessCausalityGraph
from repro.indexstructures import IndexKind


# -- decay -------------------------------------------------------------------

def test_decay_scales_weights():
    graph = AccessCausalityGraph()
    graph.add_causality(1, 2, 10)
    graph.add_causality(2, 3, 4)
    graph.decay(0.5)
    assert graph.weight(1, 2) == 5
    assert graph.weight(2, 3) == 2


def test_decay_drops_zero_weight_edges_keeps_vertices():
    graph = AccessCausalityGraph()
    graph.add_causality(1, 2, 1)
    graph.decay(0.4)
    assert graph.weight(1, 2) == 0
    assert graph.edge_count == 0
    assert graph.has_vertex(1) and graph.has_vertex(2)


def test_decay_factor_validation():
    graph = AccessCausalityGraph()
    with pytest.raises(ValueError):
        graph.decay(0.0)
    with pytest.raises(ValueError):
        graph.decay(1.5)


def test_decay_identity():
    graph = AccessCausalityGraph()
    graph.add_causality(1, 2, 7)
    graph.decay(1.0)
    assert graph.weight(1, 2) == 7


def test_repeated_decay_eventually_disconnects():
    graph = AccessCausalityGraph()
    graph.add_causality(1, 2, 100)
    for _ in range(10):
        graph.decay(0.5)
    assert graph.edge_count == 0
    assert len(graph.connected_components()) == 2


# -- prune -----------------------------------------------------------------------

def test_prune_below_removes_weak_edges():
    graph = AccessCausalityGraph()
    graph.add_causality(1, 2, 10)
    graph.add_causality(3, 4, 1)
    graph.add_causality(5, 6, 3)
    assert graph.prune_below(3) == 1
    assert graph.weight(3, 4) == 0
    assert graph.weight(5, 6) == 3
    assert graph.weight(1, 2) == 10


def test_prune_affects_components():
    graph = AccessCausalityGraph()
    graph.add_causality(1, 2, 10)
    graph.add_causality(2, 3, 1)   # weak bridge
    assert len(graph.connected_components()) == 1
    graph.prune_below(5)
    assert len(graph.connected_components()) == 2


def test_prune_symmetry_of_internal_maps():
    graph = AccessCausalityGraph()
    graph.add_causality(1, 2, 1)
    graph.prune_below(10)
    assert graph.predecessors(2) == {}
    assert graph.successors(1) == {}


# -- service stats -------------------------------------------------------------------

def test_service_stats_shape_and_consistency():
    service = PropellerService(num_index_nodes=2)
    client = service.make_client()
    client.create_index("by_size", IndexKind.BTREE, ["size"])
    vfs = service.vfs
    vfs.mkdir("/d")
    for i in range(50):
        vfs.write_file(f"/d/f{i}", 100 + i, pid=1)
        client.index_path(f"/d/f{i}", pid=1)
    client.flush_updates()
    service.commit_all()
    client.search("size>0")

    stats = service.stats()
    assert stats["indexed_files"] == 50
    assert stats["partitions"] >= 1
    assert stats["network_messages"] > 0
    assert set(stats["nodes"]) == {"in1", "in2"}
    total_node_files = sum(n["files"] for n in stats["nodes"].values())
    assert total_node_files == 50
    for node_stats in stats["nodes"].values():
        assert node_stats["up"] is True
        assert node_stats["cache_pending"] == 0


def test_service_stats_reflect_failures_and_pending():
    service = PropellerService(num_index_nodes=2)
    client = service.make_client()
    client.create_index("by_size", IndexKind.BTREE, ["size"])
    service.vfs.mkdir("/d")
    service.vfs.write_file("/d/f", 10, pid=1)
    client.index_path("/d/f", pid=1)
    client.flush_updates()           # acknowledged, still cached
    service.fail_node("in1")
    stats = service.stats()
    assert stats["nodes"]["in1"]["up"] is False
    pending = sum(n["cache_pending"] for n in stats["nodes"].values())
    assert pending == 1
