"""Every example must stay runnable — they are executable documentation.

Each example module exposes ``main()`` and asserts its own claims
internally, so importing and running them is a real end-to-end test.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str) -> None:
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()


@pytest.mark.parametrize("name", [
    "quickstart",
    "log_analytics",
    "drug_discovery",
    "cluster_operations",
])
def test_example_runs(name, capsys):
    run_example(name)
    out = capsys.readouterr().out
    assert out.strip()          # every example narrates what it shows


def test_compile_partitioning_example(capsys):
    # The replay-based example is the slowest; keep it last and check
    # its headline output lines.
    run_example("compile_partitioning")
    out = capsys.readouterr().out
    assert "Thrift build ACG: 775 files" in out
    assert "cluster search returns every indexed file: OK" in out
