"""B+tree: unit tests plus property tests against a dict-of-lists oracle."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.indexstructures.btree import BPlusTree


def test_empty_tree():
    tree = BPlusTree()
    assert len(tree) == 0
    assert tree.get(1) == []
    assert list(tree.items()) == []
    assert tree.min_key() is None


def test_single_insert_get():
    tree = BPlusTree()
    tree.insert(5, "a")
    assert tree.get(5) == ["a"]
    assert len(tree) == 1


def test_multimap_values_accumulate():
    tree = BPlusTree()
    tree.insert(5, "a")
    tree.insert(5, "b")
    assert sorted(tree.get(5)) == ["a", "b"]
    assert len(tree) == 2


def test_duplicate_pair_idempotent():
    tree = BPlusTree()
    tree.insert(5, "a")
    tree.insert(5, "a")
    assert tree.get(5) == ["a"]
    assert len(tree) == 1


def test_order_below_three_rejected():
    with pytest.raises(ValueError):
        BPlusTree(order=2)


def test_splits_grow_height():
    tree = BPlusTree(order=4)
    for i in range(100):
        tree.insert(i, i)
    assert tree.height > 1
    tree.check_invariants()


def test_items_sorted_by_key():
    tree = BPlusTree(order=4)
    keys = random.Random(3).sample(range(1000), 200)
    for k in keys:
        tree.insert(k, k)
    assert [k for k, _ in tree.items()] == sorted(keys)


def test_range_inclusive_bounds():
    tree = BPlusTree(order=4)
    for i in range(20):
        tree.insert(i, i)
    assert [k for k, _ in tree.range(5, 8)] == [5, 6, 7, 8]


def test_range_exclusive_bounds():
    tree = BPlusTree(order=4)
    for i in range(20):
        tree.insert(i, i)
    got = [k for k, _ in tree.range(5, 8, include_low=False, include_high=False)]
    assert got == [6, 7]


def test_range_open_ended():
    tree = BPlusTree(order=4)
    for i in range(10):
        tree.insert(i, i)
    assert [k for k, _ in tree.range(None, 2)] == [0, 1, 2]
    assert [k for k, _ in tree.range(7, None)] == [7, 8, 9]


def test_range_between_keys():
    tree = BPlusTree()
    for i in (10, 20, 30):
        tree.insert(i, i)
    assert [k for k, _ in tree.range(11, 19)] == []


def test_remove_specific_value():
    tree = BPlusTree()
    tree.insert(1, "a")
    tree.insert(1, "b")
    assert tree.remove(1, "a") == 1
    assert tree.get(1) == ["b"]


def test_remove_all_values_under_key():
    tree = BPlusTree()
    tree.insert(1, "a")
    tree.insert(1, "b")
    assert tree.remove(1) == 2
    assert tree.get(1) == []
    assert len(tree) == 0


def test_remove_missing_key_returns_zero():
    tree = BPlusTree()
    tree.insert(1, "a")
    assert tree.remove(2) == 0
    assert tree.remove(1, "zzz") == 0


def test_remove_rebalances():
    tree = BPlusTree(order=4)
    for i in range(200):
        tree.insert(i, i)
    for i in range(0, 200, 2):
        assert tree.remove(i) == 1
    tree.check_invariants()
    assert [k for k, _ in tree.items()] == list(range(1, 200, 2))


def test_remove_everything_then_reinsert():
    tree = BPlusTree(order=4)
    for i in range(100):
        tree.insert(i, i)
    for i in range(100):
        tree.remove(i)
    assert len(tree) == 0
    tree.check_invariants()
    tree.insert(7, "x")
    assert tree.get(7) == ["x"]


def test_string_keys():
    tree = BPlusTree(order=4)
    for word in ["banana", "apple", "cherry"]:
        tree.insert(word, word.upper())
    assert [k for k, _ in tree.items()] == ["apple", "banana", "cherry"]


def test_page_hook_called():
    touched = []
    tree = BPlusTree(order=4, page_hook=lambda nid, w: touched.append((nid, w)))
    for i in range(50):
        tree.insert(i, i)
    tree.get(25)
    assert touched
    assert any(w for _, w in touched)       # writes happened
    assert any(not w for _, w in touched)   # reads happened


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(-500, 500), st.integers(0, 5)), max_size=300),
       st.integers(3, 16))
def test_property_matches_oracle_after_inserts(pairs, order):
    tree = BPlusTree(order=order)
    oracle = {}
    for key, value in pairs:
        tree.insert(key, value)
        oracle.setdefault(key, set()).add(value)
    tree.check_invariants()
    assert len(tree) == sum(len(v) for v in oracle.values())
    for key, values in oracle.items():
        assert set(tree.get(key)) == values
    assert [k for k, _ in tree.items()] == sorted(
        k for k, vs in oracle.items() for _ in vs)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.booleans(), st.integers(-100, 100)), max_size=400),
       st.integers(3, 8))
def test_property_interleaved_insert_delete(ops, order):
    tree = BPlusTree(order=order)
    oracle = {}
    for is_insert, key in ops:
        if is_insert:
            tree.insert(key, key)
            oracle.setdefault(key, set()).add(key)
        else:
            removed = tree.remove(key)
            expected = len(oracle.pop(key, set()))
            assert removed == expected
    tree.check_invariants()
    assert sorted(k for k, _ in tree.items()) == sorted(oracle)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 1000), min_size=1, max_size=200),
       st.integers(0, 1000), st.integers(0, 1000))
def test_property_range_equals_filter(keys, a, b):
    low, high = min(a, b), max(a, b)
    tree = BPlusTree(order=5)
    for k in keys:
        tree.insert(k, k)
    got = [k for k, _ in tree.range(low, high)]
    want = sorted(k for k in set(keys) if low <= k <= high)
    assert got == want


# -- append-frontier occupancy (the monotonic-key degenerate-split fix) --------


def _leaf_sizes(tree):
    leaf = tree._leftmost_leaf()
    sizes = []
    while leaf is not None:
        sizes.append(len(leaf.keys))
        leaf = leaf.next
    return sizes


def test_monotonic_inserts_keep_settled_leaves_full():
    """An append-only key stream (mtimes, sequential ids) used to
    mid-split every frontier leaf, pinning the whole tree at ~50%
    occupancy.  The biased frontier split leaves every settled
    (non-rightmost) leaf completely full — never below order/2."""
    order = 8
    tree = BPlusTree(order=order)
    for k in range(500):
        tree.insert(k, k)
    tree.check_invariants()
    sizes = _leaf_sizes(tree)
    assert all(s >= order // 2 for s in sizes[:-1])
    assert all(s == order for s in sizes[:-1])  # the bias packs them
    assert [k for k, _ in tree.items()] == list(range(500))


def test_descending_inserts_keep_min_occupancy():
    """The bias only triggers on the rightmost spine: a descending
    stream takes the classic mid-split and keeps the B+tree invariant."""
    order = 8
    tree = BPlusTree(order=order)
    for k in range(400, 0, -1):
        tree.insert(k, k)
    tree.check_invariants()
    assert all(s >= order // 2 for s in _leaf_sizes(tree)[:-1])


def test_monotonic_then_deletes_stay_consistent():
    """Full settled leaves must not break delete rebalancing."""
    order = 6
    tree = BPlusTree(order=order)
    for k in range(300):
        tree.insert(k, k)
    for k in range(0, 300, 3):
        assert tree.remove(k) == 1
    tree.check_invariants()
    assert sorted(k for k, _ in tree.items()) == [
        k for k in range(300) if k % 3 != 0]


# -- bulk_insert (the group-commit apply path) ---------------------------------


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(-500, 500), st.integers(0, 5)), max_size=200),
       st.lists(st.tuples(st.integers(-500, 500), st.integers(0, 5)), max_size=200),
       st.integers(3, 16))
def test_property_bulk_insert_matches_sequential(existing, batch, order):
    sequential = BPlusTree(order=order)
    bulk = BPlusTree(order=order)
    for key, value in existing:
        sequential.insert(key, value)
        bulk.insert(key, value)
    for key, value in batch:
        sequential.insert(key, value)
    added = bulk.bulk_insert(batch)
    bulk.check_invariants()
    assert added == len(bulk) - sum(
        1 for _ in {(k, v) for k, v in existing})
    assert len(bulk) == len(sequential)
    assert list(bulk.items()) == list(sequential.items())


def test_bulk_insert_into_empty_and_again():
    tree = BPlusTree(order=4)
    assert tree.bulk_insert([(i, i) for i in range(100)]) == 100
    tree.check_invariants()
    assert tree.bulk_insert([(i, i + 1) for i in range(50, 150)]) == 100
    tree.check_invariants()
    assert len(tree) == 200
    assert tree.get(75) == [75, 76]
    got = [k for k, _ in tree.range(90, 110)]
    assert got == sorted(k for k in range(90, 111) for _ in
                         ([0, 1] if 50 <= k < 100 else [0]))
