"""SimClock: monotonicity, spans, and the parallel-overlap helper."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import SimClock


def test_starts_at_zero_by_default():
    assert SimClock().now() == 0.0


def test_starts_at_given_time():
    assert SimClock(5.5).now() == 5.5


def test_charge_advances():
    clock = SimClock()
    clock.charge(1.25)
    clock.charge(0.75)
    assert clock.now() == 2.0


def test_charge_zero_is_allowed():
    clock = SimClock()
    clock.charge(0.0)
    assert clock.now() == 0.0


def test_negative_charge_rejected():
    with pytest.raises(SimulationError):
        SimClock().charge(-0.1)


def test_advance_to_future():
    clock = SimClock()
    clock.advance_to(10.0)
    assert clock.now() == 10.0


def test_advance_to_past_rejected():
    clock = SimClock(5.0)
    with pytest.raises(SimulationError):
        clock.advance_to(4.0)


def test_span_measures_elapsed():
    clock = SimClock()
    span = clock.span()
    clock.charge(3.0)
    assert span.elapsed() == 3.0
    clock.charge(1.0)
    assert span.elapsed() == 4.0


def test_span_start_recorded():
    clock = SimClock(2.0)
    span = clock.span()
    assert span.start == 2.0


def test_parallel_takes_slowest_leg():
    clock = SimClock()
    durations = [0.5, 2.0, 1.0]

    def make(d):
        return lambda: clock.charge(d)

    clock.parallel([make(d) for d in durations])
    assert clock.now() == pytest.approx(2.0)


def test_parallel_returns_results_in_order():
    clock = SimClock()
    results = clock.parallel([lambda: "a", lambda: "b"])
    assert results == ["a", "b"]


def test_parallel_empty_is_noop():
    clock = SimClock(1.0)
    assert clock.parallel([]) == []
    assert clock.now() == 1.0


def test_parallel_side_effects_all_happen():
    clock = SimClock()
    box = []
    clock.parallel([lambda: box.append(1), lambda: box.append(2)])
    assert box == [1, 2]
