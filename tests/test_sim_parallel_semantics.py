"""The overlap semantics that every benchmark's validity rests on:
nested SimClock.parallel, multicall charging, and span composition."""

import pytest

from repro.sim.clock import SimClock
from repro.sim.machine import Cluster
from repro.sim.network import NetworkModel
from repro.sim.rpc import RpcEndpoint, RpcNetwork


def test_nested_parallel_composes():
    clock = SimClock()

    def inner_pair(a, b):
        # Two legs inside one outer leg.
        clock.parallel([lambda: clock.charge(a), lambda: clock.charge(b)])

    clock.parallel([
        lambda: inner_pair(1.0, 2.0),   # outer leg 1: max(1,2) = 2
        lambda: clock.charge(3.0),      # outer leg 2: 3
    ])
    assert clock.now() == pytest.approx(3.0)


def test_parallel_then_sequential_charges_add():
    clock = SimClock()
    clock.parallel([lambda: clock.charge(2.0), lambda: clock.charge(1.0)])
    clock.charge(0.5)
    assert clock.now() == pytest.approx(2.5)


def test_span_inside_parallel_measures_leg_time():
    clock = SimClock()
    measured = []

    def leg(duration):
        span = clock.span()
        clock.charge(duration)
        measured.append(span.elapsed())

    clock.parallel([lambda: leg(1.0), lambda: leg(4.0)])
    assert measured == [pytest.approx(1.0), pytest.approx(4.0)]
    assert clock.now() == pytest.approx(4.0)


def test_multicall_overlaps_network_but_runs_all_handlers():
    cluster = Cluster(["a", "b", "c"])
    rpc = RpcNetwork(cluster.network)
    calls = []
    for name in ("a", "b", "c"):
        endpoint = RpcEndpoint(name)
        endpoint.register("work", lambda n=name: calls.append(n))
        rpc.add_endpoint(endpoint)
    t0 = cluster.clock.now()
    rpc.multicall(["a", "b", "c"], "work")
    # Network cost ≈ one round trip (legs overlap), not three.
    assert cluster.clock.now() - t0 < 3 * 2 * cluster.network.latency_s
    assert calls == ["a", "b", "c"]


def test_parallel_search_model_cluster_speedup():
    """The exact pattern the client uses: per-node handler work wrapped
    in clock.parallel must scale with the slowest node, not the sum."""
    cluster = Cluster(["n1", "n2", "n3", "n4"])
    clock = cluster.clock

    def node_work(seconds):
        return lambda: clock.charge(seconds)

    start = clock.now()
    clock.parallel([node_work(0.25) for _ in range(4)])
    four_nodes = clock.now() - start
    start = clock.now()
    clock.parallel([node_work(1.0)])
    one_node = clock.now() - start
    assert one_node / four_nodes == pytest.approx(4.0)
