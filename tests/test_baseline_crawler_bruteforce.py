"""Crawler (Spotlight analog) and brute-force baselines."""

import pytest

from repro.baselines.bruteforce import BruteForceSearcher, brute_force_search
from repro.baselines.crawler import CrawlerConfig, CrawlerSearchEngine
from repro.fs.vfs import OpenMode, VirtualFileSystem
from repro.metrics.recall import recall
from repro.sim.clock import SimClock
from repro.sim.events import EventLoop


def make_world(**config_kwargs):
    clock = SimClock()
    vfs = VirtualFileSystem(clock)
    loop = EventLoop(clock)
    config = CrawlerConfig(**config_kwargs) if config_kwargs else CrawlerConfig()
    crawler = CrawlerSearchEngine(vfs, loop, config)
    vfs.mkdir("/data")
    return clock, vfs, loop, crawler


def test_full_rebuild_indexes_supported_types():
    _, vfs, _, crawler = make_world()
    vfs.write_file("/data/doc.txt", 20 * 1024**2)
    vfs.write_file("/data/blob.xyz", 20 * 1024**2)  # unsupported type
    crawler.full_rebuild()
    assert crawler.query("size>1m") == ["/data/doc.txt"]


def test_recall_capped_by_type_coverage():
    _, vfs, _, crawler = make_world()
    for i in range(10):
        vfs.write_file(f"/data/f{i}.txt", 10)
    for i in range(10):
        vfs.write_file(f"/data/f{i}.bin", 10)
    crawler.full_rebuild()
    got = crawler.query("size>0")
    truth = [p for p, _ in vfs.namespace.files()]
    assert recall(got, truth) == pytest.approx(0.5)


def test_new_files_invisible_until_pass_runs():
    _, vfs, loop, crawler = make_world(pass_trigger_dirty=10**9,
                                       pass_period_s=30.0)
    crawler.full_rebuild()
    vfs.write_file("/data/new.txt", 10)
    assert crawler.query("size>0") == []      # asynchronous: not yet seen
    loop.run_until(31.0)                       # periodic pass fires
    # The pass takes re-index time; wait it out.
    loop.run_until(crawler._reindexing_until + 1.0)
    assert crawler.query("size>0") == ["/data/new.txt"]


def test_queries_degrade_during_reindex():
    clock, vfs, loop, crawler = make_world(pass_trigger_dirty=5,
                                           reindex_rate_fps=1.0)
    crawler.full_rebuild()
    for i in range(6):
        vfs.write_file(f"/data/f{i}.txt", 10)
    # The dirty threshold forced a pass; it runs for ~6 s of virtual time.
    assert crawler.query("size>0") == []      # recall collapses to 0
    loop.run_until(clock.now() + 100.0)
    assert len(crawler.query("size>0")) == 6


def test_deletions_eventually_disappear():
    _, vfs, loop, crawler = make_world(pass_trigger_dirty=1)
    vfs.write_file("/data/f.txt", 10)
    crawler.full_rebuild()
    vfs.unlink("/data/f.txt")
    crawler._ingest_notifications()
    crawler._run_pass()
    assert crawler.query("size>0") == []


def test_modification_updates_snapshot_after_pass():
    clock, vfs, loop, crawler = make_world(pass_trigger_dirty=1,
                                           reindex_rate_fps=1000.0)
    vfs.write_file("/data/f.txt", 10)
    crawler.full_rebuild()
    fd = vfs.open("/data/f.txt", OpenMode.WRITE)
    vfs.write(fd, 64 * 1024**2)
    vfs.close(fd)
    crawler._ingest_notifications()
    loop.run_until(clock.now() + 10)
    assert crawler.query("size>1m") == ["/data/f.txt"]


def test_query_charges_latency():
    clock, vfs, _, crawler = make_world()
    vfs.write_file("/data/f.txt", 10)
    crawler.full_rebuild()
    t0 = clock.now()
    crawler.query("size>0")
    assert clock.now() - t0 >= crawler.config.query_cost_s


def test_dirty_backlog_visible():
    _, vfs, _, crawler = make_world(pass_trigger_dirty=10**9)
    crawler.full_rebuild()
    vfs.write_file("/data/a.txt", 1)
    vfs.write_file("/data/b.txt", 1)
    assert crawler.dirty_backlog >= 2


# -- brute force -----------------------------------------------------------------

def test_brute_force_always_exact():
    clock = SimClock()
    vfs = VirtualFileSystem(clock)
    vfs.mkdir("/d")
    vfs.write_file("/d/big.bin", 64 * 1024**2)
    vfs.write_file("/d/small.bin", 10)
    assert brute_force_search(vfs, "size>16m") == ["/d/big.bin"]


def test_brute_force_user_attributes():
    vfs = VirtualFileSystem(SimClock())
    vfs.mkdir("/d")
    vfs.write_file("/d/p1", 10)
    vfs.setattr("/d/p1", "energy", -5.0)
    vfs.write_file("/d/p2", 10)
    vfs.setattr("/d/p2", "energy", 3.0)
    assert brute_force_search(vfs, "energy<0") == ["/d/p1"]


def test_brute_force_cold_slower_than_warm():
    from repro.sim.disk import DiskDevice
    from repro.sim.memory import PageCache
    clock = SimClock()
    vfs = VirtualFileSystem(clock)
    vfs.mkdir("/d")
    for i in range(500):
        vfs.write_file(f"/d/f{i}", i)
    cache = PageCache(DiskDevice(clock), 64 * 1024**2)
    searcher = BruteForceSearcher(vfs, page_cache=cache)
    t0 = clock.now()
    searcher.query("size>100")
    cold = clock.now() - t0
    t1 = clock.now()
    searcher.query("size>100")
    warm = clock.now() - t1
    assert cold > 10 * warm
