"""AccessCausalityGraph: edges, components (vs networkx oracle), subgraphs."""

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.acg import AccessCausalityGraph


def test_empty_graph():
    graph = AccessCausalityGraph()
    assert graph.vertex_count == 0
    assert graph.edge_count == 0
    assert graph.connected_components() == []


def test_add_file_creates_isolated_vertex():
    graph = AccessCausalityGraph()
    graph.add_file(1)
    assert graph.vertex_count == 1
    assert graph.connected_components() == [{1}]


def test_add_causality_creates_weighted_edge():
    graph = AccessCausalityGraph()
    graph.add_causality(1, 2)
    graph.add_causality(1, 2)
    graph.add_causality(1, 2, weight=3)
    assert graph.weight(1, 2) == 5
    assert graph.edge_count == 1
    assert graph.total_weight == 5


def test_direction_matters_for_weights():
    graph = AccessCausalityGraph()
    graph.add_causality(1, 2)
    assert graph.weight(2, 1) == 0
    graph.add_causality(2, 1, weight=4)
    assert graph.weight(2, 1) == 4
    assert graph.edge_count == 2


def test_self_loop_rejected():
    graph = AccessCausalityGraph()
    with pytest.raises(ValueError):
        graph.add_causality(1, 1)


def test_nonpositive_weight_rejected():
    graph = AccessCausalityGraph()
    with pytest.raises(ValueError):
        graph.add_causality(1, 2, weight=0)


def test_successors_predecessors():
    graph = AccessCausalityGraph()
    graph.add_causality(1, 2, 5)
    graph.add_causality(3, 2, 7)
    assert graph.successors(1) == {2: 5}
    assert graph.predecessors(2) == {1: 5, 3: 7}
    assert graph.neighbors(2) == {1, 3}


def test_remove_file_cleans_both_directions():
    graph = AccessCausalityGraph()
    graph.add_causality(1, 2)
    graph.add_causality(2, 3)
    graph.remove_file(2)
    assert not graph.has_vertex(2)
    assert graph.successors(1) == {}
    assert graph.predecessors(3) == {}
    assert graph.edge_count == 0


def test_merge_sums_weights():
    a = AccessCausalityGraph()
    a.add_causality(1, 2, 2)
    b = AccessCausalityGraph()
    b.add_causality(1, 2, 3)
    b.add_causality(4, 5, 1)
    b.add_file(9)
    a.merge(b)
    assert a.weight(1, 2) == 5
    assert a.weight(4, 5) == 1
    assert a.has_vertex(9)


def test_connected_components_largest_first():
    graph = AccessCausalityGraph()
    for i in range(5):
        graph.add_causality(i, i + 1)
    graph.add_causality(100, 101)
    graph.add_file(999)
    components = graph.connected_components()
    assert [len(c) for c in components] == [6, 2, 1]


def test_components_use_undirected_view():
    graph = AccessCausalityGraph()
    graph.add_causality(1, 2)
    graph.add_causality(3, 2)  # 3 -> 2: still connects 3 to {1, 2}
    assert graph.connected_components() == [{1, 2, 3}]


def test_subgraph_induces_edges():
    graph = AccessCausalityGraph()
    graph.add_causality(1, 2, 2)
    graph.add_causality(2, 3, 4)
    sub = graph.subgraph({1, 2})
    assert sub.weight(1, 2) == 2
    assert not sub.has_vertex(3)
    assert sub.edge_count == 1


def test_cut_weight():
    graph = AccessCausalityGraph()
    graph.add_causality(1, 2, 3)
    graph.add_causality(2, 3, 5)
    assert graph.cut_weight({1, 2}) == 5
    assert graph.cut_weight({2}) == 8


def test_undirected_adjacency_sums_both_directions():
    graph = AccessCausalityGraph()
    graph.add_causality(1, 2, 2)
    graph.add_causality(2, 1, 3)
    adj = graph.undirected_adjacency()
    assert adj[1][2] == 5
    assert adj[2][1] == 5


def test_records_roundtrip():
    graph = AccessCausalityGraph()
    graph.add_causality(1, 2, 2)
    graph.add_file(7)
    clone = AccessCausalityGraph.from_records(graph.to_records())
    assert clone.weight(1, 2) == 2
    assert clone.has_vertex(7)
    assert clone.vertex_count == graph.vertex_count


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 30), st.integers(0, 30)), max_size=80))
def test_property_components_match_networkx(edges):
    graph = AccessCausalityGraph()
    oracle = nx.Graph()
    for u, v in edges:
        if u == v:
            continue
        graph.add_causality(u, v)
        oracle.add_edge(u, v)
    ours = sorted(tuple(sorted(c)) for c in graph.connected_components())
    theirs = sorted(tuple(sorted(c)) for c in nx.connected_components(oracle))
    assert ours == theirs


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20),
                          st.integers(1, 5)), max_size=60))
def test_property_cut_weight_matches_networkx(edges):
    graph = AccessCausalityGraph()
    oracle = nx.Graph()
    for u, v, w in edges:
        if u == v:
            continue
        graph.add_causality(u, v, w)
        if oracle.has_edge(u, v):
            oracle[u][v]["weight"] += w
        else:
            oracle.add_edge(u, v, weight=w)
    vertices = sorted(set(graph.vertices()))
    side = set(vertices[: len(vertices) // 2])
    expected = sum(d["weight"] for u, v, d in oracle.edges(data=True)
                   if (u in side) != (v in side))
    assert graph.cut_weight(side) == expected
