"""Tests for the metrics registry (repro.obs.metrics) and the bounded
LatencyCollector mode that rides on the same reservoir technique."""

import random

import pytest

from repro.errors import SimulationError
from repro.metrics.stats import LatencyCollector
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_negative_increment_rejected(self):
        c = Counter("x")
        with pytest.raises(SimulationError):
            c.inc(-1)


class TestGauge:
    def test_set_overwrites(self):
        g = Gauge("x")
        g.set(3)
        g.set(7.5)
        assert g.value == 7.5

    def test_callable_gauge_reads_live_state(self):
        reg = MetricsRegistry()
        state = {"n": 1}
        reg.gauge_fn("live", lambda: state["n"])
        assert reg.value("live") == 1
        state["n"] = 42
        assert reg.value("live") == 42


class TestHistogram:
    def test_summary_exact_scalars(self):
        h = Histogram("lat")
        for v in (0.001, 0.002, 0.003, 0.010):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 4
        assert s["min"] == pytest.approx(0.001)
        assert s["max"] == pytest.approx(0.010)
        assert s["mean"] == pytest.approx(0.004)

    def test_percentiles_exact_under_reservoir_size(self):
        h = Histogram("lat")
        for i in range(1, 101):
            h.observe(i / 1000.0)
        assert h.percentile(50) == pytest.approx(0.050)
        assert h.percentile(99) == pytest.approx(0.099)
        assert h.percentile(100) == pytest.approx(0.100)

    def test_reservoir_bounds_memory_and_estimates_percentiles(self):
        h = Histogram("lat", reservoir_size=256)
        n = 20_000
        for i in range(n):
            h.observe(i / n)  # uniform on [0, 1)
        assert len(h._reservoir) == 256
        assert h.count == n
        # Uniform data: the p50 estimate should land near 0.5.
        assert h.percentile(50) == pytest.approx(0.5, abs=0.1)
        # min/max stay exact even though most samples were dropped.
        assert h.summary()["max"] == pytest.approx((n - 1) / n)

    def test_bucket_counts_cover_all_observations(self):
        h = Histogram("lat")
        for v in (5e-7, 3e-6, 0.5, 1e3):  # below, inside, inside, overflow
            h.observe(v)
        assert sum(h.bucket_counts) == 4
        assert h.bucket_counts[-1] == 1  # 1e3 > top bucket bound (100 s)

    def test_deterministic_across_instances(self):
        a = Histogram("a", reservoir_size=64)
        b = Histogram("b", reservoir_size=64)
        rng = random.Random(7)
        for _ in range(5000):
            v = rng.random()
            a.observe(v)
            b.observe(v)
        assert a.percentile(95) == b.percentile(95)


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a.b") is reg.counter("a.b")
        assert reg.histogram("a.h") is reg.histogram("a.h")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a.b")
        with pytest.raises(SimulationError):
            reg.gauge("a.b")
        with pytest.raises(SimulationError):
            reg.histogram("a.b")
        with pytest.raises(SimulationError):
            reg.gauge_fn("a.b", lambda: 0)

    def test_find_matches_dotted_prefix_only(self):
        reg = MetricsRegistry()
        reg.counter("cluster.in1.disk.reads")
        reg.counter("cluster.in10.disk.reads")
        reg.counter("cluster.in1.disk.writes")
        assert sorted(reg.find("cluster.in1")) == [
            "cluster.in1.disk.reads", "cluster.in1.disk.writes"]

    def test_snapshot_values(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(0.25)
        snap = reg.snapshot()
        assert snap["c"] == 3
        assert snap["g"] == 1.5
        assert snap["h"]["count"] == 1

    def test_snapshot_prefix_filters(self):
        reg = MetricsRegistry()
        reg.counter("a.x").inc()
        reg.counter("b.y").inc()
        assert list(reg.snapshot("a")) == ["a.x"]

    def test_value_unknown_name_raises(self):
        reg = MetricsRegistry()
        with pytest.raises(SimulationError):
            reg.value("nope")


class TestLatencyCollectorBounded:
    def test_default_mode_keeps_everything(self):
        lc = LatencyCollector("x")
        for i in range(100):
            lc.add(i / 100.0)
        assert len(lc.samples) == 100
        assert lc.percentile(50) == pytest.approx(0.50, abs=0.02)

    def test_bounded_mode_caps_retention_exact_scalars(self):
        lc = LatencyCollector("x", max_samples=128)
        n = 10_000
        for i in range(n):
            lc.add(i / n)
        assert len(lc) == n                 # count is exact
        assert len(lc.samples) == 128       # retention is bounded
        assert lc.total() == pytest.approx(sum(i / n for i in range(n)))
        assert lc.minimum() == 0.0
        assert lc.maximum() == (n - 1) / n
        assert lc.mean() == pytest.approx(lc.total() / n)
        # Percentiles become estimates but should stay in the ballpark.
        assert lc.percentile(50) == pytest.approx(0.5, abs=0.15)

    def test_bounded_mode_deterministic(self):
        runs = []
        for _ in range(2):
            lc = LatencyCollector("x", max_samples=32)
            for i in range(5000):
                lc.add((i * 37 % 1000) / 1000.0)
            runs.append((lc.percentile(50), lc.percentile(99), lc.samples))
        assert runs[0] == runs[1]

    def test_invalid_max_samples(self):
        with pytest.raises(ValueError):
            LatencyCollector("x", max_samples=0)


class TestStatsRegistryView:
    """PropellerService.stats() must be a faithful view of the registry."""

    def test_stats_matches_registry_values(self):
        from repro import IndexKind, PropellerService
        from repro.workloads.datasets import populate_namespace

        service = PropellerService(num_index_nodes=2)
        client = service.make_client()
        client.create_index("by_size", IndexKind.BTREE, ["size"])
        paths = populate_namespace(service.vfs, 200, seed=3)
        client.index_paths(paths, pid=1)
        client.flush_updates()
        service.commit_all()
        client.search("size>1m")

        stats = service.stats()
        reg = service.registry
        assert stats["indexed_files"] == reg.value("cluster.indexed_files")
        assert stats["partitions"] == reg.value("cluster.master.partitions")
        assert stats["network_messages"] == reg.value(
            "cluster.network.messages")
        for name, node_stats in stats["nodes"].items():
            assert node_stats["up"] is True
            assert node_stats["disk_reads"] == reg.value(
                f"cluster.{name}.disk.reads")
            assert node_stats["files"] == reg.value(f"cluster.{name}.files")

    def test_client_search_metrics_advance(self):
        from repro import IndexKind, PropellerService
        from repro.workloads.datasets import populate_namespace

        service = PropellerService(num_index_nodes=1)
        client = service.make_client()
        client.create_index("by_size", IndexKind.BTREE, ["size"])
        paths = populate_namespace(service.vfs, 100, seed=3)
        client.index_paths(paths, pid=1)
        client.flush_updates()
        service.commit_all()
        for _ in range(3):
            client.search("size>1m")
        assert service.registry.value("cluster.client.searches") == 3
        hist = service.registry.histogram("cluster.client.search_latency_s")
        assert hist.count == 3
        assert hist.mean > 0.0
