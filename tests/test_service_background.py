"""Service background machinery: periodic checkpoints, heartbeat-driven
splits over virtual time, and shared-storage hygiene."""

import pytest

from repro.cluster import PropellerService
from repro.cluster.persistence import PROPELLER_ROOT, list_checkpoints
from repro.core.partitioner import PartitioningPolicy
from repro.indexstructures import IndexKind


def build():
    service = PropellerService(
        num_index_nodes=2,
        policy=PartitioningPolicy(split_threshold=40, cluster_target=15))
    client = service.make_client()
    client.create_index("by_size", IndexKind.BTREE, ["size"])
    return service, client


def populate(service, client, n=30, pid=1):
    service.vfs.mkdir("/d", parents=True) if not service.vfs.exists("/d") else None
    start = service.vfs.namespace.file_count
    for i in range(n):
        path = f"/d/g{pid}_{i:03d}"
        service.vfs.write_file(path, 100 + i, pid=pid)
        client.index_path(path, pid=pid)
    client.flush_updates()


def test_periodic_checkpoints_appear_on_shared_storage():
    service, client = build()
    populate(service, client)
    assert not service.vfs.exists(PROPELLER_ROOT)
    service.advance(35.0)     # past the 30-s checkpoint period
    total = sum(len(list_checkpoints(service.vfs, name))
                for name in service.index_nodes)
    assert total >= 1
    assert service.master.checkpoints_written >= 1


def test_periodic_heartbeats_split_over_time():
    service, client = build()
    # One process chains 60 files into one partition (> threshold 40).
    # The Master only learns the oversize from the heartbeat round — it
    # no longer sees per-file placement on the update path.
    populate(service, client, n=60, pid=7)
    service.advance(6.0)      # one heartbeat round reports, then splits
    assert len(service.master.splits) >= 1
    sizes = [service.master._effective_size(p)
             for p in service.master.partitions.partitions()]
    assert max(sizes) <= 40
    # Results still complete after the background split.
    got = client.search("size>0")
    assert len(got) == 60


def test_checkpoint_files_are_system_owned_and_invisible_to_acg():
    service, client = build()
    populate(service, client)
    service.advance(35.0)
    # Shared-storage writes must not leak into any client's ACG or the
    # partition map.
    assert client.access_manager.peek().vertex_count <= 60
    for path, inode in service.vfs.namespace.files(PROPELLER_ROOT):
        assert service.master.partitions.partition_of(inode.ino) is None


def test_repeated_advance_is_stable():
    service, client = build()
    populate(service, client)
    for _ in range(5):
        service.advance(31.0)
    # Checkpoints overwrite in place: one file per (node, ACG), not one
    # per checkpoint round.
    for name in service.index_nodes:
        paths = list_checkpoints(service.vfs, name)
        assert len(paths) == len(service.index_nodes[name].replicas)


def test_stats_network_counters_monotone():
    service, client = build()
    populate(service, client)
    first = service.stats()["network_messages"]
    client.search("size>0")
    second = service.stats()["network_messages"]
    assert second > first
