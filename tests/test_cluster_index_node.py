"""IndexNode: update/commit/search paths, splits, migration, recovery."""

import pytest

from repro.cluster.index_node import IndexNode
from repro.cluster.messages import IndexUpdate
from repro.core.partitioner import PartitioningPolicy
from repro.errors import UnknownAcg
from repro.indexstructures import IndexKind
from repro.query.parser import parse_query
from repro.query.planner import IndexSpec
from repro.sim.clock import SimClock
from repro.sim.machine import Machine


@pytest.fixture
def node():
    node = IndexNode("in1", Machine(SimClock()), cache_timeout_s=5.0)
    node.handle_create_index(IndexSpec("by_size", IndexKind.BTREE, ("size",)))
    node.handle_create_index(IndexSpec("by_kw", IndexKind.HASH, ("keyword",)))
    return node


def up(fid, size, path=None):
    return IndexUpdate.upsert(fid, {"size": size},
                              path=path or f"/data/f{fid}.bin")


def search_ids(node, acg_ids, query):
    results = node.handle_search(acg_ids, parse_query(query))
    out = set()
    for r in results:
        out |= r.file_ids
    return out


def test_update_is_cached_not_committed(node):
    node.handle_index_update(1, [up(10, 100)])
    assert len(node.cache) == 1
    assert node.replica(1).file_count == 0


def test_update_appends_to_wal(node):
    node.handle_index_update(1, [up(10, 100), up(11, 200)])
    assert node.wal.records_appended == 2


def test_search_forces_commit_and_sees_update(node):
    node.handle_index_update(1, [up(10, 100)])
    assert search_ids(node, [1], "size>=100") == {10}
    assert len(node.cache) == 0


def test_search_only_commits_queried_acg(node):
    node.handle_index_update(1, [up(10, 100)])
    node.handle_index_update(2, [up(20, 100)])
    search_ids(node, [1], "size>0")
    assert node.cache.pending_acgs() == [2]


def test_tick_commits_after_timeout(node):
    node.handle_index_update(1, [up(10, 100)])
    node.machine.clock.charge(5.1)
    assert node.tick() == 1
    assert node.replica(1).file_count == 1
    # WAL is truncated once nothing is pending.
    assert len(node.wal) == 0


def test_tick_before_timeout_is_noop(node):
    node.handle_index_update(1, [up(10, 100)])
    node.machine.clock.charge(1.0)
    assert node.tick() == 0


def test_reupsert_replaces_old_index_entry(node):
    node.handle_index_update(1, [up(10, 100)])
    node.handle_index_update(1, [up(10, 5000)])
    assert search_ids(node, [1], "size==100") == set()
    assert search_ids(node, [1], "size==5000") == {10}


def test_delete_removes_from_index_and_store(node):
    node.handle_index_update(1, [up(10, 100)])
    node.handle_index_update(1, [IndexUpdate.delete(10)])
    assert search_ids(node, [1], "size>0") == set()
    assert node.replica(1).file_count == 0


def test_kd_index_tolerates_non_numeric_attributes(node):
    node.handle_create_index(IndexSpec("kd", IndexKind.KDTREE, ("size", "rank")))
    node.handle_index_update(1, [
        IndexUpdate.upsert(10, {"size": 100, "rank": 2.0}, path="/a"),
        IndexUpdate.upsert(11, {"size": 200, "rank": "gold"}, path="/b"),
        IndexUpdate.upsert(12, {"size": 300}, path="/c"),
    ])
    # Search still works: numeric rows via the KD index, the rest via
    # residual filtering on other paths.
    assert search_ids(node, [1], "size>0") == {10, 11, 12}
    assert search_ids(node, [1], "size>0 & rank>1") == {10}


def test_keyword_index_updates_on_path(node):
    node.handle_index_update(1, [up(10, 100, path="/home/firefox/prefs.js")])
    assert search_ids(node, [1], "keyword:firefox") == {10}


def test_search_unknown_acg_skipped(node):
    assert node.handle_search([99], parse_query("size>0")) == []


def test_replica_unknown_without_create(node):
    with pytest.raises(UnknownAcg):
        node.replica(7)


def test_create_index_backfills_existing_data(node):
    node.handle_index_update(1, [up(10, 100)])
    node.cache.commit_all()
    node.handle_create_index(IndexSpec("kd", IndexKind.KDTREE, ("size", "mtime")))
    replica = node.replica(1)
    assert "kd" in replica.indexes
    # The backfilled KD index only covers files with both attributes; our
    # update had no mtime, so it stays out of the KD tree but remains
    # searchable via by_size.
    assert search_ids(node, [1], "size>0") == {10}


def test_heartbeat_reports_sizes(node):
    node.handle_index_update(1, [up(10, 100), up(11, 100)])
    node.cache.commit_all()
    heartbeat = node.make_heartbeat()
    assert heartbeat.node == "in1"
    assert dict(heartbeat.acg_sizes)[1] == 2


def test_compute_split_balanced(node):
    updates = [up(i, 100) for i in range(40)]
    node.handle_index_update(1, updates)
    # Chain ACG: 0-1-2-...-39.
    records = [(i, i + 1, 1) for i in range(39)]
    node.handle_flush_acg(1, records)
    halves = node.handle_compute_split(1, PartitioningPolicy(split_threshold=20))
    assert len(halves[0]) + len(halves[1]) == 40
    assert abs(len(halves[0]) - len(halves[1])) <= 6


def test_extract_install_migration_roundtrip(node):
    node.handle_index_update(1, [up(i, 100 * i) for i in range(1, 6)])
    node.handle_flush_acg(1, [(1, 2, 3), (3, 4, 1)])
    payload = node.handle_extract_partition(1, [1, 2])
    # Source no longer serves the moved files.
    assert search_ids(node, [1], "size>0") == {3, 4, 5}
    other = IndexNode("in2", Machine(SimClock()))
    other.handle_create_index(IndexSpec("by_size", IndexKind.BTREE, ("size",)))
    assert other.handle_install_partition(7, payload) == 2
    assert search_ids(other, [7], "size>0") == {1, 2}
    # The moved ACG fragment came along.
    assert other.replica(7).graph.weight(1, 2) == 3


def test_drop_partition(node):
    node.handle_index_update(1, [up(10, 100)])
    node.cache.commit_all()
    node.handle_drop_partition(1)
    with pytest.raises(UnknownAcg):
        node.replica(1)


def test_wal_recovery_after_crash(node):
    node.handle_index_update(1, [up(10, 100), up(11, 200)])
    node.handle_index_update(2, [up(20, 300)])
    # Crash: the in-memory cache is lost, the WAL survives.
    crashed = IndexNode("in1b", Machine(SimClock()))
    crashed.handle_create_index(IndexSpec("by_size", IndexKind.BTREE, ("size",)))
    crashed.wal._buffer = bytearray(node.wal._buffer)
    assert crashed.recover_from_wal() == 3
    assert search_ids(crashed, [1], "size>0") == {10, 11}
    assert search_ids(crashed, [2], "size>0") == {20}
