"""Recall/precision, latency statistics, reporting."""

import pytest

from repro.metrics.recall import precision, recall
from repro.metrics.reporting import format_duration, render_series, render_table
from repro.metrics.stats import LatencyCollector, TimeSeries


def test_recall_basic():
    assert recall(["a", "b"], ["a", "b", "c", "d"]) == 0.5
    assert recall([], ["a"]) == 0.0
    assert recall(["a"], []) == 1.0
    assert recall(["a", "x"], ["a"]) == 1.0


def test_precision_basic():
    assert precision(["a", "x"], ["a"]) == 0.5
    assert precision([], ["a"]) == 1.0
    assert precision(["a"], ["a"]) == 1.0


def test_recall_ignores_duplicates():
    assert recall(["a", "a"], ["a", "b"]) == 0.5


def test_latency_collector_stats():
    collector = LatencyCollector("test")
    for v in (1.0, 2.0, 3.0, 4.0):
        collector.add(v)
    assert len(collector) == 4
    assert collector.mean() == 2.5
    assert collector.total() == 10.0
    assert collector.minimum() == 1.0
    assert collector.maximum() == 4.0
    assert collector.percentile(50) == 2.0
    assert collector.percentile(100) == 4.0
    assert collector.percentile(0) == 1.0


def test_latency_collector_empty():
    collector = LatencyCollector()
    assert collector.mean() == 0.0
    assert collector.percentile(99) == 0.0


def test_latency_percentile_validation():
    collector = LatencyCollector()
    collector.add(1.0)
    with pytest.raises(ValueError):
        collector.percentile(101)


def test_latency_summary_string():
    collector = LatencyCollector("search")
    collector.add(0.001)
    assert "search" in collector.summary()
    assert "n=1" in collector.summary()


def test_time_series():
    series = TimeSeries("recall")
    series.add(0.0, 1.0)
    series.add(10.0, 0.5)
    series.add(20.0, 0.0)
    assert len(series) == 3
    assert series.mean() == pytest.approx(0.5)
    assert series.minimum() == 0.0
    assert series.final() == 0.0
    assert series.points[0] == (0.0, 1.0)


def test_render_table_alignment():
    out = render_table(["name", "value"], [["a", 1], ["long-name", 2.5]],
                       title="My Table")
    lines = out.splitlines()
    assert lines[0] == "My Table"
    assert "name" in lines[1] and "value" in lines[1]
    assert len(lines) == 5
    # Columns align: separator row is as wide as the widest cell.
    assert len(lines[2].split("  ")[0]) == len("long-name")


def test_render_series():
    out = render_series("recall", [(0, 1.0), (10, 0.5)],
                        x_label="t(s)", y_label="recall")
    assert "recall" in out
    assert len(out.splitlines()) == 3


def test_format_duration_scales():
    assert format_duration(15.6e-6) == "15.6us"
    assert format_duration(0.0031) == "3.10ms"
    assert format_duration(2.5) == "2.500s"
