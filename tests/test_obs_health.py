"""The health plane: event journal, SLO burn-rate alerting, health
verdicts, ``repro status`` / ``repro events`` — and the end-to-end
acceptance story: a fault produces a causally-ordered, span-correlated
journal and a degraded→healthy verdict arc."""

import json

import pytest

from repro.cli import main
from repro.cluster import PropellerService
from repro.errors import StaleReplEpoch
from repro.indexstructures import IndexKind
from repro.obs.health import HealthMonitor, NULL_HEALTH
from repro.obs.journal import NULL_JOURNAL, EventJournal
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import NULL_SLOS, SloSpec, SloTracker, default_specs
from repro.obs.tracing import Tracer
from repro.sim.clock import SimClock
from repro.sim.machine import Machine


# -- journal ------------------------------------------------------------------

class TestEventJournal:
    def test_emit_stamps_seq_time_and_context(self):
        clock = SimClock()
        journal = EventJournal(clock)
        clock.charge(1.5)
        event = journal.emit("repl.fence", node="in2", acg_id=7,
                             repl_epoch=3, route_epoch=9, rpc="x")
        assert (event.seq, event.t) == (1, 1.5)
        assert event.node == "in2" and event.acg_id == 7
        assert event.detail == {"rpc": "x"}
        d = event.to_dict()
        assert d["repl_epoch"] == 3 and d["route_epoch"] == 9
        assert "payload" not in d and "span_id" not in d

    def test_type_filter_matches_exact_and_dotted_prefix(self):
        journal = EventJournal(SimClock())
        journal.emit("repl.fence")
        journal.emit("repl.epoch_bump")
        journal.emit("replication")  # not under the "repl." prefix
        journal.emit("node.crash")
        assert len(journal.events(type="repl")) == 2
        assert len(journal.events(type="repl.fence")) == 1
        assert journal.count("repl") == 2
        assert journal.count("node.crash") == 1

    def test_since_partition_and_node_filters(self):
        clock = SimClock()
        journal = EventJournal(clock)
        journal.emit("a", node="in1", acg_id=1)
        clock.charge(10.0)
        journal.emit("b", node="in2", acg_id=2)
        assert [e.type for e in journal.events(since=5.0)] == ["b"]
        assert [e.type for e in journal.events(acg_id=1)] == ["a"]
        assert [e.type for e in journal.events(node="in2")] == ["b"]

    def test_bounded_with_cumulative_counts_surviving_eviction(self):
        journal = EventJournal(SimClock(), maxlen=4)
        for _ in range(10):
            journal.emit("tick")
        assert len(journal) == 4
        digest = journal.digest()
        assert digest["total"] == 10 and digest["retained"] == 4
        assert digest["truncated"] == 6
        assert digest["by_type"] == {"tick": 10}
        assert journal.count("tick") == 10

    def test_events_carry_the_active_span_id(self):
        clock = SimClock()
        tracer = Tracer(clock)
        journal = EventJournal(clock, tracer=tracer)
        outside = journal.emit("outside")
        with tracer.span("failover"):
            inner_a = journal.emit("repl.epoch_bump")
            inner_b = journal.emit("route.epoch_bump")
        assert outside.span_id is None
        assert inner_a.span_id is not None
        assert inner_a.span_id == inner_b.span_id

    def test_payload_views_return_live_objects(self):
        journal = EventJournal(SimClock())
        record = {"outcome": "pending"}
        journal.emit("migration.start", payload=record)
        journal.emit("migration.done")  # no payload
        views = journal.payloads("migration")
        assert views == [record]
        record["outcome"] = "done"  # in-place mutation stays visible
        assert journal.payloads("migration")[0]["outcome"] == "done"

    def test_null_journal_is_inert(self):
        assert NULL_JOURNAL.emit("x", node="n") is None
        assert len(NULL_JOURNAL) == 0
        assert NULL_JOURNAL.events() == []
        assert NULL_JOURNAL.digest()["total"] == 0
        assert not NULL_JOURNAL.enabled


# -- SLO tracker --------------------------------------------------------------

def make_tracker(spec, clock=None, registry=None, journal=None):
    clock = clock or SimClock()
    registry = registry or MetricsRegistry()
    journal = journal if journal is not None else EventJournal(clock)
    tracker = SloTracker(clock, registry, journal=journal, specs=(spec,))
    return clock, registry, journal, tracker


class TestSloTracker:
    def test_histogram_breach_and_recover_emit_journal_events(self):
        spec = SloSpec("lat", "svc.latency_s", target=1.0, budget=0.01,
                       fast_window_s=10.0, slow_window_s=60.0)
        clock, registry, journal, tracker = make_tracker(spec)
        hist = registry.histogram("svc.latency_s")
        tracker.sample()  # baseline snapshot
        for _ in range(20):
            hist.observe(5.0)  # every event blows the 1s target
        clock.charge(1.0)
        tracker.sample()
        assert tracker.breached() == ["lat"]
        assert tracker.breach_count() == 1
        assert registry.counter("slo.lat.breaches").value == 1
        breach = journal.events(type="slo.breach")[-1]
        assert breach.detail["slo"] == "lat"
        assert breach.detail["fast_burn_rate"] >= spec.fast_burn
        # Clean fast window -> recover (no new bad events past it).
        clock.charge(spec.fast_window_s + 1.0)
        tracker.sample()
        clock.charge(1.0)
        tracker.sample()
        assert tracker.breached() == []
        assert journal.count("slo.recover") == 1
        # Breach transitions stay counted after recovery.
        assert tracker.breach_count() == 1

    def test_gauge_backed_spec_counts_samples(self):
        spec = SloSpec("down", "svc.nodes_down", target=0.0, budget=0.5,
                       fast_window_s=5.0, slow_window_s=30.0,
                       fast_burn=1.5, unit="nodes")
        clock, registry, journal, tracker = make_tracker(spec)
        state = {"down": 0}
        registry.gauge_fn("svc.nodes_down", lambda: state["down"])
        tracker.sample()
        state["down"] = 1
        for _ in range(3):
            clock.charge(1.0)
            tracker.sample()
        assert tracker.breached() == ["down"]
        state["down"] = 0
        clock.charge(spec.fast_window_s + 1.0)
        tracker.sample()
        clock.charge(1.0)
        tracker.sample()
        assert tracker.breached() == []

    def test_under_budget_bad_events_do_not_breach(self):
        spec = SloSpec("lat", "svc.latency_s", target=1.0, budget=0.5,
                       fast_window_s=10.0, slow_window_s=60.0)
        clock, registry, journal, tracker = make_tracker(spec)
        hist = registry.histogram("svc.latency_s")
        tracker.sample()
        for _ in range(20):
            hist.observe(0.5)  # all within target
        hist.observe(5.0)      # one bad event: 1/21 << 0.5 budget
        clock.charge(1.0)
        tracker.sample()
        assert tracker.breached() == []
        assert journal.count("slo.breach") == 0

    def test_breach_events_carry_a_span_id(self):
        spec = SloSpec("lat", "svc.latency_s", target=1.0, budget=0.01,
                       fast_window_s=10.0, slow_window_s=60.0)
        clock, registry, journal, tracker = make_tracker(spec)
        tracer = Tracer(clock)
        journal.tracer = tracer
        tracker.tracer = tracer
        hist = registry.histogram("svc.latency_s")
        tracker.sample()
        hist.observe(9.0)
        clock.charge(1.0)
        tracker.sample()
        breach = journal.events(type="slo.breach")[-1]
        assert breach.span_id is not None

    def test_summary_shape_and_duplicate_spec_rejected(self):
        clock = SimClock()
        registry = MetricsRegistry()
        tracker = SloTracker(clock, registry)
        assert sorted(s.name for s in tracker.specs()) == \
            sorted(s.name for s in default_specs())
        summary = tracker.summary()
        assert summary["breaches"] == 0 and summary["breached_now"] == []
        for body in summary["specs"].values():
            assert {"target", "observed", "fast_burn_rate",
                    "slow_burn_rate", "breached", "breaches"} <= set(body)
        with pytest.raises(ValueError):
            tracker.add_spec(default_specs()[0])

    def test_null_tracker_is_inert(self):
        NULL_SLOS.sample()
        assert NULL_SLOS.breached() == []
        assert NULL_SLOS.summary()["specs"] == {}


# -- health monitor -----------------------------------------------------------

def build_cluster(nodes=3, rf=2, files=60):
    service = PropellerService(num_index_nodes=nodes,
                               replication_factor=rf)
    client = service.make_client()
    client.create_index("by_size", IndexKind.BTREE, ["size"])
    service.vfs.mkdir("/d")
    paths = []
    for i in range(files):
        path = f"/d/f{i:03d}"
        service.vfs.write_file(path, 1024 * (i + 1), pid=1)
        paths.append(path)
    client.index_paths(paths, pid=1)
    client.flush_updates()
    service.advance(2.0)
    return service, client


class TestHealthMonitor:
    def test_healthy_cluster_verdict(self):
        service, _ = build_cluster()
        verdict = service.health.verdict()
        assert verdict.verdict == "healthy" and verdict.causes == ()
        assert all(v == "healthy" for v, _ in verdict.nodes.values())

    def test_gauges_registered_and_sane(self):
        service, _ = build_cluster()
        snapshot = service.registry.snapshot("cluster.health")
        assert snapshot["cluster.health.nodes_down"] == 0
        assert snapshot["cluster.health.repl_lag_max"] == 0
        assert snapshot["cluster.health.under_replicated"] == 0

    def test_registered_node_down_is_critical(self):
        service, _ = build_cluster()
        victim = next(iter(service.index_nodes))
        service.fail_node(victim)
        verdict = service.health.verdict()
        assert verdict.verdict == "critical"
        assert verdict.nodes[victim] == ("critical", ("down",))
        assert any(c.startswith("partitions_stranded")
                   or c.startswith(f"node_down:{victim}")
                   for c in verdict.causes)

    def test_departed_node_after_failover_is_degraded(self):
        service, _ = build_cluster()
        victim = next(iter(service.index_nodes))
        service.index_nodes[victim].crash()
        service.master.failover(victim)
        verdict = service.health.verdict()
        assert verdict.verdict == "degraded"
        assert verdict.nodes[victim][0] == "degraded"
        assert "departed" in verdict.nodes[victim][1]

    def test_verdict_transitions_are_journaled(self):
        service, _ = build_cluster()
        service.health.sample()
        victim = next(iter(service.index_nodes))
        service.index_nodes[victim].crash()
        service.health.sample()
        service.master.failover(victim)
        service.recover_node(victim)
        service.advance(5.0)
        types = [e.type for e in service.journal.events(type="health")]
        assert types[0] == "health.critical"
        assert types[-1] == "health.healthy"
        last = service.journal.events(type="health.healthy")[-1]
        assert last.detail["previous"] in ("degraded", "critical")

    def test_null_health_is_inert(self):
        NULL_HEALTH.sample()
        assert NULL_HEALTH.verdict().verdict == "healthy"
        assert NULL_HEALTH.summary()["gauges"] == {}


# -- threaded emissions -------------------------------------------------------

class TestClusterEmissions:
    def test_placement_emits_route_and_repl_epoch_bumps(self):
        service, _ = build_cluster()
        assert service.journal.count("route.epoch_bump") >= 1
        bump = service.journal.events(type="repl.epoch_bump")[0]
        assert bump.detail["reason"] in ("membership", "forced")
        assert bump.acg_id is not None and bump.repl_epoch is not None

    def test_failover_event_is_a_journal_view(self):
        service, _ = build_cluster()
        victim = next(iter(service.index_nodes))
        service.index_nodes[victim].crash()
        service.master.failover(victim)
        assert service.journal.count("failover") == 1
        event = service.journal.events(type="failover")[0]
        # The legacy failover_log is served from the same payloads.
        assert service.master.failover_log[-1] is event.payload
        assert event.type in ("failover.promoted", "failover.adopted")

    def test_stale_install_fences_and_journals(self):
        from repro.cluster.index_node import IndexNode

        node = IndexNode("f1", Machine(SimClock()))
        journal = EventJournal(node.machine.clock)
        node.journal = journal
        node.handle_install_follower(1, "p1", 3, 5, [], [])
        with pytest.raises(StaleReplEpoch):
            node.handle_install_follower(1, "p0", 2, 0, [], [])
        fence = journal.events(type="repl.fence")[-1]
        assert fence.node == "f1" and fence.acg_id == 1
        assert fence.detail["stale_epoch"] == 2
        assert fence.detail["rpc"] == "install_follower"

    def test_stale_replicate_apply_fences(self):
        from repro.cluster.index_node import IndexNode

        node = IndexNode("f1", Machine(SimClock()))
        journal = EventJournal(node.machine.clock)
        node.journal = journal
        node.handle_install_follower(1, "p1", 3, 0, [], [])
        with pytest.raises(StaleReplEpoch):
            node.handle_replicate_apply(1, 2, [])
        assert journal.count("repl.fence") == 1

    def test_node_crash_and_restart_are_journaled(self):
        service, _ = build_cluster()
        victim = next(iter(service.index_nodes))
        node = service.index_nodes[victim]
        node.crash()
        node.restart()
        crash = service.journal.events(type="node.crash")[-1]
        assert crash.node == victim
        assert service.journal.count("node.restart") == 1

    def test_chaos_fault_configuration_is_journaled(self):
        from repro.chaos.faults import FaultInjector

        clock = SimClock()
        journal = EventJournal(clock)
        faults = FaultInjector(seed=1, journal=journal)
        faults.set_message_faults(drop=0.1)
        faults.slow_node("in2", 0.5, probability=0.3)
        faults.arm_method_fault("in1", "search", count=2)
        faults.set_disk_error_rate(0.05)
        assert journal.count("chaos.fault_injected") == 4
        kinds = {e.detail["fault"]
                 for e in journal.events(type="chaos.fault_injected")}
        assert kinds == {"message_faults", "straggler", "armed_drop",
                         "disk_errors"}
        # A quiescent reconfiguration (all rates zero) is not a fault.
        faults.clear_message_faults()
        assert journal.count("chaos.fault_injected") == 4


# -- end-to-end acceptance ----------------------------------------------------

class TestEndToEnd:
    def test_fault_to_recovery_journal_is_causally_ordered(self):
        """The acceptance story: fault -> failover promotion (epoch
        bumps span-correlated) -> the deposed primary's stale write
        fenced -> SLO breach + recover -> verdict arc degraded ->
        healthy, all in one ordered journal."""
        service, client = build_cluster(nodes=3, rf=2, files=80)
        service.enable_tracing()
        # A tight SLO over the health plane's own gauge so the crash
        # window breaches deterministically and recovery clears it.
        service.slos.add_spec(SloSpec(
            "nodes_up", "cluster.health.nodes_down", target=0.0,
            budget=0.4, fast_window_s=4.0, slow_window_s=20.0,
            fast_burn=1.0, unit="nodes"))
        service.advance(2.0)
        assert service.status()["health"]["verdict"] == "healthy"

        # The victim must primary a replicated partition the client has
        # a cached route to, so the dual-ownership window below can ride
        # a real stale-routed update.
        victim = next(name for name, node in service.index_nodes.items()
                      if node.repl)
        victim_node = service.index_nodes[victim]
        stale_path = next(
            f"/d/f{i:03d}" for i in range(80)
            if client._file_routes.get(
                service.vfs.stat(f"/d/f{i:03d}").ino) in victim_node.repl)

        # Endpoint-only kill: the process (and its primary claim) stays.
        service.fail_node(victim)
        service.advance(3.0)
        assert service.status()["health"]["verdict"] == "critical"
        assert "nodes_up" in service.slos.breached()
        service.master.failover(victim)
        service.advance(1.0)
        assert service.status()["health"]["verdict"] == "degraded"

        # Dual-ownership window: the old primary comes back silently —
        # the Master failed it over, but it still claims its partition
        # at the stale epoch and the client still routes to it.  The
        # stale-routed re-index is accepted, the catch-up stream hits
        # the promoted follower, and the re-install is fenced
        # (own_primary_claim) — so the old primary deposes itself.
        victim_node.endpoint.recover()
        client.index_path(stale_path, pid=1)
        assert client.flush_updates() == 1   # stale primary acked it
        victim_node.tick()
        service.advance(1.0)
        assert victim_node.repl == {}        # deposed, claim dropped

        service.recover_node(victim)
        service.advance(10.0)

        status = service.status()
        assert status["health"]["verdict"] == "healthy"
        assert service.slos.breached() == []
        assert service.slos.breach_count() == 1

        # Causal order: fault before breach before failover-promotion
        # epoch bumps before fence/depose before rejoin before recover
        # before healthy.
        def first_seq(type):
            events = service.journal.events(type=type)
            assert events, f"no {type} event journaled"
            return events[0].seq

        crash = first_seq("node.crash")
        breach = first_seq("slo.breach")
        failover = first_seq("failover")
        fence = first_seq("repl.fence")
        depose = first_seq("repl.depose")
        rejoin = first_seq("node.rejoin")
        recover = first_seq("slo.recover")
        healthy = service.journal.events(type="health.healthy")[-1].seq
        assert (crash < breach < failover < fence < depose < rejoin
                < recover < healthy)

        # The fence names the protocol step and the stale claimant; the
        # depose lands on the fenced node.
        fence_event = service.journal.events(type="repl.fence")[0]
        assert fence_event.detail["reason"] == "own_primary_claim"
        assert fence_event.detail["primary"] == victim
        assert service.journal.events(type="repl.depose")[0].node == victim

        # Span correlation: events emitted inside the failover span
        # share its id, and the SLO alert carries its own span.
        promo = [e for e in service.journal.events(type="repl.epoch_bump")
                 if e.detail.get("reason") == "promotion"]
        assert promo and promo[0].span_id is not None
        routes = [e for e in service.journal.events(type="route.epoch_bump")
                  if e.span_id == promo[0].span_id]
        assert routes, "promotion and rebump should share the failover span"
        assert service.journal.events(type="slo.breach")[0].span_id \
            is not None

    def test_status_snapshot_sections(self):
        service, _ = build_cluster()
        status = service.status(events_tail=5)
        assert set(status) == {"health", "slo", "master", "stats",
                               "journal", "events", "tiers"}
        assert status["master"]["acting"] == "master"
        assert status["master"]["term"] == 1
        assert status["master"]["standby_lag"] is None
        assert len(status["events"]) <= 5
        assert status["journal"]["total"] >= len(status["events"])
        json.dumps(status, sort_keys=True)  # JSON-clean end to end


# -- CLI ----------------------------------------------------------------------

class TestCli:
    def test_status_json(self, capsys):
        assert main(["status", "--nodes", "2", "--files", "80",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["health"]["verdict"] == "healthy"
        assert payload["slo"]["breaches"] == 0
        assert payload["journal"]["by_type"]

    def test_status_dashboard_text(self, capsys):
        assert main(["status", "--nodes", "2", "--files", "80"]) == 0
        out = capsys.readouterr().out
        assert "health: HEALTHY" in out
        assert "health gauges" in out and "slos" in out
        assert "route.epoch_bump" in out

    def test_events_filters_and_json(self, capsys):
        assert main(["events", "--nodes", "2", "--files", "80",
                     "--type", "repl", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["events"]
        assert all(e["type"].startswith("repl") for e in payload["events"])

    def test_events_text_lists_journal(self, capsys):
        assert main(["events", "--nodes", "2", "--files", "80",
                     "--tail", "3"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 4  # 3 events + the summary line
        assert out[-1].startswith("#")

    def test_status_with_chaos_seed_is_deterministic(self, capsys):
        args = ["status", "--chaos-seed", "3", "--chaos-steps", "12",
                "--json"]
        main(args)
        first = capsys.readouterr().out
        main(args)
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert payload["journal"]["by_type"].get("chaos.fault_injected",
                                                 0) >= 1
