"""PropellerClient + PropellerService integration."""

import pytest

from repro.cluster import PropellerService
from repro.core.partitioner import PartitioningPolicy
from repro.errors import QueryError
from repro.fs.vfs import OpenMode
from repro.indexstructures import IndexKind


def populate(service, client, n=300, pid=9, big_every=10):
    vfs = service.vfs
    vfs.mkdir("/data")
    paths = []
    for i in range(n):
        size = 64 * 1024**2 if i % big_every == 0 else 1024
        path = f"/data/file{i:05d}.bin"
        vfs.write_file(path, size, pid=pid)
        paths.append(path)
    client.index_paths(paths, pid=pid)
    client.flush_updates()
    return paths


def test_search_matches_ground_truth(indexed_service):
    service, client = indexed_service
    populate(service, client)
    got = client.search("size>16m")
    want = sorted(p for p, i in service.vfs.namespace.files()
                  if i.size > 16 * 1024**2)
    assert got == want


def test_search_ids(indexed_service):
    service, client = indexed_service
    populate(service, client, n=50)
    ids = client.search_ids("size>16m")
    want = {i.ino for _, i in service.vfs.namespace.files()
            if i.size > 16 * 1024**2}
    assert ids == want


def test_keyword_search(indexed_service):
    service, client = indexed_service
    populate(service, client, n=30)
    assert client.search("keyword:file00007") == ["/data/file00007.bin"]


def test_query_directory_scoping(indexed_service):
    service, client = indexed_service
    populate(service, client, n=30)
    service.vfs.mkdir("/other")
    service.vfs.write_file("/other/huge.bin", 64 * 1024**2, pid=9)
    client.index_path("/other/huge.bin", pid=9)
    scoped = client.search_directory("/data/?size>16m")
    assert all(p.startswith("/data/") for p in scoped)
    assert "/other/huge.bin" in client.search_directory("/?size>16m")


def test_search_reflects_every_acknowledged_update(indexed_service):
    """The consistency property: no staleness, ever."""
    service, client = indexed_service
    populate(service, client, n=100)
    vfs = service.vfs
    # Update a file, search immediately — must see the new size.
    fd = vfs.open("/data/file00001.bin", OpenMode.WRITE, pid=9)
    vfs.write(fd, 128 * 1024**2)
    vfs.close(fd)
    client.index_path("/data/file00001.bin", pid=9)
    assert "/data/file00001.bin" in client.search("size>100m")


def test_unlink_disappears_from_results(indexed_service):
    service, client = indexed_service
    populate(service, client, n=40)
    before = client.search("size>16m")
    victim = before[0]
    service.vfs.unlink(victim, pid=9)
    after = client.search("size>16m")
    assert victim not in after
    assert set(after) == set(before) - {victim}


def test_empty_cluster_search(indexed_service):
    _, client = indexed_service
    assert client.search("size>0") == []


def test_invalid_query_raises(indexed_service):
    _, client = indexed_service
    with pytest.raises(QueryError):
        client.search("size >")


def test_updates_batch_by_default(indexed_service):
    service, client = indexed_service
    vfs = service.vfs
    vfs.mkdir("/b")
    for i in range(client.batch_size - 1):
        vfs.write_file(f"/b/f{i}", 10, pid=3)
        client.index_path(f"/b/f{i}", pid=3)
    assert client.updates_sent == 0          # still buffered
    vfs.write_file("/b/last", 10, pid=3)
    client.index_path("/b/last", pid=3)      # fills the batch
    assert client.updates_sent == client.batch_size


def test_acg_flush_reaches_index_nodes(indexed_service):
    service, client = indexed_service
    vfs = service.vfs
    vfs.mkdir("/src")
    a = vfs.write_file("/src/a.c", 10, pid=7)
    client.index_path("/src/a.c", pid=7)
    vfs.clock.charge(0.01)
    b = vfs.write_file("/src/a.o", 10, pid=7)
    client.index_path("/src/a.o", pid=7)
    client.flush_updates()
    client.process_finished(7)
    total_weight = sum(replica.graph.weight(a.ino, b.ino)
                       for node in service.index_nodes.values()
                       for replica in node.replicas.values())
    assert total_weight >= 1


def test_causal_files_share_partition(indexed_service):
    service, client = indexed_service
    vfs = service.vfs
    vfs.mkdir("/build")
    previous = None
    for i in range(20):
        path = f"/build/out{i}.o"
        vfs.write_file(path, 10, pid=4)
        client.index_path(path, pid=4)
    client.flush_updates()
    partitions = {service.master.partitions.partition_of(i.ino)
                  for p, i in service.vfs.namespace.files("/build")}
    assert len(partitions) == 1


def test_background_split_keeps_results_complete():
    service = PropellerService(
        num_index_nodes=2,
        policy=PartitioningPolicy(split_threshold=60, cluster_target=30))
    client = service.make_client()
    client.create_index("by_size", IndexKind.BTREE, ["size"])
    vfs = service.vfs
    vfs.mkdir("/d")
    for i in range(150):
        vfs.write_file(f"/d/f{i:03d}", 10 + i, pid=5)
        client.index_path(f"/d/f{i:03d}", pid=5)
    client.flush_updates()
    client.flush_acg()
    service.master.poll_heartbeats()
    assert len(service.master.splits) >= 1
    got = client.search("size>0")
    assert got == sorted(p for p, _ in vfs.namespace.files())


def test_single_node_mode():
    service = PropellerService(num_index_nodes=1, single_node=True)
    client = service.make_client()
    client.create_index("by_size", IndexKind.BTREE, ["size"])
    vfs = service.vfs
    vfs.mkdir("/d")
    vfs.write_file("/d/big", 64 * 1024**2, pid=1)
    client.index_path("/d/big", pid=1)
    assert client.search("size>1m") == ["/d/big"]
    assert len(service.cluster) == 1   # MN and IN co-located


def test_service_validates_node_count():
    with pytest.raises(ValueError):
        PropellerService(num_index_nodes=0)


def test_advance_runs_background_commits(indexed_service):
    service, client = indexed_service
    vfs = service.vfs
    vfs.mkdir("/d")
    vfs.write_file("/d/f", 100, pid=1)
    client.index_path("/d/f", pid=1)
    client.flush_updates()
    pending_before = sum(len(n.cache) for n in service.index_nodes.values())
    assert pending_before == 1
    service.advance(10.0)   # past the 5 s cache timeout
    pending_after = sum(len(n.cache) for n in service.index_nodes.values())
    assert pending_after == 0


def test_total_indexed_files_counts_committed(indexed_service):
    service, client = indexed_service
    populate(service, client, n=25)
    service.commit_all()
    assert service.total_indexed_files() == 25


def test_pid_filtered_clients_see_disjoint_processes():
    service = PropellerService(num_index_nodes=2)
    client_a = service.make_client(pid_filter={1})
    client_b = service.make_client(pid_filter={2})
    vfs = service.vfs
    vfs.mkdir("/d")
    vfs.write_file("/d/a", 10, pid=1)
    vfs.write_file("/d/b", 10, pid=2)
    assert client_a.access_manager.peek().vertex_count == 1
    assert client_b.access_manager.peek().vertex_count == 1
