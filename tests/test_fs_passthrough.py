"""Profiled file systems (Table VI substrate)."""

import pytest

from repro.fs.passthrough import FSProfile, PROFILES, ProfiledFS
from repro.fs.vfs import OpenMode, VirtualFileSystem
from repro.sim.clock import SimClock


def make_pfs(profile="ext4", index_hook=None):
    vfs = VirtualFileSystem(SimClock())
    return ProfiledFS(vfs, PROFILES[profile], index_hook=index_hook)


def test_profiles_present_for_table6():
    assert set(PROFILES) == {"ext4", "btrfs", "ptfs", "ntfs-3g", "zfs-fuse"}


def test_fuse_profiles_marked():
    assert PROFILES["ptfs"].fuse
    assert PROFILES["ntfs-3g"].fuse
    assert not PROFILES["ext4"].fuse


def test_create_charges_profile_cost():
    pfs = make_pfs()
    pfs.create("/f")
    assert pfs.clock.now() == pytest.approx(PROFILES["ext4"].create_cost_s)


def test_ext4_creates_faster_than_zfs_fuse():
    fast, slow = make_pfs("ext4"), make_pfs("zfs-fuse")
    fast.create("/f")
    slow.create("/f")
    assert fast.clock.now() < slow.clock.now()


def test_write_cost_proportional_to_bytes():
    pfs = make_pfs()
    fd = pfs.open("/f", OpenMode.WRITE, create=True)
    t0 = pfs.clock.now()
    pfs.write(fd, 84_000_000)  # one second at ext4's write rate
    assert pfs.clock.now() - t0 == pytest.approx(1.0)
    pfs.close(fd)


def test_open_create_flag_charges_create():
    pfs = make_pfs()
    fd = pfs.open("/new", OpenMode.WRITE, create=True)
    pfs.close(fd)
    assert pfs.vfs.exists("/new")
    assert pfs.clock.now() > PROFILES["ext4"].create_cost_s


def test_unlink_goes_through_vfs():
    pfs = make_pfs()
    pfs.create("/f")
    pfs.unlink("/f")
    assert not pfs.vfs.exists("/f")


def test_index_hook_fires_on_create_and_write_close():
    hooked = []
    pfs = make_pfs(index_hook=lambda p, i: hooked.append(p))
    pfs.create("/a")
    fd = pfs.open("/b", OpenMode.WRITE, create=True)
    pfs.write(fd, 10)
    pfs.close(fd)
    assert hooked.count("/a") == 1
    assert hooked.count("/b") == 2  # at create and at write-close


def test_index_hook_fires_on_unlink():
    hooked = []
    pfs = make_pfs(index_hook=lambda p, i: hooked.append(p))
    pfs.create("/f")
    pfs.unlink("/f")
    assert hooked == ["/f", "/f"]


def test_read_only_close_does_not_reindex():
    hooked = []
    pfs = make_pfs(index_hook=lambda p, i: hooked.append(p))
    pfs.create("/f")
    hooked.clear()
    fd = pfs.open("/f", OpenMode.READ)
    pfs.read(fd, 10)
    pfs.close(fd)
    assert hooked == []


def test_inline_indexing_slows_the_fs_down():
    plain = make_pfs("ptfs")
    indexed = make_pfs("ptfs", index_hook=lambda p, i: indexed.clock.charge(100e-6))
    for pfs in (plain, indexed):
        for i in range(50):
            fd = pfs.open(f"/f{i}", OpenMode.WRITE, create=True)
            pfs.write(fd, 1000)
            pfs.close(fd)
    assert indexed.clock.now() > plain.clock.now()
