"""VirtualFileSystem: I/O semantics, observers, attribute updates."""

import pytest

from repro.errors import BadFileDescriptor, IsADirectory
from repro.fs.vfs import OpenMode, VirtualFileSystem
from repro.sim.clock import SimClock


@pytest.fixture
def vfs():
    return VirtualFileSystem(SimClock())


def test_open_missing_without_create(vfs):
    from repro.errors import FileNotFound
    with pytest.raises(FileNotFound):
        vfs.open("/nope")


def test_open_create_then_write_updates_size_and_mtime(vfs):
    fd = vfs.open("/f", OpenMode.WRITE, create=True)
    vfs.clock.charge(2.0)
    vfs.write(fd, 100)
    vfs.close(fd)
    inode = vfs.stat("/f")
    assert inode.size == 100
    # The open itself charged a syscall's worth of time before the write.
    assert inode.mtime == pytest.approx(2.0, abs=1e-5)


def test_write_appends(vfs):
    fd = vfs.open("/f", OpenMode.WRITE, create=True)
    vfs.write(fd, 100)
    vfs.write(fd, 50)
    vfs.close(fd)
    assert vfs.stat("/f").size == 150


def test_truncate(vfs):
    vfs.write_file("/f", 100)
    fd = vfs.open("/f", OpenMode.WRITE)
    vfs.truncate(fd)
    vfs.close(fd)
    assert vfs.stat("/f").size == 0


def test_read_returns_available_bytes(vfs):
    vfs.write_file("/f", 100)
    fd = vfs.open("/f", OpenMode.READ)
    assert vfs.read(fd, 40) == 40
    assert vfs.read(fd, 400) == 100
    vfs.close(fd)


def test_mode_enforcement(vfs):
    vfs.write_file("/f", 10)
    fd = vfs.open("/f", OpenMode.READ)
    with pytest.raises(BadFileDescriptor):
        vfs.write(fd, 1)
    vfs.close(fd)
    fd = vfs.open("/f", OpenMode.WRITE)
    with pytest.raises(BadFileDescriptor):
        vfs.read(fd, 1)
    vfs.close(fd)


def test_rw_mode_allows_both(vfs):
    fd = vfs.open("/f", OpenMode.RW, create=True)
    vfs.write(fd, 10)
    assert vfs.read(fd, 5) == 5
    vfs.close(fd)


def test_bad_fd(vfs):
    with pytest.raises(BadFileDescriptor):
        vfs.write(999, 1)
    with pytest.raises(BadFileDescriptor):
        vfs.close(999)


def test_double_close(vfs):
    fd = vfs.open("/f", OpenMode.WRITE, create=True)
    vfs.close(fd)
    with pytest.raises(BadFileDescriptor):
        vfs.close(fd)


def test_open_directory_rejected(vfs):
    vfs.mkdir("/d")
    with pytest.raises(IsADirectory):
        vfs.open("/d")


def test_setattr_user_defined(vfs):
    vfs.write_file("/f", 1)
    vfs.setattr("/f", "protein_energy", -42.5)
    assert vfs.stat("/f").attributes["protein_energy"] == -42.5


class Recorder:
    def __init__(self):
        self.calls = []

    def on_open(self, pid, path, inode, mode, t):
        self.calls.append(("open", pid, path))

    def on_close(self, pid, path, inode, mode, t):
        self.calls.append(("close", pid, path))

    def on_create(self, pid, path, inode, t):
        self.calls.append(("create", pid, path))

    def on_unlink(self, pid, path, inode, t):
        self.calls.append(("unlink", pid, path))

    def on_write(self, pid, path, inode, nbytes, t):
        self.calls.append(("write", pid, path, nbytes))


def test_observer_sequence(vfs):
    recorder = Recorder()
    vfs.add_observer(recorder)
    fd = vfs.open("/f", OpenMode.WRITE, pid=7, create=True)
    vfs.write(fd, 11)
    vfs.close(fd)
    vfs.unlink("/f", pid=7)
    assert recorder.calls == [
        ("create", 7, "/f"),
        ("open", 7, "/f"),
        ("write", 7, "/f", 11),
        ("close", 7, "/f"),
        ("unlink", 7, "/f"),
    ]


def test_remove_observer(vfs):
    recorder = Recorder()
    vfs.add_observer(recorder)
    vfs.remove_observer(recorder)
    vfs.write_file("/f", 1)
    assert recorder.calls == []


def test_observer_missing_callbacks_tolerated(vfs):
    class Partial:
        def on_create(self, pid, path, inode, t):
            self.created = path

    partial = Partial()
    vfs.add_observer(partial)
    vfs.write_file("/f", 1)
    assert partial.created == "/f"


def test_write_file_helper(vfs):
    inode = vfs.write_file("/a/b.txt" if vfs.mkdir("/a") else "/a/b.txt", 64)
    assert inode.size == 64
