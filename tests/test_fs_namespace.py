"""Namespace: path resolution, mutation, walking."""

import pytest

from repro.errors import FileExists, FileNotFound, IsADirectory, NotADirectory
from repro.fs.namespace import FileKind, Namespace, normalize, split


def test_normalize():
    assert normalize("/") == "/"
    assert normalize("") == "/"
    assert normalize("a/b") == "/a/b"
    assert normalize("/a//b/") == "/a/b"
    assert normalize("/a/./b/../c") == "/a/c"


def test_split():
    assert split("/a/b/c") == ("/a/b", "c")
    assert split("/top") == ("/", "top")


def test_root_exists():
    ns = Namespace()
    assert ns.resolve("/").ino == 1
    assert ns.resolve("/").is_dir
    assert len(ns) == 1
    assert ns.file_count == 0


def test_create_and_resolve():
    ns = Namespace()
    ns.mkdir("/dir")
    inode = ns.create("/dir/file", now=5.0, uid=42)
    assert ns.resolve("/dir/file") is inode
    assert inode.kind is FileKind.FILE
    assert inode.mtime == 5.0
    assert inode.uid == 42
    assert ns.file_count == 1


def test_create_in_missing_dir():
    ns = Namespace()
    with pytest.raises(FileNotFound):
        ns.create("/nope/file")


def test_create_duplicate():
    ns = Namespace()
    ns.create("/f")
    with pytest.raises(FileExists):
        ns.create("/f")


def test_create_under_file():
    ns = Namespace()
    ns.create("/f")
    with pytest.raises(NotADirectory):
        ns.create("/f/child")


def test_mkdir_parents():
    ns = Namespace()
    ns.mkdir("/a/b/c", parents=True)
    assert ns.resolve("/a/b/c").is_dir
    # Idempotent with parents=True.
    ns.mkdir("/a/b/c", parents=True)


def test_mkdir_duplicate_without_parents():
    ns = Namespace()
    ns.mkdir("/a")
    with pytest.raises(FileExists):
        ns.mkdir("/a")


def test_mkdir_updates_parent_mtime():
    ns = Namespace()
    ns.mkdir("/a", now=3.0)
    assert ns.resolve("/").mtime == 3.0


def test_unlink_file():
    ns = Namespace()
    ns.create("/f")
    ns.unlink("/f")
    assert not ns.exists("/f")


def test_unlink_missing():
    ns = Namespace()
    with pytest.raises(FileNotFound):
        ns.unlink("/ghost")


def test_unlink_nonempty_dir_rejected():
    ns = Namespace()
    ns.mkdir("/d")
    ns.create("/d/f")
    with pytest.raises(IsADirectory):
        ns.unlink("/d")
    ns.unlink("/d/f")
    ns.unlink("/d")
    assert not ns.exists("/d")


def test_readdir_sorted():
    ns = Namespace()
    ns.mkdir("/d")
    for name in ("zebra", "apple", "mango"):
        ns.create(f"/d/{name}")
    assert ns.readdir("/d") == ["apple", "mango", "zebra"]


def test_readdir_of_file_rejected():
    ns = Namespace()
    ns.create("/f")
    with pytest.raises(NotADirectory):
        ns.readdir("/f")


def test_walk_and_files():
    ns = Namespace()
    ns.mkdir("/a")
    ns.create("/a/f1")
    ns.mkdir("/a/b")
    ns.create("/a/b/f2")
    all_paths = {p for p, _ in ns.walk()}
    assert all_paths == {"/a", "/a/f1", "/a/b", "/a/b/f2"}
    file_paths = {p for p, _ in ns.files()}
    assert file_paths == {"/a/f1", "/a/b/f2"}


def test_walk_subtree():
    ns = Namespace()
    ns.mkdir("/a/b", parents=True)
    ns.create("/a/b/f")
    ns.create("/top")
    assert {p for p, _ in ns.walk("/a")} == {"/a/b", "/a/b/f"}


def test_path_of_reverse_lookup():
    ns = Namespace()
    ns.mkdir("/d")
    inode = ns.create("/d/f")
    assert ns.path_of(inode.ino) == "/d/f"
    assert ns.path_of(987654) is None


def test_inode_lookup_by_id():
    ns = Namespace()
    inode = ns.create("/f")
    assert ns.inode(inode.ino) is inode
    with pytest.raises(FileNotFound):
        ns.inode(999)
