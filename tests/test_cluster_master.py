"""MasterNode: routing, assignment, heartbeats, splits, checkpoints."""

import pytest

from repro.cluster.index_node import IndexNode
from repro.cluster.master import MasterNode
from repro.cluster.messages import IndexUpdate
from repro.core.partitioner import PartitioningPolicy
from repro.errors import ClusterError, UnknownIndexName, UnknownIndexNode
from repro.indexstructures import IndexKind
from repro.query.planner import IndexSpec
from repro.sim.clock import SimClock
from repro.sim.machine import Cluster
from repro.sim.network import NetworkModel
from repro.sim.rpc import RpcNetwork


def make_cluster(n_nodes=2, policy=None):
    cluster = Cluster(["mn"] + [f"in{i}" for i in range(1, n_nodes + 1)])
    rpc = RpcNetwork(cluster.network)
    master = MasterNode(cluster["mn"], rpc,
                        policy=policy or PartitioningPolicy(split_threshold=50,
                                                            cluster_target=10))
    nodes = {}
    for i in range(1, n_nodes + 1):
        name = f"in{i}"
        node = IndexNode(name, cluster[name])
        rpc.add_endpoint(node.endpoint)
        master.register_index_node(name)
        nodes[name] = node
    return master, nodes, rpc


def test_register_duplicate_node_rejected():
    master, _, _ = make_cluster()
    with pytest.raises(ClusterError):
        master.register_index_node("in1")


def test_routing_requires_nodes():
    cluster = Cluster(["mn"])
    master = MasterNode(cluster["mn"], RpcNetwork(cluster.network))
    with pytest.raises(UnknownIndexNode):
        master.route_updates([1])


def test_route_new_files_creates_partition():
    master, _, _ = make_cluster()
    routes = master.route_updates([1, 2, 3])
    assert len(routes) == 3
    assert len({r.acg_id for r in routes}) == 1  # packed together (small)
    assert all(r.node in ("in1", "in2") for r in routes)


def test_route_existing_file_is_stable():
    master, _, _ = make_cluster()
    first = master.route_updates([1])[0]
    second = master.route_updates([1])[0]
    assert first.acg_id == second.acg_id
    assert first.node == second.node


def test_hint_coloctes_with_producer():
    master, _, _ = make_cluster()
    producer = master.route_updates([1])[0]
    consumer = master.route_updates([2], hints={2: 1})[0]
    assert consumer.acg_id == producer.acg_id


def test_open_partition_packing_until_target():
    master, _, _ = make_cluster()
    routes = master.route_updates(list(range(25)))
    acgs = {r.acg_id for r in routes}
    sizes = sorted(p.size for p in master.partitions.partitions())
    assert sum(sizes) == 25
    assert all(s <= 15 for s in sizes)   # cluster_target 10 (+ slack)
    assert len(acgs) >= 2


def test_new_partitions_go_to_least_loaded_node():
    master, _, _ = make_cluster()
    master.route_updates(list(range(40)))
    loads = [master.partitions.node_load(n) for n in master.index_nodes]
    assert max(loads) - min(loads) <= 20


def test_create_index_propagates_and_rejects_duplicates():
    master, nodes, _ = make_cluster()
    spec = IndexSpec("by_size", IndexKind.BTREE, ("size",))
    master.create_index(spec)
    for node in nodes.values():
        assert "by_size" in node._global_specs
    with pytest.raises(ClusterError):
        master.create_index(spec)


def test_route_search_unknown_index():
    master, _, _ = make_cluster()
    with pytest.raises(UnknownIndexName):
        master.route_search("ghost")


def test_route_search_covers_all_partitions():
    master, _, _ = make_cluster()
    master.create_index(IndexSpec("by_size", IndexKind.BTREE, ("size",)))
    master.route_updates(list(range(30)))
    routing = master.route_search("by_size")
    covered = {acg for acgs in routing.values() for acg in acgs}
    assert covered == {p.partition_id for p in master.partitions.partitions()}


def test_file_created_and_deleted():
    master, _, _ = make_cluster()
    route = master.file_created(5)
    assert master.partitions.partition_of(5) == route.acg_id
    gone = master.file_deleted(5)
    assert gone.acg_id == route.acg_id
    assert master.partitions.partition_of(5) is None
    assert master.file_deleted(5) is None


def test_heartbeats_collected():
    master, nodes, _ = make_cluster()
    master.poll_heartbeats()
    assert set(master.heartbeats) == set(nodes)


def test_oversized_partition_triggers_split_and_migration():
    master, nodes, rpc = make_cluster(
        policy=PartitioningPolicy(split_threshold=30, cluster_target=10))
    master.create_index(IndexSpec("by_size", IndexKind.BTREE, ("size",)))
    # Grow one partition past the threshold via causal hints.
    routes = master.route_updates([0])
    acg = routes[0].acg_id
    node = routes[0].node
    for i in range(1, 40):
        master.route_updates([i], hints={i: i - 1})
    assert master.partitions.get(acg).size == 40
    # The owning node must have the data to split.
    rpc.call(node, "index_update", acg,
             [IndexUpdate.upsert(i, {"size": i}) for i in range(40)])
    rpc.call(node, "flush_acg", acg, [(i, i + 1, 1) for i in range(39)])
    decisions = master.maybe_split()
    assert len(decisions) == 1
    decision = decisions[0]
    assert decision.moved_files > 0
    assert decision.source_node != decision.target_node
    sizes = sorted(p.size for p in master.partitions.partitions())
    assert max(sizes) <= 30


def test_checkpoint_and_restore():
    master, _, _ = make_cluster()
    master.route_updates(list(range(12)))
    records = master.checkpoint()
    assert master.checkpoints_written == 1
    cluster2 = Cluster(["mn2"])
    restored = MasterNode.restore(cluster2["mn2"], RpcNetwork(cluster2.network),
                                  records, ["in1", "in2"])
    for fid in range(12):
        assert restored.partitions.partition_of(fid) == \
            master.partitions.partition_of(fid)
