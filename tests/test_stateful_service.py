"""Model-based stateful testing of the whole Propeller service.

Hypothesis drives random interleavings of create/update/delete/search/
background-time against a live deployment and a trivial oracle (a dict of
indexed files).  The core guarantee under test: **every search reflects
every acknowledged update**, regardless of batching, cache timeouts,
splits, or how operations interleave.
"""

import random

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    consumes,
    initialize,
    invariant,
    rule,
)

from repro.cluster import PropellerService
from repro.core.partitioner import PartitioningPolicy
from repro.fs.vfs import OpenMode
from repro.indexstructures import IndexKind


class PropellerMachine(RuleBasedStateMachine):
    paths = Bundle("paths")

    @initialize()
    def setup(self) -> None:
        self.service = PropellerService(
            num_index_nodes=2,
            policy=PartitioningPolicy(split_threshold=40, cluster_target=10))
        self.client = self.service.make_client(batch_size=4)
        self.client.create_index("by_size", IndexKind.BTREE, ["size"])
        self.service.vfs.mkdir("/d")
        self.model = {}          # path -> last indexed size
        self.counter = 0

    @rule(target=paths, size=st.integers(1, 1_000_000))
    def create_and_index(self, size):
        path = f"/d/f{self.counter:04d}"
        self.counter += 1
        self.service.vfs.write_file(path, size, pid=1)
        self.client.index_path(path, pid=1)
        self.model[path] = size
        return path

    @rule(path=paths, extra=st.integers(1, 1_000_000))
    def grow_and_reindex(self, path, extra):
        if path not in self.model:
            return
        fd = self.service.vfs.open(path, OpenMode.WRITE, pid=1)
        self.service.vfs.write(fd, extra)
        self.service.vfs.close(fd)
        self.client.index_path(path, pid=1)
        self.model[path] = self.service.vfs.stat(path).size

    @rule(path=consumes(paths))
    def unlink(self, path):
        if path not in self.model:
            return
        self.service.vfs.unlink(path, pid=1)
        del self.model[path]

    @rule(seconds=st.sampled_from([0.5, 3.0, 6.0, 31.0]))
    def pass_time(self, seconds):
        self.service.advance(seconds)

    @rule()
    def maintenance(self):
        self.service.master.poll_heartbeats()

    @rule(threshold=st.integers(0, 1_000_000))
    def search_matches_model(self, threshold):
        got = set(self.client.search(f"size>{threshold}"))
        want = {p for p, size in self.model.items() if size > threshold}
        assert got == want, (sorted(got ^ want), threshold)

    @invariant()
    def partition_mapping_is_consistent(self):
        if not hasattr(self, "service"):
            return
        manager = self.service.master.partitions
        for partition in manager.partitions():
            for file_id in partition.files:
                assert manager.partition_of(file_id) == partition.partition_id


TestPropellerStateful = PropellerMachine.TestCase
TestPropellerStateful.settings = settings(
    max_examples=12, stateful_step_count=25, deadline=None)
