"""Multilevel bisection: partition validity, balance, cut quality."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metis import (
    bisect,
    cut_of,
    random_bisect,
    total_edge_weight,
)


def ring(n, weight=1):
    adj = {i: {} for i in range(n)}
    for i in range(n):
        j = (i + 1) % n
        adj[i][j] = weight
        adj[j][i] = weight
    return adj


def two_cliques(k, bridge_weight=1):
    """Two k-cliques joined by one light edge — the obvious best cut."""
    adj = {i: {} for i in range(2 * k)}
    for base in (0, k):
        for i in range(base, base + k):
            for j in range(base, base + k):
                if i != j:
                    adj[i][j] = 10
    adj[k - 1][k] = bridge_weight
    adj[k][k - 1] = bridge_weight
    return adj


def random_graph(n, p, seed, max_w=5):
    rng = random.Random(seed)
    adj = {i: {} for i in range(n)}
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                w = rng.randint(1, max_w)
                adj[i][j] = w
                adj[j][i] = w
    return adj


def assert_valid_partition(adj, result):
    assert result.side_a | result.side_b == set(adj)
    assert not (result.side_a & result.side_b)
    assert result.cut_weight == cut_of(adj, result.side_a)


def test_trivial_graphs():
    assert bisect({}).cut_weight == 0
    r1 = bisect({1: {}})
    assert r1.side_a | r1.side_b == {1}
    r2 = bisect({1: {2: 3}, 2: {1: 3}})
    assert_valid_partition({1: {2: 3}, 2: {1: 3}}, r2)
    assert r2.cut_weight == 3  # only edge must be cut


def test_two_cliques_finds_the_bridge():
    adj = two_cliques(8)
    result = bisect(adj)
    assert_valid_partition(adj, result)
    assert result.cut_weight == 1
    assert result.balance == pytest.approx(0.5)


def test_ring_cut_is_two_edges():
    adj = ring(64)
    result = bisect(adj)
    assert_valid_partition(adj, result)
    assert result.cut_weight == 2  # any contiguous half cuts exactly 2


def test_balance_tolerance_respected():
    adj = random_graph(200, 0.05, seed=1)
    result = bisect(adj, balance_tolerance=0.05)
    assert_valid_partition(adj, result)
    assert result.balance <= 0.55 + 1e-9


def test_deterministic_for_same_seed():
    adj = random_graph(100, 0.08, seed=2)
    r1 = bisect(adj, seed=7)
    r2 = bisect(adj, seed=7)
    assert r1.side_a == r2.side_a


def test_beats_random_bisection_on_structured_graph():
    adj = two_cliques(16)
    ours = bisect(adj)
    rnd = random_bisect(adj, seed=3)
    assert ours.cut_weight <= rnd.cut_weight


def test_cut_fraction():
    adj = two_cliques(8)
    result = bisect(adj)
    assert result.cut_fraction == pytest.approx(
        result.cut_weight / total_edge_weight(adj))


def test_large_graph_is_coarsened_and_still_valid():
    adj = random_graph(600, 0.01, seed=4)
    result = bisect(adj)
    assert_valid_partition(adj, result)
    assert 0.4 <= result.balance <= 0.6


def test_validate_rejects_asymmetric():
    with pytest.raises(ValueError):
        bisect({1: {2: 3}, 2: {}}, validate=True)


def test_validate_rejects_self_loop():
    with pytest.raises(ValueError):
        bisect({1: {1: 1}}, validate=True)


def test_disconnected_input_still_partitions():
    # bisect is normally applied per component, but must not crash on
    # disconnected input.
    adj = {1: {2: 1}, 2: {1: 1}, 3: {4: 1}, 4: {3: 1}}
    result = bisect(adj)
    assert_valid_partition(adj, result)


def test_random_bisect_is_half_half():
    adj = random_graph(101, 0.05, seed=5)
    result = random_bisect(adj, seed=1)
    assert abs(len(result.side_a) - len(result.side_b)) <= 1


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 60), st.floats(0.02, 0.3), st.integers(0, 5))
def test_property_always_valid_partition(n, p, seed):
    adj = random_graph(n, p, seed=seed)
    result = bisect(adj, seed=seed)
    assert_valid_partition(adj, result)
    total = len(result.side_a) + len(result.side_b)
    assert total == n


@settings(max_examples=15, deadline=None)
@given(st.integers(8, 40), st.integers(0, 3))
def test_property_not_worse_than_random_on_cliques(k, seed):
    adj = two_cliques(k)
    assert bisect(adj, seed=seed).cut_weight <= random_bisect(adj, seed=seed).cut_weight
