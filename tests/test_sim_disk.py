"""Disk models: random vs sequential costs, stats, append detection."""

import pytest

from repro.sim.clock import SimClock
from repro.sim.disk import DiskDevice, HDDModel, SSDModel


@pytest.fixture
def disk():
    return DiskDevice(SimClock())


def test_random_read_charges_seek_and_transfer(disk):
    disk.read(0, 4096)
    model = disk.model
    expected = model.avg_seek_s + model.avg_rotation_s + 4096 / model.bandwidth_bytes_per_s
    assert disk.clock.now() == pytest.approx(expected)


def test_sequential_read_skips_seek(disk):
    disk.read(0, 4096)
    t1 = disk.clock.now()
    disk.read(4096, 4096)  # continues the stream
    assert disk.clock.now() - t1 == pytest.approx(4096 / disk.model.bandwidth_bytes_per_s)


def test_non_adjacent_read_pays_seek_again(disk):
    disk.read(0, 4096)
    t1 = disk.clock.now()
    disk.read(1 << 20, 4096)
    delta = disk.clock.now() - t1
    assert delta > disk.model.avg_seek_s


def test_stats_counters(disk):
    disk.read(0, 100)
    disk.write(4096, 200)
    assert disk.stats.reads == 1
    assert disk.stats.writes == 1
    assert disk.stats.bytes_read == 100
    assert disk.stats.bytes_written == 200


def test_seek_count_tracks_non_sequential(disk):
    disk.read(0, 4096)
    disk.read(4096, 4096)   # sequential
    disk.read(0, 4096)      # seek back
    assert disk.stats.seeks == 2


def test_append_is_sequential_after_first(disk):
    disk.append(1000)
    t1 = disk.clock.now()
    disk.append(1000)
    assert disk.clock.now() - t1 == pytest.approx(1000 / disk.model.bandwidth_bytes_per_s)


def test_reset_head_forces_seek(disk):
    disk.read(0, 4096)
    disk.reset_head()
    t1 = disk.clock.now()
    disk.read(4096, 4096)
    assert disk.clock.now() - t1 > disk.model.avg_seek_s


def test_ssd_cheaper_than_hdd_random():
    hdd, ssd = HDDModel(), SSDModel()
    assert ssd.random_access_cost(4096) < hdd.random_access_cost(4096)


def test_hdd_sequential_is_bandwidth_only():
    model = HDDModel()
    assert model.sequential_access_cost(125_000_000) == pytest.approx(1.0)


def test_busy_seconds_accumulates(disk):
    disk.read(0, 4096)
    disk.write(1 << 22, 4096)
    assert disk.stats.busy_seconds == pytest.approx(disk.clock.now())
