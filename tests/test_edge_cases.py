"""Edge cases across modules: notification overflow consequences, parser
robustness, deep namespaces, planted-community k-way partitioning."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.crawler import CrawlerConfig, CrawlerSearchEngine
from repro.core.metis import k_way_partition
from repro.errors import QueryError
from repro.fs.namespace import Namespace, normalize
from repro.fs.notification import NotificationQueue
from repro.fs.vfs import VirtualFileSystem
from repro.query.parser import parse_query
from repro.sim.clock import SimClock
from repro.sim.events import EventLoop


# -- notification overflow has real consequences ---------------------------------

def test_overflowed_notifications_cause_permanent_staleness():
    """When the inotify-style queue overflows, the crawler never learns
    about the dropped changes until a full rebuild — a real failure mode
    of notification-based engines under write bursts."""
    clock = SimClock()
    vfs = VirtualFileSystem(clock)
    loop = EventLoop(clock)
    crawler = CrawlerSearchEngine(vfs, loop, CrawlerConfig(
        pass_trigger_dirty=10**9, pass_period_s=5.0,
        reindex_rate_fps=10_000.0, type_filter=lambda p, i: True))
    crawler.notifications.capacity = 10
    vfs.mkdir("/d")
    crawler.full_rebuild()
    for i in range(50):
        vfs.write_file(f"/d/f{i:03d}.txt", 2 * 1024**2)
    # Each write_file emits create+modify: 100 events against capacity 10.
    assert crawler.notifications.dropped == 90
    loop.run_until(clock.now() + 60.0)   # many passes later...
    # Only the files whose events fit the queue (5 create+modify pairs)
    # ever become visible.
    assert len(crawler.query("size>1m")) == 5
    crawler.full_rebuild()                # the recovery tool
    assert len(crawler.query("size>1m")) == 50


# -- parser robustness -----------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(st.text(max_size=30))
def test_parser_never_crashes_unexpectedly(text):
    """Arbitrary input either parses or raises QueryError — nothing else."""
    try:
        parse_query(text)
    except QueryError:
        pass


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 10))
def test_parser_handles_deep_nesting(depth):
    query = "(" * depth + "size>1" + ")" * depth
    assert parse_query(query) == parse_query("size>1")


def test_parser_whitespace_insensitive():
    assert parse_query("size>1m&mtime<1day") == \
        parse_query("  size  >  1m  &  mtime < 1day ")


def test_parser_unit_aliases():
    assert parse_query("size>1m") == parse_query("size>1mb")
    assert parse_query("mtime<1h") == parse_query("mtime<1hour")


# -- namespace with generated paths -----------------------------------------------------

_SEGMENT = st.text(alphabet="abcdefghij0123456789_-.", min_size=1,
                   max_size=8).filter(lambda s: s not in (".", ".."))


@settings(max_examples=50, deadline=None)
@given(st.lists(st.lists(_SEGMENT, min_size=1, max_size=6), min_size=1,
                max_size=10))
def test_property_namespace_create_resolve(path_segments):
    """Whatever sequence of creates succeeds, the namespace stays exactly
    consistent: files() lists precisely the successfully created paths,
    and failed attempts change nothing."""
    from repro.errors import FileExists, NotADirectory

    ns = Namespace()
    created = set()
    for segments in path_segments:
        path = "/" + "/".join(segments)
        parent = path.rsplit("/", 1)[0] or "/"
        try:
            if parent != "/":
                ns.mkdir(parent, parents=True)
            ns.create(path)
        except (FileExists, NotADirectory):
            continue
        created.add(normalize(path))
    assert {p for p, _ in ns.files()} == created
    for path in created:
        assert ns.resolve(path).kind.value == "file"


def test_deep_directory_chain():
    ns = Namespace()
    path = "/" + "/".join(f"level{i}" for i in range(50))
    ns.mkdir(path, parents=True)
    ns.create(path + "/leaf")
    assert ns.resolve(path + "/leaf")
    assert len(list(ns.walk())) == 51


# -- k-way on planted communities ------------------------------------------------------------

def planted(k_communities, size, p_in=0.3, p_out=0.004, seed=0):
    rng = random.Random(seed)
    n = k_communities * size
    adj = {i: {} for i in range(n)}
    for i in range(n):
        for j in range(i + 1, n):
            same = (i // size) == (j // size)
            if rng.random() < (p_in if same else p_out):
                adj[i][j] = 1
                adj[j][i] = 1
    return adj


def test_k_way_recovers_planted_communities():
    adj = planted(4, 50)
    parts = k_way_partition(adj, 4)
    # Each part should be dominated by one community.
    for part in parts:
        if not part:
            continue
        communities = [sum(1 for v in part if v // 50 == c) for c in range(4)]
        assert max(communities) / len(part) > 0.8


def test_k_way_cut_beats_random_assignment():
    adj = planted(4, 40, seed=2)
    parts = k_way_partition(adj, 4)
    assignment = {v: i for i, part in enumerate(parts) for v in part}
    cut = sum(w for u, t in adj.items() for v, w in t.items()
              if u < v and assignment[u] != assignment[v])
    rng = random.Random(3)
    random_assignment = {v: rng.randrange(4) for v in adj}
    random_cut = sum(w for u, t in adj.items() for v, w in t.items()
                     if u < v and random_assignment[u] != random_assignment[v])
    assert cut < 0.3 * random_cut
