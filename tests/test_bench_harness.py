"""Tests for the unified benchmark harness (benchmarks/harness.py) and
the ``repro bench`` CLI subcommand."""

import json
import pathlib

import pytest

from repro.cli import _ensure_benchmarks_importable, main

_ensure_benchmarks_importable()

from benchmarks import harness
from benchmarks.harness import BenchConfig, default_cfg


class TestBenchConfig:
    def test_tier_validation(self):
        with pytest.raises(ValueError):
            BenchConfig(tier="huge")
        for tier in harness.TIERS:
            assert BenchConfig(tier=tier).tier == tier

    def test_scale_picks_per_tier(self):
        assert BenchConfig(tier="smoke").scale(1, 2, 3) == 1
        assert BenchConfig(tier="default").scale(1, 2, 3) == 2
        assert BenchConfig(tier="full").scale(1, 2, 3) == 3
        # full falls back to default when no full value is given.
        assert BenchConfig(tier="full").scale(1, 2) == 2

    def test_default_cfg_reads_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert default_cfg().tier == "default"
        monkeypatch.setenv("REPRO_FULL", "1")
        assert default_cfg().tier == "full"


class TestDiscovery:
    def test_every_bench_module_is_discovered(self):
        benches = harness.discover()
        # Every bench_*.py in the suite exposes run(cfg).
        on_disk = {p.stem[len("bench_"):]
                   for p in harness.BENCH_DIR.glob("bench_*.py")}
        assert set(benches) == on_disk
        assert len(benches) >= 18

    def test_acceptance_benches_present(self):
        benches = harness.discover()
        for key in ("fig01_crawler_recall", "fig09_cluster_scaling",
                    "fig10_mixed_workload"):
            assert key in benches


class TestRunAndWrite:
    def test_smoke_run_produces_valid_artifact(self, tmp_path):
        benches = harness.discover()
        cfg = BenchConfig(tier="smoke")
        artifact = harness.run_bench("table1_app_overlap",
                                     benches["table1_app_overlap"], cfg)
        assert artifact["schema"] == harness.SCHEMA
        assert artifact["tier"] == "smoke"
        assert artifact["wall_clock_s"] > 0
        assert artifact["texts"]
        path = harness.write_artifact("table1_app_overlap", artifact, tmp_path)
        assert path.name == "BENCH_table1_app_overlap.json"
        assert json.loads(path.read_text()) == artifact

    def test_write_results_texts(self, tmp_path):
        artifact = {"texts": {"some_table": "a | b\n1 | 2"}}
        written = harness.write_results_texts(artifact, tmp_path)
        assert [p.name for p in written] == ["some_table.txt"]
        assert written[0].read_text() == "a | b\n1 | 2\n"


def artifact_with(latency):
    return {"schema": harness.SCHEMA, "latency_s": latency}


class TestCompare:
    def test_identical_artifacts_no_regressions(self):
        a = artifact_with({"q1": 0.5, "q2": 0.001})
        assert harness.compare_artifacts(a, a) == []

    def test_regression_beyond_threshold_flagged(self):
        old = artifact_with({"q1": 0.5, "q2": 0.001})
        new = artifact_with({"q1": 0.5, "q2": 0.002})   # 2x
        regressions = harness.compare_artifacts(old, new, threshold=0.10)
        assert [r[0] for r in regressions] == ["q2"]
        _, o, n, ratio = regressions[0]
        assert ratio == pytest.approx(2.0)

    def test_within_threshold_and_improvements_pass(self):
        old = artifact_with({"q1": 1.0, "q2": 1.0})
        new = artifact_with({"q1": 1.05, "q2": 0.2})
        assert harness.compare_artifacts(old, new, threshold=0.10) == []

    def test_only_shared_keys_compared(self):
        old = artifact_with({"gone": 1.0})
        new = artifact_with({"added": 99.0})
        assert harness.compare_artifacts(old, new) == []

    def test_directory_compare_and_failure_lines(self, tmp_path):
        old_dir, new_dir = tmp_path / "old", tmp_path / "new"
        harness.write_artifact("x", artifact_with({"q": 1.0}), old_dir)
        harness.write_artifact("x", artifact_with({"q": 3.0}), new_dir)
        report, failures = harness.compare(old_dir, new_dir)
        assert failures and "REGRESSION" in failures[0]
        # Identical directories: no failures.
        report, failures = harness.compare(old_dir, old_dir)
        assert failures == []

    def test_disjoint_directories_fail(self, tmp_path):
        old_dir, new_dir = tmp_path / "old", tmp_path / "new"
        harness.write_artifact("a", artifact_with({}), old_dir)
        harness.write_artifact("b", artifact_with({}), new_dir)
        _, failures = harness.compare(old_dir, new_dir)
        assert failures


class TestCli:
    def test_bench_list(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fig09_cluster_scaling" in out

    def test_bench_unknown_name(self, capsys):
        assert main(["bench", "no_such_bench"]) == 2

    def test_bench_smoke_single(self, tmp_path, capsys):
        rc = main(["bench", "table1_app_overlap", "--smoke",
                   "--out", str(tmp_path)])
        assert rc == 0
        artifact = json.loads(
            (tmp_path / "BENCH_table1_app_overlap.json").read_text())
        assert artifact["tier"] == "smoke"

    def test_bench_compare_exit_codes(self, tmp_path, capsys):
        old_dir, new_dir = tmp_path / "old", tmp_path / "new"
        harness.write_artifact("x", artifact_with({"q": 1.0}), old_dir)
        harness.write_artifact("x", artifact_with({"q": 1.0}), new_dir)
        assert main(["bench", "--compare", str(old_dir), str(new_dir)]) == 0
        harness.write_artifact("x", artifact_with({"q": 2.5}), new_dir)
        assert main(["bench", "--compare", str(old_dir), str(new_dir)]) == 1
        assert main(["bench", "--compare", str(old_dir),
                     str(tmp_path / "missing")]) == 2
