"""Graceful degradation and automatic failover, end to end.

The acceptance scenario: with one Index Node dead, a query returns
partial results flagged ``degraded`` naming exactly the unreachable
partitions; after the heartbeat-driven auto-failover reassigns the dead
node's partitions from its shared-storage checkpoint, the same query
returns full results.  A recovered victim then rejoins empty — nothing
double-counts."""

import pytest

from repro.cluster import PropellerService
from repro.core.partitioner import PartitioningPolicy
from repro.indexstructures import IndexKind
from repro.sim.rpc import RetryPolicy


def build(nodes=3):
    service = PropellerService(
        num_index_nodes=nodes,
        policy=PartitioningPolicy(split_threshold=10**9, cluster_target=8),
        retry_policy=RetryPolicy(),
        auto_failover=True,
        heartbeat_timeout_s=15.0)
    client = service.make_client()
    client.create_index("by_size", IndexKind.BTREE, ["size"])
    return service, client


def populate(service, client, n=40):
    service.vfs.mkdir("/d", parents=True)
    for i in range(n):
        # Distinct pids defeat the causality hint's co-location so the
        # files spread over many partitions (and therefore many nodes).
        service.vfs.write_file(f"/d/f{i:03d}", 100 + i, pid=100 + i)
        client.index_path(f"/d/f{i:03d}", pid=100 + i)
    client.flush_updates()
    service._checkpoint_all()  # durable state for failover to restore


def loaded_node(service):
    return max(service.master.index_nodes,
               key=service.master.partitions.node_load)


def test_degraded_query_then_full_after_auto_failover():
    service, client = build()
    populate(service, client)
    full = client.search("size>0")
    assert len(full) == 40

    victim = loaded_node(service)
    # Every partition routed to the victim counts: the client fans out
    # to all placed partitions (the Master no longer tracks membership).
    victim_partitions = sorted(
        p.partition_id for p in service.master.partitions.partitions()
        if p.node == victim)
    assert victim_partitions
    service.fail_node(victim)

    # Dead node: the query degrades, naming exactly what is missing.
    answer = client.search_detailed("size>0")
    assert answer.degraded
    assert answer.unreachable_nodes == [victim]
    assert answer.unreachable_partitions == victim_partitions
    assert len(answer.paths) < len(full)

    # One heartbeat round later the master has failed the victim over.
    service.advance(6.0)
    assert victim not in service.master.index_nodes
    events = [e for e in service.master.failover_log if e.node == victim]
    assert events and events[0].auto
    assert sorted(events[0].moved) == victim_partitions

    # Full results again, no degradation, from the survivors.
    healed = client.search_detailed("size>0")
    assert not healed.degraded
    assert healed.paths == full


def test_failover_recover_rejoin_no_double_counting():
    service, client = build()
    populate(service, client)
    baseline = service.total_indexed_files()
    assert baseline == 40
    full = client.search("size>0")

    victim = loaded_node(service)
    service.fail_node(victim)
    service.advance(6.0)  # auto-failover
    assert victim not in service.master.index_nodes
    assert service.total_indexed_files() == baseline

    # The victim comes back: it must rejoin EMPTY — its replicas are
    # stale copies of partitions now live on the survivors.
    replayed = service.recover_node(victim)
    assert replayed == 0
    assert victim in service.master.index_nodes
    assert service.registry.value("cluster.master.rejoins") == 1
    assert len(service.index_nodes[victim].replicas) == 0
    assert service.total_indexed_files() == baseline
    assert client.search("size>0") == full

    # And it serves again: new files can land on the rejoined node.
    for i in range(40, 56):
        service.vfs.write_file(f"/d/f{i:03d}", 100 + i, pid=100 + i)
        client.index_path(f"/d/f{i:03d}", pid=100 + i)
    client.flush_updates()
    # Commit visibility is bounded by cache timeout (5s) + tick period
    # (2.5s); 8s guarantees the timeout commit fired.
    service.advance(8.0)
    assert service.total_indexed_files() == baseline + 16
    assert len(client.search("size>0")) == 56


def test_restart_without_failover_replays_wal():
    """A node that crashes and restarts before the failure detector
    acts keeps its data: WAL replay covers the acked-but-uncommitted
    tail, and nothing is degraded afterwards."""
    service, client = build()
    populate(service, client)
    victim = loaded_node(service)
    node = service.index_nodes[victim]
    node.crash()
    assert victim in service.master.index_nodes  # detector hasn't acted
    replayed = service.recover_node(victim)
    assert replayed >= 0
    answer = client.search_detailed("size>0")
    assert not answer.degraded
    assert len(answer.paths) == 40


def test_updates_requeue_while_node_down_and_deliver_after_failover():
    """Index updates bound for a dead node re-queue client-side and are
    re-routed (to the failed-over owner) on the next flush."""
    service, client = build()
    populate(service, client)
    victim = loaded_node(service)
    service.fail_node(victim)
    # New files that route to the dead node's partitions re-queue.
    for i in range(100, 108):
        service.vfs.write_file(f"/d/g{i}", i, pid=i)
        client.index_path(f"/d/g{i}", pid=i)
    client.flush_updates()
    service.advance(6.0)  # failover moves the partitions
    delivered = client.flush_updates()
    assert delivered >= 0
    assert client._pending == []
    assert len(client.search("size>0")) == 48
