"""Binary framing and generic index serialization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.indexstructures import (
    BPlusTree,
    ExtendibleHashIndex,
    IndexKind,
    KDTreeIndex,
)
from repro.indexstructures.serialization import (
    dump_index,
    dump_record,
    dump_value,
    iter_records,
    load_index,
    load_value,
)


def roundtrip(value):
    data = dump_value(value)
    decoded, offset = load_value(data, 0)
    assert offset == len(data)
    return decoded


@pytest.mark.parametrize("value", [
    0, 1, -1, 2**40, -(2**40),
    0.0, 3.14159, -2.5,
    "", "hello", "ünïcödé",
    b"", b"\x00\xff",
    None,
    (), (1, "two", 3.0), (1, (2, (3,))),
])
def test_value_roundtrip(value):
    assert roundtrip(value) == value


def test_bool_encodes_as_int():
    assert roundtrip(True) == 1
    assert roundtrip(False) == 0


def test_unsupported_type_rejected():
    with pytest.raises(TypeError):
        dump_value({"dict": 1})


def test_record_stream():
    records = [(1, "a"), (2, "b"), (3, None)]
    data = b"".join(dump_record(r) for r in records)
    assert list(iter_records(data)) == records


def test_record_length_mismatch_detected():
    data = bytearray(dump_record((1, "abc")))
    data[0] += 1  # lie about the length
    with pytest.raises(ValueError):
        list(iter_records(bytes(data)))


def test_btree_index_roundtrip():
    tree = BPlusTree(order=4)
    for i in range(50):
        tree.insert(i, f"v{i}")
    clone = load_index(dump_index(tree))
    assert clone.kind is IndexKind.BTREE
    assert sorted(clone.items()) == sorted(tree.items())


def test_hash_index_roundtrip():
    index = ExtendibleHashIndex(bucket_capacity=4)
    for i in range(50):
        index.insert(f"k{i}", i)
    clone = load_index(dump_index(index))
    assert clone.kind is IndexKind.HASH
    assert sorted(clone.items()) == sorted(index.items())


def test_kdtree_index_roundtrip_preserves_dimensions():
    tree = KDTreeIndex(dimensions=3)
    for i in range(30):
        tree.insert((i, i * 2, i * 3), i)
    clone = load_index(dump_index(tree))
    assert clone.kind is IndexKind.KDTREE
    assert clone.dimensions == 3
    assert sorted(clone.items()) == sorted(tree.items())


@settings(max_examples=60, deadline=None)
@given(st.recursive(
    st.one_of(st.integers(-2**40, 2**40), st.floats(allow_nan=False),
              st.text(max_size=20), st.binary(max_size=20), st.none()),
    lambda children: st.tuples(children, children),
    max_leaves=6,
))
def test_property_value_roundtrip(value):
    assert roundtrip(value) == value
