"""PageCache: hits vs misses, LRU eviction, namespaces, cold drops."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import SimClock
from repro.sim.disk import DiskDevice
from repro.sim.memory import PAGE_SIZE, PageCache


def make_cache(pages=4):
    disk = DiskDevice(SimClock())
    return PageCache(disk, capacity_bytes=pages * PAGE_SIZE)


def test_first_touch_is_miss():
    cache = make_cache()
    assert cache.touch("a", 0) is False
    assert cache.stats.misses == 1


def test_second_touch_is_hit():
    cache = make_cache()
    cache.touch("a", 0)
    assert cache.touch("a", 0) is True
    assert cache.stats.hits == 1


def test_miss_charges_disk_time_hit_does_not():
    cache = make_cache()
    cache.touch("a", 0)
    t_after_miss = cache.disk.clock.now()
    cache.touch("a", 0)
    assert cache.disk.clock.now() - t_after_miss < 1e-5
    assert t_after_miss > 1e-3  # the miss paid a random disk access


def test_lru_eviction_order():
    cache = make_cache(pages=2)
    cache.touch("a", 0)
    cache.touch("a", 1)
    cache.touch("a", 0)      # 0 now most recent
    cache.touch("a", 2)      # evicts 1
    assert cache.touch("a", 0) is True
    assert cache.touch("a", 1) is False


def test_eviction_counter():
    cache = make_cache(pages=1)
    cache.touch("a", 0)
    cache.touch("a", 1)
    assert cache.stats.evictions == 1


def test_namespaces_do_not_alias():
    cache = make_cache()
    cache.touch("a", 7)
    assert cache.touch("b", 7) is False


def test_access_bytes_touches_spanned_pages():
    cache = make_cache(pages=8)
    cache.access_bytes("a", 0, 3 * PAGE_SIZE)
    assert cache.stats.misses == 3


def test_access_bytes_partial_page():
    cache = make_cache()
    cache.access_bytes("a", 100, 10)
    assert cache.stats.misses == 1


def test_access_bytes_zero_is_noop():
    cache = make_cache()
    cache.access_bytes("a", 0, 0)
    assert cache.stats.accesses == 0


def test_invalidate_namespace():
    cache = make_cache()
    cache.touch("a", 0)
    cache.touch("b", 0)
    assert cache.invalidate("a") == 1
    assert cache.touch("a", 0) is False
    assert cache.touch("b", 0) is True


def test_drop_all_goes_cold():
    cache = make_cache()
    cache.touch("a", 0)
    cache.drop_all()
    assert cache.touch("a", 0) is False


def test_tiny_capacity_rejected():
    disk = DiskDevice(SimClock())
    with pytest.raises(SimulationError):
        PageCache(disk, capacity_bytes=100)


def test_hit_ratio():
    cache = make_cache()
    cache.touch("a", 0)
    cache.touch("a", 0)
    cache.touch("a", 0)
    assert cache.stats.hit_ratio == pytest.approx(2 / 3)
