"""Projection API and WAL record round-trip properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import PropellerService
from repro.cluster.wal import WriteAheadLog
from repro.indexstructures import IndexKind


def make_service():
    service = PropellerService(num_index_nodes=2)
    client = service.make_client()
    client.create_index("by_size", IndexKind.BTREE, ["size"])
    vfs = service.vfs
    vfs.mkdir("/d")
    for i in range(5):
        path = f"/d/f{i}"
        vfs.write_file(path, (i + 1) * 1000, pid=1)
        vfs.setattr(path, "team", "alpha" if i % 2 else "beta")
        client.index_path(path, pid=1)
    client.flush_updates()
    return service, client


def test_select_returns_projected_rows():
    service, client = make_service()
    rows = client.select("size>2000", ["size", "team"])
    assert [r["path"] for r in rows] == ["/d/f2", "/d/f3", "/d/f4"]
    assert rows[0] == {"path": "/d/f2", "size": 3000, "team": "beta"}
    assert rows[1]["team"] == "alpha"


def test_select_missing_attribute_is_none():
    service, client = make_service()
    rows = client.select("size>4000", ["nonexistent"])
    assert rows == [{"path": "/d/f4", "nonexistent": None}]


def test_select_reflects_live_attribute_values():
    """Projection reads ground truth, so even attributes that are not
    indexed come back current."""
    service, client = make_service()
    service.vfs.setattr("/d/f4", "team", "gamma")
    rows = client.select("size>4000", ["team"])
    assert rows[0]["team"] == "gamma"


def test_select_empty_result():
    service, client = make_service()
    assert client.select("size>10g", ["size"]) == []


# -- WAL property -----------------------------------------------------------------

_VALUE = st.one_of(st.integers(-2**40, 2**40), st.floats(allow_nan=False),
                   st.text(max_size=12), st.none(),
                   st.tuples(st.integers(0, 9), st.text(max_size=4)))


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(_VALUE, _VALUE, _VALUE), max_size=30))
def test_property_wal_roundtrip(records):
    wal = WriteAheadLog()
    for record in records:
        wal.append(record)
    assert list(wal.replay()) == records


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(_VALUE, _VALUE), min_size=1, max_size=20),
       st.integers(1, 40))
def test_property_wal_torn_tail_is_prefix(records, torn):
    """However many tail bytes a crash chops off, replay yields an exact
    prefix of what was appended — never garbage, never reordering."""
    wal = WriteAheadLog()
    for record in records:
        wal.append(record)
    wal.simulate_torn_tail(min(torn, len(wal) - 1))
    replayed = list(wal.replay())
    assert replayed == records[:len(replayed)]


# -- group-commit WAL properties ---------------------------------------------------

from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.cluster.index_node import IndexNode
from repro.sim.clock import SimClock
from repro.sim.machine import Machine


class GroupCommitWalMachine(RuleBasedStateMachine):
    """Mixed per-update and batch records under crash injection.

    Invariants: replay always yields an exact *record* prefix of what
    was appended (a torn batch frame disappears whole — group commit's
    atomic unit is the envelope, so a partially-visible batch is
    impossible), and the fsync counter tracks frames, not updates.
    """

    def __init__(self):
        super().__init__()
        self.wal = WriteAheadLog()
        self.appended = []
        self.next_id = 0

    def _payload(self, acg, fid):
        return (acg, fid, "upsert", f"/f{fid}", (("size", fid),))

    @rule(acg=st.integers(0, 2))
    def append_one(self, acg):
        record = self._payload(acg, self.next_id)
        self.next_id += 1
        self.wal.append(record)
        self.appended.append(record)

    @rule(acg=st.integers(0, 2), n=st.integers(1, 6))
    def append_batch(self, acg, n):
        inner = tuple(self._payload(acg, self.next_id + i) for i in range(n))
        self.next_id += n
        self.wal.append_batch(acg, inner)
        self.appended.append((WriteAheadLog.BATCH_TAG, acg, inner))

    @rule(torn=st.integers(1, 60))
    def crash_with_torn_tail(self, torn):
        survivors_before = len(list(self.wal.replay()))
        self.wal.simulate_torn_tail(min(torn, max(0, len(self.wal) - 1)))
        replayed = list(self.wal.replay())
        # A torn tail loses whole records off the end — the decodable
        # prefix — and a batch record either survives intact or not at
        # all: no replay ever sees part of an envelope.
        assert replayed == self.appended[:len(replayed)]
        assert len(replayed) <= survivors_before
        # Recovery compacts the log (sheds the torn fragment) before
        # any new traffic lands; mirror that here.
        compacted = WriteAheadLog()
        for record in replayed:
            if record[0] == WriteAheadLog.BATCH_TAG:
                compacted.append_batch(record[1], record[2])
            else:
                compacted.append(record)
        self.wal = compacted
        self.appended = replayed

    @invariant()
    def replay_is_exact(self):
        assert list(self.wal.replay()) == self.appended

    @invariant()
    def fsyncs_count_frames_not_updates(self):
        # One simulated fsync per frame since the last compaction —
        # however many updates a batch frame carries.
        assert self.wal.fsyncs == len(self.appended)


TestGroupCommitWal = GroupCommitWalMachine.TestCase
TestGroupCommitWal.settings = settings(max_examples=30, deadline=None,
                                       stateful_step_count=25)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 2), st.integers(0, 5)),
                min_size=1, max_size=12),
       st.integers(0, 80),
       st.lists(st.integers(0, 40), min_size=3, max_size=3))
def test_property_batch_replay_idempotent_vs_watermarks(ops, torn, committed):
    """Crash replay through the real recovery path: whatever prefix of
    each ACG's updates was already committed (the durable watermark)
    must not be re-applied, and a batch straddling the watermark is
    sliced, not duplicated."""
    node = IndexNode("r", Machine(SimClock()))
    fid = 0
    for acg, n in ops:
        if n == 0:
            node.wal.append((acg, fid, "upsert", f"/f{fid}",
                             (("size", fid),)))
            fid += 1
        else:
            node.wal.append_batch(acg, tuple(
                (acg, fid + i, "upsert", f"/f{fid + i}", (("size", fid + i),))
                for i in range(n)))
            fid += n
    node.wal.simulate_torn_tail(min(torn, max(0, len(node.wal) - 1)))
    # Flatten the records that survived the tear into per-ACG streams.
    survived = {0: [], 1: [], 2: []}
    for record in node.wal.replay():
        if record[0] == WriteAheadLog.BATCH_TAG:
            survived[record[1]].extend(r[1] for r in record[2])
        else:
            survived[record[0]].append(record[1])
    # Pretend a prefix of each ACG's updates had already committed.
    marks = {acg: min(committed[acg], len(survived[acg]))
             for acg in survived}
    node._wal_commit_counts = dict(marks)
    recovered = node.recover_from_wal()
    expected = {acg: ids[marks[acg]:] for acg, ids in survived.items()}
    assert recovered == sum(len(ids) for ids in expected.values())
    for acg, ids in expected.items():
        replica = node.replicas.get(acg)
        got = sorted(replica.store.file_ids()) if replica else []
        assert got == sorted(ids)
