"""Projection API and WAL record round-trip properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import PropellerService
from repro.cluster.wal import WriteAheadLog
from repro.indexstructures import IndexKind


def make_service():
    service = PropellerService(num_index_nodes=2)
    client = service.make_client()
    client.create_index("by_size", IndexKind.BTREE, ["size"])
    vfs = service.vfs
    vfs.mkdir("/d")
    for i in range(5):
        path = f"/d/f{i}"
        vfs.write_file(path, (i + 1) * 1000, pid=1)
        vfs.setattr(path, "team", "alpha" if i % 2 else "beta")
        client.index_path(path, pid=1)
    client.flush_updates()
    return service, client


def test_select_returns_projected_rows():
    service, client = make_service()
    rows = client.select("size>2000", ["size", "team"])
    assert [r["path"] for r in rows] == ["/d/f2", "/d/f3", "/d/f4"]
    assert rows[0] == {"path": "/d/f2", "size": 3000, "team": "beta"}
    assert rows[1]["team"] == "alpha"


def test_select_missing_attribute_is_none():
    service, client = make_service()
    rows = client.select("size>4000", ["nonexistent"])
    assert rows == [{"path": "/d/f4", "nonexistent": None}]


def test_select_reflects_live_attribute_values():
    """Projection reads ground truth, so even attributes that are not
    indexed come back current."""
    service, client = make_service()
    service.vfs.setattr("/d/f4", "team", "gamma")
    rows = client.select("size>4000", ["team"])
    assert rows[0]["team"] == "gamma"


def test_select_empty_result():
    service, client = make_service()
    assert client.select("size>10g", ["size"]) == []


# -- WAL property -----------------------------------------------------------------

_VALUE = st.one_of(st.integers(-2**40, 2**40), st.floats(allow_nan=False),
                   st.text(max_size=12), st.none(),
                   st.tuples(st.integers(0, 9), st.text(max_size=4)))


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(_VALUE, _VALUE, _VALUE), max_size=30))
def test_property_wal_roundtrip(records):
    wal = WriteAheadLog()
    for record in records:
        wal.append(record)
    assert list(wal.replay()) == records


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(_VALUE, _VALUE), min_size=1, max_size=20),
       st.integers(1, 40))
def test_property_wal_torn_tail_is_prefix(records, torn):
    """However many tail bytes a crash chops off, replay yields an exact
    prefix of what was appended — never garbage, never reordering."""
    wal = WriteAheadLog()
    for record in records:
        wal.append(record)
    wal.simulate_torn_tail(min(torn, len(wal) - 1))
    replayed = list(wal.replay())
    assert replayed == records[:len(replayed)]
