"""Search fan-out pruning: partition summaries, watermark validation,
and the node-side result cache.

The safety property under test throughout: pruning may only ever cost a
wasted search leg — it must never drop a matching file.  Bloom false
positives, stale summaries, pending uncommitted updates, and migrations
all degrade to "search the leg anyway" (fail open).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.indexstructures import BloomFilter
from repro.query import (PartitionSummary, SummarySnapshot, canonicalize,
                         is_time_dependent, parse_query, summary_may_match)
from repro.query.ast import And, Compare, Keyword, Not, Or, RelativeAge
from repro.query.executor import AttributeStore

WM = ("in1", 1, 7)


# ---------------------------------------------------------------------------
# Bloom filter


def test_bloom_never_false_negative():
    bloom = BloomFilter()
    terms = [f"token{i:04d}" for i in range(200)]
    bloom.add_all(terms)
    assert all(t in bloom for t in terms)


def test_bloom_rarely_false_positive():
    bloom = BloomFilter()
    bloom.add_all(f"present{i}" for i in range(200))
    absent = [f"absent{i}" for i in range(500)]
    fps = sum(bloom.might_contain(t) for t in absent)
    # ~200 keys in 8192 bits with 4 hashes: FP rate is ~1e-4.
    assert fps <= 2
    assert not all(bloom.might_contain(t) for t in absent)


def test_bloom_merge_is_union():
    a, b = BloomFilter(), BloomFilter()
    a.add("left")
    b.add("right")
    a.merge(b)
    assert "left" in a and "right" in a


# ---------------------------------------------------------------------------
# Canonicalization (the result-cache key)


def test_canonicalize_is_order_insensitive():
    p1 = parse_query("size>1m & keyword:firefox")
    p2 = parse_query("keyword:firefox & size>1m")
    assert canonicalize(p1) == canonicalize(p2)
    assert canonicalize(p1) != canonicalize(parse_query("size>2m & keyword:firefox"))


def test_canonicalize_flattens_and_dedupes():
    a = Compare("size", ">", 10)
    b = Keyword("x")
    nested = And((a, And((b, a))))
    canon = canonicalize(nested)
    assert isinstance(canon, And)
    assert sorted(map(repr, canon.children)) == sorted(map(repr, (a, b)))
    # A conjunction collapsed to one distinct term loses the combinator.
    assert canonicalize(And((a, a))) == a


def test_canonicalize_preserves_semantics_kinds():
    a, b = Compare("size", ">", 10), Keyword("x")
    assert isinstance(canonicalize(Or((b, a))), Or)
    assert canonicalize(Not(a)) == Not(a)


def test_is_time_dependent():
    assert is_time_dependent(parse_query("mtime<1day"))
    assert is_time_dependent(parse_query("size>1m & mtime<1week"))
    assert not is_time_dependent(parse_query("size>1m & keyword:firefox"))


# ---------------------------------------------------------------------------
# summary_may_match: the pruning satisfiability check


def make_snapshot(files=((100, "alpha"), (200, "beta")), dirty=False,
                  extra_attrs=None):
    summary = PartitionSummary()
    for size, token in files:
        attrs = {"size": size, "mtime": float(size)}
        if extra_attrs:
            attrs.update(extra_attrs)
        summary.observe(attrs, [token])
    return summary.snapshot(7, WM, dirty=dirty, file_count=len(files))


def test_empty_partition_prunes_everything():
    snap = PartitionSummary().snapshot(7, WM, dirty=False, file_count=0)
    for query in ("size>1m", "keyword:anything", "mtime<1day", "!size>1m"):
        assert not summary_may_match(snap, parse_query(query), now=0.0)


def test_missing_attribute_prunes_any_comparison():
    snap = make_snapshot()
    # No covered file carries "owner"; a missing attribute satisfies no
    # comparison (SQL-NULL semantics), whatever the operator.
    for op in ("<", "<=", ">", ">=", "==", "!="):
        assert not summary_may_match(snap, Compare("owner", op, 5), now=0.0)


def test_zone_map_directional_rules():
    snap = make_snapshot()  # size in [100, 200]
    t = 0.0
    assert not summary_may_match(snap, Compare("size", ">", 200), t)
    assert summary_may_match(snap, Compare("size", ">", 199), t)
    assert summary_may_match(snap, Compare("size", ">=", 200), t)
    assert not summary_may_match(snap, Compare("size", ">=", 201), t)
    assert not summary_may_match(snap, Compare("size", "<", 100), t)
    assert summary_may_match(snap, Compare("size", "<=", 100), t)
    assert not summary_may_match(snap, Compare("size", "==", 300), t)
    assert summary_may_match(snap, Compare("size", "==", 150), t)
    # != and string comparisons cannot be ruled out by zones: fail open.
    assert summary_may_match(snap, Compare("size", "!=", 150), t)
    assert summary_may_match(snap, Compare("size", ">", "zzz"), t)


def test_relative_age_directional_soundness():
    snap = make_snapshot()  # mtime in [100.0, 200.0]
    now = 1_000_000.0
    # "modified within the last day" resolves to mtime > now-86400; the
    # cutoff only grows with time, so pruning on the zone max is sound.
    assert not summary_may_match(snap, parse_query("mtime<1day"), now)
    # ...but not prunable when the window still reaches the zone.
    assert summary_may_match(snap, parse_query("mtime<1day"), now=150.0)
    # "older than a day" resolves to mtime < now-86400: the allowed set
    # GROWS as the node's clock passes the client's — must fail open even
    # though the zone says every file qualifies already.
    assert summary_may_match(snap, parse_query("mtime>1day"), now)
    assert summary_may_match(
        snap, Compare("mtime", "==", RelativeAge(86400)), now)


def test_keyword_bloom_and_combinators():
    snap = make_snapshot()
    t = 0.0
    assert summary_may_match(snap, Keyword("alpha"), t)
    assert not summary_may_match(snap, Keyword("definitely-absent-term"), t)
    # And prunes if any conjunct is impossible; Or needs all impossible.
    assert not summary_may_match(
        snap, parse_query("keyword:alpha & size>900"), t)
    assert summary_may_match(
        snap, Or((Keyword("definitely-absent-term"), Keyword("beta"))), t)
    assert not summary_may_match(
        snap, Or((Keyword("no1no"), Keyword("no2no"))), t)
    # Negation over an over-approximation: always fail open.
    assert summary_may_match(snap, Not(Compare("size", ">", 900)), t)


def test_rebuild_sheds_delete_slack():
    summary = PartitionSummary()
    store = AttributeStore()
    store.put(1, {"size": 100}, path="/keep/small.bin")
    summary.observe(store.attrs(1), store.keywords(1))
    summary.observe({"size": 10_000}, ["huge"])  # file later deleted
    summary.note_delete()
    snap = summary.snapshot(7, WM, dirty=False, file_count=1)
    assert summary_may_match(snap, Compare("size", ">", 900), 0.0)  # slack
    assert not summary.needs_rebuild(live_files=1)  # rebuilds stay rare
    summary.rebuild(store)
    snap = summary.snapshot(7, WM, dirty=False, file_count=1)
    assert not summary_may_match(snap, Compare("size", ">", 900), 0.0)
    assert not summary_may_match(snap, Keyword("huge"), 0.0)
    assert summary_may_match(snap, Keyword("small"), 0.0)


# ---------------------------------------------------------------------------
# Satellite accessors


def test_attribute_store_estimated_bytes_tracks_contents():
    store = AttributeStore()

    def brute_force():
        return sum(64 + 16 * len(entry) for entry in store._attrs.values())

    assert store.estimated_bytes() == 0
    store.put(1, {"size": 10, "mtime": 1.0}, path="/a/b.bin")
    store.put(2, {"size": 20}, path="/a/c.bin")
    assert store.estimated_bytes() == brute_force() > 0
    # Refreshing an existing file only pays for genuinely new attributes.
    store.put(1, {"size": 99, "owner": 3}, path="/a/b.bin")
    assert store.estimated_bytes() == brute_force()
    store.drop(1)
    assert store.estimated_bytes() == brute_force()
    store.drop(1)  # idempotent
    store.drop(2)
    assert store.estimated_bytes() == 0


# ---------------------------------------------------------------------------
# Cluster integration

GROUPS = 4
PER_GROUP = 40


def populate_groups(service, client):
    """Index four keyword-disjoint file groups, commit, and let two
    heartbeat rounds deliver clean summaries to the Master."""
    vfs = service.vfs
    by_group = {}
    for g in range(GROUPS):
        d = f"/g{g}"
        vfs.mkdir(d)
        paths = []
        for i in range(PER_GROUP):
            p = f"{d}/tag{g}x_file{i:03d}.bin"
            vfs.write_file(p, 1024 * (4 ** g), pid=g + 1)
            paths.append(p)
        client.index_paths(paths, pid=g + 1)
        by_group[g] = paths
    client.flush_updates()
    service.advance(12.0)
    return by_group


def node_stat(service, attr):
    return sum(getattr(n, attr) for n in service.index_nodes.values())


def ino_of(service, path):
    return dict(service.vfs.namespace.files())[path].ino


def pending_location(service, client, ino):
    """(node, acg_id) of the cache holding an uncommitted op for ino."""
    for node in service.index_nodes.values():
        for acg_id in client._route_nodes:
            if any(op.file_id == ino for op in node.cache.pending_ops(acg_id)):
                return node, acg_id
    raise AssertionError(f"no pending op for file {ino}")


def test_pruned_search_equals_unpruned(indexed_service):
    service, client = indexed_service
    by_group = populate_groups(service, client)
    pruned_answer = client.search("keyword:tag0x")
    assert pruned_answer == sorted(by_group[0])
    assert service.registry.value("search.partitions_pruned") > 0
    assert node_stat(service, "prunes_validated") > 0
    # The oracle: the same query with pruning disabled.
    client.prune_searches = False
    assert client.search("keyword:tag0x") == pruned_answer


def test_bloom_false_positive_leg_is_searched_and_exact(indexed_service):
    service, client = indexed_service
    by_group = populate_groups(service, client)
    client.search("keyword:tag0x")  # populates the summary cache
    assert client._summaries
    # Force a universal false positive: every probe of an all-ones Bloom
    # filter reports "maybe present".
    for acg_id, snap in list(client._summaries.items()):
        client._summaries[acg_id] = dataclasses.replace(
            snap, bloom_bits=(1 << snap.bloom_m) - 1)
    searched0 = service.registry.value("search.partitions_searched")
    answer = client.search("keyword:tag3x")
    # Exact answer; the false-positive legs were searched, not pruned.
    assert answer == sorted(by_group[3])
    searched = service.registry.value("search.partitions_searched") - searched0
    assert searched == len(client._summaries)


def test_pending_uncommitted_update_is_never_pruned(indexed_service):
    service, client = indexed_service
    populate_groups(service, client)
    client.search("keyword:tag1x")  # caches clean (pre-update) summaries
    # A brand-new matching file, acknowledged but not yet committed; the
    # client's cached summary predates it and would prune its partition.
    path = "/g0/freshzzz_new.bin"
    service.vfs.write_file(path, 2048, pid=1)
    client.index_path(path, pid=1)
    fallbacks0 = node_stat(service, "prune_fallbacks")
    answer = client.search("keyword:freshzzz")
    assert answer == [path]
    # The owning node refused the stale skip because updates were pending.
    assert node_stat(service, "prune_fallbacks") > fallbacks0


def test_stale_summary_after_migration_fails_open(indexed_service):
    service, client = indexed_service
    by_group = populate_groups(service, client)
    client.search("keyword:tag0x")  # caches summaries + watermarks
    # Migrate a partition the tag0x query prunes; its summary (and the
    # watermark inside it) now names the *old* replica.
    ino = ino_of(service, by_group[3][0])
    acg_id = service.master.lookup_file(ino)
    source = client._route_nodes[acg_id]
    target = next(n for n in service.index_nodes if n != source)
    service.master.migrate_partition(acg_id, target)
    client._refresh_routes()  # routes now point at the new replica
    fallbacks0 = service.index_nodes[target].prune_fallbacks
    answer = client.search("keyword:tag0x")
    assert answer == sorted(by_group[0])
    # The new replica rejected the stale-incarnation skip and searched.
    assert service.index_nodes[target].prune_fallbacks > fallbacks0


def test_result_cache_hits_and_invalidates_on_commit(indexed_service):
    service, client = indexed_service
    by_group = populate_groups(service, client)
    first = client.search("size>10k")
    assert first  # some legs really were searched
    hits0 = node_stat(service, "result_cache_hits")
    assert client.search("size>10k") == first
    assert node_stat(service, "result_cache_hits") > hits0
    # A committed update bumps the watermark: the cache must not serve
    # the stale entry.
    path = "/g0/big_new_file.bin"
    service.vfs.write_file(path, 64 * 1024**2, pid=1)
    client.index_path(path, pid=1)
    client.flush_updates()
    service.advance(6.0)
    assert path in client.search("size>10k")


def test_time_dependent_queries_are_not_cached(indexed_service):
    service, client = indexed_service
    populate_groups(service, client)
    hits0 = node_stat(service, "result_cache_hits")
    client.search("mtime<1day")
    client.search("mtime<1day")
    assert node_stat(service, "result_cache_hits") == hits0


def test_pending_ops_accessor(indexed_service):
    service, client = indexed_service
    by_group = populate_groups(service, client)
    path = "/g0/pending_probe.bin"
    service.vfs.write_file(path, 2048, pid=1)
    client.index_path(path, pid=1)
    client.flush_updates()
    ino = ino_of(service, path)
    node, acg_id = pending_location(service, client, ino)
    node.cache.commit_all()
    assert node.cache.pending_ops(acg_id) == ()


def test_explain_skips_unowned_partitions(indexed_service):
    service, client = indexed_service
    populate_groups(service, client)
    predicate = parse_query("size>1m")
    all_acgs = sorted(client._route_nodes)
    for node in service.index_nodes.values():
        reported = [acg_id for acg_id, _ in
                    node.handle_explain(all_acgs, predicate)]
        assert all(node.owns(acg_id) for acg_id in reported)


def test_heartbeats_carry_summaries_and_master_versions_them(indexed_service):
    service, client = indexed_service
    populate_groups(service, client)
    table = service.master.summary_table(0)
    assert table.version > 0 and table.entries and not table.fresh
    assert all(not s.dirty for s in table.entries)
    # An up-to-date client gets a cheap "nothing changed" marker.
    again = service.master.summary_table(table.version)
    assert again.fresh and not again.entries
    # A node with pending updates marks the partition dirty in its next
    # heartbeat — clients must not prune on a dirty snapshot.
    path = "/g0/dirty_probe.bin"
    service.vfs.write_file(path, 2048, pid=1)
    client.index_path(path, pid=1)
    client.flush_updates()
    ino = ino_of(service, path)
    node, acg_id = pending_location(service, client, ino)
    heartbeat = node.make_heartbeat()
    dirty = {s.acg_id: s.dirty for s in heartbeat.summaries}
    assert dirty[acg_id] is True
