"""Streaming partitioner, k-way partitioning, and trace file I/O."""

import io
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metis import bisect, cut_of, k_way_partition, random_bisect
from repro.core.streaming import StreamingPartitioner, streaming_partition
from repro.core.trace import AccessEvent, causal_pairs
from repro.core.traceio import (
    TraceFormatError,
    acg_from_trace,
    dump_trace,
    format_event,
    load_trace,
)


def two_cliques(k):
    adj = {i: {} for i in range(2 * k)}
    for base in (0, k):
        for i in range(base, base + k):
            for j in range(base, base + k):
                if i != j:
                    adj[i][j] = 5
    adj[k - 1][k] = 1
    adj[k][k - 1] = 1
    return adj


# -- streaming (LDG) ---------------------------------------------------------------

def test_streaming_validation():
    with pytest.raises(ValueError):
        StreamingPartitioner(0, 10)
    with pytest.raises(ValueError):
        StreamingPartitioner(2, 0)


def test_streaming_is_idempotent_per_vertex():
    p = StreamingPartitioner(2, capacity=10)
    first = p.place(1, [])
    again = p.place(1, [2, 3])
    assert first == again
    assert sum(len(part) for part in p.partitions) == 1


def test_streaming_respects_capacity():
    p = StreamingPartitioner(2, capacity=2)
    for v in range(4):
        p.place(v, [])
    with pytest.raises(ValueError):
        p.place(99, [])


def test_streaming_keeps_cliques_together():
    adj = two_cliques(10)
    partitioner = streaming_partition(adj, 2)
    # The two cliques should land (almost) entirely in separate parts.
    cut = partitioner.cut_weight(adj)
    assert cut <= random_bisect(adj, seed=1).cut_weight
    assert cut < 0.2 * sum(w for t in adj.values() for w in t.values()) / 2


def test_streaming_balance_under_slack():
    adj = {i: {} for i in range(100)}  # no edges: pure balance test
    partitioner = streaming_partition(adj, 4)
    sizes = sorted(len(p) for p in partitioner.partitions)
    assert sizes[0] >= 20


def test_streaming_order_matters_but_cut_reasonable():
    adj = two_cliques(8)
    rng = random.Random(0)
    order = list(adj)
    rng.shuffle(order)
    partitioner = streaming_partition(adj, 2, order=order)
    assert partitioner.cut_weight(adj) <= random_bisect(adj, seed=2).cut_weight


# -- k-way ---------------------------------------------------------------------------

def test_k_way_validation():
    with pytest.raises(ValueError):
        k_way_partition({1: {}}, 0)


def test_k_way_one_part_is_whole_graph():
    adj = two_cliques(4)
    assert k_way_partition(adj, 1) == [set(adj)]


def test_k_way_covers_and_is_disjoint():
    adj = two_cliques(12)
    parts = k_way_partition(adj, 4)
    assert len(parts) == 4
    union = set()
    for part in parts:
        assert not union & part
        union |= part
    assert union == set(adj)


def test_k_way_roughly_balanced():
    rng = random.Random(1)
    adj = {i: {} for i in range(128)}
    for i in range(128):
        for j in range(i + 1, 128):
            if rng.random() < 0.05:
                adj[i][j] = 1
                adj[j][i] = 1
    parts = k_way_partition(adj, 4)
    sizes = sorted(len(p) for p in parts)
    assert sizes[0] >= 20 and sizes[-1] <= 44


def test_k_way_odd_k():
    adj = two_cliques(9)
    parts = k_way_partition(adj, 3)
    assert len(parts) == 3
    assert sum(len(p) for p in parts) == len(adj)


# -- trace I/O -------------------------------------------------------------------------

def ev(pid, fid, mode, t):
    return AccessEvent(pid=pid, file_id=fid,
                       read="r" in mode, write="w" in mode, t_open=t)


def test_format_event_modes():
    assert format_event(ev(1, 2, "r", 0.5)) == "1 r 2 0.500000"
    assert format_event(ev(1, 2, "w", 0.5)).split()[1] == "w"
    assert format_event(ev(1, 2, "rw", 0.5)).split()[1] == "rw"


def test_dump_load_roundtrip():
    events = [ev(1, 10, "r", 0.0), ev(1, 20, "w", 1.0), ev(2, 10, "rw", 2.0)]
    buffer = io.StringIO()
    assert dump_trace(events, buffer) == 3
    buffer.seek(0)
    assert load_trace(buffer) == events


def test_load_accepts_paths_with_stable_ids():
    lines = [
        "7 r /src/a.c 0.0",
        "7 r /src/a.h 1.0",
        "7 w /out/a.o 2.0",
        "8 r /src/a.c 3.0",
    ]
    events = load_trace(lines)
    assert events[0].file_id == events[3].file_id       # same path, same id
    assert len({e.file_id for e in events[:3]}) == 3


def test_comments_and_blanks_skipped():
    lines = ["# header", "", "1 r 5 0.0", "   ", "# trailing"]
    assert len(load_trace(lines)) == 1


@pytest.mark.parametrize("bad", [
    "1 r 5",                # too few fields
    "1 q 5 0.0",            # bad mode
    "x r 5 0.0",            # bad pid
    "1 r 5 zz",             # bad time
])
def test_malformed_lines_raise(bad):
    with pytest.raises(TraceFormatError):
        load_trace([bad])


def test_acg_from_trace_builds_causality():
    lines = [
        "7 r /src/a.c 0.0",
        "7 w /out/a.o 1.0",
        "9 r /src/a.c 2.0",   # different process, no write: no edge
    ]
    graph = acg_from_trace(lines)
    assert graph.vertex_count == 2
    assert graph.edge_count == 1
    # Edge goes source -> object.
    (u, v, w), = list(graph.edges())
    assert w == 1


def test_trace_roundtrip_preserves_causality():
    events = [ev(1, 1, "r", 0), ev(1, 2, "w", 1), ev(1, 3, "w", 2),
              ev(2, 4, "r", 3), ev(2, 5, "w", 4)]
    buffer = io.StringIO()
    dump_trace(events, buffer)
    buffer.seek(0)
    assert sorted(causal_pairs(load_trace(buffer))) == sorted(causal_pairs(events))


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(1, 4), st.integers(1, 30),
                          st.sampled_from(["r", "w", "rw"])), max_size=50))
def test_property_trace_roundtrip(raw):
    events = [ev(pid, fid, mode, float(i)) for i, (pid, fid, mode) in enumerate(raw)]
    buffer = io.StringIO()
    dump_trace(events, buffer)
    buffer.seek(0)
    assert load_trace(buffer) == events
