"""Tests for the telemetry tentpole: TimelineRecorder (virtual-clock time
series) and FreshnessTracker (change-to-search-visible staleness), plus
their wiring into PropellerService and the crawler baseline."""

import random

import pytest

from repro import IndexKind, PropellerService
from repro.obs.freshness import NULL_FRESHNESS, FreshnessTracker, NullFreshness
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeline import NULL_TIMELINE, NullTimeline, TimelineRecorder
from repro.sim.clock import SimClock
from repro.workloads.datasets import populate_namespace


def build_service(files=300, nodes=2):
    service = PropellerService(num_index_nodes=nodes)
    client = service.make_client()
    client.create_index("by_size", IndexKind.BTREE, ["size"])
    paths = populate_namespace(service.vfs, files, seed=7)
    return service, client, paths


class TestTimelineRecorder:
    def test_sampling_never_charges_the_clock(self):
        clock = SimClock()
        timeline = TimelineRecorder(clock, interval_s=1.0)
        state = {"v": 0}
        timeline.track("v", lambda: state["v"])
        for step in range(50):
            clock.charge(0.37)
            state["v"] = step
            before = clock.now()
            timeline.sample_if_due()
            assert clock.now() == before   # reads only, zero virtual cost
        assert len(timeline) > 0

    def test_timestamps_strictly_increasing_under_random_advances(self):
        # Property-style: whatever charge pattern drives it — including
        # zero-length advances and bursts shorter than the interval —
        # sampled timestamps are strictly increasing.
        rng = random.Random(0xC10C)
        for trial in range(20):
            clock = SimClock()
            timeline = TimelineRecorder(clock, interval_s=rng.choice((0.1, 1.0, 5.0)))
            timeline.track("t", clock.now)
            for _ in range(200):
                if rng.random() < 0.2:
                    timeline.sample_if_due()   # possibly due, possibly not
                else:
                    clock.charge(rng.uniform(0.0, 2.0))
            timeline.sample_if_due()
            points = timeline.series("t")
            times = [t for t, _ in points]
            assert times == sorted(set(times)), (trial, times)

    def test_sample_refuses_non_advancing_time(self):
        clock = SimClock()
        timeline = TimelineRecorder(clock, interval_s=1.0)
        timeline.track("x", lambda: 1)
        clock.charge(1.0)
        timeline.sample()
        assert len(timeline) == 1
        timeline.sample()          # same timestamp: dropped, not duplicated
        assert len(timeline) == 1

    def test_to_dict_and_render_roundtrip(self):
        clock = SimClock()
        timeline = TimelineRecorder(clock, interval_s=0.5)
        timeline.track("a", lambda: 42)
        clock.charge(1.0)
        timeline.sample()
        d = timeline.to_dict()
        assert d["interval_s"] == 0.5
        assert d["series"]["a"] == [[pytest.approx(1.0), 42]]
        assert "a" in timeline.render()

    def test_null_timeline_is_inert(self):
        assert not NULL_TIMELINE.enabled
        NULL_TIMELINE.sample_if_due()
        NULL_TIMELINE.sample()
        assert NULL_TIMELINE.to_dict()["series"] == {}
        assert isinstance(NULL_TIMELINE, NullTimeline)


class TestFreshnessTracker:
    def test_stamp_to_visible_measures_staleness(self):
        reg = MetricsRegistry()
        tracker = FreshnessTracker(reg)
        tracker.stamp(1, 10.0)
        tracker.stamp(1, 12.0)              # earliest wins
        assert tracker.visible("n1", 1, 15.0) == pytest.approx(5.0)
        assert tracker.visible("n1", 1, 16.0) is None   # already popped
        assert tracker.worst_s() == pytest.approx(5.0)
        assert reg.value("cluster.freshness.visible_events") == 1
        summary = tracker.summary()
        assert summary["nodes"]["n1"]["count"] == 1

    def test_pending_bounded_with_eviction(self):
        tracker = FreshnessTracker(MetricsRegistry(), max_pending=4)
        for i in range(10):
            tracker.stamp(i, float(i))
        assert tracker.pending == 4
        assert tracker.dropped == 6
        # The oldest stamps were evicted; the newest survive.
        assert tracker.visible("n", 9, 20.0) is not None
        assert tracker.visible("n", 0, 20.0) is None

    def test_pending_ttl_expires_orphaned_stamps(self):
        """A stamp whose update died with a failed node would otherwise
        sit in the pending map forever; the TTL reaps it and counts it."""
        reg = MetricsRegistry()
        tracker = FreshnessTracker(reg, pending_ttl_s=10.0)
        tracker.stamp(1, 0.0)
        tracker.stamp(2, 7.0)
        assert tracker.expire(5.0) == 0         # nothing old enough
        assert tracker.expire(11.0) == 1        # stamp 1 aged out
        assert tracker.pending == 1
        assert tracker.visible("n", 1, 12.0) is None   # gone
        assert tracker.visible("n", 2, 12.0) == pytest.approx(5.0)
        assert tracker.expired == 1
        assert reg.value("cluster.freshness.expired") == 1
        assert tracker.summary()["expired"] == 1

    def test_pending_ttl_disabled_never_expires(self):
        tracker = FreshnessTracker(MetricsRegistry(), pending_ttl_s=None)
        tracker.stamp(1, 0.0)
        assert tracker.expire(1e9) == 0
        assert tracker.pending == 1

    def test_pending_ttl_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            FreshnessTracker(MetricsRegistry(), pending_ttl_s=0.0)

    def test_null_freshness_is_inert(self):
        assert not NULL_FRESHNESS.enabled
        NULL_FRESHNESS.stamp(1, 0.0)
        assert NULL_FRESHNESS.visible("n", 1, 1.0) is None
        assert NULL_FRESHNESS.expire(100.0) == 0
        assert isinstance(NULL_FRESHNESS, NullFreshness)


class TestServiceWiring:
    def test_enable_timeline_tracks_cluster_series(self):
        service, client, paths = build_service()
        timeline = service.enable_timeline(interval_s=0.001)
        client.index_paths(paths, pid=1)
        client.flush_updates()
        service.commit_all()
        service.advance(1.0)
        d = timeline.to_dict()
        for name in ("dirty_backlog", "load_skew", "cache_hit_rate",
                     "indexed_files", "failovers"):
            assert name in d["series"], name
            assert d["series"][name], name
        # indexed_files ends at the real total.
        assert d["series"]["indexed_files"][-1][1] == \
            service.total_indexed_files()
        service.disable_timeline()
        assert service.timeline is NULL_TIMELINE

    def test_enable_freshness_measures_commit_visibility(self):
        service, client, paths = build_service()
        tracker = service.enable_freshness()
        client.index_paths(paths[:50], pid=1)
        client.flush_updates()
        service.advance(6.0)      # past the cache commit timeout
        service.commit_all()
        assert tracker.summary()["nodes"], "commits should be observed"
        assert tracker.worst_s() > 0.0
        service.disable_freshness()
        assert service.freshness is NULL_FRESHNESS

    def test_instrumentation_is_bit_identical(self):
        def workload(instrument):
            service, client, paths = build_service(files=200)
            if instrument:
                service.enable_timeline(interval_s=0.01)
                service.enable_freshness()
            client.index_paths(paths, pid=1)
            client.flush_updates()
            service.commit_all()
            latencies = []
            for _ in range(5):
                span = service.clock.span()
                client.search("size>1m")
                latencies.append(span.elapsed())
                service.pump()
            service.advance(2.0)
            return latencies, service.clock.now()

        assert workload(False) == workload(True)


class TestCrawlerProbe:
    def test_crawler_staleness_cdf(self):
        from repro.baselines.crawler import CrawlerConfig, CrawlerSearchEngine
        from repro.fs.vfs import VirtualFileSystem
        from repro.sim.events import EventLoop

        clock = SimClock()
        vfs = VirtualFileSystem(clock)
        loop = EventLoop(clock)
        reg = MetricsRegistry()
        tracker = FreshnessTracker(reg)
        crawler = CrawlerSearchEngine(
            vfs, loop, CrawlerConfig(reindex_rate_fps=100.0, pass_period_s=5.0),
            freshness=tracker, freshness_node="crawler")
        vfs.mkdir("/d")
        for i in range(20):
            vfs.write_file(f"/d/f{i}.txt", 1024, pid=1)
        loop.run_until(clock.now() + 30.0)
        summary = tracker.summary()
        assert "crawler" in summary["nodes"]
        assert summary["nodes"]["crawler"]["count"] > 0
        # Crawler staleness is bounded below by the pass period's order of
        # magnitude — that's Figure 1's argument.
        values = tracker.staleness_values("crawler")
        assert max(values) > 1.0
