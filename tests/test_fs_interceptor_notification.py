"""File Access Management (FUSE shim) and the notification queue."""

import pytest

from repro.fs.interceptor import FileAccessManager
from repro.fs.notification import FsEventKind, NotificationQueue
from repro.fs.vfs import OpenMode, VirtualFileSystem
from repro.sim.clock import SimClock


@pytest.fixture
def vfs():
    return VirtualFileSystem(SimClock())


def compile_like_sequence(vfs, pid=7):
    """source read -> header read -> object write, one process."""
    vfs.mkdir("/src")
    vfs.mkdir("/out")
    src = vfs.write_file("/src/a.c", 100, pid=pid)
    vfs.clock.charge(0.1)
    hdr = vfs.write_file("/src/a.h", 50, pid=pid)
    vfs.clock.charge(0.1)
    fd = vfs.open("/src/a.c", OpenMode.READ, pid=pid)
    vfs.close(fd)
    vfs.clock.charge(0.1)
    fd = vfs.open("/src/a.h", OpenMode.READ, pid=pid)
    vfs.close(fd)
    vfs.clock.charge(0.1)
    obj = vfs.write_file("/out/a.o", 30, pid=pid)
    return src, hdr, obj


def test_acg_built_from_opens(vfs):
    fam = FileAccessManager()
    vfs.add_observer(fam)
    src, hdr, obj = compile_like_sequence(vfs)
    acg = fam.peek()
    assert acg.weight(src.ino, obj.ino) >= 1
    assert acg.weight(hdr.ino, obj.ino) >= 1
    assert acg.weight(obj.ino, src.ino) == 0


def test_drain_resets_acg(vfs):
    fam = FileAccessManager()
    vfs.add_observer(fam)
    compile_like_sequence(vfs)
    first = fam.drain()
    assert first.edge_count > 0
    assert fam.peek().vertex_count == 0


def test_unlink_removes_vertex(vfs):
    fam = FileAccessManager()
    vfs.add_observer(fam)
    src, hdr, obj = compile_like_sequence(vfs)
    vfs.unlink("/out/a.o", pid=7)
    assert not fam.peek().has_vertex(obj.ino)


def test_create_unlink_callbacks(vfs):
    created, unlinked = [], []
    fam = FileAccessManager(on_create=lambda p, i: created.append(p),
                            on_unlink=lambda p, i: unlinked.append(p))
    vfs.add_observer(fam)
    vfs.write_file("/f", 1, pid=1)
    vfs.unlink("/f", pid=1)
    assert created == ["/f"]
    assert unlinked == ["/f"]


def test_pid_filter_ignores_other_processes(vfs):
    fam = FileAccessManager(pid_filter={7})
    vfs.add_observer(fam)
    vfs.write_file("/mine", 1, pid=7)
    vfs.write_file("/theirs", 1, pid=8)
    acg = fam.peek()
    assert acg.vertex_count == 1


def test_process_finished_stops_causality(vfs):
    fam = FileAccessManager()
    vfs.add_observer(fam)
    a = vfs.write_file("/a", 1, pid=7)
    fam.process_finished(7)
    vfs.clock.charge(0.1)
    b = vfs.write_file("/b", 1, pid=7)
    assert fam.peek().weight(a.ino, b.ino) == 0


def test_events_seen_counter(vfs):
    fam = FileAccessManager()
    vfs.add_observer(fam)
    vfs.write_file("/a", 1, pid=1)  # one open
    fd = vfs.open("/a", OpenMode.READ, pid=1)
    vfs.close(fd)
    assert fam.events_seen == 2


def test_notification_queue_records_events(vfs):
    queue = NotificationQueue()
    vfs.add_observer(queue)
    vfs.write_file("/f", 10, pid=1)
    vfs.setattr("/f", "tag", "x")
    vfs.unlink("/f", pid=1)
    kinds = [e.kind for e in queue.drain()]
    assert kinds == [FsEventKind.CREATED, FsEventKind.MODIFIED,
                     FsEventKind.MODIFIED, FsEventKind.DELETED]
    assert len(queue) == 0


def test_notification_overflow_drops(vfs):
    queue = NotificationQueue(capacity=2)
    vfs.add_observer(queue)
    for i in range(5):
        vfs.write_file(f"/f{i}", 1)
    assert len(queue) == 2
    assert queue.dropped > 0


def test_notification_paths_and_timestamps(vfs):
    queue = NotificationQueue()
    vfs.add_observer(queue)
    vfs.clock.charge(3.0)
    vfs.write_file("/d/f" if vfs.mkdir("/d") else "/d/f", 1)
    events = queue.drain()
    assert all(e.path == "/d/f" for e in events)
    assert all(e.timestamp == pytest.approx(3.0, abs=1e-5) for e in events)
