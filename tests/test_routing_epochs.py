"""Epoch-versioned routing: route-table versioning, client cache
behavior off the Master's hot path, and the edge cases where an epoch
transition races another cluster event (migration vs. rename, split vs.
failover, a badly stale client, a NACK storm after defragmentation, and
a source crash mid-migration)."""

import pytest

from repro.chaos.faults import FaultInjector
from repro.cluster import PropellerService
from repro.core.partitioner import PartitioningPolicy
from repro.errors import StaleRoute
from repro.indexstructures import IndexKind


def build(nodes=3, split=10**9, target=8):
    service = PropellerService(
        num_index_nodes=nodes,
        policy=PartitioningPolicy(split_threshold=split, cluster_target=target))
    client = service.make_client()
    client.create_index("by_size", IndexKind.BTREE, ["size"])
    return service, client


def index_files(service, client, n, pid=7, prefix="f"):
    if not service.vfs.exists("/d"):
        service.vfs.mkdir("/d", parents=True)
    paths = []
    for i in range(n):
        path = f"/d/{prefix}{pid}_{i:03d}"
        service.vfs.write_file(path, 100 + i, pid=pid)
        client.index_path(path, pid=pid)
        paths.append(path)
    client.flush_updates()
    return paths


def hosts_of(service, file_id):
    """Live nodes whose committed replicas hold a file."""
    names = []
    for name, node in sorted(service.index_nodes.items()):
        if not node.endpoint.up:
            continue
        for replica in node.replicas.values():
            if file_id in replica.store:
                names.append(name)
    return names


# -- route table versioning ------------------------------------------------------


def test_route_table_full_fresh_delta():
    service, client = build()
    index_files(service, client, 10, pid=7)
    master = service.master

    full = master.route_table(0)
    assert full.full and not full.fresh
    assert full.epoch == master.partitions.epoch
    assert {e.acg_id for e in full.entries} == {
        p.partition_id for p in master.partitions.partitions()}

    fresh = master.route_table(full.epoch)
    assert fresh.fresh and not fresh.full and fresh.entries == ()

    # One routing change: a client at the old epoch gets a delta naming
    # only the changed partition.
    moved = next(p for p in master.partitions.partitions() if p.node)
    target = next(n for n in master.index_nodes if n != moved.node)
    master.migrate_partition(moved.partition_id, target)
    delta = master.route_table(full.epoch)
    assert not delta.full and not delta.fresh
    assert {e.acg_id for e in delta.entries} == {moved.partition_id}
    assert all(e.node == target for e in delta.entries)

    # A client too far behind the change log falls back to a full table.
    master._route_log.clear()
    assert master.route_table(full.epoch).full


def test_merged_away_partition_reported_dropped_in_delta():
    # target=2 keeps each process's dribble in its own partition (the
    # client would otherwise pack both into one open partition).
    service, client = build(target=2)
    index_files(service, client, 3, pid=1)
    index_files(service, client, 3, pid=2)
    service.commit_all()
    master = service.master
    before = master.route_table(0)

    def hosted(p):
        node = service.index_nodes.get(p.node) if p.node else None
        replica = node.replicas.get(p.partition_id) if node else None
        return replica.file_count if replica else 0

    small = [p for p in master.partitions.partitions() if hosted(p) > 0]
    assert len(small) >= 2
    master.merge_partitions(small[0].partition_id, small[1].partition_id)
    delta = master.route_table(before.epoch)
    dropped = {e.acg_id for e in delta.entries if e.size == -1}
    assert small[1].partition_id in dropped


def test_allocate_partitions_spreads_across_nodes():
    service, client = build(nodes=3)
    table = service.master.allocate_partitions(6, since_epoch=0)
    assert table.epoch == service.master.partitions.epoch
    placed = {}
    for p in service.master.partitions.partitions():
        placed.setdefault(p.node, []).append(p.partition_id)
    # Every node got some of the slab; no node got more than its share
    # plus one.
    assert set(placed) == set(service.master.index_nodes)
    counts = sorted(len(v) for v in placed.values())
    assert counts[-1] - counts[0] <= 1


# -- client cache off the hot path ----------------------------------------------


def test_steady_state_flush_skips_master():
    service, client = build()
    index_files(service, client, 16, pid=3)
    reg = service.registry
    rpcs_before = reg.value("cluster.master.route_rpcs")
    # Causally-hinted files resolve against the cached placement: the
    # steady-state flush makes zero Master routing calls.
    index_files(service, client, 16, pid=3)
    assert reg.value("cluster.master.route_rpcs") == rpcs_before
    assert reg.value("cluster.client.route_cache_hits") >= 16


def test_stamped_update_to_nonowner_nacks():
    service, client = build()
    index_files(service, client, 4, pid=1)
    owned = {acg for name, node in service.index_nodes.items()
             for acg in node.replicas}
    missing_acg = max(owned) + 1000
    node = next(iter(service.index_nodes.values()))
    from repro.cluster.messages import IndexUpdate
    with pytest.raises(StaleRoute):
        node.handle_index_update(
            missing_acg, [IndexUpdate.upsert(999, {"size": 1}, path="/x")],
            epoch=service.master.partitions.epoch)
    assert node.stale_route_nacks >= 1


def test_client_several_epochs_stale_converges():
    service, client = build()
    paths = index_files(service, client, 24, pid=1)
    assert len(client.search("size>0")) == 24
    master = service.master

    # The Master reroutes several partitions behind the client's back —
    # each migration bumps the epoch at least once.
    stale_epoch = client._route_epoch
    nodes = list(master.index_nodes)
    hosted = [p for p in master.partitions.partitions()
              if p.node and service.index_nodes[p.node]
              .replicas.get(p.partition_id)]
    for i, p in enumerate(hosted[:3]):
        target = next(n for n in nodes if n != p.node)
        master.migrate_partition(p.partition_id, target)
    assert master.partitions.epoch > stale_epoch + 2
    assert client._route_epoch == stale_epoch

    # A stale client still gets complete answers (NACK → refresh →
    # retry) and lands on the current epoch.
    got = client.search("size>0")
    assert sorted(got) == sorted(paths)
    assert client._route_epoch == master.partitions.epoch

    # And its next update batch delivers without requeue debt.
    index_files(service, client, 4, pid=1)
    assert client._pending == []


def test_nack_storm_after_merge_small_partitions():
    # target=2 keeps each process's dribble in its own small partition.
    service, client = build(target=2)
    # Many single-process dribbles leave many small partitions.
    for pid in range(1, 9):
        index_files(service, client, 3, pid=pid)
    assert len(client.search("size>0")) == 24
    master = service.master
    master.poll_heartbeats()          # teach the Master the real sizes
    merges = master.merge_small_partitions(min_size=4)
    assert merges >= 2                # a real defragmentation happened

    refreshes_before = service.registry.value("cluster.client.route_refreshes")
    # Touch every file again: the client's cached routes for merged-away
    # partitions all NACK, yet one refresh round heals the whole batch.
    for pid in range(1, 9):
        index_files(service, client, 3, pid=pid)
    assert client._pending == []
    assert service.registry.value("cluster.client.stale_route_nacks") > 0
    refreshes = (service.registry.value("cluster.client.route_refreshes")
                 - refreshes_before)
    assert refreshes <= 8             # one per flush, not one per NACK
    assert len(client.search("size>0")) == 24
    assert client._route_epoch == master.partitions.epoch


# -- epoch transitions racing cluster events -------------------------------------


def test_rename_during_migration_window():
    """An update routed to the old owner during the dual-ownership
    window is forwarded, never applied by the handed-off source."""
    service, client = build()
    paths = index_files(service, client, 8, pid=5)
    master = service.master
    partition = next(p for p in master.partitions.partitions()
                     if p.node and service.index_nodes[p.node]
                     .replicas.get(p.partition_id))
    source = partition.node
    target = next(n for n in master.index_nodes if n != source)

    # Drop the finish_migration RPC: the flip happens but the source
    # keeps its (handed-off) replica — the dual-ownership window stays
    # open until the next heartbeat round retries the cleanup.
    injector = FaultInjector(seed=0)
    injector.arm_method_fault(source, "finish_migration")
    service.rpc.faults = injector
    master.migrate_partition(partition.partition_id, target)
    assert master.migration_log[-1].outcome == "finish_deferred"
    src_node = service.index_nodes[source]
    assert partition.partition_id in src_node.handoff_intents

    # Rename a file of the migrated partition.  The client's cache still
    # routes it to the source, which must forward — not apply.
    old_path = paths[0]
    file_id = service.vfs.stat(old_path).ino
    new_path = "/d/renamed"
    service.vfs.rename(old_path, new_path)
    client.index_path(new_path, pid=5)
    client.flush_updates()
    assert src_node.nonowner_applied == 0
    got = client.search("size>0")
    assert new_path in got and old_path not in got

    # The deferred finish retries on the heartbeat round; afterwards
    # exactly one node hosts the file.
    master.poll_heartbeats()
    assert master.migration_log[-1].outcome == "done"
    assert partition.partition_id not in src_node.replicas
    assert hosts_of(service, file_id) == [target]


def test_split_racing_failover():
    """A partition crosses the split threshold, but its owner dies
    before the heartbeat round: failover re-homes it first, and the
    split then happens on the adopter."""
    service, client = build(split=40)
    index_files(service, client, 60, pid=9)
    service.commit_all()
    service._checkpoint_all()
    master = service.master
    big = next(p for p in master.partitions.partitions()
               if p.node and service.index_nodes[p.node]
               .replicas.get(p.partition_id)
               and service.index_nodes[p.node]
               .replicas[p.partition_id].file_count > 40)
    victim = big.node
    service.fail_node(victim)
    moved = service.failover(victim)
    assert moved >= 1
    assert big.node != victim and big.node is not None

    # The adopter's next heartbeat reports the oversize; the split runs
    # there, and both halves obey the threshold.
    master.poll_heartbeats()
    assert any(d.acg_id == big.partition_id for d in master.splits)
    sizes = [master._effective_size(p)
             for p in master.partitions.partitions()]
    assert max(sizes) <= 40
    assert len(client.search("size>0")) == 60


def test_migration_racing_source_crash():
    """Source crashes after the flip but before finish_migration: WAL
    replay must not resurrect the handed-off partition, and the debris
    retry completes the protocol."""
    service, client = build()
    paths = index_files(service, client, 10, pid=2)
    service.commit_all()
    master = service.master
    partition = next(p for p in master.partitions.partitions()
                     if p.node and service.index_nodes[p.node]
                     .replicas.get(p.partition_id)
                     and service.index_nodes[p.node]
                     .replicas[p.partition_id].file_count > 0)
    source, acg_id = partition.node, partition.partition_id
    target = next(n for n in master.index_nodes if n != source)

    injector = FaultInjector(seed=0)
    injector.arm_method_fault(source, "finish_migration")
    service.rpc.faults = injector
    moved = master.migrate_partition(acg_id, target)
    assert moved == 10
    assert master.migration_log[-1].outcome == "finish_deferred"

    # Crash the old owner and restart it: its WAL still holds this
    # partition's records, but the durable handoff intent makes replay
    # skip them — nothing handed off is re-acquired through the log.
    src_node = service.index_nodes[source]
    src_node.crash()
    service.recover_node(source)
    assert src_node.wal_replay_skipped_total >= 10
    # The disk-backed copy legitimately survives the restart behind the
    # handoff intent: the source forwards/NACKs but never serves it, so
    # a search sees each file exactly once.
    assert acg_id in src_node.handoff_intents
    assert sorted(client.search("size>0")) == sorted(paths)

    # The heartbeat round drives the deferred finish; only then does the
    # debris copy disappear and ownership become single again.
    master.poll_heartbeats()
    assert master.migration_log[-1].outcome == "done"
    assert acg_id not in src_node.handoff_intents
    assert acg_id not in src_node.replicas
    for path in paths:
        assert hosts_of(service, service.vfs.stat(path).ino) == [target]
    assert sorted(client.search("size>0")) == sorted(paths)


def test_master_restart_racing_migration_finish():
    """The *Master* crashes after the route flip but before the deferred
    finish resolves: meta-WAL replay rebuilds both the flipped route and
    the finish intent, and the restarted Master's heartbeat round
    completes the protocol it left mid-flight."""
    service, client = build()
    paths = index_files(service, client, 10, pid=4)
    service.commit_all()
    master = service.master
    partition = next(p for p in master.partitions.partitions()
                     if p.node and service.index_nodes[p.node]
                     .replicas.get(p.partition_id)
                     and service.index_nodes[p.node]
                     .replicas[p.partition_id].file_count > 0)
    source, acg_id = partition.node, partition.partition_id
    target = next(n for n in master.index_nodes if n != source)

    injector = FaultInjector(seed=0)
    injector.arm_method_fault(source, "finish_migration")
    service.rpc.faults = injector
    master.migrate_partition(acg_id, target)
    assert master.migration_log[-1].outcome == "finish_deferred"
    assert (source, acg_id) in master._pending_finishes
    epoch_flip = master.partitions.epoch
    before = master._build_meta_state().snapshot()

    # The Master process dies with the finish still pending.  Replay
    # rebuilds byte-identical durable state at the same epoch — the
    # intent is durable, so the restart cannot strand dual ownership.
    service.crash_master()
    service.restart_master()
    assert master.acting
    assert master._build_meta_state().snapshot() == before
    assert master.partitions.epoch == epoch_flip
    assert (source, acg_id) in master._pending_finishes

    # The restarted Master's debris retry drives the finish home.
    master.poll_heartbeats()
    assert (source, acg_id) not in master._pending_finishes
    src_node = service.index_nodes[source]
    assert acg_id not in src_node.handoff_intents
    assert acg_id not in src_node.replicas
    for path in paths:
        assert hosts_of(service, service.vfs.stat(path).ino) == [target]
    assert sorted(client.search("size>0")) == sorted(paths)
