"""Tests for span tracing (repro.obs.tracing), query profiles
(repro.obs.profile), exporters, and the profile CLI surface."""

import json

import pytest

from repro import IndexKind, PropellerService
from repro.cli import main
from repro.errors import ClusterError
from repro.obs.export import (
    registry_to_json, render_registry, render_span_tree, span_to_dict,
    span_to_json)
from repro.obs.profile import QueryProfile, critical_children
from repro.obs.tracing import NULL_TRACER, Span, Tracer
from repro.sim.clock import SimClock
from repro.workloads.datasets import populate_namespace


def build_small_service(num_index_nodes=2, files=300, tracing=False):
    service = PropellerService(num_index_nodes=num_index_nodes,
                               tracing=tracing)
    client = service.make_client()
    client.create_index("by_size", IndexKind.BTREE, ["size"])
    client.create_index("by_kw", IndexKind.HASH, ["keyword"])
    paths = populate_namespace(service.vfs, files, seed=2)
    client.index_paths(paths, pid=1)
    client.flush_updates()
    service.commit_all()
    return service, client


class TestTracer:
    def test_nested_spans_form_a_tree(self):
        clock = SimClock()
        tracer = Tracer(clock)
        with tracer.span("outer") as outer:
            clock.charge(1.0)
            with tracer.span("inner", k=1) as inner:
                clock.charge(0.5)
        assert tracer.last_root() is outer
        assert outer.children == [inner]
        assert outer.duration == pytest.approx(1.5)
        assert inner.duration == pytest.approx(0.5)
        assert inner.attributes == {"k": 1}

    def test_exception_marks_span_errored_and_propagates(self):
        tracer = Tracer(SimClock())
        with pytest.raises(ValueError):
            with tracer.span("work"):
                raise ValueError("boom")
        root = tracer.last_root("work")
        assert root.status == "error"
        assert "boom" in root.error

    def test_annotate_hits_innermost_open_span(self):
        tracer = Tracer(SimClock())
        with tracer.span("a"):
            with tracer.span("b") as b:
                tracer.annotate("page_faults")
                tracer.annotate("page_faults", 2)
        assert b.metrics == {"page_faults": 3.0}

    def test_roots_history_is_bounded(self):
        tracer = Tracer(SimClock(), max_roots=4)
        for i in range(10):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer.roots) == 4
        assert tracer.last_root().name == "s9"

    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("anything", k=1) as span:
            span.record("x")
            span.set_attribute("y", 2)
        assert NULL_TRACER.last_root() is None
        assert NULL_TRACER.current is None
        assert not NULL_TRACER.enabled


class TestTracedSearch:
    def test_search_span_tree_has_all_stages(self):
        service, client = build_small_service()
        service.enable_tracing()
        client.search("size>1m")
        root = service.tracer.last_root("search")
        assert root is not None and root.end is not None
        # Routing comes from the client's cached route table — no
        # route_search RPC appears on the search path any more.
        for stage in ("fanout", "rpc:search",
                      "cache_commit", "plan", "index_scan"):
            assert root.find(stage), f"missing stage: {stage}"
        # Fan-out legs are marked parallel, one rpc:search per targeted node.
        fanout = root.find("fanout")[0]
        assert fanout.attributes.get("parallel") is True
        assert len(fanout.find("rpc:search")) == fanout.attributes["nodes"]

    def test_stage_self_times_sum_to_search_latency(self):
        service, client = build_small_service()
        service.enable_tracing()
        t0 = service.clock.now()
        client.search("size>1m")
        latency = service.clock.now() - t0
        profile = QueryProfile(service.tracer.last_root("search"))
        assert profile.total_s == pytest.approx(latency)
        stage_sum = sum(agg["self_s"] for agg in profile.by_stage().values())
        assert stage_sum == pytest.approx(profile.total_s)

    def test_tracing_charges_zero_simulated_time(self):
        """The same workload lands on the identical virtual timestamp with
        tracing on and off — instrumentation is free in simulated time."""
        finals = []
        for tracing in (False, True):
            service, client = build_small_service(tracing=tracing)
            client.search("size>1m")
            client.search("keyword:firefox")
            finals.append(service.clock.now())
        assert finals[0] == finals[1]

    def test_profile_search_requires_tracing(self):
        service, client = build_small_service()
        with pytest.raises(ClusterError):
            client.profile_search("size>1m")
        service.enable_tracing()
        profile = client.profile_search("size>1m")
        assert profile.query == "size>1m"
        assert profile.total_s > 0.0

    def test_disable_tracing_restores_null(self):
        service, client = build_small_service()
        service.enable_tracing()
        client.search("size>1m")
        assert service.tracer.last_root("search") is not None
        service.disable_tracing()
        assert service.tracer is NULL_TRACER
        client.search("size>1m")  # must not record or raise
        assert service.tracer.last_root("search") is None


class TestProfile:
    def _profiled(self):
        service, client = build_small_service()
        service.enable_tracing()
        return client.profile_search("size>1m")

    def test_open_root_rejected(self):
        span = Span("open", 0.0)
        with pytest.raises(ValueError):
            QueryProfile(span)

    def test_critical_children_picks_slowest_parallel_leg(self):
        parent = Span("fanout", 0.0, {"parallel": True})
        fast, slow = Span("a", 0.0), Span("b", 0.0)
        fast.end, slow.end = 1.0, 3.0
        parent.children = [fast, slow]
        parent.end = 3.0
        assert critical_children(parent) == [slow]
        parent.attributes = {}
        assert critical_children(parent) == [fast, slow]

    def test_render_mentions_stages_and_total(self):
        profile = self._profiled()
        text = profile.render()
        assert "query profile" in text
        assert "index_scan" in text
        assert "per-stage totals" in text

    def test_to_dict_is_json_serializable(self):
        profile = self._profiled()
        payload = json.loads(json.dumps(profile.to_dict()))
        assert payload["query"] == "size>1m"
        assert payload["tree"]["name"] == "search"
        assert "index_scan" in payload["stages"]


class TestExport:
    def test_span_round_trip(self):
        tracer = Tracer(SimClock())
        with tracer.span("root", target="in1"):
            with tracer.span("leaf"):
                tracer.annotate("disk_reads", 2)
        root = tracer.last_root()
        d = span_to_dict(root)
        assert d["name"] == "root"
        assert d["children"][0]["metrics"] == {"disk_reads": 2.0}
        assert json.loads(span_to_json(root))["attributes"] == {"target": "in1"}
        assert "leaf" in render_span_tree(root)

    def test_registry_render_and_json(self):
        service, client = build_small_service(num_index_nodes=1)
        client.search("size>1m")
        text = render_registry(service.registry, prefix="cluster.in1")
        assert "cluster.in1.disk.reads" in text
        payload = json.loads(registry_to_json(service.registry))
        assert payload["cluster.master.partitions"] >= 1


class TestCli:
    def test_profile_subcommand(self, capsys):
        assert main(["profile", "size>16m", "--files", "200",
                     "--nodes", "1"]) == 0
        out = capsys.readouterr().out
        assert "query profile" in out
        assert "index_scan" in out

    def test_profile_json(self, capsys):
        assert main(["profile", "size>16m", "--files", "200",
                     "--nodes", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["tree"]["name"] == "search"

    def test_profile_bad_query_exits_2(self, capsys):
        assert main(["profile", "size>>>", "--files", "100",
                     "--nodes", "1"]) == 2

    def test_query_profile_flag(self, capsys):
        assert main(["query", "size>16m", "--files", "200", "--nodes", "1",
                     "--limit", "2", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "matches in" in out
        assert "query profile" in out
