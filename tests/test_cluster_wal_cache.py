"""Write-ahead log framing/recovery and the lazy index cache."""

import pytest

from repro.cluster.cache import IndexCache
from repro.cluster.messages import IndexUpdate
from repro.cluster.wal import WriteAheadLog
from repro.errors import WalCorruption
from repro.sim.clock import SimClock
from repro.sim.disk import DiskDevice


# -- WAL ----------------------------------------------------------------------

def test_wal_append_replay_roundtrip():
    wal = WriteAheadLog()
    records = [(1, 10, "upsert", "/a", (("size", 5),)),
               (2, 20, "delete", None, ())]
    for record in records:
        wal.append(record)
    assert list(wal.replay()) == records
    assert wal.records_appended == 2


def test_wal_truncate():
    wal = WriteAheadLog()
    wal.append((1,))
    wal.truncate()
    assert list(wal.replay()) == []
    assert len(wal) == 0


def test_wal_torn_tail_is_dropped_silently():
    wal = WriteAheadLog()
    wal.append((1, "first"))
    wal.append((2, "second"))
    wal.simulate_torn_tail(3)
    assert list(wal.replay()) == [(1, "first")]


def test_wal_torn_header_is_dropped():
    wal = WriteAheadLog()
    wal.append((1, "only"))
    full = len(wal)
    wal.append((2, "gone"))
    wal.simulate_torn_tail(len(wal) - full - 2)  # leave 2 bytes of header
    assert list(wal.replay()) == [(1, "only")]


def test_wal_corrupt_tail_dropped_and_counted():
    """The final record garbled mid-write is a corrupt *tail*: replay
    drops it and counts the loss instead of refusing the whole log."""
    wal = WriteAheadLog()
    wal.append((1, "data"))
    wal.append((2, "more"))
    tail_start = len(wal)
    wal.append((3, "torn"))
    wal.corrupt_byte(tail_start + 10)
    assert list(wal.replay()) == [(1, "data"), (2, "more")]
    assert wal.replay_dropped == 1
    assert wal.replay_dropped_bytes == len(wal) - tail_start


def test_wal_mid_log_corruption_detected():
    """Corruption before the tail means the log is damaged, not torn."""
    wal = WriteAheadLog()
    wal.append((1, "data"))
    wal.append((2, "more"))
    wal.corrupt_byte(12)  # inside the first record's body
    with pytest.raises(WalCorruption):
        list(wal.replay())


def test_wal_torn_tail_dropped_and_counted():
    wal = WriteAheadLog()
    wal.append((1, "data"))
    wal.append((2, "more"))
    wal.simulate_torn_tail(3)
    assert list(wal.replay()) == [(1, "data")]
    assert wal.replay_dropped == 1
    # A later replay over the same (still-torn) log counts afresh.
    assert list(wal.replay()) == [(1, "data")]
    assert wal.replay_dropped == 1


def test_wal_charges_disk_appends():
    disk = DiskDevice(SimClock())
    wal = WriteAheadLog(disk)
    wal.append((1, "x"))
    wal.append((2, "y"))
    assert disk.stats.writes == 2
    # Second append continues the log sequentially: at most one seek.
    assert disk.stats.seeks == 1


# -- IndexCache ---------------------------------------------------------------------

def make_cache(timeout=5.0):
    committed = []
    cache = IndexCache(lambda acg, ups: committed.append((acg, list(ups))),
                       timeout_s=timeout)
    return cache, committed


def up(fid):
    return IndexUpdate.upsert(fid, {"size": fid})


def test_cache_timeout_validation():
    with pytest.raises(ValueError):
        IndexCache(lambda a, u: None, timeout_s=0)


def test_cache_holds_until_timeout():
    cache, committed = make_cache()
    cache.add(1, up(10), now=0.0)
    assert cache.commit_due(now=4.9) == 0
    assert committed == []
    assert cache.commit_due(now=5.0) == 1
    assert committed == [(1, [up(10)])]
    assert len(cache) == 0


def test_cache_batches_per_acg():
    cache, committed = make_cache()
    cache.add(1, up(10), now=0.0)
    cache.add(1, up(11), now=1.0)
    cache.add(2, up(20), now=4.0)
    assert cache.commit_due(now=5.0) == 2   # only ACG 1 is due
    assert committed == [(1, [up(10), up(11)])]
    assert cache.commit_due(now=9.0) == 1


def test_timeout_measured_from_oldest_entry():
    cache, _ = make_cache()
    cache.add(1, up(10), now=0.0)
    cache.add(1, up(11), now=4.9)   # does not reset the clock
    assert cache.commit_due(now=5.0) == 2


def test_search_commit_is_immediate_and_scoped():
    cache, committed = make_cache()
    cache.add(1, up(10), now=0.0)
    cache.add(2, up(20), now=0.0)
    assert cache.commit_for_search(1) == 1
    assert committed == [(1, [up(10)])]
    assert cache.pending_acgs() == [2]


def test_search_commit_on_empty_acg():
    cache, committed = make_cache()
    assert cache.commit_for_search(42) == 0
    assert committed == []


def test_commit_all():
    cache, committed = make_cache()
    cache.add(1, up(1), now=0.0)
    cache.add(2, up(2), now=0.0)
    assert cache.commit_all() == 2
    assert len(cache) == 0


def test_next_deadline():
    cache, _ = make_cache(timeout=5.0)
    assert cache.next_deadline() is None
    cache.add(1, up(1), now=2.0)
    cache.add(2, up(2), now=3.0)
    assert cache.next_deadline() == 7.0


def test_stats_track_commit_reasons():
    cache, _ = make_cache()
    cache.add(1, up(1), now=0.0)
    cache.commit_due(now=10.0)
    cache.add(2, up(2), now=10.0)
    cache.commit_for_search(2)
    assert cache.stats.timeout_commits == 1
    assert cache.stats.search_commits == 1
    assert cache.stats.updates_cached == 2
    assert cache.stats.updates_committed == 2
