"""Query planning and execution against real index structures."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryError, UnknownIndexName
from repro.indexstructures import BPlusTree, ExtendibleHashIndex, IndexKind, KDTreeIndex
from repro.query.ast import Compare, Keyword, Or
from repro.query.executor import AttributeStore, execute, tokenize_path
from repro.query.parser import parse_query
from repro.query.planner import IndexSpec, plan_query


def test_tokenize_path():
    assert tokenize_path("/home/john/.mozilla/prefs.js") == frozenset(
        {"home", "john", "mozilla", "prefs", "js"})
    assert tokenize_path("/A-B_c1/X.TXT") == frozenset({"a", "b", "c1", "x", "txt"})


def test_index_spec_validation():
    with pytest.raises(QueryError):
        IndexSpec("bad", IndexKind.BTREE, ("a", "b"))
    with pytest.raises(QueryError):
        IndexSpec("bad", IndexKind.KDTREE, ())


SPECS = [
    IndexSpec("by_size", IndexKind.BTREE, ("size",)),
    IndexSpec("by_uid", IndexKind.HASH, ("uid",)),
    IndexSpec("by_kw", IndexKind.HASH, ("keyword",)),
    IndexSpec("kd", IndexKind.KDTREE, ("size", "mtime")),
]


def test_plan_prefers_hash_for_equality():
    plan = plan_query(parse_query("uid==42 & size>10"), SPECS, now=0)
    assert plan.access == "hash_eq"
    assert plan.index_name == "by_uid"
    assert plan.key == 42


def test_plan_keyword():
    plan = plan_query(parse_query("keyword:firefox & size>1"), SPECS, now=0)
    assert plan.access == "keyword"
    assert plan.key == "firefox"


def test_plan_kdtree_for_multi_attribute_range():
    plan = plan_query(parse_query("size>10 & mtime<100"), SPECS, now=0)
    assert plan.access == "kdtree_range"
    assert plan.lows == (10.0, None)
    assert plan.highs == (None, 100.0)


def test_plan_btree_for_single_range():
    specs = [IndexSpec("by_size", IndexKind.BTREE, ("size",))]
    plan = plan_query(parse_query("size>10 & size<=90"), specs, now=0)
    assert plan.access == "btree_range"
    assert plan.low == 10 and not plan.include_low
    assert plan.high == 90 and plan.include_high


def test_plan_merges_multiple_bounds_tightest_wins():
    specs = [IndexSpec("by_size", IndexKind.BTREE, ("size",))]
    plan = plan_query(parse_query("size>10 & size>20 & size<50"), specs, now=0)
    assert plan.low == 20


def test_plan_resolves_relative_age():
    specs = [IndexSpec("by_mtime", IndexKind.BTREE, ("mtime",))]
    plan = plan_query(parse_query("mtime<1day"), specs, now=100_000)
    assert plan.access == "btree_range"
    assert plan.low == pytest.approx(100_000 - 86_400)


def test_plan_falls_back_to_scan():
    plan = plan_query(parse_query("owner==john"), SPECS, now=0)
    assert plan.access == "scan"


def test_plan_or_at_top_level_scans():
    pred = Or((Compare("size", ">", 1), Keyword("x")))
    assert plan_query(pred, SPECS, now=0).access == "scan"


def build_store_and_indexes(files):
    """files: list of (fid, size, mtime, uid, path)."""
    store = AttributeStore()
    by_size = BPlusTree()
    by_uid = ExtendibleHashIndex()
    by_kw = ExtendibleHashIndex()
    kd = KDTreeIndex(dimensions=2)
    for fid, size, mtime, uid, path in files:
        store.put(fid, {"size": size, "mtime": mtime, "uid": uid}, path=path)
        by_size.insert(size, fid)
        by_uid.insert(uid, fid)
        for token in tokenize_path(path):
            by_kw.insert(token, fid)
        kd.insert((size, mtime), fid)
    indexes = {"by_size": by_size, "by_uid": by_uid, "by_kw": by_kw, "kd": kd}
    return store, indexes


FILES = [
    (1, 100, 10.0, 0, "/data/small.bin"),
    (2, 5000, 20.0, 0, "/data/medium.bin"),
    (3, 90000, 30.0, 1, "/home/big.dat"),
    (4, 90000, 5.0, 1, "/home/big-old.dat"),
]


@pytest.mark.parametrize("query,expected", [
    ("size>1000", {2, 3, 4}),
    ("size>1000 & mtime>10", {2, 3}),
    ("uid==1", {3, 4}),
    ("keyword:data", {1, 2}),
    ("keyword:big & mtime>10", {3}),
    ("size>100000", set()),
    ("size>=90000 & size<=90000", {3, 4}),
])
def test_execute_matches_expectation(query, expected):
    store, indexes = build_store_and_indexes(FILES)
    pred = parse_query(query)
    plan = plan_query(pred, SPECS, now=100.0)
    assert execute(plan, pred, indexes, store, now=100.0) == expected


def test_execute_scan_path():
    store, indexes = build_store_and_indexes(FILES)
    pred = parse_query("uid!=0")
    plan = plan_query(pred, [], now=0)
    assert plan.access == "scan"
    assert execute(plan, pred, indexes, store, now=0) == {3, 4}


def test_execute_unknown_index_name():
    store, indexes = build_store_and_indexes(FILES)
    pred = parse_query("size>1")
    from repro.query.planner import Plan
    with pytest.raises(UnknownIndexName):
        execute(Plan("hash_eq", index_name="ghost", key=1), pred, indexes, store, 0)


def test_execute_filters_ids_missing_from_store():
    store, indexes = build_store_and_indexes(FILES)
    indexes["by_size"].insert(99999, 42)  # dangling index entry
    pred = parse_query("size>1000")
    plan = plan_query(pred, [IndexSpec("by_size", IndexKind.BTREE, ("size",))], 0)
    assert 42 not in execute(plan, pred, indexes, store, now=0)


def test_plan_query_set_splits_indexable_or():
    from repro.query.planner import plan_query_set

    pred = parse_query("uid==1 | keyword:data")
    plans = plan_query_set(pred, SPECS, now=0)
    assert len(plans) == 2
    assert {p.access for p in plans} == {"hash_eq", "keyword"}


def test_plan_query_set_falls_back_when_branch_unindexable():
    from repro.query.planner import plan_query_set

    pred = parse_query("uid==1 | owner==john")   # no index for owner
    plans = plan_query_set(pred, SPECS, now=0)
    assert len(plans) == 1
    assert plans[0].access == "scan"


def test_execute_plans_union_matches_scan():
    from repro.query.executor import execute_plans
    from repro.query.planner import Plan, plan_query_set

    store, indexes = build_store_and_indexes(FILES)
    pred = parse_query("uid==1 | keyword:data")
    plans = plan_query_set(pred, SPECS, now=0)
    fast = execute_plans(plans, pred, indexes, store, now=0)
    slow = execute_plans([Plan("scan")], pred, indexes, store, now=0)
    assert fast == slow == {1, 2, 3, 4}


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 10_000), st.integers(0, 100)),
                min_size=1, max_size=60),
       st.integers(0, 10_000), st.integers(0, 100))
def test_property_planned_equals_scan(data, size_bound, mtime_bound):
    files = [(i, size, float(mtime), 0, f"/f/{i}.bin")
             for i, (size, mtime) in enumerate(data)]
    store, indexes = build_store_and_indexes(files)
    pred = parse_query(f"size>{size_bound} & mtime<={mtime_bound}")
    planned = plan_query(pred, SPECS, now=0)
    assert planned.access != "scan"
    from repro.query.planner import Plan
    fast = execute(planned, pred, indexes, store, now=0)
    slow = execute(Plan("scan"), pred, indexes, store, now=0)
    assert fast == slow
