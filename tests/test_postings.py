"""Roaring-style posting lists: container behavior plus exactness
oracles — the bitmap path must be indistinguishable from plain sets,
both at the structure level and through the query executor."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.indexstructures.hashindex import ExtendibleHashIndex
from repro.indexstructures.postings import PostingList, intersect_all
from repro.query.executor import (AttributeStore, execute_plans,
                                  tokenize_path)
from repro.query.parser import parse_query
from repro.query.planner import IndexSpec, plan_query_set
from repro.indexstructures import IndexKind

_IDS = st.lists(st.integers(0, 200_000), max_size=150)


# -- structure-level oracle ----------------------------------------------------


@settings(max_examples=80, deadline=None)
@given(_IDS, _IDS)
def test_property_set_algebra_oracle(a_ids, b_ids):
    a, b = PostingList.from_iterable(a_ids), PostingList.from_iterable(b_ids)
    sa, sb = set(a_ids), set(b_ids)
    assert len(a) == len(sa) and sorted(a) == sorted(sa)
    assert a == sa
    assert (a & b) == (sa & sb)
    assert (a | b) == (sa | sb)
    assert (a - b) == (sa - sb)
    assert sorted(a & b) == sorted(sa & sb)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.booleans(), st.integers(0, 100_000)),
                max_size=200))
def test_property_add_discard_contains_oracle(ops):
    plist, oracle = PostingList(), set()
    for is_add, doc in ops:
        if is_add:
            plist.add(doc)
            oracle.add(doc)
        else:
            plist.discard(doc)
            oracle.discard(doc)
        assert (doc in plist) == (doc in oracle)
    assert plist == oracle
    assert len(plist) == len(oracle)


def test_array_container_promotes_to_bitmap():
    plist = PostingList()
    for i in range(0, 6000):  # one 2^16 chunk, past ARRAY_MAX
        plist.add(i)
    assert plist.chunk_kinds()["bitmap"] == 1
    assert sorted(plist) == list(range(6000))
    sparse = PostingList.from_iterable([1, 70_000])
    assert sparse.chunk_kinds() == {"array": 2, "bitmap": 0}


def test_negative_doc_id_rejected():
    with pytest.raises(ValueError):
        PostingList().add(-1)


def test_intersect_all_smallest_first_and_empty_shortcut():
    lists = [PostingList.from_iterable(range(0, 1000)),
             PostingList.from_iterable(range(500, 600)),
             PostingList.from_iterable([])]
    assert len(intersect_all(lists)) == 0
    lists = lists[:2]
    assert sorted(intersect_all(lists)) == list(range(500, 600))


# -- executor-level oracle -----------------------------------------------------


def _build_partition(seed, n_files):
    """A keyword-indexed partition with correlated path vocabularies."""
    rng = random.Random(seed)
    store = AttributeStore()
    index = ExtendibleHashIndex()
    vocab = ["logs", "img", "src", "tmp", "doc", "alpha", "beta"]
    for fid in range(n_files):
        parts = rng.sample(vocab, rng.randint(1, 3))
        path = "/" + "/".join(parts) + f"/f{fid}"
        attrs = {"size": rng.randint(1, 10_000), "uid": rng.randint(0, 3)}
        store.put(fid, attrs, path=path)
        for token in tokenize_path(path):
            index.insert(token, fid)
    return store, {"by_keyword": index}


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_postings_path_matches_set_path_exactly(seed):
    store, indexes = _build_partition(seed, 400)
    specs = [IndexSpec("by_keyword", IndexKind.HASH, ("keyword",))]
    queries = [
        "keyword:logs",
        "keyword:logs & keyword:img",
        "keyword:logs & keyword:img & keyword:src",
        "keyword:alpha & keyword:beta & size>5000",
        "keyword:tmp & uid==2",
        "keyword:doc | keyword:img",  # Or-branch: postings must fall back
        "keyword:nosuchword & keyword:logs",
    ]
    for query in queries:
        predicate = parse_query(query)
        plans = plan_query_set(predicate, specs, now=0.0)
        with_postings = execute_plans(plans, predicate, indexes, store,
                                      now=0.0, use_postings=True)
        without = execute_plans(plans, predicate, indexes, store,
                                now=0.0, use_postings=False)
        assert with_postings == without, query
