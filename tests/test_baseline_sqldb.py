"""MiniSQL centralized baseline."""

import pytest

from repro.baselines.sqldb import MiniSQL
from repro.sim.clock import SimClock
from repro.sim.machine import Machine


@pytest.fixture
def db():
    return MiniSQL(Machine(SimClock()), batch_size=8)


def test_insert_query_roundtrip(db):
    db.insert_file(1, {"size": 100, "mtime": 5.0}, path="/a/f1")
    db.insert_file(2, {"size": 9000, "mtime": 6.0}, path="/a/f2")
    db.flush()
    assert db.query("size>1000") == {2}
    assert db.query("size>0") == {1, 2}
    assert len(db) == 2


def test_query_flushes_pending_batch(db):
    db.insert_file(1, {"size": 100, "mtime": 0.0}, path="/f")
    # No explicit flush: the query must still see the row (group commit
    # is forced by the statement).
    assert db.query("size==100") == {1}


def test_batch_commits_when_full():
    db = MiniSQL(Machine(SimClock()), batch_size=3)
    for i in range(3):
        db.insert_file(i, {"size": i, "mtime": 0.0})
    assert db.rows_written == 3


def test_update_replaces_index_entry(db):
    db.insert_file(1, {"size": 100, "mtime": 0.0}, path="/f")
    db.insert_file(1, {"size": 999, "mtime": 1.0}, path="/f")
    db.flush()
    assert db.query("size==100") == set()
    assert db.query("size==999") == {1}


def test_delete(db):
    db.insert_file(1, {"size": 100, "mtime": 0.0}, path="/f")
    db.delete_file(1)
    db.flush()
    assert db.query("size>0") == set()
    assert len(db) == 0


def test_keyword_table(db):
    db.insert_file(1, {"size": 1, "mtime": 0.0}, path="/home/firefox/prefs.js")
    db.insert_file(2, {"size": 1, "mtime": 0.0}, path="/var/log/apache.log")
    db.flush()
    assert db.query("keyword:firefox") == {1}
    assert db.query_paths("keyword:log") == ["/var/log/apache.log"]


def test_paper_query_shapes(db):
    now = db.machine.clock.now()
    db.insert_file(1, {"size": 2 * 1024**3, "mtime": now}, path="/new/big")
    db.insert_file(2, {"size": 10, "mtime": now}, path="/new/small")
    db.insert_file(3, {"size": 3 * 1024**3, "mtime": now - 10 * 86400},
                   path="/old/big")
    db.flush()
    assert db.query("size>1g & mtime<1day") == {1}


def test_queries_charge_time(db):
    for i in range(100):
        db.insert_file(i, {"size": i, "mtime": 0.0}, path=f"/f{i}")
    db.flush()
    t0 = db.machine.clock.now()
    db.query("size>50")
    assert db.machine.clock.now() > t0


def test_global_index_cost_grows_with_dataset():
    """The structural contrast with Propeller: per-update cost grows with
    total dataset size (deeper tree, colder buffer pool)."""
    def cost_per_update(n_rows):
        machine = Machine(SimClock())
        db = MiniSQL(machine, buffer_pool_bytes=1024**2, batch_size=64)
        for i in range(n_rows):
            db.insert_file(i, {"size": i, "mtime": float(i)}, path=f"/f{i}")
        db.flush()
        t0 = machine.clock.now()
        for i in range(200):
            db.insert_file(n_rows + i, {"size": i, "mtime": 0.0}, path=f"/g{i}")
        db.flush()
        return machine.clock.now() - t0

    assert cost_per_update(8000) > cost_per_update(500)
