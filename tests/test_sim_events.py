"""EventLoop and PeriodicTask semantics."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import SimClock
from repro.sim.events import EventLoop, PeriodicTask


@pytest.fixture
def loop():
    return EventLoop(SimClock())


def test_schedule_and_run_until(loop):
    fired = []
    loop.schedule_at(5.0, lambda: fired.append(loop.clock.now()))
    loop.run_until(10.0)
    assert fired == [5.0]
    assert loop.clock.now() == 10.0


def test_timers_fire_in_timestamp_order(loop):
    order = []
    loop.schedule_at(3.0, lambda: order.append("b"))
    loop.schedule_at(1.0, lambda: order.append("a"))
    loop.schedule_at(7.0, lambda: order.append("c"))
    loop.run_until(10.0)
    assert order == ["a", "b", "c"]


def test_ties_fire_in_insertion_order(loop):
    order = []
    loop.schedule_at(1.0, lambda: order.append("first"))
    loop.schedule_at(1.0, lambda: order.append("second"))
    loop.run_until(2.0)
    assert order == ["first", "second"]


def test_schedule_after_uses_relative_delay(loop):
    loop.clock.charge(2.0)
    fired = []
    loop.schedule_after(1.5, lambda: fired.append(loop.clock.now()))
    loop.run_until(5.0)
    assert fired == [3.5]


def test_schedule_in_past_rejected(loop):
    loop.clock.charge(5.0)
    with pytest.raises(SimulationError):
        loop.schedule_at(4.0, lambda: None)


def test_run_due_fires_overdue_without_advancing(loop):
    fired = []
    loop.schedule_at(1.0, lambda: fired.append(1))
    loop.clock.charge(2.0)
    assert loop.run_due() == 1
    assert fired == [1]
    assert loop.clock.now() == 2.0


def test_run_due_skips_future(loop):
    loop.schedule_at(10.0, lambda: None)
    assert loop.run_due() == 0
    assert len(loop) == 1


def test_timer_can_schedule_another(loop):
    fired = []

    def chain():
        fired.append(loop.clock.now())
        if len(fired) < 3:
            loop.schedule_after(1.0, chain)

    loop.schedule_at(1.0, chain)
    loop.run_until(10.0)
    assert fired == [1.0, 2.0, 3.0]


def test_next_deadline(loop):
    assert loop.next_deadline() is None
    loop.schedule_at(4.0, lambda: None)
    loop.schedule_at(2.0, lambda: None)
    assert loop.next_deadline() == 2.0


def test_periodic_task_fires_every_period(loop):
    fired = []
    PeriodicTask(loop, 2.0, lambda: fired.append(loop.clock.now()))
    loop.run_until(7.0)
    assert fired == [2.0, 4.0, 6.0]


def test_periodic_task_cancel(loop):
    fired = []
    task = PeriodicTask(loop, 1.0, lambda: fired.append(1))
    loop.run_until(2.5)
    task.cancel()
    loop.run_until(10.0)
    assert len(fired) == 2


def test_periodic_task_rejects_nonpositive_period(loop):
    with pytest.raises(SimulationError):
        PeriodicTask(loop, 0.0, lambda: None)
