"""Whole-system integration: the paper's workflows end to end."""

import random

import pytest

from repro.baselines.bruteforce import brute_force_search
from repro.baselines.sqldb import MiniSQL
from repro.cluster import PropellerService
from repro.core.partitioner import PartitioningPolicy
from repro.fs.vfs import OpenMode
from repro.indexstructures import IndexKind
from repro.metrics.recall import recall
from repro.sim.clock import SimClock
from repro.sim.machine import Machine
from repro.workloads.datasets import populate_namespace


def build_service(nodes=4, split=400, target=100):
    service = PropellerService(
        num_index_nodes=nodes,
        policy=PartitioningPolicy(split_threshold=split, cluster_target=target))
    client = service.make_client()
    client.create_index("by_size", IndexKind.BTREE, ["size"])
    client.create_index("by_kw", IndexKind.HASH, ["keyword"])
    return service, client


def test_propeller_matches_brute_force_on_generated_namespace():
    service, client = build_service()
    paths = populate_namespace(service.vfs, 1500, seed=3)
    client.index_paths(paths, pid=1)
    client.flush_updates()
    for query in ("size>16m", "size>1m & mtime<1day", "keyword:firefox"):
        assert client.search(query) == brute_force_search(service.vfs, query)


def test_propeller_and_minisql_agree():
    service, client = build_service()
    db = MiniSQL(Machine(SimClock()))
    paths = populate_namespace(service.vfs, 800, seed=5)
    for path in paths:
        inode = service.vfs.stat(path)
        client.index_path(path, pid=1)
        db.insert_file(inode.ino, {"size": inode.size, "mtime": inode.mtime},
                       path=path)
    client.flush_updates()
    db.flush()
    assert client.search_ids("size>16m") == db.query("size>16m")
    assert client.search_ids("keyword:logs") == db.query("keyword:logs")


def test_recall_stays_perfect_under_concurrent_updates():
    """The paper's headline property (Figures 1/11): Propeller's recall
    is 100% no matter how intense the background updates are."""
    service, client = build_service()
    vfs = service.vfs
    vfs.mkdir("/live")
    rng = random.Random(0)
    recalls = []
    for step in range(30):
        # Background I/O: create a batch of files, some of them big.
        for j in range(20):
            size = 64 * 1024**2 if rng.random() < 0.3 else 1024
            path = f"/live/f{step:03d}_{j:02d}.bin"
            vfs.write_file(path, size, pid=2)
            client.index_path(path, pid=2)
        # Foreground search immediately afterwards.
        got = client.search("size>16m")
        truth = [p for p, i in vfs.namespace.files() if i.size > 16 * 1024**2]
        recalls.append(recall(got, truth))
        service.advance(0.5)
    assert min(recalls) == 1.0


def test_multi_client_isolation_and_shared_results():
    service = PropellerService(num_index_nodes=2)
    alice = service.make_client(pid_filter={1})
    bob = service.make_client(pid_filter={2})
    alice.create_index("by_size", IndexKind.BTREE, ["size"])
    vfs = service.vfs
    vfs.mkdir("/shared")
    vfs.write_file("/shared/from_alice", 64 * 1024**2, pid=1)
    alice.index_path("/shared/from_alice", pid=1)
    vfs.write_file("/shared/from_bob", 64 * 1024**2, pid=2)
    bob.index_path("/shared/from_bob", pid=2)
    alice.flush_updates()
    bob.flush_updates()
    # Both clients see the union: the index is shared service state.
    assert alice.search("size>16m") == bob.search("size>16m") == [
        "/shared/from_alice", "/shared/from_bob"]


def test_compile_workflow_places_build_in_few_partitions():
    """Firefox-dataflow scenario (Figure 3): one application touching
    files across scattered directories still lands in few ACGs."""
    service, client = build_service(split=1000, target=50)
    vfs = service.vfs
    for d in ("/usr/bin", "/usr/lib", "/var/log", "/home/john"):
        vfs.mkdir(d, parents=True)
    pid = 77
    # An app reads scattered inputs and writes outputs repeatedly.
    inputs = ["/usr/bin/app", "/usr/lib/libc.so", "/home/john/config"]
    for path in inputs:
        vfs.write_file(path, 100, pid=pid)
        client.index_path(path, pid=pid)
    for i in range(60):
        for path in inputs:
            fd = vfs.open(path, OpenMode.READ, pid=pid)
            vfs.close(fd)
        out = f"/var/log/app{i:03d}.log"
        vfs.write_file(out, 10, pid=pid)
        client.index_path(out, pid=pid)
    client.flush_updates()
    client.process_finished(pid)
    partitions = {service.master.partitions.partition_of(i.ino)
                  for _, i in service.vfs.namespace.files()}
    # 63 files across 4 directories end up in 1 partition (namespace-based
    # partitioning would have needed 4).
    assert len(partitions) == 1


def test_user_defined_attribute_index_mvd_scenario():
    """The MVD drug-discovery motivation: search proteins by computed
    attributes, re-filtering as results refine."""
    service, client = build_service()
    client.create_index("protein_kd", IndexKind.KDTREE,
                        ["binding_energy", "mass"])
    vfs = service.vfs
    vfs.mkdir("/proteins")
    rng = random.Random(1)
    for i in range(200):
        path = f"/proteins/p{i:04d}.pdb"
        vfs.write_file(path, 1000, pid=1)
        vfs.setattr(path, "binding_energy", rng.uniform(-10, 0))
        vfs.setattr(path, "mass", rng.uniform(10, 500))
        client.index_path(path, pid=1)
    client.flush_updates()
    got = client.search("binding_energy<-8 & mass>100 & mass<400")
    truth = [p for p, inode in vfs.namespace.files()
             if inode.attributes.get("binding_energy", 0) < -8
             and 100 < inode.attributes.get("mass", 0) < 400]
    assert got == sorted(truth)


def test_scale_out_reduces_search_latency():
    """Table IV's shape: more index nodes, lower warm search latency."""
    def warm_latency(nodes):
        service, client = build_service(nodes=nodes, split=200, target=50)
        paths = populate_namespace(service.vfs, 1200, seed=9)
        client.index_paths(paths, pid=1)
        client.flush_updates()
        client.search("size>16m")  # warm up
        span = service.clock.span()
        client.search("size>16m")
        return span.elapsed()

    assert warm_latency(8) < warm_latency(1)
