"""Query EXPLAIN, Zipf streams, and the trace-gen/explain CLI commands."""

import pytest

from repro.cli import main
from repro.cluster import PropellerService
from repro.indexstructures import IndexKind
from repro.query.parser import parse_query
from repro.query.planner import IndexSpec, Plan, plan_query
from repro.workloads.zipf import ZipfSampler, zipf_update_requests


# -- Plan.describe ------------------------------------------------------------

SPECS = [
    IndexSpec("by_size", IndexKind.BTREE, ("size",)),
    IndexSpec("by_uid", IndexKind.HASH, ("uid",)),
    IndexSpec("by_kw", IndexKind.HASH, ("keyword",)),
    IndexSpec("kd", IndexKind.KDTREE, ("size", "mtime")),
]


def test_describe_scan():
    assert "SCAN" in Plan("scan").describe()


def test_describe_btree_bounds_and_strictness():
    plan = plan_query(parse_query("size>10 & size<=90"), SPECS[:1], now=0)
    text = plan.describe()
    assert text == "BTREE RANGE by_size (10, 90]"


def test_describe_hash_and_keyword():
    assert plan_query(parse_query("uid==4"), SPECS, 0).describe() == \
        "HASH EQ by_uid[4]"
    assert plan_query(parse_query("keyword:logs"), SPECS, 0).describe() == \
        "KEYWORD by_kw['logs']"


def test_describe_kdtree():
    plan = plan_query(parse_query("size>10 & mtime<5"), SPECS, now=0)
    assert plan.describe() == "KDTREE RANGE kd (10..+inf, -inf..5)"


# -- client explain ---------------------------------------------------------------

def make_service():
    service = PropellerService(num_index_nodes=2)
    client = service.make_client()
    client.create_index("by_size", IndexKind.BTREE, ["size"])
    client.create_index("by_kw", IndexKind.HASH, ["keyword"])
    vfs = service.vfs
    vfs.mkdir("/d")
    for i in range(20):
        vfs.write_file(f"/d/f{i}", 100 + i, pid=1)
        client.index_path(f"/d/f{i}", pid=1)
    client.flush_updates()
    service.commit_all()
    return service, client


def test_explain_reports_per_acg_paths():
    service, client = make_service()
    plans = client.explain("size>100")
    assert plans
    for descriptions in plans.values():
        assert descriptions == ["BTREE RANGE by_size (100, +inf]"]


def test_explain_disjunction_lists_both_paths():
    service, client = make_service()
    plans = client.explain("size>100 | keyword:f1")
    descriptions = next(iter(plans.values()))
    assert len(descriptions) == 2


def test_explain_does_not_commit_cache():
    service, client = make_service()
    vfs = service.vfs
    vfs.write_file("/d/new", 5, pid=1)
    client.index_path("/d/new", pid=1)
    client.flush_updates()
    pending_before = sum(len(n.cache) for n in service.index_nodes.values())
    assert pending_before == 1
    client.explain("size>0")
    pending_after = sum(len(n.cache) for n in service.index_nodes.values())
    assert pending_after == 1


# -- Zipf ---------------------------------------------------------------------------

def test_zipf_validation():
    with pytest.raises(ValueError):
        ZipfSampler(0)
    with pytest.raises(ValueError):
        ZipfSampler(10, s=-1)


def test_zipf_rank0_is_hottest():
    sampler = ZipfSampler(100, s=1.2, seed=1)
    counts = [0] * 100
    for rank in sampler.sample_many(5000):
        counts[rank] += 1
    assert counts[0] == max(counts)
    assert counts[0] > 5 * (sum(counts[50:]) / 50 + 1)


def test_zipf_s_zero_is_uniformish():
    sampler = ZipfSampler(10, s=0.0, seed=2)
    counts = [0] * 10
    for rank in sampler.sample_many(10_000):
        counts[rank] += 1
    assert min(counts) > 700


def test_zipf_update_requests_deterministic_and_skewed():
    files = [f"/f{i}" for i in range(50)]
    a = zipf_update_requests(files, 2000, s=1.1, seed=3)
    b = zipf_update_requests(files, 2000, s=1.1, seed=3)
    assert a == b
    from collections import Counter
    top = Counter(a).most_common(1)[0][1]
    assert top > 2000 / 50 * 4   # far above the uniform share


def test_zipf_hotness_decoupled_from_order():
    files = [f"/f{i}" for i in range(50)]
    stream = zipf_update_requests(files, 2000, s=1.5, seed=4)
    from collections import Counter
    hottest = Counter(stream).most_common(1)[0][0]
    # The shuffle makes "first file is hottest" vanishingly unlikely to
    # hold across seeds; check a different seed moves the hot file.
    stream2 = zipf_update_requests(files, 2000, s=1.5, seed=5)
    hottest2 = Counter(stream2).most_common(1)[0][0]
    assert hottest != hottest2 or hottest != files[0]


# -- CLI ---------------------------------------------------------------------------------

def test_cli_trace_gen_roundtrips(tmp_path, capsys):
    out_file = tmp_path / "thrift.trace"
    code = main(["trace-gen", "--app", "thrift:0.2", "-o", str(out_file)])
    captured = capsys.readouterr()
    assert code == 0
    assert "wrote" in captured.out
    from repro.core.traceio import acg_from_trace
    with open(out_file) as fh:
        graph = acg_from_trace(fh)
    assert graph.vertex_count > 50
    assert graph.edge_count > 0


def test_cli_trace_gen_unknown_app(tmp_path, capsys):
    code = main(["trace-gen", "--app", "vim", "-o", str(tmp_path / "x")])
    assert code == 2


def test_cli_explain(capsys):
    code = main(["explain", "size>16m", "--files", "200", "--nodes", "1"])
    captured = capsys.readouterr()
    assert code == 0
    assert "BTREE RANGE" in captured.out


def test_cli_explain_bad_query(capsys):
    code = main(["explain", "size >", "--files", "50", "--nodes", "1"])
    assert code == 2
