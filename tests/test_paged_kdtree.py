"""PagedKDTree: correctness vs the dynamic tree, and page-touch economy."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.indexstructures.kdtree import KDTreeIndex
from repro.indexstructures.kdtree_paged import PagedKDTree


def random_pairs(n, seed=0, dims=2):
    rng = random.Random(seed)
    return [(tuple(rng.uniform(0, 1000) for _ in range(dims)), i)
            for i in range(n)]


def test_validation():
    with pytest.raises(ValueError):
        PagedKDTree(0)
    with pytest.raises(ValueError):
        PagedKDTree(2, nodes_per_page=0)
    with pytest.raises(TypeError):
        PagedKDTree.bulk_load(2, [((1.0,), "short")])


def test_empty_tree():
    tree = PagedKDTree.bulk_load(2, [])
    assert len(tree) == 0
    assert tree.page_count == 0
    assert list(tree.range((None, None), (None, None))) == []
    assert tree.get((1, 2)) == []


def test_range_matches_dynamic_tree():
    pairs = random_pairs(500, seed=1)
    paged = PagedKDTree.bulk_load(2, pairs)
    dynamic = KDTreeIndex.bulk_load(2, pairs)
    for lo, hi in [((100, None), (600, 400)), ((None, None), (None, None)),
                   ((900, 900), (None, None))]:
        got = sorted(v for _, v in paged.range(lo, hi))
        want = sorted(v for _, v in dynamic.range(lo, hi))
        assert got == want


def test_get_exact_point():
    pairs = [((1.0, 2.0), "a"), ((1.0, 2.0), "b"), ((3.0, 4.0), "c")]
    tree = PagedKDTree.bulk_load(2, pairs)
    assert sorted(tree.get((1, 2))) == ["a", "b"]
    assert tree.get((9, 9)) == []
    assert len(tree) == 3
    assert tree.node_count == 2


def test_page_layout_covers_all_nodes():
    pairs = random_pairs(300, seed=2)
    tree = PagedKDTree.bulk_load(2, pairs, nodes_per_page=32)
    assert tree.page_count == -(-tree.node_count // 32)


def test_selective_query_touches_few_pages():
    pairs = random_pairs(4000, seed=3)
    touched = set()
    tree = PagedKDTree.bulk_load(2, pairs, nodes_per_page=64,
                                 page_hook=lambda p, w: touched.add(p))
    # A needle query visits a root-to-leaf-ish path only.
    tree.get(pairs[1234][0])
    assert len(touched) <= 8
    touched.clear()
    # A selective range touches a small fraction of pages.
    list(tree.range((990, None), (None, None)))
    assert len(touched) < tree.page_count / 3
    touched.clear()
    # A full scan touches them all.
    list(tree.range((None, None), (None, None)))
    assert len(touched) == tree.page_count


def test_dfs_blocking_beats_random_assignment():
    """Subtree locality is the point: DFS-blocked layout touches fewer
    pages per selective query than a random node→page assignment would."""
    pairs = random_pairs(4000, seed=4)
    touched = set()
    tree = PagedKDTree.bulk_load(2, pairs, nodes_per_page=64,
                                 page_hook=lambda p, w: touched.add(p))
    list(tree.range((995, None), (None, None)))
    dfs_pages = len(touched)
    # Count visited nodes with a random layout: each visited node would
    # land on an independent random page, so pages ≈ min(nodes, pages).
    visited_nodes = 0
    probe = PagedKDTree.bulk_load(2, pairs, nodes_per_page=1,
                                  page_hook=lambda p, w: None)
    visited = set()
    probe2 = PagedKDTree.bulk_load(2, pairs, nodes_per_page=1,
                                   page_hook=lambda p, w: visited.add(p))
    list(probe2.range((995, None), (None, None)))
    visited_nodes = len(visited)
    expected_random_pages = min(visited_nodes, tree.page_count)
    assert dfs_pages < expected_random_pages / 2


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 50)),
                max_size=120),
       st.integers(0, 50), st.integers(0, 50))
def test_property_range_equals_filter(points, a, b):
    lo, hi = min(a, b), max(a, b)
    pairs = [((float(x), float(y)), i) for i, (x, y) in enumerate(points)]
    tree = PagedKDTree.bulk_load(2, pairs, nodes_per_page=8)
    got = sorted(v for _, v in tree.range((lo, None), (hi, None)))
    want = sorted(i for i, (x, y) in enumerate(points) if lo <= x <= hi)
    assert got == want
