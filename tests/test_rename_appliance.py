"""VFS rename end-to-end and the periodic-crawl appliance baseline."""

import pytest

from repro.baselines.crawler import PeriodicCrawler
from repro.cluster import PropellerService
from repro.errors import FileExists, FileNotFound, FileSystemError
from repro.fs.notification import FsEventKind, NotificationQueue
from repro.fs.vfs import VirtualFileSystem
from repro.indexstructures import IndexKind
from repro.metrics.recall import recall
from repro.sim.clock import SimClock
from repro.sim.events import EventLoop


# -- namespace-level rename -----------------------------------------------------

@pytest.fixture
def vfs():
    return VirtualFileSystem(SimClock())


def test_rename_file_moves_inode(vfs):
    vfs.mkdir("/a")
    vfs.mkdir("/b")
    inode = vfs.write_file("/a/f", 100)
    moved = vfs.rename("/a/f", "/b/g")
    assert moved.ino == inode.ino
    assert not vfs.exists("/a/f")
    assert vfs.stat("/b/g").size == 100


def test_rename_directory_moves_subtree(vfs):
    vfs.mkdir("/a/sub", parents=True)
    vfs.write_file("/a/sub/f", 10)
    vfs.rename("/a/sub", "/moved")
    assert vfs.stat("/moved/f").size == 10
    assert not vfs.exists("/a/sub")


def test_rename_missing_source(vfs):
    with pytest.raises(FileNotFound):
        vfs.rename("/nope", "/x")


def test_rename_existing_target_rejected(vfs):
    vfs.write_file("/a", 1)
    vfs.write_file("/b", 1)
    with pytest.raises(FileExists):
        vfs.rename("/a", "/b")


def test_rename_into_itself_rejected(vfs):
    vfs.mkdir("/d")
    with pytest.raises(FileSystemError):
        vfs.rename("/d", "/d/inner")
    with pytest.raises(FileSystemError):
        vfs.rename("/", "/x")


def test_rename_updates_parent_mtimes(vfs):
    vfs.mkdir("/a")
    vfs.mkdir("/b")
    vfs.write_file("/a/f", 1)
    vfs.clock.charge(5.0)
    vfs.rename("/a/f", "/b/f")
    assert vfs.stat("/a").mtime == pytest.approx(5.0, abs=1e-5)
    assert vfs.stat("/b").mtime == pytest.approx(5.0, abs=1e-5)


def test_rename_emits_moved_notification(vfs):
    queue = NotificationQueue()
    vfs.add_observer(queue)
    vfs.write_file("/old", 1)
    queue.drain()
    vfs.rename("/old", "/new")
    events = queue.drain()
    assert len(events) == 1
    assert events[0].kind is FsEventKind.MOVED
    assert events[0].path == "/new"


# -- rename through the Propeller service -----------------------------------------

def make_service():
    service = PropellerService(num_index_nodes=2)
    client = service.make_client()
    client.create_index("by_size", IndexKind.BTREE, ["size"])
    client.create_index("by_kw", IndexKind.HASH, ["keyword"])
    vfs = service.vfs
    vfs.mkdir("/proj")
    vfs.write_file("/proj/report.txt", 5000, pid=1)
    client.index_path("/proj/report.txt", pid=1)
    client.flush_updates()
    return service, client


def test_rename_reindexes_keywords():
    service, client = make_service()
    service.vfs.mkdir("/archive")
    service.vfs.rename("/proj/report.txt", "/archive/final.txt", pid=1)
    client.flush_updates()
    assert client.search("keyword:final") == ["/archive/final.txt"]
    assert client.search("keyword:report") == []
    # Attribute search returns the new path too.
    assert client.search("size==5000") == ["/archive/final.txt"]


def test_rename_of_unindexed_file_is_ignored():
    service, client = make_service()
    service.vfs.write_file("/proj/scratch", 10, pid=1)   # never indexed
    service.vfs.rename("/proj/scratch", "/proj/scratch2", pid=1)
    client.flush_updates()
    assert client.search("keyword:scratch2") == []
    assert service.total_indexed_files() == 1


def test_rename_of_pending_update_lands_under_new_path():
    service, client = make_service()
    vfs = service.vfs
    vfs.write_file("/proj/tmp.dat", 77, pid=1)
    client.index_path("/proj/tmp.dat", pid=1)     # batched, unsent
    vfs.rename("/proj/tmp.dat", "/proj/kept.dat", pid=1)
    client.flush_updates()
    assert client.search("size==77") == ["/proj/kept.dat"]
    assert client.search("keyword:tmp") == []


def test_crawler_sees_rename_after_pass():
    from repro.baselines.crawler import CrawlerConfig, CrawlerSearchEngine

    clock = SimClock()
    vfs = VirtualFileSystem(clock)
    loop = EventLoop(clock)
    crawler = CrawlerSearchEngine(vfs, loop, CrawlerConfig(
        pass_trigger_dirty=1, reindex_rate_fps=1000.0))
    vfs.mkdir("/d")
    vfs.write_file("/d/old.txt", 20 * 1024**2)
    crawler.full_rebuild()
    vfs.rename("/d/old.txt", "/d/new.txt")
    crawler._ingest_notifications()
    loop.run_until(clock.now() + 10)
    assert crawler.query("size>1m") == ["/d/new.txt"]


# -- periodic-crawl appliance --------------------------------------------------------

def appliance_world(period=60.0, rate=100.0):
    clock = SimClock()
    vfs = VirtualFileSystem(clock)
    loop = EventLoop(clock)
    appliance = PeriodicCrawler(vfs, loop, crawl_period_s=period,
                                crawl_rate_fps=rate,
                                type_filter=lambda p, i: True)
    vfs.mkdir("/data")
    return clock, vfs, loop, appliance


def test_appliance_initial_crawl_and_query():
    clock, vfs, loop, appliance = appliance_world()
    for i in range(10):
        vfs.write_file(f"/data/f{i}.txt", 2 * 1024**2)
    assert appliance.crawl_now() == 10
    assert len(appliance.query("size>1m")) == 10


def test_appliance_staleness_until_next_periodic_crawl():
    clock, vfs, loop, appliance = appliance_world(period=60.0)
    vfs.write_file("/data/before.txt", 2 * 1024**2)
    appliance.crawl_now()
    vfs.write_file("/data/after.txt", 2 * 1024**2)
    # No notifications: the new file is invisible for up to a full period.
    assert appliance.query("size>1m") == ["/data/before.txt"]
    loop.run_until(clock.now() + 70.0)   # next crawl starts and finishes
    assert set(appliance.query("size>1m")) == {"/data/before.txt",
                                               "/data/after.txt"}


def test_appliance_serves_old_snapshot_during_crawl():
    clock, vfs, loop, appliance = appliance_world(period=30.0, rate=1.0)
    for i in range(20):
        vfs.write_file(f"/data/f{i}.txt", 2 * 1024**2)
    # First periodic crawl starts at t=30 and takes 20s at 1 FPS.
    loop.run_until(35.0)
    assert appliance.query("size>1m") == []    # old (empty) snapshot
    loop.run_until(55.0)
    assert len(appliance.query("size>1m")) == 20
    assert appliance.crawls_completed == 1


def test_appliance_worse_recall_than_notification_crawler():
    """Section II's hierarchy: notifications help, inline indexing wins."""
    from repro.baselines.crawler import CrawlerConfig, CrawlerSearchEngine

    clock = SimClock()
    vfs = VirtualFileSystem(clock)
    loop = EventLoop(clock)
    desktop = CrawlerSearchEngine(vfs, loop, CrawlerConfig(
        pass_trigger_dirty=4, reindex_rate_fps=1000.0,
        type_filter=lambda p, i: True))
    appliance = PeriodicCrawler(vfs, loop, crawl_period_s=600.0,
                                crawl_rate_fps=1000.0,
                                type_filter=lambda p, i: True)
    vfs.mkdir("/data")
    desktop.full_rebuild()
    appliance.crawl_now()
    desktop_recalls, appliance_recalls = [], []
    for i in range(30):
        vfs.write_file(f"/data/f{i}.txt", 2 * 1024**2)
        loop.run_until(clock.now() + 2.0)
        truth = [p for p, inode in vfs.namespace.files()
                 if inode.size > 1024**2]
        desktop_recalls.append(recall(desktop.query("size>1m"), truth))
        appliance_recalls.append(recall(appliance.query("size>1m"), truth))
    assert sum(desktop_recalls) > sum(appliance_recalls)
    assert max(appliance_recalls) < 0.5   # a whole period away from a crawl
