"""Failure-path edges found by audit: down nodes during splits, and
failover of a victim that never checkpointed."""

import pytest

from repro.cluster import PropellerService
from repro.core.partitioner import PartitioningPolicy
from repro.indexstructures import IndexKind


def build(nodes=3, split=40):
    service = PropellerService(
        num_index_nodes=nodes,
        policy=PartitioningPolicy(split_threshold=split, cluster_target=15))
    client = service.make_client()
    client.create_index("by_size", IndexKind.BTREE, ["size"])
    return service, client


def chain_files(service, client, n, pid=7):
    service.vfs.mkdir("/d", parents=True) if not service.vfs.exists("/d") else None
    for i in range(n):
        service.vfs.write_file(f"/d/c{pid}_{i:03d}", 100 + i, pid=pid)
        client.index_path(f"/d/c{pid}_{i:03d}", pid=pid)
    client.flush_updates()


def hosted_files(service, p):
    """Files a partition's owner actually holds (the Master only learns
    sizes from heartbeats now, so tests read the node side directly)."""
    node = service.index_nodes.get(p.node) if p.node else None
    replica = node.replicas.get(p.partition_id) if node else None
    return replica.file_count if replica else 0


def test_split_of_partition_on_down_node_is_deferred():
    service, client = build()
    chain_files(service, client, 60)       # one oversized partition
    service.commit_all()
    big = max(service.master.partitions.partitions(),
              key=lambda p: hosted_files(service, p))
    assert hosted_files(service, big) > 40
    service.fail_node(big.node)
    # The heartbeat round must not blow up on the dead owner...
    service.master.poll_heartbeats()
    assert len(service.master.splits) == 0
    # ...and the split happens once the node is back.
    service.index_nodes[big.node].endpoint.recover()
    service.master.poll_heartbeats()
    assert len(service.master.splits) >= 1


def test_failover_without_checkpoint_leaves_partition_unplaced():
    service, client = build()
    chain_files(service, client, 30)
    service.commit_all()
    victim = max(service.index_nodes,
                 key=lambda n: sum(r.file_count
                                   for r in service.index_nodes[n].replicas.values()))
    # No checkpoint ever written: the victim's data is unrecoverable.
    service.fail_node(victim)
    moved = service.failover(victim)
    assert moved == 0
    orphaned = [p for p in service.master.partitions.partitions()
                if p.node is None]
    assert orphaned
    # The cluster still serves (the orphaned data is lost, not the service).
    assert client.search("size>1000000") == []
    # New updates re-place the orphaned files on a survivor.
    for path, inode in list(service.vfs.namespace.files("/d")):
        client.index_path(path, pid=1)
    client.flush_updates()
    got = client.search("size>0")
    assert len(got) == 30
    hosted = sum(r.file_count
                 for name, node in service.index_nodes.items()
                 if node.endpoint.up
                 for r in node.replicas.values())
    assert hosted == 30


def test_master_restart_replays_inflight_failover():
    """The Master restarts right after failing a node over, with the
    victim still down: meta-WAL replay rebuilds the re-homed placements
    and membership at the same term, and the cluster keeps serving."""
    service, client = build()
    chain_files(service, client, 30)
    service.commit_all()
    service._checkpoint_all()
    master = service.master
    victim = max(service.index_nodes,
                 key=lambda n: sum(r.file_count
                                   for r in service.index_nodes[n].replicas.values()))
    service.fail_node(victim)
    moved = service.failover(victim)
    assert moved >= 1
    assert all(p.node != victim for p in master.partitions.partitions())
    before = master._build_meta_state().snapshot()
    term_before = master.term
    epoch_before = master.partitions.epoch

    # Failover evicted the victim from membership; that eviction is a
    # durable record too.
    assert victim not in master.index_nodes

    # Crash-restart the Master while the victim is still dead.  Replay
    # must reproduce the failover's outcome exactly: same placements,
    # same routing epoch, same term, victim still evicted.
    service.crash_master()
    service.restart_master()
    assert master.acting and master.term == term_before
    assert master._build_meta_state().snapshot() == before
    assert master.partitions.epoch == epoch_before
    assert victim not in master.index_nodes
    assert all(p.node != victim for p in master.partitions.partitions())
    assert len(client.search("size>0")) == 30

    # The victim's eventual return does not resurrect stale ownership:
    # heartbeat rounds keep the re-homed placements.
    service.index_nodes[victim].endpoint.recover()
    master.poll_heartbeats()
    assert all(p.node != victim for p in master.partitions.partitions())
    assert len(client.search("size>0")) == 30


def test_background_timer_survives_node_failure():
    """The periodic heartbeat/split/checkpoint timers must keep firing
    with a dead node in the cluster."""
    service, client = build()
    chain_files(service, client, 60)
    service.fail_node("in1")
    service.advance(65.0)   # heartbeats + checkpoints, several rounds
    assert service.clock.now() >= 65.0
