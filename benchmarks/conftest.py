"""Benchmark-suite configuration.

Every bench regenerates one table or figure from the paper and writes its
rendered output under ``benchmarks/results/`` (also echoed to stdout with
``-s``).  Wall-clock timings from pytest-benchmark cover the hot path of
each experiment; the experiment tables themselves report *simulated*
seconds from the cost model, which is what EXPERIMENTS.md quotes.

Set ``REPRO_FULL=1`` to run paper-scale datasets (slower); the default
scales are chosen to finish the whole suite in a few minutes.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def full_scale() -> bool:
    return os.environ.get("REPRO_FULL", "") == "1"


def write_result(name: str, content: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(content + "\n")
    print(f"\n{content}\n")


@pytest.fixture
def record_result():
    return write_result
