"""Figure 9 / Table IV — cluster file-search latency, 1–8 Index Nodes.

Paper: the query "find files larger than 16MB" runs 11 times per cluster
configuration on 50M- and 100M-file datasets after a fresh boot; "cold" is
the first query (nothing cached), "warm" averages the remaining 10.
Findings to reproduce:

* latency falls monotonically (and steeply) as Index Nodes are added;
* the warm-latency improvement is *super-linear* around the point where
  each node's share of the indices first fits in its RAM (paper: 1→4
  nodes on 100M, 1→2 on 50M) — page faults vanish.

Scale substitution: datasets at 1:1000 (50k/100k files) with per-node RAM
scaled down the same way (16 MB), preserving the indices-to-RAM ratio
that creates the memory-fit knee.

The instrumented run (`run(cfg)` with ``cfg.instrument``) additionally
records timeline series (cache hit rate, load skew, dirty backlog) and a
staleness probe; both charge zero virtual time, so the simulated latency
numbers are bit-identical with instrumentation on or off — the driver
below calls the same ``service.pump()`` either way.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import pytest

from benchmarks.common import build_propeller
from benchmarks.harness import BenchConfig, default_cfg
from repro.metrics.reporting import render_table

QUERY = "size>16m"
RAM_BYTES = 12 * 1024**2
NODE_COUNTS = (1, 2, 4, 6, 8)
TIMELINE_INTERVAL_S = 0.005
FRESHNESS_PROBE_FILES = 64


def measure(total_files: int, nodes: int,
            instrument: bool = False) -> Tuple[float, float, dict, dict, dict]:
    service, client, paths = build_propeller(
        num_index_nodes=nodes, total_files=total_files,
        group_size=1000, ram_bytes=RAM_BYTES)
    # This benchmark isolates the paper's RAM-residency knee: the warm
    # samples repeat one query, which summary pruning and the
    # watermark-keyed result cache would otherwise answer without ever
    # touching the indices (flat ~0.2 ms at every node count).  Both
    # optimizations are measured elsewhere (table3 / fig10); here they
    # are switched off so warm latency reflects index scans vs RAM.
    client.prune_searches = False
    for node in service.index_nodes.values():
        node.result_caching = False
    if instrument:
        timeline = service.enable_timeline(interval_s=TIMELINE_INTERVAL_S)
        service.enable_freshness()
    service.drop_caches()
    span = service.clock.span()
    client.search(QUERY)
    cold = span.elapsed()
    # pump() is part of the measured driver in BOTH modes: with a
    # timeline enabled it also samples, which must not (and does not)
    # change the simulated numbers.
    service.pump()
    warm_samples = []
    for _ in range(10):
        span = service.clock.span()
        client.search(QUERY)
        warm_samples.append(span.elapsed())
        service.pump()
    warm = sum(warm_samples) / len(warm_samples)
    series: dict = {}
    staleness: dict = {}
    if instrument:
        # Post-measurement freshness probe: re-index a handful of files
        # and commit, measuring change-to-search-visible staleness on
        # this deployment.  Runs after the latency measurements.
        client.index_paths(paths[:FRESHNESS_PROBE_FILES], pid=1)
        client.flush_updates()
        service.advance(1.0)
        service.commit_all()
        timeline.sample()
        series = timeline.to_dict()["series"]
        staleness = service.freshness.summary()
    # Routing-epoch figures of merit: how far off the hot path the
    # Master is (route RPCs amortized over every indexed update) and how
    # well the client's route cache serves placement locally.
    metrics = {
        "master.route_rpcs_per_update":
            service.registry.value("cluster.master.route_rpcs_per_update"),
        "cluster.client.route_cache_hit_rate":
            service.registry.value("cluster.client.route_cache_hit_rate"),
    }
    return cold, warm, series, staleness, metrics


def measure_tiered(total_files: int, nodes: int) -> Tuple[float, float]:
    """The fig09 protocol with tiered storage on.

    Every partition is frozen to the simulated object store before the
    cold start, so the cold query pays hydration (object-store GETs) and
    the warm queries run against cached segment views — which never
    charge page faults, the cost that creates the live path's
    super-linear memory knee past the RAM budget.
    """
    service, client, _ = build_propeller(
        num_index_nodes=nodes, total_files=total_files,
        group_size=1000, ram_bytes=RAM_BYTES)
    client.prune_searches = False
    for node in service.index_nodes.values():
        node.result_caching = False
    service.set_tiering(True, freeze_age_s=5.0, min_bytes=1)
    service.advance(30.0)  # everything goes cold and freezes
    service.drop_caches()
    span = service.clock.span()
    client.search(QUERY)
    cold = span.elapsed()
    service.pump()
    warm_samples = []
    for _ in range(10):
        span = service.clock.span()
        client.search(QUERY)
        warm_samples.append(span.elapsed())
        service.pump()
    return cold, sum(warm_samples) / len(warm_samples)


def _sweep(cfg: BenchConfig):
    datasets = cfg.scale((5_000, 10_000), (25_000, 50_000), (50_000, 100_000))
    node_counts = cfg.scale((1, 2, 4), (1, 2, 4, 8), NODE_COUNTS)
    results: Dict[int, List[Tuple[float, float]]] = {}
    series: dict = {}
    staleness: dict = {}
    metrics: dict = {}
    tiered: Dict[int, List[Tuple[float, float]]] = {}
    for total in datasets:
        results[total] = []
        tiered[total] = []
        for n in node_counts:
            cold, warm, run_series, run_staleness, run_metrics = measure(
                total, n, instrument=cfg.instrument)
            results[total].append((cold, warm))
            tiered[total].append(measure_tiered(total, n))
            # Keep the telemetry of the largest configuration measured.
            if run_series:
                series, staleness = run_series, run_staleness
            metrics = run_metrics

    rows = []
    for total in datasets:
        rows.append([f"{total // 1000}k (cold)"] +
                    [f"{c:.3f}" for c, _ in results[total]])
    for total in datasets:
        rows.append([f"{total // 1000}k (warm)"] +
                    [f"{w:.5f}" for _, w in results[total]])
    for total in datasets:
        rows.append([f"{total // 1000}k (warm, tiered)"] +
                    [f"{w:.5f}" for _, w in tiered[total]])
    table = render_table(
        ["dataset / nodes"] + [str(n) for n in node_counts], rows,
        title='Figure 9 / Table IV — cluster search latency (simulated s), '
              f'query "{QUERY}", datasets scaled 1:1000, RAM/node '
              f'{RAM_BYTES // 1024**2} MB')
    return (table, results, tiered, datasets, node_counts, series, staleness,
            metrics)


def run(cfg: BenchConfig):
    (table, results, tiered, datasets, node_counts, series, staleness,
     metrics) = _sweep(cfg)
    latency = {}
    for total in datasets:
        for n, (cold, warm) in zip(node_counts, results[total]):
            latency[f"cold_{total // 1000}k_{n}nodes"] = cold
            latency[f"warm_{total // 1000}k_{n}nodes"] = warm
        for n, (cold, warm) in zip(node_counts, tiered[total]):
            latency[f"coldtier_{total // 1000}k_{n}nodes"] = cold
            latency[f"warmtier_{total // 1000}k_{n}nodes"] = warm
    return {
        "name": "fig09_cluster_scaling",
        "params": {"datasets": list(datasets), "node_counts": list(node_counts),
                   "ram_bytes": RAM_BYTES, "query": QUERY},
        "texts": {"fig09_cluster_scaling": table},
        "latency_s": latency,
        "series": series,
        "staleness": staleness,
        "metrics": metrics,
    }


def test_fig09_cluster_search_scaling(record_result):
    cfg = default_cfg()
    table, results, _, datasets, node_counts, _, _, _ = _sweep(cfg)
    record_result("fig09_cluster_scaling", table)

    for total in datasets:
        colds = [c for c, _ in results[total]]
        warms = [w for _, w in results[total]]
        # Monotone improvement with more nodes (both cold and warm).
        assert colds[0] > colds[-1]
        assert warms[0] > warms[-1]
        # Large overall scaling factor, as in Table IV.
        assert warms[0] / warms[-1] > 4.0
    # Super-linear region: somewhere the warm speedup from one step
    # exceeds the node-count ratio of that step (the memory-fit knee).
    knee_found = False
    for total in datasets:
        warms = [w for _, w in results[total]]
        for i in range(len(node_counts) - 1):
            ratio = warms[i] / warms[i + 1]
            nodes_ratio = node_counts[i + 1] / node_counts[i]
            if ratio > nodes_ratio * 1.2:
                knee_found = True
    assert knee_found, results


def test_fig09_tiering_flattens_memory_knee():
    """Acceptance guard for tiered storage: past the RAM budget the live
    path's warm latency grows *super-linearly* in dataset size (page
    faults), while the tiered path — cold partitions frozen, searches
    served from cached segment views that never charge page faults —
    stays at worst linear (≤1.5x per-file slack), and beats the live
    path outright at the past-RAM point."""
    small, large = 10_000, 50_000
    _, warm_small_live, *_ = measure(small, 1)
    _, warm_large_live, *_ = measure(large, 1)
    _, warm_small_tier = measure_tiered(small, 1)
    _, warm_large_tier = measure_tiered(large, 1)
    scale = large / small
    # The live knee exists: super-linear growth past the RAM budget.
    assert warm_large_live > warm_small_live * scale * 1.2, \
        (warm_small_live, warm_large_live)
    # Tiering flattens it: per-file warm cost grows by at most 1.5x.
    assert warm_large_tier <= warm_small_tier * scale * 1.5, \
        (warm_small_tier, warm_large_tier)
    # And tiering wins outright where the RAM budget is exceeded.
    assert warm_large_tier <= warm_large_live, \
        (warm_large_tier, warm_large_live)


def test_fig09_instrumentation_bit_identical():
    """The acceptance invariant: timeline + staleness instrumentation
    leaves the simulated latencies bit-identical."""
    plain = measure(5_000, 2, instrument=False)
    instrumented = measure(5_000, 2, instrument=True)
    assert plain[0] == instrumented[0]      # cold, exactly
    assert plain[1] == instrumented[1]      # warm, exactly
    assert instrumented[2], "instrumented run should produce series"
    assert instrumented[3]["nodes"], "staleness probe should observe commits"


def test_fig09_master_off_the_hot_path():
    """Acceptance guard for epoch-versioned routing: with client route
    caches, the Master answers at least 10x fewer routing RPCs per
    indexed update than the legacy one-route-call-per-batch protocol
    (1/128 at the standard batch_size=128)."""
    *_, metrics = measure(5_000, 4)
    per_update = metrics["master.route_rpcs_per_update"]
    assert per_update <= (1 / 128) / 10, metrics
    assert metrics["cluster.client.route_cache_hit_rate"] >= 0.9, metrics


def test_fig09_benchmark(benchmark):
    benchmark(lambda: measure(10_000, 2))
