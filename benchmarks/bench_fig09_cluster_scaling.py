"""Figure 9 / Table IV — cluster file-search latency, 1–8 Index Nodes.

Paper: the query "find files larger than 16MB" runs 11 times per cluster
configuration on 50M- and 100M-file datasets after a fresh boot; "cold" is
the first query (nothing cached), "warm" averages the remaining 10.
Findings to reproduce:

* latency falls monotonically (and steeply) as Index Nodes are added;
* the warm-latency improvement is *super-linear* around the point where
  each node's share of the indices first fits in its RAM (paper: 1→4
  nodes on 100M, 1→2 on 50M) — page faults vanish.

Scale substitution: datasets at 1:1000 (50k/100k files) with per-node RAM
scaled down the same way (16 MB), preserving the indices-to-RAM ratio
that creates the memory-fit knee.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import pytest

from benchmarks.common import build_propeller
from benchmarks.conftest import full_scale
from repro.metrics.reporting import render_table

QUERY = "size>16m"
RAM_BYTES = 12 * 1024**2
NODE_COUNTS = (1, 2, 4, 6, 8)


def measure(total_files: int, nodes: int) -> Tuple[float, float]:
    service, client, _ = build_propeller(
        num_index_nodes=nodes, total_files=total_files,
        group_size=1000, ram_bytes=RAM_BYTES)
    service.drop_caches()
    span = service.clock.span()
    client.search(QUERY)
    cold = span.elapsed()
    warm_samples = []
    for _ in range(10):
        span = service.clock.span()
        client.search(QUERY)
        warm_samples.append(span.elapsed())
    return cold, sum(warm_samples) / len(warm_samples)


def test_fig09_cluster_search_scaling(benchmark, record_result):
    datasets = (50_000, 100_000) if full_scale() else (25_000, 50_000)
    node_counts = NODE_COUNTS if full_scale() else (1, 2, 4, 8)
    results: Dict[int, List[Tuple[float, float]]] = {}
    for total in datasets:
        results[total] = [measure(total, n) for n in node_counts]

    rows = []
    for total in datasets:
        rows.append([f"{total // 1000}k (cold)"] +
                    [f"{c:.3f}" for c, _ in results[total]])
    for total in datasets:
        rows.append([f"{total // 1000}k (warm)"] +
                    [f"{w:.5f}" for _, w in results[total]])
    table = render_table(
        ["dataset / nodes"] + [str(n) for n in node_counts], rows,
        title='Figure 9 / Table IV — cluster search latency (simulated s), '
              f'query "{QUERY}", datasets scaled 1:1000, RAM/node '
              f'{RAM_BYTES // 1024**2} MB')
    record_result("fig09_cluster_scaling", table)

    for total in datasets:
        colds = [c for c, _ in results[total]]
        warms = [w for _, w in results[total]]
        # Monotone improvement with more nodes (both cold and warm).
        assert colds[0] > colds[-1]
        assert warms[0] > warms[-1]
        # Large overall scaling factor, as in Table IV.
        assert warms[0] / warms[-1] > 4.0
    # Super-linear region: somewhere the warm speedup from one step
    # exceeds the node-count ratio of that step (the memory-fit knee).
    knee_found = False
    for total in datasets:
        warms = [w for _, w in results[total]]
        for i in range(len(node_counts) - 1):
            ratio = warms[i] / warms[i + 1]
            nodes_ratio = node_counts[i + 1] / node_counts[i]
            if ratio > nodes_ratio * 1.2:
                knee_found = True
    assert knee_found, results

    benchmark(lambda: measure(10_000, 2))
