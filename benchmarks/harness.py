"""Unified benchmark runner: every figure/table/ablation as one artifact.

Each ``bench_*.py`` module exposes ``run(cfg) -> dict`` returning:

* ``name`` — the bench stem (``fig09_cluster_scaling``);
* ``texts`` — ``{result_name: fixed-width text}``, exactly what the
  pytest wrapper records under ``benchmarks/results/`` (one code path
  for text and JSON);
* ``latency_s`` — scalar *simulated* timings keyed by a stable name.
  These are deterministic (the cost model is seeded), so two runs of the
  same code are bit-identical and :func:`compare` can flag regressions
  with no noise floor;
* ``series`` — ``{series_name: [[t, value], ...]}`` timeline samples;
* ``staleness`` — a freshness summary (see ``repro.obs.freshness``);
* ``metrics`` — registry counters worth keeping;
* ``params`` / ``extra`` — the run's configuration and any other
  figures-of-merit;
* ``slo`` / ``journal`` — optional observability sections; when absent
  the harness fills them from the last Propeller deployment the bench
  built (SLO summary + event-journal digest, see ``repro.obs``).

The harness wraps that in an envelope (schema, tier, wall-clock) and
writes ``BENCH_<key>.json`` — ``key`` is the stem minus ``bench_`` — at
the repo root (or ``--out DIR``).  ``compare()`` diffs two artifacts (or
two directories of them) and fails on latency regressions beyond a
threshold; wall-clock is deliberately excluded from comparison.
"""

from __future__ import annotations

import importlib
import json
import os
import pathlib
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

SCHEMA = "propeller-bench/1"
BENCH_DIR = pathlib.Path(__file__).parent
ARTIFACT_PREFIX = "BENCH_"
DEFAULT_THRESHOLD = 0.10

TIERS = ("smoke", "default", "full")


@dataclass
class BenchConfig:
    """How one bench invocation should scale and instrument itself.

    ``tier`` picks the dataset sizes: ``smoke`` finishes in seconds (CI
    regression gate), ``default`` matches the pytest suite, ``full`` is
    paper scale (``REPRO_FULL=1``).  ``instrument`` enables the timeline
    recorder and freshness tracking — guaranteed not to change simulated
    numbers (both charge zero virtual time).
    """

    tier: str = "default"
    instrument: bool = True

    def __post_init__(self) -> None:
        if self.tier not in TIERS:
            raise ValueError(f"unknown tier {self.tier!r}; expected one of {TIERS}")

    @property
    def smoke(self) -> bool:
        return self.tier == "smoke"

    @property
    def full(self) -> bool:
        return self.tier == "full"

    def scale(self, smoke: Any, default: Any, full: Any = None) -> Any:
        """Pick a per-tier value (``full`` falls back to ``default``)."""
        if self.tier == "smoke":
            return smoke
        if self.tier == "full":
            return default if full is None else full
        return default


def default_cfg(instrument: bool = True) -> BenchConfig:
    """The tier the pytest suite runs at (``REPRO_FULL=1`` → full)."""
    tier = "full" if os.environ.get("REPRO_FULL", "") == "1" else "default"
    return BenchConfig(tier=tier, instrument=instrument)


# -- discovery ---------------------------------------------------------------

def discover() -> Dict[str, Any]:
    """Map bench key → module for every ``bench_*.py`` exposing ``run``."""
    benches: Dict[str, Any] = {}
    for path in sorted(BENCH_DIR.glob("bench_*.py")):
        module = importlib.import_module(f"benchmarks.{path.stem}")
        if hasattr(module, "run"):
            benches[path.stem[len("bench_"):]] = module
    return benches


# -- running -----------------------------------------------------------------

def run_bench(name: str, module: Any, cfg: BenchConfig) -> Dict[str, Any]:
    """Run one bench and wrap its result in the artifact envelope.

    Every artifact carries ``slo`` / ``journal`` sections: a bench can
    return them explicitly, otherwise the harness embeds the summary of
    the last Propeller deployment the bench built (empty sections for
    baseline-only benches).  ``compare_artifacts`` ignores both, so the
    sections never turn an observability change into a regression.
    """
    from benchmarks import common

    common.reset_observed()
    wall_start = time.perf_counter()
    result = module.run(cfg)
    wall = time.perf_counter() - wall_start
    obs = common.obs_sections()
    return {
        "schema": SCHEMA,
        "name": result.get("name", f"bench_{name}"),
        "tier": cfg.tier,
        "instrumented": cfg.instrument,
        "params": result.get("params", {}),
        "latency_s": result.get("latency_s", {}),
        "series": result.get("series", {}),
        "staleness": result.get("staleness", {}),
        "metrics": result.get("metrics", {}),
        "extra": result.get("extra", {}),
        "slo": result.get("slo", obs["slo"]),
        "journal": result.get("journal", obs["journal"]),
        "texts": result.get("texts", {}),
        "wall_clock_s": wall,
    }


def write_artifact(key: str, artifact: Dict[str, Any],
                   out_dir: pathlib.Path) -> pathlib.Path:
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"{ARTIFACT_PREFIX}{key}.json"
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
    return path


def write_results_texts(artifact: Dict[str, Any],
                        results_dir: pathlib.Path) -> List[pathlib.Path]:
    """Regenerate ``benchmarks/results/*.txt`` from an artifact's texts."""
    results_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for result_name, text in sorted(artifact.get("texts", {}).items()):
        path = results_dir / f"{result_name}.txt"
        path.write_text(text + "\n")
        written.append(path)
    return written


# -- comparison --------------------------------------------------------------

def _load_artifact(path: pathlib.Path) -> Dict[str, Any]:
    data = json.loads(path.read_text())
    if not isinstance(data, dict) or "latency_s" not in data:
        raise ValueError(f"{path} is not a {SCHEMA} artifact")
    return data


def compare_artifacts(old: Dict[str, Any], new: Dict[str, Any],
                      threshold: float = DEFAULT_THRESHOLD
                      ) -> List[Tuple[str, float, float, float]]:
    """Regressions between two artifacts' shared latency keys.

    Returns ``(key, old_value, new_value, ratio)`` for every shared
    ``latency_s`` entry where new exceeds old by more than ``threshold``
    (relative).  Simulated latencies are deterministic, so any excess is
    a real code-path change, not noise.

    Artifacts carrying ``extra["p99_over_p50"]`` (tail-latency ratios,
    see ``bench_replication_tail``) are guarded the same way: a tail
    ratio growing past the threshold is a regression even when every
    scalar latency stayed flat — exactly the failure mode hedged reads
    exist to prevent.
    """
    regressions = []
    old_lat = old.get("latency_s", {})
    new_lat = new.get("latency_s", {})
    for key in sorted(set(old_lat) & set(new_lat)):
        o, n = float(old_lat[key]), float(new_lat[key])
        if o <= 0:
            continue
        ratio = n / o
        if ratio > 1.0 + threshold:
            regressions.append((key, o, n, ratio))
    old_tail = old.get("extra", {}).get("p99_over_p50", {})
    new_tail = new.get("extra", {}).get("p99_over_p50", {})
    for key in sorted(set(old_tail) & set(new_tail)):
        o, n = float(old_tail[key]), float(new_tail[key])
        if o <= 0:
            continue
        ratio = n / o
        if ratio > 1.0 + threshold:
            regressions.append((f"p99_over_p50:{key}", o, n, ratio))
    return regressions


def _artifact_files(path: pathlib.Path) -> Dict[str, pathlib.Path]:
    if path.is_dir():
        return {p.name: p for p in sorted(path.glob(f"{ARTIFACT_PREFIX}*.json"))}
    return {path.name: path}


def compare(old_path: pathlib.Path, new_path: pathlib.Path,
            threshold: float = DEFAULT_THRESHOLD
            ) -> Tuple[List[str], List[str]]:
    """Compare artifacts (file vs file, or directory vs directory).

    Returns ``(report_lines, regression_lines)`` — non-empty
    ``regression_lines`` means the comparison failed.
    """
    old_files = _artifact_files(old_path)
    new_files = _artifact_files(new_path)
    shared = sorted(set(old_files) & set(new_files))
    report: List[str] = []
    failures: List[str] = []
    if not shared:
        failures.append(f"no artifacts in common between {old_path} and {new_path}")
        return report, failures
    for name in shared:
        old_art = _load_artifact(old_files[name])
        new_art = _load_artifact(new_files[name])
        regressions = compare_artifacts(old_art, new_art, threshold)
        shared_keys = set(old_art.get("latency_s", {})) & set(new_art.get("latency_s", {}))
        report.append(f"{name}: {len(shared_keys)} latencies compared, "
                      f"{len(regressions)} regression(s)")
        for key, o, n, ratio in regressions:
            line = (f"  REGRESSION {name}:{key} {o:.6g}s -> {n:.6g}s "
                    f"({ratio:.2f}x, threshold {1 + threshold:.2f}x)")
            report.append(line)
            failures.append(line.strip())
    only_old = sorted(set(old_files) - set(new_files))
    if only_old:
        report.append(f"missing from new: {', '.join(only_old)}")
    only_new = sorted(set(new_files) - set(old_files))
    if only_new:
        report.append(f"new artifacts (no baseline): {', '.join(only_new)}")
    return report, failures
