"""Ablation — the lazy index cache (timeout/search-triggered commit).

Propeller parks acknowledged updates in an in-memory cache and commits on
a 5-second timeout or on the next search, arguing that searches are rare
so nearly all commits batch.  This ablation compares that discipline with
an eager variant (commit every update immediately) on the same stream and
measures (a) total indexing time and (b) the added latency of the search
that forces a commit.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.common import build_propeller
from repro.metrics.reporting import format_duration, render_table


def run(eager: bool, n_updates: int = 3_000):
    service, client, paths = build_propeller(
        num_index_nodes=1, total_files=3_000, group_size=1000,
        single_node=True)
    node = service.index_nodes["in1"]
    group = paths[:1000]
    rng = random.Random(5)
    span = service.clock.span()
    for k in range(n_updates):
        client.index_path(group[rng.randrange(len(group))], pid=1)
        if eager:
            client.flush_updates()
            node.cache.commit_all()
    client.flush_updates()
    update_time = span.elapsed()
    span = service.clock.span()
    client.search("size>1m")
    search_time = span.elapsed()
    commits = node.cache.stats.timeout_commits + node.cache.stats.search_commits
    return update_time, search_time, commits


def test_ablation_lazy_cache(benchmark, record_result):
    lazy_update, lazy_search, lazy_commits = run(eager=False)
    eager_update, eager_search, eager_commits = run(eager=True)
    rows = [
        ["lazy (paper)", f"{lazy_update:.4f}", format_duration(lazy_search),
         lazy_commits],
        ["eager", f"{eager_update:.4f}", format_duration(eager_search),
         eager_commits],
        ["eager/lazy", f"{eager_update / lazy_update:.1f}x", "", ""],
    ]
    table = render_table(
        ["commit policy", "3000-update time (s)", "next-search latency",
         "commit batches"],
        rows, title="Ablation — lazy index cache vs eager per-update commit")
    record_result("ablation_cache", table)

    # Lazy batching buys a large indexing-throughput win...
    assert eager_update / lazy_update > 2.0
    # ...at a bounded cost: the search that forces the commit pays for at
    # most one batch, still far below the eager stream's total overhead.
    assert lazy_search < eager_update - lazy_update

    benchmark(lambda: run(eager=False, n_updates=500))
