"""Ablation — the lazy index cache (timeout/search-triggered commit).

Propeller parks acknowledged updates in an in-memory cache and commits on
a 5-second timeout or on the next search, arguing that searches are rare
so nearly all commits batch.  This ablation compares that discipline with
an eager variant (commit every update immediately) on the same stream and
measures (a) total indexing time and (b) the added latency of the search
that forces a commit.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.common import build_propeller
from repro.metrics.reporting import format_duration, render_table


def run_policy(eager: bool, n_updates: int = 3_000):
    service, client, paths = build_propeller(
        num_index_nodes=1, total_files=3_000, group_size=1000,
        single_node=True)
    node = service.index_nodes["in1"]
    group = paths[:1000]
    rng = random.Random(5)
    span = service.clock.span()
    for k in range(n_updates):
        client.index_path(group[rng.randrange(len(group))], pid=1)
        if eager:
            client.flush_updates()
            node.cache.commit_all()
    client.flush_updates()
    update_time = span.elapsed()
    span = service.clock.span()
    client.search("size>1m")
    search_time = span.elapsed()
    commits = node.cache.stats.timeout_commits + node.cache.stats.search_commits
    return update_time, search_time, commits


def _run(n_updates: int):
    lazy_update, lazy_search, lazy_commits = run_policy(eager=False,
                                                        n_updates=n_updates)
    eager_update, eager_search, eager_commits = run_policy(eager=True,
                                                           n_updates=n_updates)
    rows = [
        ["lazy (paper)", f"{lazy_update:.4f}", format_duration(lazy_search),
         lazy_commits],
        ["eager", f"{eager_update:.4f}", format_duration(eager_search),
         eager_commits],
        ["eager/lazy", f"{eager_update / lazy_update:.1f}x", "", ""],
    ]
    table = render_table(
        ["commit policy", f"{n_updates}-update time (s)",
         "next-search latency", "commit batches"],
        rows, title="Ablation — lazy index cache vs eager per-update commit")
    return table, (lazy_update, lazy_search, lazy_commits), \
        (eager_update, eager_search, eager_commits)


def run(cfg):
    n_updates = cfg.scale(800, 3_000)
    table, lazy, eager = _run(n_updates)
    return {
        "name": "ablation_cache",
        "params": {"n_updates": n_updates},
        "texts": {"ablation_cache": table},
        "latency_s": {"lazy_update_s": lazy[0], "lazy_search_s": lazy[1],
                      "eager_update_s": eager[0], "eager_search_s": eager[1]},
        "extra": {"lazy_commits": lazy[2], "eager_commits": eager[2]},
    }


def test_ablation_lazy_cache(benchmark, record_result):
    table, lazy, eager = _run(3_000)
    (lazy_update, lazy_search, _) = lazy
    (eager_update, _, _) = eager
    record_result("ablation_cache", table)

    # Lazy batching buys a large indexing-throughput win...
    assert eager_update / lazy_update > 2.0
    # ...at a bounded cost: the search that forces the commit pays for at
    # most one batch, still far below the eager stream's total overhead.
    assert lazy_search < eager_update - lazy_update

    benchmark(lambda: run_policy(eager=False, n_updates=500))
