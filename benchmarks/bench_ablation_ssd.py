"""Ablation — does ACG partitioning still matter on SSDs?

The paper's testbed is all 7 200-RPM disks, where the dominant cost is
the seek, which small hot partitions avoid.  An obvious question for a
2014 reviewer: how much of Propeller's win survives on flash?  This
ablation reruns the Figure 2 sensitivity kernel on the HDD model vs the
SSD model.  Expected shape: the partition-size and inter-partition
effects persist (they are cache/workset effects too) but compress by
roughly the random-access cost ratio of the devices.
"""

from __future__ import annotations

import pytest

from benchmarks.bench_fig02_partition_sensitivity import (
    PartitionedIndexer,
    run_inter_partition,
)
from repro.metrics.reporting import render_table
from repro.sim.disk import HDDModel, SSDModel
from repro.workloads.tracegen import partition_files, random_update_requests

N_UPDATES = 5_000


def run_with_model(model, total_files: int, group_size: int,
                   n_updates: int = N_UPDATES) -> float:
    files = list(range(total_files))
    groups = partition_files(files, group_size)
    indexer = PartitionedIndexer(groups)
    indexer.disk.model = model
    stream = random_update_requests(files, n_updates, seed=11)
    start = indexer.clock.now()
    for fid in stream:
        indexer.update(fid)
    return indexer.clock.now() - start


def _sweep(total_files: int, n_updates: int):
    group_sizes = (1000, 8000)
    rows = []
    results = {}
    for name, model in (("HDD (7200rpm)", HDDModel()), ("SSD", SSDModel())):
        times = [run_with_model(model, total_files, g, n_updates)
                 for g in group_sizes]
        results[name] = times
        ratio = times[1] / times[0]
        rows.append([name] + [f"{t:.2f}" for t in times] + [f"{ratio:.2f}x"])
    table = render_table(
        ["device", "1000/group (s)", "8000/group (s)", "size penalty"],
        rows,
        title=f"Ablation — Figure 2(a) kernel on HDD vs SSD "
              f"({n_updates} updates, {total_files // 1000}k files)")
    return table, results, group_sizes


def run(cfg):
    total_files = cfg.scale(8_000, 32_000)
    n_updates = cfg.scale(1_000, N_UPDATES)
    table, results, group_sizes = _sweep(total_files, n_updates)
    latency = {}
    for name, times in results.items():
        tag = "hdd" if name.startswith("HDD") else "ssd"
        for g, t in zip(group_sizes, times):
            latency[f"{tag}_{g}group_s"] = t
    return {
        "name": "ablation_ssd",
        "params": {"total_files": total_files, "n_updates": n_updates,
                   "group_sizes": list(group_sizes)},
        "texts": {"ablation_ssd": table},
        "latency_s": latency,
    }


def test_ablation_hdd_vs_ssd(benchmark, record_result):
    table, results, _ = _sweep(32_000, N_UPDATES)
    record_result("ablation_ssd", table)

    hdd_times, ssd_times = results["HDD (7200rpm)"], results["SSD"]
    # Absolute costs collapse on flash...
    assert ssd_times[0] < hdd_times[0] / 10
    # ...but the partition-size penalty is still there (workset effect),
    assert ssd_times[1] > 1.5 * ssd_times[0]
    # ...while the HDD pays the larger relative penalty (seek-bound).
    assert hdd_times[1] / hdd_times[0] >= 0.9 * (ssd_times[1] / ssd_times[0])

    benchmark(lambda: run_with_model(SSDModel(), 8_000, 1000))
