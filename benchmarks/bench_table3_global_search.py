"""Table III — global file search, Propeller vs MySQL, growing datasets.

Paper: two queries over synthetically scaled static namespaces of 10–50
million files.  Query #1: ``size > 1GB & mtime < 1 day``; Query #2:
``keyword "firefox" & mtime < 1 week``.  Propeller answers 9.0× (Q1) and
26.3× (Q2) faster on average, and both systems' times grow with dataset
size — but Propeller's much more slowly (parallel partitioned probes vs
one global index).

Scale substitution: namespaces at 1:1000 (10k–50k files); the size
threshold is scaled to the generated size distribution (>64 MB) so the
queries stay selective.
"""

from __future__ import annotations

from typing import List

import pytest

from benchmarks.common import build_minisql, build_propeller
from benchmarks.conftest import full_scale
from repro.metrics.reporting import render_table

QUERY1 = "size>64m & mtime<1day"
QUERY2 = "keyword:firefox & mtime<1week"


def _counter(service, name: str) -> int:
    return service.registry.value(name) if name in service.registry else 0


def measure(total_files: int):
    service, client, _ = build_propeller(num_index_nodes=1,
                                         total_files=total_files,
                                         single_node=True)
    # Let one heartbeat round deliver partition summaries to the Master
    # (background time, outside every measured span) so the client's
    # pruned fan-out has summaries to consult — the steady state of a
    # live deployment.
    service.advance(6.0)
    # Paper schema: only the path key and the keyword table are indexed;
    # attribute predicates must examine rows.
    db, machine, _ = build_minisql(total_files=total_files,
                                   buffer_pool_bytes=(2 * 1024**3) // 1000,
                                   indexed_attrs=())
    times = {}
    prunes = {}
    for label, query in (("#1", QUERY1), ("#2", QUERY2)):
        # Global one-shot searches over on-disk state (cold, as measured
        # by the paper's table).
        service.drop_caches()
        db.buffer_pool.drop_all()
        pruned0 = _counter(service, "search.partitions_pruned")
        searched0 = _counter(service, "search.partitions_searched")
        span = service.clock.span()
        prop_result = client.search(query)
        times[f"Propeller {label}"] = span.elapsed()
        prunes[label] = {
            "pruned": _counter(service, "search.partitions_pruned") - pruned0,
            "searched": (_counter(service, "search.partitions_searched")
                         - searched0),
        }
        span = machine.clock.span()
        sql_result = db.query_paths(query)
        times[f"MiniSQL {label}"] = span.elapsed()
        assert prop_result == sql_result  # same answers, different speed
    return times, prunes


def _sweep(cfg):
    step = 10_000
    points = cfg.scale(2, 3, 5)
    sizes = [step * (i + 1) for i in range(points)]
    rows = []
    all_times = {}
    all_prunes = {}
    for total in sizes:
        times, prunes = measure(total)
        all_times[total] = times
        all_prunes[total] = prunes
        rows.append([f"{total // 1000}k",
                     f"{times['Propeller #1']:.4f}", f"{times['Propeller #2']:.4f}",
                     f"{times['MiniSQL #1']:.4f}", f"{times['MiniSQL #2']:.4f}",
                     f"{times['MiniSQL #1'] / times['Propeller #1']:.1f}x",
                     f"{times['MiniSQL #2'] / times['Propeller #2']:.1f}x"])
    table = render_table(
        ["files", "Propeller #1 (s)", "Propeller #2 (s)",
         "MiniSQL #1 (s)", "MiniSQL #2 (s)", "speedup #1", "speedup #2"],
        rows,
        title="Table III — global file search (simulated seconds; datasets "
              "scaled 1:1000; paper speedups: 9.0x / 26.3x)")
    return table, all_times, all_prunes, sizes


def run(cfg):
    table, all_times, all_prunes, sizes = _sweep(cfg)
    latency = {}
    metrics = {}
    total_pruned = 0
    for total in sizes:
        for label, t in all_times[total].items():
            key = label.lower().replace(" #", "_q")
            latency[f"{key}_{total // 1000}k"] = t
        for label, p in all_prunes[total].items():
            key = f"q{label.lstrip('#')}_{total // 1000}k"
            metrics[f"partitions_pruned_{key}"] = p["pruned"]
            metrics[f"partitions_searched_{key}"] = p["searched"]
            total_pruned += p["pruned"]
    metrics["search.partitions_pruned"] = total_pruned
    return {
        "name": "table3_global_search",
        "params": {"sizes": list(sizes), "queries": [QUERY1, QUERY2]},
        "texts": {"table3_global_search": table},
        "latency_s": latency,
        "metrics": metrics,
    }


def test_table3_global_search(benchmark, record_result):
    from benchmarks.harness import default_cfg
    table, all_times, all_prunes, sizes = _sweep(default_cfg())
    record_result("table3_global_search", table)

    for total in sizes:
        times = all_times[total]
        assert times["MiniSQL #1"] / times["Propeller #1"] > 2.0
        assert times["MiniSQL #2"] / times["Propeller #2"] > 2.0
        # Summary pruning must cut the selective keyword query's fan-out
        # at least in half — with zero recall loss (measure() asserts
        # Propeller and MiniSQL return identical answers).
        q2 = all_prunes[total]["#2"]
        legs = q2["pruned"] + q2["searched"]
        assert q2["searched"] * 2 <= legs, (total, q2)
    # MiniSQL's cost grows clearly with dataset scale.
    assert all_times[sizes[-1]]["MiniSQL #1"] > all_times[sizes[0]]["MiniSQL #1"]

    benchmark(lambda: measure(5_000))
