"""Figure 2 — sensitivity of inline indexing to partition size and
inter-partition access.

Paper setup (Section III): a program issues 50 000 writes that trigger
inline indexing; each partition maintains three file indices on HDDs — a
B+tree, a hash table and a (serialized) K-D tree.

(a) the same number of files split into equal groups of 1 000–8 000:
    larger groups ⇒ slower updates (deeper trees, bigger serialized
    KD-tree rewrites, colder caches);
(b) the same updates confined to 1–32 groups of a fixed size: touching
    more partitions ⇒ slower (cache thrash + head seeks between
    partition files; log-scale effect).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import pytest

from repro.indexstructures import BPlusTree, ExtendibleHashIndex, KDTreeIndex
from repro.metrics.reporting import render_table
from repro.sim.clock import SimClock
from repro.sim.disk import DiskDevice
from repro.sim.memory import PAGE_SIZE, PageCache
from repro.workloads.tracegen import (
    grouped_update_requests,
    partition_files,
    random_update_requests,
)

N_UPDATES = 50_000
KD_BYTES_PER_FILE = 48      # serialized K-D tree record size
KD_CHUNK_BYTES = 64 * 1024  # I/O unit for the serialized KD-tree file
KD_CACHE_CHUNKS = 16        # chunks of KD-tree files the page cache holds
CACHE_BYTES = 1024**2       # page cache for B+tree/hash pages


class PartitionedIndexer:
    """One partition = three indices + a serialized KD-tree file on disk.

    The prototype's inode index is a *serialized* K-D tree (Section V.E):
    an inline update rewrites the partition's KD file, chunk by chunk,
    through a small page cache.  A partition's chunk count grows with its
    size, so updates to big partitions do more I/O (Figure 2a); updates
    confined to few partitions keep those chunks cache-hot (Figure 2b).
    """

    def __init__(self, groups: Sequence[Sequence[int]]) -> None:
        self.clock = SimClock()
        self.disk = DiskDevice(self.clock)
        self.cache = PageCache(self.disk, CACHE_BYTES)
        self.kd_cache = PageCache(self.disk, KD_CACHE_CHUNKS * PAGE_SIZE)
        self.group_of: Dict[int, int] = {}
        self.kd_chunks: Dict[int, int] = {}
        self.btrees: Dict[int, BPlusTree] = {}
        self.hashes: Dict[int, ExtendibleHashIndex] = {}
        for gid, files in enumerate(groups):
            nbytes = len(files) * KD_BYTES_PER_FILE
            self.kd_chunks[gid] = max(1, -(-nbytes // KD_CHUNK_BYTES))
            self.btrees[gid] = BPlusTree(order=64, page_hook=self._hook(f"bt{gid}"))
            self.hashes[gid] = ExtendibleHashIndex(bucket_capacity=32,
                                                   page_hook=self._hook(f"ha{gid}"))
            for fid in files:
                self.group_of[fid] = gid
                self.btrees[gid].insert(fid % 1_000_000, fid)
                self.hashes[gid].insert(fid, fid)

    def _hook(self, namespace: str):
        cache = self.cache

        def touch(node_id: int, write: bool) -> None:
            cache.touch(namespace, node_id, write=write)

        return touch

    def update(self, fid: int) -> None:
        gid = self.group_of[fid]
        # B+tree and hash updates touch their pages through the cache.
        self.btrees[gid].remove(fid % 1_000_000, fid)
        self.btrees[gid].insert(fid % 1_000_000, fid)
        self.hashes[gid].remove(fid, fid)
        self.hashes[gid].insert(fid, fid)
        # Serialized KD-tree rewrite: touch every chunk of the partition's
        # KD file; misses pay random disk I/O.
        for chunk in range(self.kd_chunks[gid]):
            self.kd_cache.touch(f"kd{gid}", chunk, write=True)


def run_partition_size(total_files: int, group_size: int, n_updates: int) -> float:
    files = list(range(total_files))
    groups = partition_files(files, group_size)
    indexer = PartitionedIndexer(groups)
    stream = random_update_requests(files, n_updates, seed=7)
    start = indexer.clock.now()
    for fid in stream:
        indexer.update(fid)
    return indexer.clock.now() - start


def run_inter_partition(group_size: int, touched: int, n_updates: int,
                        n_groups: int = 32) -> float:
    files = list(range(group_size * n_groups))
    groups = partition_files(files, group_size)
    indexer = PartitionedIndexer(groups)
    stream = grouped_update_requests(groups, n_updates, touched_groups=touched,
                                     seed=7)
    start = indexer.clock.now()
    for fid in stream:
        indexer.update(fid)
    return indexer.clock.now() - start


def _run_a(cfg):
    n_updates = cfg.scale(2_000, N_UPDATES // 5, N_UPDATES)
    group_sizes = (1000, 2000, 4000, 8000)
    totals = cfg.scale((20_000,), (50_000, 100_000), (50_000, 100_000, 200_000))
    rows = []
    results: Dict[int, List[float]] = {}
    for total in totals:
        times = [run_partition_size(total, g, n_updates) for g in group_sizes]
        results[total] = times
        rows.append([f"{total} files"] + [f"{t:.1f}" for t in times])
    table = render_table(
        ["dataset"] + [f"{g}/group (s)" for g in group_sizes], rows,
        title=f"Figure 2(a) — {n_updates} random updates, execution time vs "
              "partition size (simulated seconds)")
    latency = {f"a_{total}files_{g}group": t
               for total in totals
               for g, t in zip(group_sizes, results[total])}
    return table, results, latency, {"n_updates": n_updates, "totals": list(totals),
                                     "group_sizes": list(group_sizes)}


def _run_b(cfg):
    n_updates = cfg.scale(2_000, N_UPDATES // 5, N_UPDATES)
    touched_levels = (1, 2, 4, 8, 16, 32)
    group_sizes = cfg.scale((1000,), (1000, 2000), (1000, 2000, 4000, 8000))
    rows = []
    results: Dict[int, List[float]] = {}
    for group_size in group_sizes:
        times = [run_inter_partition(group_size, touched, n_updates)
                 for touched in touched_levels]
        results[group_size] = times
        rows.append([f"{group_size}-file groups"] + [f"{t:.1f}" for t in times])
    table = render_table(
        ["group size"] + [f"{t} parts (s)" for t in touched_levels], rows,
        title=f"Figure 2(b) — {n_updates} updates spread over 1..32 partitions "
              "(simulated seconds, cf. paper's log-scale plot)")
    latency = {f"b_{g}group_{t}touched": secs
               for g in group_sizes
               for t, secs in zip(touched_levels, results[g])}
    return table, results, latency, {"n_updates": n_updates,
                                     "group_sizes": list(group_sizes),
                                     "touched_levels": list(touched_levels)}


def run(cfg):
    table_a, _, latency_a, params_a = _run_a(cfg)
    table_b, _, latency_b, params_b = _run_b(cfg)
    return {
        "name": "fig02_partition_sensitivity",
        "params": {"a": params_a, "b": params_b},
        "texts": {"fig02a_partition_size": table_a,
                  "fig02b_inter_partition": table_b},
        "latency_s": {**latency_a, **latency_b},
    }


def test_fig02a_partition_size(benchmark, record_result):
    from benchmarks.harness import default_cfg
    table, results, _, params = _run_a(default_cfg())
    record_result("fig02a_partition_size", table)

    for total in params["totals"]:
        times = results[total]
        # Monotone: bigger partitions are slower.
        assert all(a < b for a, b in zip(times, times[1:])), times
        # And the effect is substantial (paper: ~5x from 1k to 8k).
        assert times[-1] / times[0] > 2.0

    benchmark(lambda: run_partition_size(8_000, 1000, 2_000))


def test_fig02b_inter_partition_access(benchmark, record_result):
    from benchmarks.harness import default_cfg
    table, results, _, params = _run_b(default_cfg())
    record_result("fig02b_inter_partition", table)

    for group_size in params["group_sizes"]:
        times = results[group_size]
        # More partitions touched ⇒ slower, by a large factor.
        assert times[0] < times[-1]
        assert times[-1] / times[0] > 3.0, times

    benchmark(lambda: run_inter_partition(1000, 32, 2_000))
