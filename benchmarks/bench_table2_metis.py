"""Table II — evaluation of the access-causality partitioning algorithm.

Paper: METIS 2-way partitions the largest connected component of each
application's ACG into approximately equal halves with a minimal cut —
Linux 62 331 vertices / 5 937 685 edges, cut 1.33%; Thrift 775 / 8 698,
cut 0.58%; Git 1 018 / 2 925, cut 29.4%.  Partitioning time is wall-clock
(the paper reports 35.37 s for Linux on their hardware).

The Linux graph is generated at 30% scale by default (REPRO_FULL=1 runs
the full 62 331-vertex graph; expect a few minutes of graph build +
partitioning).
"""

from __future__ import annotations

import time

from benchmarks.conftest import full_scale
from repro.core.metis import bisect
from repro.metrics.reporting import render_table
from repro.workloads.apps import (
    GIT_SPEC,
    LINUX_SPEC,
    THRIFT_SPEC,
    CompileApplication,
    scaled_spec,
)

PAPER = {
    "linux": dict(vertices=62331, edges=5937685, weight=6958560, cut_pct=1.33),
    "thrift": dict(vertices=775, edges=8698, weight=55454, cut_pct=0.58),
    "git": dict(vertices=1018, edges=2925, weight=4162, cut_pct=29.4),
}


def run_app(spec):
    app = CompileApplication(spec)
    graph = app.build_acg()
    largest = graph.connected_components()[0]
    adjacency = graph.subgraph(largest).undirected_adjacency()
    t0 = time.perf_counter()
    result = bisect(adjacency)
    elapsed = time.perf_counter() - t0
    return graph, result, elapsed


def _specs_for(linux_scale: float):
    return {
        "linux": LINUX_SPEC if linux_scale >= 1.0 else scaled_spec(LINUX_SPEC, linux_scale),
        "thrift": THRIFT_SPEC,
        "git": GIT_SPEC,
    }


def _sweep(specs):
    rows = []
    measured = {}
    for name, spec in specs.items():
        graph, result, elapsed = run_app(spec)
        measured[name] = (graph, result)
        scale_note = "" if spec.vertex_count == PAPER[name]["vertices"] else " (scaled)"
        rows.append([
            name + scale_note,
            graph.vertex_count,
            graph.edge_count,
            graph.total_weight,
            f"{elapsed:.3f}s",
            f"{len(result.side_a)}/{len(result.side_b)}",
            f"{result.cut_weight} ({100 * result.cut_fraction:.2f}%)",
        ])
        rows.append([
            f"  (paper)",
            PAPER[name]["vertices"],
            PAPER[name]["edges"],
            PAPER[name]["weight"],
            "35.37s" if name == "linux" else ("0.042s" if name == "thrift" else "0.018s"),
            "~equal",
            f"{PAPER[name]['cut_pct']}%",
        ])
    table = render_table(
        ["application", "vertices", "edges", "total weight",
         "partition time", "partition sizes", "cut (%)"],
        rows, title="Table II — ACG partitioning of the largest component")
    return table, measured


def run(cfg):
    specs = _specs_for(cfg.scale(0.1, 0.3, 1.0))
    table, measured = _sweep(specs)
    extra = {name: {"vertices": graph.vertex_count,
                    "cut_pct": 100 * result.cut_fraction,
                    "balance": result.balance}
             for name, (graph, result) in measured.items()}
    return {
        "name": "table2_metis",
        "params": {"linux_vertices": specs["linux"].vertex_count},
        "texts": {"table2_metis": table},
        "extra": extra,
    }


def test_table2_metis_partitioning(benchmark, record_result):
    specs = _specs_for(1.0 if full_scale() else 0.3)
    table, measured = _sweep(specs)
    record_result("table2_metis", table)

    # Thrift/Git run at exact paper scale: check the published shape.
    for name in ("thrift", "git"):
        graph, result = measured[name]
        assert graph.vertex_count == PAPER[name]["vertices"]
        assert abs(graph.edge_count - PAPER[name]["edges"]) / PAPER[name]["edges"] < 0.08
        assert result.balance <= 0.56                       # ~equal halves
    # Thrift's dense build graph cuts cleanly; Git's sparse one does not —
    # the paper's qualitative contrast (0.58% vs 29.4%).
    _, thrift_result = measured["thrift"]
    _, git_result = measured["git"]
    assert thrift_result.cut_fraction < 0.05
    assert git_result.cut_fraction > 5 * thrift_result.cut_fraction
    # Linux (scaled or full): balanced halves, single-digit cut.
    _, linux_result = measured["linux"]
    assert linux_result.balance <= 0.56
    assert linux_result.cut_fraction < 0.10

    benchmark(lambda: run_app(GIT_SPEC))
