"""Replication tail tolerance — hedged search legs and promotion failover.

Two figures of merit for the RF=2 replication subsystem:

* **Tail latency under stragglers** — one Index Node intermittently
  pays a large per-message latency tax (the classic p99-ruining shape:
  most messages fast, a few very slow).  The same search workload runs
  with hedged legs off and on; hedging should collapse the p99/p50
  ratio (the p50 barely moves — hedges only launch past the delay — but
  the tail is served by the straggler's followers).  Every answer, in
  both modes, must be byte-identical to an unpruned RF=1 oracle: a
  hedge may never trade correctness for latency.

* **Promotion vs checkpoint-adoption failover** — promotion is an epoch
  bump plus a dictionary move on an already-caught-up follower, so its
  cost stays flat as the dataset grows 10x; checkpoint adoption re-reads
  the victim's checkpoint from shared storage and scales with data
  volume.  The replay baseline is kept side by side.

The artifact's ``extra["p99_over_p50"]`` feeds the harness comparison
guard: a new run whose tail ratio grows past the threshold fails
``repro bench --compare`` even when mean latency looks fine.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from benchmarks.common import build_propeller, observe
from benchmarks.harness import BenchConfig, default_cfg
from repro.chaos.faults import FaultInjector
from repro.cluster import PropellerService
from repro.core.partitioner import PartitioningPolicy
from repro.fs.vfs import VirtualFileSystem
from repro.indexstructures import IndexKind
from repro.metrics.reporting import render_table

QUERY = "size>=0"
STRAGGLE_EXTRA_S = 0.25
STRAGGLE_PROBABILITY = 0.08
FAULT_SEED = 7
GROUP_SIZE = 10
SPLIT_THRESHOLD = 20

STANDARD_INDICES = (("by_size", IndexKind.BTREE, ["size"]),)


def _build_replicated(files: int, rf: int = 2, nodes: int = 3,
                      partitions_target: int = 0):
    """An indexed, replication-converged deployment (paths returned).

    ``partitions_target`` pins the approximate partition count
    regardless of ``files`` — the failover sweep uses it so 10x data
    growth means 10x *per-partition* volume, not 10x more partitions."""
    if partitions_target:
        cluster_target = max(GROUP_SIZE, files // partitions_target)
        split_threshold = 2 * cluster_target
    else:
        cluster_target, split_threshold = GROUP_SIZE, SPLIT_THRESHOLD
    service = observe(PropellerService(
        num_index_nodes=nodes, replication_factor=rf,
        policy=PartitioningPolicy(split_threshold=split_threshold,
                                  cluster_target=cluster_target)))
    client = service.make_client()
    for name, kind, attrs in STANDARD_INDICES:
        client.create_index(name, kind, attrs)
    vfs = service.vfs
    vfs.mkdir("/data")
    paths = []
    for i in range(files):
        path = f"/data/f{i:05d}.bin"
        vfs.write_file(path, 1024 * (i + 1), pid=1)
        paths.append(path)
    client.index_paths(paths, pid=1)
    client.flush_updates()
    service.advance(10.0)
    if rf > 1:
        service.sync_replication()
    client.prune_searches = False
    return service, client, paths


def _percentile(sorted_vals: List[float], p: float) -> float:
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, int(round(p * (len(sorted_vals) - 1))))
    return sorted_vals[idx]


def _tail_run(files: int, searches: int, hedging: bool
              ) -> Tuple[Dict[str, float], List[str], Dict[str, float]]:
    """One straggler workload: (percentiles, answer paths, counters)."""
    service, client, _ = _build_replicated(files)
    if client.hedging is not None:
        client.hedging.enabled = hedging
    # Warm the route cache (and its replica map) before injecting
    # faults, so both modes start from the same routing state.
    answer = sorted(client.search(QUERY))
    faults = FaultInjector(seed=FAULT_SEED, registry=service.registry)
    service.rpc.faults = faults
    straggler = sorted({p.node for p in service.master.partitions.partitions()
                        if p.node})[0]
    faults.slow_node(straggler, STRAGGLE_EXTRA_S,
                     probability=STRAGGLE_PROBABILITY)
    samples = []
    for _ in range(searches):
        span = service.clock.span()
        got = client.search(QUERY)
        samples.append(span.elapsed())
        assert sorted(got) == answer  # hedges never change the answer
    samples.sort()
    percentiles = {
        "p50": _percentile(samples, 0.50),
        "p95": _percentile(samples, 0.95),
        "p99": _percentile(samples, 0.99),
    }
    counters = {
        "hedges": service.registry.counter("cluster.client.hedges").value,
        "hedge_wins":
            service.registry.counter("cluster.client.hedge_wins").value,
    }
    return percentiles, answer, counters


def _oracle_paths(files: int) -> List[str]:
    """The unpruned single-owner answer the hedged modes must match."""
    service, client, _ = _build_replicated(files, rf=1)
    return sorted(client.search(QUERY))


FAILOVER_PARTITIONS = 12


def _failover_time(files: int, rf: int) -> float:
    """Virtual seconds one failover takes at the given RF.

    The partition count is pinned so growing ``files`` grows each
    partition's data (and its WAL/checkpoint) rather than the number of
    partitions being failed over."""
    service, client, _ = _build_replicated(
        files, rf=rf, partitions_target=FAILOVER_PARTITIONS)
    if rf == 1:
        # The adoption path restores from the victim's checkpoint.
        service._checkpoint_all()
    victim = sorted({p.node for p in service.master.partitions.partitions()
                     if p.node})[0]
    service.fail_node(victim)
    span = service.clock.span()
    service.failover(victim)
    return span.elapsed()


def _sweep(cfg: BenchConfig):
    files = cfg.scale(240, 600)
    searches = cfg.scale(80, 150)
    off, answer_off, _ = _tail_run(files, searches, hedging=False)
    on, answer_on, counters = _tail_run(files, searches, hedging=True)
    oracle = _oracle_paths(files)
    oracle_match = answer_off == oracle and answer_on == oracle
    ratios = {
        "hedging_off": off["p99"] / off["p50"] if off["p50"] else 0.0,
        "hedging_on": on["p99"] / on["p50"] if on["p50"] else 0.0,
    }

    base_files = cfg.scale(120, 200)
    grown_files = base_files * 10
    failover = {
        "promote_1x": _failover_time(base_files, rf=2),
        "promote_10x": _failover_time(grown_files, rf=2),
        "adopt_1x": _failover_time(base_files, rf=1),
        "adopt_10x": _failover_time(grown_files, rf=1),
    }

    rows = [
        ["hedging off", f"{off['p50'] * 1e3:.2f}", f"{off['p95'] * 1e3:.2f}",
         f"{off['p99'] * 1e3:.2f}", f"{ratios['hedging_off']:.1f}"],
        ["hedging on", f"{on['p50'] * 1e3:.2f}", f"{on['p95'] * 1e3:.2f}",
         f"{on['p99'] * 1e3:.2f}", f"{ratios['hedging_on']:.1f}"],
    ]
    table = render_table(
        ["mode", "p50 (ms)", "p95 (ms)", "p99 (ms)", "p99/p50"], rows,
        title=f"search tail under an intermittent straggler "
              f"({files} files, {searches} searches)")
    frows = [
        ["promotion (RF=2)", f"{failover['promote_1x'] * 1e3:.2f}",
         f"{failover['promote_10x'] * 1e3:.2f}",
         f"{failover['promote_10x'] / failover['promote_1x']:.2f}"],
        ["checkpoint adoption (RF=1)", f"{failover['adopt_1x'] * 1e3:.2f}",
         f"{failover['adopt_10x'] * 1e3:.2f}",
         f"{failover['adopt_10x'] / failover['adopt_1x']:.2f}"],
    ]
    ftable = render_table(
        ["failover path", f"{base_files} files (ms)",
         f"{grown_files} files (ms)", "growth"], frows,
        title="failover time vs data volume (10x growth)")
    text = table + "\n\n" + ftable
    return (off, on, ratios, oracle_match, counters, failover, text,
            files, searches, base_files, grown_files)


def run(cfg: BenchConfig):
    (off, on, ratios, oracle_match, counters, failover, text,
     files, searches, base_files, grown_files) = _sweep(cfg)
    latency = {
        "search_p50_hedging_off": off["p50"],
        "search_p99_hedging_off": off["p99"],
        "search_p50_hedging_on": on["p50"],
        "search_p99_hedging_on": on["p99"],
        **failover,
    }
    return {
        "name": "replication_tail",
        "params": {"files": files, "searches": searches,
                   "base_files": base_files, "grown_files": grown_files,
                   "straggle_extra_s": STRAGGLE_EXTRA_S,
                   "straggle_probability": STRAGGLE_PROBABILITY,
                   "query": QUERY},
        "texts": {"replication_tail": text},
        "latency_s": latency,
        "metrics": counters,
        "extra": {"p99_over_p50": ratios, "oracle_match": oracle_match},
    }


def test_hedging_collapses_tail_and_matches_oracle(record_result):
    cfg = default_cfg()
    (off, on, ratios, oracle_match, counters, failover, text,
     *_rest) = _sweep(cfg)
    record_result("replication_tail", text)
    # Hedged answers are byte-identical to the unpruned RF=1 oracle.
    assert oracle_match
    # Hedges actually launched and won against the straggler.
    assert counters["hedges"] > 0
    assert counters["hedge_wins"] > 0
    # The BENCH guard: hedging cuts the p99/p50 tail ratio >= 3x.
    assert ratios["hedging_off"] / ratios["hedging_on"] >= 3.0, ratios
    # Promotion time stays flat across 10x data growth while the replay
    # (checkpoint adoption) baseline grows with the data.
    assert failover["promote_10x"] < 2.0 * failover["promote_1x"], failover
    assert (failover["adopt_10x"] / failover["adopt_1x"]
            > failover["promote_10x"] / failover["promote_1x"]), failover
