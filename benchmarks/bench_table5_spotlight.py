"""Table V — Propeller vs Spotlight vs brute force on static namespaces.

Paper: query "find files larger than 16MB" repeated 60 times at 1-second
intervals on Dataset 1 (138K files, a fresh OS image) and Dataset 2
(487K files, OS image + a user's laptop snapshot); cold = first query
after clearing all caches, warm = average of the remaining 59.
Findings to reproduce:

* brute force: 100% recall, by far the slowest (cold or warm);
* Spotlight: fast but recall far below 100% (60.6% / 13.86% — its
  importer plug-ins skip most file types; Dataset 2's user files are
  mostly unsupported types);
* Propeller: 100% recall; slightly slower than Spotlight cold (it must
  page serialized per-group KD-trees in), but 14–22× faster warm.

Scale substitution: datasets at 1:10 (13.8k / 48.7k files) with per-node
RAM scaled to keep the cold/warm contrast; REPRO_FULL=1 uses full size.
"""

from __future__ import annotations

from typing import Dict, List

import pytest

from benchmarks.common import build_propeller
from benchmarks.conftest import full_scale
from repro.baselines.bruteforce import BruteForceSearcher
from repro.baselines.crawler import CrawlerConfig, CrawlerSearchEngine
from repro.metrics.recall import recall
from repro.metrics.reporting import format_duration, render_table
from repro.sim.events import EventLoop
from repro.sim.memory import PageCache
from repro.workloads.datasets import APP_TEMPLATES, populate_namespace

QUERY = "size>16m"
REPEATS = 60


def build_dataset(service, client, total_files: int, user_heavy: bool, seed: int):
    """Dataset 1 is an OS image (document-ish mix); Dataset 2 adds a user
    snapshot dominated by types desktop importers don't cover."""
    templates = None
    if user_heavy:
        templates = [APP_TEMPLATES["logs"], APP_TEMPLATES["linux-src"],
                     APP_TEMPLATES["firefox"]]
    paths = populate_namespace(service.vfs, total_files, templates=templates,
                               seed=seed)
    client.index_paths(paths, pid=1)
    client.flush_updates()
    service.commit_all()
    return paths


def measure_system(name: str, run_query, drop_caches) -> Dict[str, float]:
    drop_caches()
    cold_span_result = run_query()
    cold_time, cold_result = cold_span_result
    warm_times = []
    result = cold_result
    for _ in range(REPEATS - 1):
        t, result = run_query()
        warm_times.append(t)
    return {"cold": cold_time, "warm": sum(warm_times) / len(warm_times),
            "result": result}


def run_dataset(total_files: int, user_heavy: bool, seed: int):
    service, client, _ = build_propeller(num_index_nodes=1, single_node=True,
                                         ram_bytes=256 * 1024**2)
    build_dataset(service, client, total_files, user_heavy, seed)
    vfs = service.vfs
    clock = service.clock
    loop = EventLoop(clock)
    crawler = CrawlerSearchEngine(vfs, loop, CrawlerConfig(
        reindex_rate_fps=500.0))
    crawler.full_rebuild()
    from repro.sim.disk import DiskDevice
    scan_cache = PageCache(DiskDevice(clock), 2 * 1024**2)
    brute = BruteForceSearcher(vfs, page_cache=scan_cache)
    truth = sorted(p for p, i in vfs.namespace.files() if i.size > 16 * 1024**2)

    def timed(fn):
        def run():
            span = clock.span()
            result = fn()
            return span.elapsed(), result
        return run

    measurements = {}
    measurements["Brute-Force"] = measure_system(
        "Brute-Force", timed(lambda: brute.query(QUERY)),
        scan_cache.drop_all)
    measurements["Spotlight*"] = measure_system(
        "Spotlight*", timed(lambda: crawler.query(QUERY)), lambda: None)
    measurements["Propeller"] = measure_system(
        "Propeller", timed(lambda: client.search(QUERY)),
        service.drop_caches)
    for name, m in measurements.items():
        m["recall"] = 100.0 * recall(m.pop("result"), truth)
    return measurements


def _run(cfg):
    dataset1 = cfg.scale(3_000, 13_800, 138_000)
    dataset2 = cfg.scale(8_000, 48_700, 487_000)
    scale = 487_000 // dataset2
    d1 = run_dataset(dataset1, user_heavy=False, seed=1)
    d2 = run_dataset(dataset2, user_heavy=True, seed=2)

    rows = []
    for name in ("Brute-Force", "Spotlight*", "Propeller"):
        rows.append([
            name,
            format_duration(d1[name]["cold"]), format_duration(d1[name]["warm"]),
            f"{d1[name]['recall']:.1f}%",
            format_duration(d2[name]["cold"]), format_duration(d2[name]["warm"]),
            f"{d2[name]['recall']:.1f}%",
        ])
    table = render_table(
        ["system", "D1 cold", "D1 warm", "D1 recall",
         "D2 cold", "D2 warm", "D2 recall"],
        rows,
        title=f'Table V — "{QUERY}", Dataset 1 ({dataset1} files) and '
              f'Dataset 2 ({dataset2} files), scaled 1:{scale} '
              "(* = crawler analog)")
    return table, d1, d2, dataset1, dataset2


def run(cfg):
    table, d1, d2, dataset1, dataset2 = _run(cfg)
    latency = {}
    for tag, d in (("d1", d1), ("d2", d2)):
        for name, m in d.items():
            key = name.lower().rstrip("*").replace("-", "_")
            latency[f"{key}_{tag}_cold_s"] = m["cold"]
            latency[f"{key}_{tag}_warm_s"] = m["warm"]
    return {
        "name": "table5_spotlight",
        "params": {"dataset1": dataset1, "dataset2": dataset2,
                   "query": QUERY, "repeats": REPEATS},
        "texts": {"table5_spotlight": table},
        "latency_s": latency,
        "extra": {"recall_pct": {tag: {name: m["recall"] for name, m in d.items()}
                                 for tag, d in (("d1", d1), ("d2", d2))}},
    }


def test_table5_spotlight_comparison(benchmark, record_result):
    from benchmarks.harness import default_cfg
    table, d1, d2, _, _ = _run(default_cfg())
    record_result("table5_spotlight", table)

    for d in (d1, d2):
        # Recall: Propeller and brute force are exact; the crawler is not.
        assert d["Propeller"]["recall"] == 100.0
        assert d["Brute-Force"]["recall"] == 100.0
        assert d["Spotlight*"]["recall"] < 75.0
        # Brute force is the slowest; Propeller wins warm by a lot.
        assert d["Brute-Force"]["warm"] > d["Propeller"]["warm"]
        assert d["Spotlight*"]["warm"] / d["Propeller"]["warm"] > 5.0
    # Dataset 2 (user files, unsupported types) has much lower crawler
    # recall than Dataset 1 — the paper's 60.6% vs 13.86% contrast.
    assert d2["Spotlight*"]["recall"] < d1["Spotlight*"]["recall"]

    benchmark(lambda: run_dataset(3_000, user_heavy=False, seed=3))
