"""Figure 7 — the access-causality graph of compiling Thrift.

The paper compiles Thrift on the FUSE client and draws the resulting ACG:
775 source-file vertices forming (at least) two disjoint connected
components, each further divisible into balanced sub-graphs with a small
cut.  We rebuild the graph from the synthetic compile trace and report the
same structure.
"""

from __future__ import annotations

from repro.core.metis import bisect
from repro.metrics.reporting import render_table
from repro.workloads.apps import THRIFT_SPEC, CompileApplication


def build():
    return CompileApplication(THRIFT_SPEC).build_acg()


def _analyze(graph):
    components = graph.connected_components()
    rows = [
        ["vertices (files)", graph.vertex_count],
        ["directed edges", graph.edge_count],
        ["total edge weight", graph.total_weight],
        ["connected components", len(components)],
        ["component sizes", ", ".join(str(len(c)) for c in components)],
    ]
    # The blue circles in Figure 7: cutting each component in half.
    for i, component in enumerate(components):
        adjacency = graph.subgraph(component).undirected_adjacency()
        result = bisect(adjacency)
        rows.append([f"component {i} balanced cut",
                     f"cut={result.cut_weight} "
                     f"({100 * result.cut_fraction:.2f}% of weight), "
                     f"sides {len(result.side_a)}/{len(result.side_b)}"])
    table = render_table(["property", "value"], rows,
                         title="Figure 7 — ACG of compiling Thrift")
    return table, components


def run(cfg):
    graph = build()
    table, components = _analyze(graph)
    return {
        "name": "fig07_thrift_acg",
        "params": {"spec": THRIFT_SPEC.name},
        "texts": {"fig07_thrift_acg": table},
        "extra": {"vertices": graph.vertex_count,
                  "edges": graph.edge_count,
                  "components": [len(c) for c in components]},
    }


def test_fig07_thrift_acg(benchmark, record_result):
    graph = benchmark(build)
    table, components = _analyze(graph)
    record_result("fig07_thrift_acg", table)

    assert graph.vertex_count == 775
    assert len(components) == 2            # disjoint components, as drawn
    inter = graph.cut_weight(components[0])
    assert inter == 0                      # zero inter-component accesses
