"""Ablation — the paper's future work: an on-disk K-D tree layout.

Section V.E attributes most of Propeller's cold-query latency to loading
each group's *entire* serialized K-D tree into RAM, and predicts that a
specialized on-disk structure would cut the I/O dramatically.  We built
it (`indexstructures/kdtree_paged.py`): DFS-blocked pages so a range
query touches only its traversal frontier.

This bench compares cold-query cost per 1 000-file group:

* **serialized** (the prototype) — page in the whole tree, then query;
* **paged** — touch only the pages the traversal visits.
"""

from __future__ import annotations

import random

import pytest

from repro.indexstructures.kdtree_paged import PagedKDTree
from repro.metrics.reporting import format_duration, render_table
from repro.sim.clock import SimClock
from repro.sim.disk import DiskDevice
from repro.sim.memory import PAGE_SIZE, PageCache

GROUP_FILES = 1_000
N_GROUPS = 30
NODES_PER_PAGE = 64


def build_groups(seed=0, n_groups=N_GROUPS):
    rng = random.Random(seed)
    groups = []
    for g in range(n_groups):
        pairs = [((rng.uniform(0, 128 * 1024**2), rng.uniform(0, 1e6)), g * GROUP_FILES + i)
                 for i in range(GROUP_FILES)]
        groups.append(pairs)
    return groups


def cold_query_serialized(groups, lows, highs):
    """Prototype behaviour: load every group's whole tree, then query."""
    clock = SimClock()
    disk = DiskDevice(clock)
    cache = PageCache(disk, 64 * 1024**2)
    results = 0
    for g, pairs in enumerate(groups):
        tree = PagedKDTree.bulk_load(2, pairs, nodes_per_page=NODES_PER_PAGE)
        # Cold load = every page of the serialized tree.
        for page in range(tree.page_count):
            cache.touch(f"g{g}", page)
        results += sum(1 for _ in tree.range(lows, highs))
    return clock.now(), results


def cold_query_paged(groups, lows, highs):
    """Future-work behaviour: touch only the pages the traversal visits."""
    clock = SimClock()
    disk = DiskDevice(clock)
    cache = PageCache(disk, 64 * 1024**2)
    results = 0
    for g, pairs in enumerate(groups):
        tree = PagedKDTree.bulk_load(
            2, pairs, nodes_per_page=NODES_PER_PAGE,
            page_hook=lambda page, w, g=g: cache.touch(f"g{g}", page))
        results += sum(1 for _ in tree.range(lows, highs))
    return clock.now(), results


def _run(n_groups: int):
    groups = build_groups(n_groups=n_groups)
    # "size > 120MB & mtime < 50k" — selective on both axes, the shape
    # Table III's Query #1 has.
    lows = (120 * 1024**2, None)
    highs = (None, 5e4)
    serialized_time, hits_a = cold_query_serialized(groups, lows, highs)
    paged_time, hits_b = cold_query_paged(groups, lows, highs)
    assert hits_a == hits_b        # same answers

    rows = [
        ["serialized (prototype)", format_duration(serialized_time)],
        ["paged / DFS-blocked", format_duration(paged_time)],
        ["speedup", f"{serialized_time / paged_time:.1f}x"],
    ]
    table = render_table(
        ["on-disk KD layout", "cold selective query (sim)"],
        rows,
        title=f"Ablation — future-work on-disk KD-tree ({n_groups} groups x "
              f"{GROUP_FILES} files, cold caches)")
    return table, serialized_time, paged_time, groups, lows, highs


def run(cfg):
    n_groups = cfg.scale(8, N_GROUPS)
    table, serialized_time, paged_time, _, _, _ = _run(n_groups)
    return {
        "name": "ablation_paged_kdtree",
        "params": {"n_groups": n_groups, "group_files": GROUP_FILES},
        "texts": {"ablation_paged_kdtree": table},
        "latency_s": {"serialized_cold_s": serialized_time,
                      "paged_cold_s": paged_time},
        "extra": {"speedup": serialized_time / paged_time},
    }


def test_ablation_paged_kdtree(benchmark, record_result):
    table, serialized_time, paged_time, groups, lows, highs = _run(N_GROUPS)
    record_result("ablation_paged_kdtree", table)

    # The paper predicted a dramatic improvement; demand at least 2x.
    assert serialized_time / paged_time > 2.0

    benchmark(lambda: cold_query_paged(groups[:5], lows, highs))
