"""Figure 11 — query recall and latency on a dynamic namespace.

Paper: import an Ubuntu snapshot (89K files) into Dataset 1, then copy
files in at 1/2/5 FPS while issuing the query "find files larger than
16MB" continuously for 10 minutes.  Findings to reproduce:

* Propeller's recall is 100% at every point, at every FPS;
* Spotlight's recall tops out below 100% (82% in the paper) and dips
  during re-index passes;
* Propeller's average query latency (~3.1 ms) is about 9× lower than
  Spotlight's (~28.5 ms).

Scale substitution: snapshot at 1:10 (8.9k files); virtual 10 minutes.

The instrumented harness run tracks index freshness on both sides with
two separate trackers (stamps are keyed by inode, so the real-time path
and the crawler each need their own pending map) over one shared metrics
registry — the staleness CDF contrast behind Figure 1 and Figure 11.
"""

from __future__ import annotations

from typing import Dict, Tuple

import pytest

from benchmarks.common import build_propeller
from benchmarks.harness import BenchConfig, default_cfg
from repro.baselines.crawler import CrawlerConfig, CrawlerSearchEngine
from repro.metrics.recall import recall
from repro.metrics.reporting import format_duration, render_table
from repro.metrics.stats import LatencyCollector, TimeSeries
from repro.obs.freshness import FreshnessTracker
from repro.sim.events import EventLoop
from repro.workloads.datasets import populate_namespace

QUERY = "size>16m"
DURATION_S = 600.0
QUERY_PERIOD_S = 5.0
FPS_LEVELS = (1.0, 2.0, 5.0)
TIMELINE_INTERVAL_S = 5.0


def run_fps(fps: float, snapshot_files: int,
            duration_s: float = DURATION_S,
            instrument: bool = False) -> Dict[str, object]:
    service, client, paths = build_propeller(num_index_nodes=1,
                                             single_node=True)
    vfs, clock = service.vfs, service.clock
    loop = EventLoop(clock)
    crawler_freshness = (FreshnessTracker(service.registry)
                         if instrument else None)
    crawler_kwargs = {}
    if crawler_freshness is not None:
        crawler_kwargs = dict(freshness=crawler_freshness,
                              freshness_node=f"crawler_{fps:g}fps")
    crawler = CrawlerSearchEngine(vfs, loop, CrawlerConfig(
        reindex_rate_fps=100.0, pass_trigger_dirty=32), **crawler_kwargs)
    snapshot = populate_namespace(vfs, snapshot_files, seed=4)
    client.index_paths(snapshot, pid=1)
    client.flush_updates()
    crawler.full_rebuild()
    if instrument:
        # Enabled only after the bulk import so the staleness histograms
        # cover the incremental copies, not the initial load.
        service.enable_timeline(interval_s=TIMELINE_INTERVAL_S)
        service.enable_freshness()

    pp_recall, sl_recall = TimeSeries("PP"), TimeSeries("SL")
    # Bounded reservoirs: queries arrive for the whole simulated run and
    # only summaries are reported.
    pp_latency = LatencyCollector("PP", max_samples=4096)
    sl_latency = LatencyCollector("SL", max_samples=4096)
    copied, start = 0, clock.now()
    vfs.mkdir("/incoming")
    while clock.now() - start < duration_s:
        loop.run_until(clock.now() + QUERY_PERIOD_S)
        while copied / fps <= clock.now() - start:
            size = 64 * 1024**2 if copied % 4 == 0 else 8192
            ext = ("txt", "so", "log", "png")[copied % 4]
            path = f"/incoming/c{copied:06d}.{ext}"
            vfs.write_file(path, size, pid=9)
            client.index_path(path, pid=9)   # inline indexing
            copied += 1
        truth = [p for p, i in vfs.namespace.files() if i.size > 16 * 1024**2]
        t = clock.now() - start
        span = clock.span()
        pp_result = client.search(QUERY)
        pp_latency.add(span.elapsed())
        pp_recall.add(t, 100.0 * recall(pp_result, truth))
        span = clock.span()
        sl_result = crawler.query(QUERY)
        sl_latency.add(span.elapsed())
        sl_recall.add(t, 100.0 * recall(sl_result, truth))
        service.timeline.sample_if_due()
    return {"pp_recall": pp_recall, "sl_recall": sl_recall,
            "pp_latency": pp_latency, "sl_latency": sl_latency,
            "service": service, "crawler_freshness": crawler_freshness}


def _render(runs, snapshot_files: int, duration_s: float):
    rows = []
    for fps, r in runs.items():
        rows.append([
            f"{fps:g} FPS",
            f"{r['pp_recall'].minimum():.1f}/{r['pp_recall'].mean():.1f}",
            f"{r['sl_recall'].minimum():.1f}/{r['sl_recall'].mean():.1f}",
            format_duration(r["pp_latency"].mean()),
            format_duration(r["sl_latency"].mean()),
            f"{r['sl_latency'].mean() / r['pp_latency'].mean():.1f}x",
        ])
    table = render_table(
        ["load", "PP recall min/mean %", "SL recall min/mean %",
         "PP latency", "SL latency", "latency ratio"],
        rows,
        title=f'Figure 11 — dynamic namespace ({snapshot_files} files + '
              f'copies, query "{QUERY}" every {QUERY_PERIOD_S:.0f}s for '
              f"{duration_s:.0f}s; PP=Propeller, SL=crawler analog)")
    from repro.metrics.reporting import render_series
    series_text = "\n\n".join(
        render_series(f"SL recall @ {fps:g} FPS",
                      r["sl_recall"].points[::6], "t (s)", "recall %")
        for fps, r in runs.items())
    return table + "\n\n" + series_text


def _merge_staleness(summaries):
    merged = {"worst_s": 0.0, "pending": 0, "dropped": 0, "nodes": {}}
    for summary in summaries:
        if not summary:
            continue
        merged["worst_s"] = max(merged["worst_s"], summary["worst_s"])
        merged["pending"] += summary["pending"]
        merged["dropped"] += summary["dropped"]
        merged["nodes"].update(summary["nodes"])
    return merged


def run(cfg: BenchConfig):
    snapshot_files = cfg.scale(1_000, 8_900, 89_000)
    duration_s = cfg.scale(120.0, DURATION_S)
    fps_levels = cfg.scale((2.0,), FPS_LEVELS)
    runs = {fps: run_fps(fps, snapshot_files, duration_s,
                         instrument=cfg.instrument)
            for fps in fps_levels}

    latency, series, staleness_parts = {}, {}, []
    for fps, r in runs.items():
        latency[f"pp_latency_mean_s_{fps:g}fps"] = r["pp_latency"].mean()
        latency[f"sl_latency_mean_s_{fps:g}fps"] = r["sl_latency"].mean()
        series[f"pp_recall_{fps:g}fps"] = [list(p) for p in r["pp_recall"].points]
        series[f"sl_recall_{fps:g}fps"] = [list(p) for p in r["sl_recall"].points]
        service = r["service"]
        if service.timeline.enabled:
            for name, points in service.timeline.to_dict()["series"].items():
                series[f"{name}_{fps:g}fps"] = points
        if service.freshness.enabled:
            staleness_parts.append(service.freshness.summary())
        if r["crawler_freshness"] is not None:
            staleness_parts.append(r["crawler_freshness"].summary())
    return {
        "name": "fig11_dynamic_namespace",
        "params": {"snapshot_files": snapshot_files, "duration_s": duration_s,
                   "fps_levels": list(fps_levels), "query": QUERY},
        "texts": {"fig11_dynamic_namespace":
                  _render(runs, snapshot_files, duration_s)},
        "latency_s": latency,
        "series": series,
        "staleness": _merge_staleness(staleness_parts),
        "extra": {"mean_recall": {f"{fps:g}": {"pp": r["pp_recall"].mean(),
                                               "sl": r["sl_recall"].mean()}
                                  for fps, r in runs.items()}},
    }


def test_fig11_dynamic_namespace(benchmark, record_result):
    cfg = default_cfg(instrument=False)
    snapshot_files = cfg.scale(1_000, 8_900, 89_000)
    runs = {fps: run_fps(fps, snapshot_files) for fps in FPS_LEVELS}
    record_result("fig11_dynamic_namespace",
                  _render(runs, snapshot_files, DURATION_S))

    for fps, r in runs.items():
        # Propeller: recall is 100% at every sampled point.
        assert r["pp_recall"].minimum() == 100.0
        # Crawler: mean recall below 100%, dips under load.
        assert r["sl_recall"].mean() < 100.0
        # Propeller answers much faster (paper: ~9x).
        assert r["sl_latency"].mean() / r["pp_latency"].mean() > 3.0

    benchmark(lambda: run_fps(5.0, 1_000))
