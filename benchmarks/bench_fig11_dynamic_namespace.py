"""Figure 11 — query recall and latency on a dynamic namespace.

Paper: import an Ubuntu snapshot (89K files) into Dataset 1, then copy
files in at 1/2/5 FPS while issuing the query "find files larger than
16MB" continuously for 10 minutes.  Findings to reproduce:

* Propeller's recall is 100% at every point, at every FPS;
* Spotlight's recall tops out below 100% (82% in the paper) and dips
  during re-index passes;
* Propeller's average query latency (~3.1 ms) is about 9× lower than
  Spotlight's (~28.5 ms).

Scale substitution: snapshot at 1:10 (8.9k files); virtual 10 minutes.
"""

from __future__ import annotations

from typing import Dict, Tuple

import pytest

from benchmarks.common import build_propeller
from benchmarks.conftest import full_scale
from repro.baselines.crawler import CrawlerConfig, CrawlerSearchEngine
from repro.metrics.recall import recall
from repro.metrics.reporting import format_duration, render_table
from repro.metrics.stats import LatencyCollector, TimeSeries
from repro.sim.events import EventLoop
from repro.workloads.datasets import populate_namespace

QUERY = "size>16m"
DURATION_S = 600.0
QUERY_PERIOD_S = 5.0
FPS_LEVELS = (1.0, 2.0, 5.0)


def run_fps(fps: float, snapshot_files: int) -> Dict[str, object]:
    service, client, paths = build_propeller(num_index_nodes=1,
                                             single_node=True)
    vfs, clock = service.vfs, service.clock
    loop = EventLoop(clock)
    crawler = CrawlerSearchEngine(vfs, loop, CrawlerConfig(
        reindex_rate_fps=100.0, pass_trigger_dirty=32))
    snapshot = populate_namespace(vfs, snapshot_files, seed=4)
    client.index_paths(snapshot, pid=1)
    client.flush_updates()
    crawler.full_rebuild()

    pp_recall, sl_recall = TimeSeries("PP"), TimeSeries("SL")
    # Bounded reservoirs: queries arrive for the whole simulated run and
    # only summaries are reported.
    pp_latency = LatencyCollector("PP", max_samples=4096)
    sl_latency = LatencyCollector("SL", max_samples=4096)
    copied, start = 0, clock.now()
    vfs.mkdir("/incoming")
    while clock.now() - start < DURATION_S:
        loop.run_until(clock.now() + QUERY_PERIOD_S)
        while copied / fps <= clock.now() - start:
            size = 64 * 1024**2 if copied % 4 == 0 else 8192
            ext = ("txt", "so", "log", "png")[copied % 4]
            path = f"/incoming/c{copied:06d}.{ext}"
            vfs.write_file(path, size, pid=9)
            client.index_path(path, pid=9)   # inline indexing
            copied += 1
        truth = [p for p, i in vfs.namespace.files() if i.size > 16 * 1024**2]
        t = clock.now() - start
        span = clock.span()
        pp_result = client.search(QUERY)
        pp_latency.add(span.elapsed())
        pp_recall.add(t, 100.0 * recall(pp_result, truth))
        span = clock.span()
        sl_result = crawler.query(QUERY)
        sl_latency.add(span.elapsed())
        sl_recall.add(t, 100.0 * recall(sl_result, truth))
    return {"pp_recall": pp_recall, "sl_recall": sl_recall,
            "pp_latency": pp_latency, "sl_latency": sl_latency}


def test_fig11_dynamic_namespace(benchmark, record_result):
    snapshot_files = 89_000 // (1 if full_scale() else 10)
    runs = {fps: run_fps(fps, snapshot_files) for fps in FPS_LEVELS}

    rows = []
    for fps, r in runs.items():
        rows.append([
            f"{fps:g} FPS",
            f"{r['pp_recall'].minimum():.1f}/{r['pp_recall'].mean():.1f}",
            f"{r['sl_recall'].minimum():.1f}/{r['sl_recall'].mean():.1f}",
            format_duration(r["pp_latency"].mean()),
            format_duration(r["sl_latency"].mean()),
            f"{r['sl_latency'].mean() / r['pp_latency'].mean():.1f}x",
        ])
    table = render_table(
        ["load", "PP recall min/mean %", "SL recall min/mean %",
         "PP latency", "SL latency", "latency ratio"],
        rows,
        title=f'Figure 11 — dynamic namespace ({snapshot_files} files + '
              f'copies, query "{QUERY}" every {QUERY_PERIOD_S:.0f}s for '
              f"{DURATION_S:.0f}s; PP=Propeller, SL=crawler analog)")
    from repro.metrics.reporting import render_series
    series_text = "\n\n".join(
        render_series(f"SL recall @ {fps:g} FPS",
                      r["sl_recall"].points[::6], "t (s)", "recall %")
        for fps, r in runs.items())
    record_result("fig11_dynamic_namespace", table + "\n\n" + series_text)

    for fps, r in runs.items():
        # Propeller: recall is 100% at every sampled point.
        assert r["pp_recall"].minimum() == 100.0
        # Crawler: mean recall below 100%, dips under load.
        assert r["sl_recall"].mean() < 100.0
        # Propeller answers much faster (paper: ~9x).
        assert r["sl_latency"].mean() / r["pp_latency"].mean() > 3.0

    benchmark(lambda: run_fps(5.0, 1_000))
