"""Table VI — PostMark raw-I/O results across file systems.

Paper: PostMark creates 50 000 files under 200 subdirectories on each of
Ext4, Btrfs, PTFS (pass-through FUSE), NTFS-3g, ZFS-fuse and Propeller.
Findings to reproduce:

* native file systems are fastest (Ext4 ≫ everything FUSE-based);
* Propeller costs ≈2.4× the pass-through FUSE baseline because it runs
  inline indexing on the I/O path;
* Propeller remains comparable to the other *functional* FUSE file
  systems (NTFS-3g, ZFS-fuse).

The non-Propeller rows use cost profiles calibrated to the published
numbers; the Propeller row is PTFS's profile plus our actual
inline-indexing path (coalesced update envelopes + group-commit WAL +
cache on a single-node service), so the overhead ratio is measured, not
encoded.  Client-side routing and envelope batching land it well under
the paper's 2.4× — see the prose note in benchmarks/results.
"""

from __future__ import annotations

import pytest

from benchmarks.common import build_propeller
from benchmarks.conftest import full_scale
from repro.fs.passthrough import PROFILES, ProfiledFS
from repro.fs.vfs import VirtualFileSystem
from repro.metrics.reporting import render_table
from repro.sim.clock import SimClock
from repro.workloads.postmark import PostMarkConfig, run_postmark

PAPER_RATES = {"ext4": 16747, "btrfs": 5582, "ptfs": 6289,
               "ntfs-3g": 2392, "zfs-fuse": 2093, "propeller": 2644}


def run_plain(profile: str, config: PostMarkConfig):
    vfs = VirtualFileSystem(SimClock())
    return run_postmark(ProfiledFS(vfs, PROFILES[profile]), config)


def run_propeller(config: PostMarkConfig):
    service, client, _ = build_propeller(num_index_nodes=1, single_node=True)
    # The group-commit feed: every change is queued on the I/O path the
    # instant it happens, but rides a coalesced per-ACG envelope (size/
    # age-bounded) instead of paying one ~50 µs loopback RPC per file —
    # the batched hot path this table measures the cost of.
    client.batch_size = 32

    def index_hook(path, inode):
        if service.vfs.exists(path):
            client.index_path(path, pid=1)
        else:
            client.delete_path_index(inode.ino)

    pfs = ProfiledFS(service.vfs, PROFILES["ptfs"], index_hook=index_hook)
    return run_postmark(pfs, config)


def _run(cfg):
    config = cfg.scale(
        PostMarkConfig(files=2_000, subdirs=200, transactions=800),
        PostMarkConfig(files=8_000, subdirs=200, transactions=3_000),
        PostMarkConfig(files=50_000, subdirs=200, transactions=20_000))
    reports = {name: run_plain(name, config)
               for name in ("ext4", "btrfs", "ptfs", "ntfs-3g", "zfs-fuse")}
    reports["propeller"] = run_propeller(config)

    rows = []
    for name, report in reports.items():
        rows.append([
            name,
            f"{report.files_created_per_second:.0f}",
            f"{PAPER_RATES[name]}",
            f"{report.read_throughput / 1024:.0f} KB/s",
            f"{report.write_throughput / 1024**2:.1f} MB/s",
            f"{report.total_seconds:.1f}",
        ])
    table = render_table(
        ["file system", "creates/s (measured)", "creates/s (paper)",
         "read tput", "write tput", "total (sim s)"],
        rows,
        title=f"Table VI — PostMark ({config.files} files, "
              f"{config.subdirs} subdirs, {config.transactions} transactions)")
    return table, reports, config


def run(cfg):
    table, reports, config = _run(cfg)
    return {
        "name": "table6_postmark",
        "params": {"files": config.files, "subdirs": config.subdirs,
                   "transactions": config.transactions},
        "texts": {"table6_postmark": table},
        "latency_s": {f"{name}_total_s": report.total_seconds
                      for name, report in reports.items()},
        "extra": {"creates_per_s": {name: report.files_created_per_second
                                    for name, report in reports.items()},
                  "paper_creates_per_s": PAPER_RATES},
    }


def test_table6_postmark(benchmark, record_result):
    from benchmarks.harness import default_cfg
    table, reports, _ = _run(default_cfg())
    record_result("table6_postmark", table)

    rates = {name: r.files_created_per_second for name, r in reports.items()}
    # Native beats FUSE; PTFS beats functional FUSE file systems.
    assert rates["ext4"] > rates["btrfs"]
    assert rates["ext4"] > rates["ptfs"] > rates["ntfs-3g"] > rates["zfs-fuse"]
    # Propeller's inline indexing costs over PTFS.  The paper's
    # prototype measured 2.37x, paying a Master route RPC per update;
    # the epoch-versioned route cache took that to ~1.3x (one loopback
    # RPC per update), and the batched hot path — coalesced envelopes
    # feeding a group-commit WAL — amortizes that last RPC across the
    # envelope, leaving ~1.03x: above pass-through (indexing is never
    # free), far under the paper's ratio.
    slowdown = reports["ptfs"].total_seconds and \
        (rates["ptfs"] / rates["propeller"])
    assert 1.0 < slowdown < 2.0, slowdown
    # ...while staying in the same league as NTFS-3g / ZFS-fuse.
    assert rates["propeller"] > 0.5 * rates["ntfs-3g"]

    small = PostMarkConfig(files=500, subdirs=20, transactions=100)
    benchmark(lambda: run_plain("ext4", small))
