"""Shared builders for the benchmark suite."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.baselines.sqldb import MiniSQL
from repro.cluster import PropellerClient, PropellerService
from repro.core.partitioner import PartitioningPolicy
from repro.indexstructures import IndexKind
from repro.sim.clock import SimClock
from repro.sim.machine import Machine, MachineSpec
from repro.workloads.datasets import populate_namespace

STANDARD_INDICES = [
    ("by_size", IndexKind.BTREE, ["size"]),
    ("by_mtime", IndexKind.BTREE, ["mtime"]),
    ("by_kw", IndexKind.HASH, ["keyword"]),
]

# Services built during the current bench run, oldest first.  The
# harness resets this before each bench and embeds the last service's
# SLO summary + journal digest into the artifact envelope, so every
# BENCH_*.json carries the observability sections without each bench
# threading its service out to the return statement.
_OBSERVED: List[PropellerService] = []


def reset_observed() -> None:
    """Forget services built by previous benches (harness calls this)."""
    _OBSERVED.clear()


def observe(service: PropellerService) -> PropellerService:
    """Register a hand-built deployment for the artifact's obs sections
    (benches that construct ``PropellerService`` directly call this)."""
    _OBSERVED.append(service)
    return service


def obs_sections(service: Optional[PropellerService] = None,
                 ) -> Dict[str, Dict[str, Any]]:
    """The ``slo`` / ``journal`` artifact sections for one deployment.

    With no explicit service, uses the one most recently built via
    :func:`build_propeller` — for sweep benches that is the largest
    configuration, the one whose tail behaviour the bench reports.
    Returns empty sections when no cluster was built (baseline-only
    benches)."""
    if service is None:
        service = _OBSERVED[-1] if _OBSERVED else None
    if service is None:
        return {"slo": {}, "journal": {}}
    service.slos.sample_if_due()
    return {"slo": service.slos.summary(),
            "journal": service.journal.digest()}


def build_propeller(num_index_nodes: int = 1, total_files: int = 0,
                    group_size: int = 1000, ram_bytes: int = 4 * 1024**3,
                    single_node: bool = False, seed: int = 0,
                    ) -> Tuple[PropellerService, PropellerClient, List[str]]:
    """A Propeller deployment with the standard indices, optionally
    pre-loaded with a generated namespace grouped into ``group_size``
    partitions (the paper's 1000-file groups)."""
    service = PropellerService(
        num_index_nodes=num_index_nodes,
        spec=MachineSpec(ram_bytes=ram_bytes),
        policy=PartitioningPolicy(split_threshold=group_size * 50,
                                  cluster_target=group_size),
        single_node=single_node,
    )
    client = service.make_client(batch_size=128)
    for name, kind, attrs in STANDARD_INDICES:
        client.create_index(name, kind, attrs)
    paths: List[str] = []
    if total_files:
        paths = populate_namespace(service.vfs, total_files, seed=seed)
        client.index_paths(paths, pid=1)
        client.flush_updates()
        service.commit_all()
    _OBSERVED.append(service)
    return service, client, paths


def build_minisql(total_files: int = 0, buffer_pool_bytes: int = 2 * 1024**3,
                  seed: int = 0, btree_order: int = 64,
                  indexed_attrs=("size", "mtime"),
                  ) -> Tuple[MiniSQL, "Machine", List[str]]:
    """A MiniSQL instance pre-loaded with the same generated namespace."""
    from repro.fs.vfs import VirtualFileSystem

    machine = Machine(SimClock())
    db = MiniSQL(machine, buffer_pool_bytes=buffer_pool_bytes,
                 btree_order=btree_order, indexed_attrs=indexed_attrs)
    paths: List[str] = []
    if total_files:
        vfs = VirtualFileSystem(machine.clock)
        paths = populate_namespace(vfs, total_files, seed=seed)
        for path in paths:
            inode = vfs.stat(path)
            db.insert_file(inode.ino, {"size": inode.size, "mtime": inode.mtime},
                           path=path)
        db.flush()
    return db, machine, paths
