"""Table I — common files accessed by executions of different programs.

Paper numbers: apt-get 279 files, Firefox 2 279, OpenOffice 2 696, Linux
kernel build 19 715; pairwise overlaps of 0.15%–22.2% — file accesses are
highly application-oriented and application-isolated, which is why
application-induced ACGs partition well.
"""

from __future__ import annotations

from repro.metrics.reporting import render_table
from repro.workloads.apps import (
    TABLE1_OVERLAPS,
    TABLE1_TOTALS,
    table1_file_sets,
    table1_overlap_matrix,
)


def _render(sets) -> str:
    rows = table1_overlap_matrix(sets)
    header = ["program"] + list(TABLE1_TOTALS)
    accessed = ["accessed files"] + [str(TABLE1_TOTALS[a]) for a in TABLE1_TOTALS]
    return render_table(header, [accessed] + rows,
                        title="Table I — common files accessed by executions "
                              "of different programs")


def run(cfg):
    sets = table1_file_sets()
    return {
        "name": "table1_app_overlap",
        "texts": {"table1_app_overlap": _render(sets)},
        "extra": {"totals": {name: len(s) for name, s in sets.items()}},
    }


def test_table1_app_overlap(benchmark, record_result):
    sets = benchmark(table1_file_sets)
    table = _render(sets)
    record_result("table1_app_overlap", table)

    # Totals and overlaps are the paper's numbers exactly.
    for name, total in TABLE1_TOTALS.items():
        assert len(sets[name]) == total
    for pair, count in TABLE1_OVERLAPS.items():
        a, b = sorted(pair)
        assert len(sets[a] & sets[b]) == count
    # The paper's takeaway: any two applications share very few files.
    for pair in TABLE1_OVERLAPS:
        a, b = sorted(pair)
        shared = len(sets[a] & sets[b])
        assert shared / min(len(sets[a]), len(sets[b])) < 0.25
