"""Ablation — multilevel (METIS-style) vs spectral vs random bisection.

The paper picks METIS for splitting oversized ACGs because it reliably
produces near-equal halves with a small cut.  This ablation compares the
three partitioners on the Thrift and Git ACG components and on a planted
two-community graph: cut weight, balance, and wall-clock time.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.core.metis import bisect, random_bisect
from repro.core.metis import BisectionResult, cut_of, total_edge_weight
from repro.core.spectral import spectral_bisect
from repro.core.streaming import streaming_partition
from repro.metrics.reporting import render_table
from repro.workloads.apps import GIT_SPEC, THRIFT_SPEC, CompileApplication


def planted_partition(n=400, p_in=0.2, p_out=0.004, seed=3):
    rng = random.Random(seed)
    adj = {i: {} for i in range(n)}
    for i in range(n):
        for j in range(i + 1, n):
            same = (i < n // 2) == (j < n // 2)
            if rng.random() < (p_in if same else p_out):
                adj[i][j] = 1
                adj[j][i] = 1
    return adj


def graphs():
    out = {}
    for spec in (THRIFT_SPEC, GIT_SPEC):
        graph = CompileApplication(spec).build_acg()
        component = graph.connected_components()[0]
        out[spec.name] = graph.subgraph(component).undirected_adjacency()
    out["planted"] = planted_partition()
    return out


def streaming_bisect(adjacency):
    """The online (LDG) alternative, wrapped as a 2-way result."""
    partitioner = streaming_partition(adjacency, 2)
    side_a = set(partitioner.partitions[0])
    return BisectionResult(side_a, set(adjacency) - side_a,
                           cut_of(adjacency, side_a),
                           total_edge_weight(adjacency))


METHODS = (("multilevel", bisect),
           ("spectral", spectral_bisect),
           ("streaming-LDG", streaming_bisect),
           ("random", random_bisect))


def _run():
    rows = []
    measured = {}
    for graph_name, adjacency in graphs().items():
        for method_name, method in METHODS:
            t0 = time.perf_counter()
            result = method(adjacency)
            elapsed = time.perf_counter() - t0
            measured[(graph_name, method_name)] = result
            rows.append([graph_name, method_name, result.cut_weight,
                         f"{100 * result.cut_fraction:.2f}%",
                         f"{result.balance:.3f}", f"{elapsed * 1000:.1f}ms"])
    table = render_table(
        ["graph", "method", "cut", "cut %", "balance", "time"],
        rows, title="Ablation — 2-way partitioner quality and speed")
    return table, measured


def run(cfg):
    table, measured = _run()
    # Wall-clock partition times are nondeterministic, so nothing goes in
    # latency_s; the deterministic cut quality goes in extra.
    return {
        "name": "ablation_bisect",
        "texts": {"ablation_bisect": table},
        "extra": {f"{g}:{m}": {"cut": result.cut_weight,
                               "balance": result.balance}
                  for (g, m), result in measured.items()},
    }


def test_ablation_bisection_methods(benchmark, record_result):
    table, measured = _run()
    record_result("ablation_bisect", table)

    for graph_name in ("thrift", "git", "planted"):
        multilevel = measured[(graph_name, "multilevel")]
        rand = measured[(graph_name, "random")]
        # The structured methods beat random bisection on every graph.
        assert multilevel.cut_weight < rand.cut_weight
        # And stay balanced.
        assert multilevel.balance <= 0.56
    # On the planted two-community graph both principled methods find the
    # planted cut region (far below random).
    planted_ml = measured[("planted", "multilevel")]
    planted_sp = measured[("planted", "spectral")]
    planted_rand = measured[("planted", "random")]
    assert planted_ml.cut_weight < 0.3 * planted_rand.cut_weight
    assert planted_sp.cut_weight < 0.5 * planted_rand.cut_weight

    small = planted_partition(n=120)
    benchmark(lambda: bisect(small))
