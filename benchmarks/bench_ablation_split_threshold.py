"""Ablation — the split-threshold tradeoff (DESIGN.md §4.4).

The paper picks 50 000 files as the scale at which an ACG gets cut in
two.  The threshold trades update locality against search fan-out:

* **too large** — partitions grow, every inline update pays for a bigger
  index (the Figure 2(a) effect);
* **too small** — the namespace shatters into many partitions, so every
  *search* touches more of them and placement loses causality (more
  cross-partition edges cut).

This sweep replays the same compile workload under thresholds from 50 to
3200 and reports partitions created, mean update cost and mean search
cost (simulated).
"""

from __future__ import annotations

import pytest

from benchmarks.common import STANDARD_INDICES, observe
from repro.cluster import PropellerService
from repro.core.partitioner import PartitioningPolicy
from repro.indexstructures import IndexKind
from repro.metrics.reporting import format_duration, render_table
from repro.workloads.apps import THRIFT_SPEC, CompileApplication, scaled_spec
from repro.workloads.replay import replay_trace

THRESHOLDS = (50, 200, 800, 3200)


def run_threshold(threshold: int, thrift_scale: float = 0.5):
    service = observe(PropellerService(
        num_index_nodes=4,
        policy=PartitioningPolicy(split_threshold=threshold,
                                  cluster_target=min(threshold, 100))))
    client = service.make_client()
    for name, kind, attrs in STANDARD_INDICES:
        client.create_index(name, kind, attrs)
    app = CompileApplication(scaled_spec(THRIFT_SPEC, thrift_scale))
    span = service.clock.span()
    stats = replay_trace(service, client, app.trace(), app.path_of)
    service.master.poll_heartbeats()   # trigger any splits
    update_time = span.elapsed() / max(1, stats.index_updates)
    searches = []
    for _ in range(5):
        span = service.clock.span()
        client.search("size>1k")
        searches.append(span.elapsed())
    search_time = sum(searches) / len(searches)
    return service.acg_count(), update_time, search_time


def _sweep(thresholds, thrift_scale: float = 0.5):
    rows = []
    results = {}
    for threshold in thresholds:
        partitions, update_time, search_time = run_threshold(
            threshold, thrift_scale)
        results[threshold] = (partitions, update_time, search_time)
        rows.append([threshold, partitions, format_duration(update_time),
                     format_duration(search_time)])
    table = render_table(
        ["split threshold", "partitions", "per-update (sim)",
         "per-search (sim)"],
        rows,
        title="Ablation — split-threshold sweep on the Thrift build "
              "(paper default: 50 000 files)")
    return table, results


def run(cfg):
    thresholds = cfg.scale((50, 800), THRESHOLDS)
    thrift_scale = cfg.scale(0.25, 0.5)
    table, results = _sweep(thresholds, thrift_scale)
    latency = {}
    for threshold, (_, update_time, search_time) in results.items():
        latency[f"update_s_thr{threshold}"] = update_time
        latency[f"search_s_thr{threshold}"] = search_time
    return {
        "name": "ablation_split_threshold",
        "params": {"thresholds": list(thresholds), "thrift_scale": thrift_scale},
        "texts": {"ablation_split_threshold": table},
        "latency_s": latency,
        "extra": {"partitions": {str(t): results[t][0] for t in thresholds}},
    }


def test_ablation_split_threshold(benchmark, record_result):
    table, results = _sweep(THRESHOLDS)
    record_result("ablation_split_threshold", table)

    # Smaller thresholds shatter the namespace into more partitions...
    partition_counts = [results[t][0] for t in THRESHOLDS]
    assert partition_counts[0] > partition_counts[-1]
    # ...which costs searches (more fan-out work per query).
    assert results[THRESHOLDS[0]][2] > results[THRESHOLDS[-1]][2] * 0.9

    benchmark(lambda: run_threshold(800))
