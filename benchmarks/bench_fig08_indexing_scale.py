"""Figure 8 — file-indexing times on scaled datasets, Propeller vs MySQL.

Paper setup: 1–16 processes each issue 10 000 update requests; in
Propeller every process stays within one 1 000-file group, in MySQL the
same files hit the single global table.  Findings to reproduce:

* Propeller is 30–60× faster;
* Propeller's time is the same on the 50M-file and 100M-file datasets
  (cost depends only on the group, never the dataset);
* MySQL degrades ≈2× when the dataset doubles (deeper global B+tree,
  colder buffer pool).

Scale substitution: datasets are built at 1:1000 of the paper's (50k and
100k files) with the MySQL buffer pool shrunk by the same factor (2 MB
for 2 GB), preserving the index-bytes : buffer-bytes ratio that drives
the effect.  REPRO_FULL=1 raises the dataset tenfold.
"""

from __future__ import annotations

from typing import List

import pytest

from benchmarks.common import build_minisql, build_propeller
from benchmarks.conftest import full_scale
from repro.metrics.reporting import render_table

GROUP_SIZE = 1000
UPDATES_PER_PROCESS = 10_000
PROCESS_COUNTS = (1, 2, 4, 8, 16)
SCALE = 1000  # dataset scaled 1:SCALE vs the paper


def propeller_run(service, client, paths, n_processes: int, n_updates: int) -> float:
    # Each process updates files within one group (the paper's setup).
    groups = [paths[i * GROUP_SIZE:(i + 1) * GROUP_SIZE]
              for i in range(n_processes)]
    clock = service.clock

    def run_process(group):
        import random
        import zlib
        rng = random.Random(zlib.crc32(group[0].encode()) & 0xFFFF)
        for k in range(n_updates):
            client.index_path(group[rng.randrange(len(group))], pid=2)
        client.flush_updates()

    span = clock.span()
    # Processes run concurrently; each has its own group and the Index
    # Node work overlaps (the paper's threads), so charge the slowest.
    clock.parallel([lambda g=g: run_process(g) for g in groups])
    service.commit_all()
    return span.elapsed()


def minisql_run(db, machine, paths, n_processes: int, n_updates: int) -> float:
    groups = [paths[i * GROUP_SIZE:(i + 1) * GROUP_SIZE]
              for i in range(n_processes)]

    by_path = {db.store.attrs(f)["path"]: f for f in db.store.file_ids()}

    def update_one(path, k):
        # Re-index the file under (almost) its old keys: the update hits
        # the leaves that hold this file's entries.  In a bigger table
        # those entries are diluted across more leaves, so the same
        # update stream has a larger disk working set — the paper's
        # dataset-size degradation, reproduced rather than encoded.
        file_id = by_path[path]
        attrs = db.store.attrs(file_id)
        db.insert_file(file_id,
                       {"size": attrs["size"] + (k & 1),
                        "mtime": attrs["mtime"]},
                       path=path)

    def run_process(group):
        import random
        import zlib
        rng = random.Random(zlib.crc32(group[0].encode()) & 0xFFFF)
        for k in range(n_updates):
            update_one(group[rng.randrange(len(group))], k)
        db.flush()

    # Warm-up pass: the paper measures a running server, not a cold one.
    for group in groups:
        for path in group:
            update_one(path, 0)
    db.flush()
    span = machine.clock.span()
    machine.clock.parallel([lambda g=g: run_process(g) for g in groups])
    return span.elapsed()


def _sweep(cfg):
    datasets = cfg.scale((5_000, 10_000), (20_000, 40_000), (50_000, 100_000))
    n_updates = cfg.scale(300, 1_500, UPDATES_PER_PROCESS)
    processes = cfg.scale((1, 4), (1, 4, 16), PROCESS_COUNTS)

    rows = []
    results = {}
    for total in datasets:
        # One deployment per dataset, reused across process counts (the
        # updates are idempotent upserts of the same files).
        service, client, prop_paths = build_propeller(
            num_index_nodes=1, total_files=total, group_size=GROUP_SIZE,
            single_node=True)
        # Pool sized so the global tree's upper levels fit at the small
        # scale but outgrow it at the large one — the analog of the 2 GB
        # pool covering 50M rows' internal levels but not 100M's.
        db, machine, sql_paths = build_minisql(
            total_files=total, buffer_pool_bytes=2 * 1024**2, btree_order=8)
        prop = [propeller_run(service, client, prop_paths, p, n_updates)
                for p in processes]
        sql = [minisql_run(db, machine, sql_paths, p, n_updates)
               for p in processes]
        results[total] = (prop, sql)
        rows.append([f"Propeller {total // 1000}k files"] + [f"{t:.2f}" for t in prop])
        rows.append([f"MiniSQL   {total // 1000}k files"] + [f"{t:.2f}" for t in sql])
    table = render_table(
        ["system / dataset"] + [f"{p} proc (s)" for p in processes], rows,
        title=f"Figure 8 — indexing time for {n_updates} updates/process "
              "(simulated seconds; datasets scaled down with the MiniSQL "
              "buffer pool scaled to match)")
    return table, results, datasets, processes, n_updates


def run(cfg):
    table, results, datasets, processes, n_updates = _sweep(cfg)
    latency = {}
    for total in datasets:
        prop, sql = results[total]
        for p, t in zip(processes, prop):
            latency[f"prop_{total}files_{p}proc"] = t
        for p, t in zip(processes, sql):
            latency[f"sql_{total}files_{p}proc"] = t
    return {
        "name": "fig08_indexing_scale",
        "params": {"datasets": list(datasets), "processes": list(processes),
                   "n_updates": n_updates},
        "texts": {"fig08_indexing_scale": table},
        "latency_s": latency,
    }


def test_fig08_indexing_scale(benchmark, record_result):
    from benchmarks.harness import default_cfg
    table, results, datasets, processes, n_updates = _sweep(default_cfg())
    record_result("fig08_indexing_scale", table)

    small, large = datasets
    prop_small, sql_small = results[small]
    prop_large, sql_large = results[large]
    for i in range(len(processes)):
        # Propeller beats MiniSQL by a wide margin (paper: 30-60x).
        assert sql_small[i] / prop_small[i] > 10.0
        # Propeller is dataset-size-invariant (within 25%).
        assert abs(prop_large[i] - prop_small[i]) / prop_small[i] < 0.25
        # MiniSQL never gets cheaper as the dataset doubles.  (The paper's
        # full ~2x degradation needs paper-scale index:pool ratios — at
        # 1:1000 the per-update miss rate is already saturated, so only a
        # mild slope survives; see EXPERIMENTS.md.)
        assert sql_large[i] >= 0.98 * sql_small[i]
    assert sum(sql_large) > sum(sql_small)

    service, client, paths = build_propeller(
        num_index_nodes=1, total_files=5_000, group_size=GROUP_SIZE,
        single_node=True)
    benchmark(lambda: propeller_run(service, client, paths, 1, 500))
