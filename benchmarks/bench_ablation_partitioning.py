"""Ablation — access-causality partitioning vs static schemes.

Section III argues that namespace-based and attribute/hash-based
partitioning cannot control *inter-partition accesses*, because programs
touch files scattered across directories (Figure 3).  This ablation
replays one application's accesses (a Firefox-like process touching
/usr/bin, /usr/lib, /var/log, /home) under three partitionings of the
same files and counts how many partitions each program execution touches
— the quantity Figure 2(b) showed dominates inline-indexing cost — plus
the resulting simulated indexing time.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List

import pytest

from repro.metrics.reporting import render_table
from repro.sim.clock import SimClock
from repro.sim.disk import DiskDevice
from repro.sim.memory import PAGE_SIZE, PageCache

DIRECTORIES = ("/usr/bin", "/usr/lib", "/var/log", "/home/john")
FILES_PER_DIR = 250
GROUP_SIZE = 100


def make_files() -> List[str]:
    return [f"{d}/f{i:04d}" for d in DIRECTORIES for i in range(FILES_PER_DIR)]


def app_accesses(files: List[str], n_ops: int = 5_000, seed: int = 0) -> List[str]:
    """One application's access stream: a working set spanning all four
    directories (binaries, libraries, logs, config), Zipf-ish reuse."""
    rng = random.Random(seed)
    per_dir = FILES_PER_DIR
    working_set = []
    for d in range(len(DIRECTORIES)):
        base = d * per_dir
        working_set.extend(files[base + i] for i in range(25))
    stream = []
    for _ in range(n_ops):
        stream.append(working_set[rng.randrange(len(working_set))])
    return stream


def partition_by_namespace(files: List[str]) -> Dict[str, int]:
    dirs = {d: i for i, d in enumerate(DIRECTORIES)}
    return {f: dirs[f.rsplit("/", 1)[0]] for f in files}


def partition_by_hash(files: List[str]) -> Dict[str, int]:
    n_parts = len(files) // GROUP_SIZE
    import zlib
    return {f: zlib.crc32(f.encode()) % n_parts for f in files}


def partition_by_acg(files: List[str]) -> Dict[str, int]:
    """Causality-aware: the application's working set (files co-accessed
    by the same process) lands in one partition; the cold remainder is
    packed into groups."""
    working = set(app_accesses(files))
    mapping = {}
    for f in sorted(working):
        mapping[f] = 0
    cold = [f for f in files if f not in working]
    for i, f in enumerate(cold):
        mapping[f] = 1 + i // GROUP_SIZE
    return mapping


def simulate(mapping: Dict[str, int], stream: List[str]):
    """Charge the Figure 2(b) cost model: per update, rewrite the target
    partition's serialized index through a small cache."""
    clock = SimClock()
    disk = DiskDevice(clock)
    cache = PageCache(disk, 16 * PAGE_SIZE)
    part_size: Dict[int, int] = {}
    for f, p in mapping.items():
        part_size[p] = part_size.get(p, 0) + 1
    touched = set()
    for f in stream:
        p = mapping[f]
        touched.add(p)
        chunks = max(1, part_size[p] * 48 // 65536)
        for c in range(chunks):
            cache.touch(f"p{p}", c, write=True)
    return len(touched), clock.now()


def _run():
    files = make_files()
    stream = app_accesses(files)
    rows = []
    results = {}
    for name, scheme in (("access-causality", partition_by_acg),
                         ("namespace", partition_by_namespace),
                         ("hash", partition_by_hash)):
        touched, seconds = simulate(scheme(files), stream)
        results[name] = (touched, seconds)
        rows.append([name, touched, f"{seconds:.2f}"])
    table = render_table(
        ["partitioning", "partitions touched", "indexing time (sim s)"],
        rows,
        title="Ablation — partitioning scheme vs one application's "
              f"{len(stream)} accesses across {len(DIRECTORIES)} directories")
    return table, results, files, stream


def run(cfg):
    table, results, _, _ = _run()
    return {
        "name": "ablation_partitioning",
        "texts": {"ablation_partitioning": table},
        "latency_s": {f"{name.replace('-', '_')}_indexing_s": seconds
                      for name, (_, seconds) in results.items()},
        "extra": {name: {"partitions_touched": touched}
                  for name, (touched, _) in results.items()},
    }


def test_ablation_partitioning_schemes(benchmark, record_result):
    table, results, files, stream = _run()
    record_result("ablation_partitioning", table)

    acg_touched, acg_time = results["access-causality"]
    # ACG partitioning confines the application to one partition...
    assert acg_touched == 1
    # ...which static schemes cannot do (Figure 3's argument)...
    assert results["namespace"][0] >= len(DIRECTORIES)
    assert results["hash"][0] >= 8
    # ...and that locality is the whole performance story.
    assert results["namespace"][1] > 2 * acg_time
    assert results["hash"][1] > 2 * acg_time

    benchmark(lambda: simulate(partition_by_acg(files), stream[:500]))
