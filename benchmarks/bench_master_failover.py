"""Master failover — unavailability window, fencing, and epoch continuity.

Figures of merit for the control-plane failover subsystem (meta-WAL +
warm standby + term fencing):

* **Unavailability window** — virtual seconds between the acting
  Master's crash and a (promoted) acting Master answering again.  The
  standby promotes after three missed 2s lease ticks, so the window is
  bounded by the 10s lease timeout; the bench asserts the *measured*
  window stays under that bound.  The restart path (no promotion —
  the crashed Master replays its meta-WAL and resumes the same term)
  is measured side by side.

* **Epoch continuity** — the routing epoch observed by a client never
  regresses across a promotion or a replayed restart: the standby's
  tailed meta-log (and the meta-WAL snapshot) carry the epoch forward,
  so no client is forced into a refresh storm by a reset epoch.

* **Fencing** — after the deposed ex-Master restarts believing it is
  still acting, its first term-stamped heartbeat round is rejected by
  the Index Nodes (``master.fence`` journaled) and it self-deposes into
  a standby; the bench asserts at least one fence fired and exactly one
  Master is acting at the end.

The artifact's ``extra`` carries ``unavailability_window_s``,
``lease_timeout_s`` and ``route_epoch_monotonic`` — the CI bench-smoke
guard reads them.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from benchmarks.common import observe
from benchmarks.harness import BenchConfig, default_cfg
from repro.cluster import PropellerService
from repro.cluster.master import MASTER_LEASE_TIMEOUT_S
from repro.core.partitioner import PartitioningPolicy
from repro.indexstructures import IndexKind
from repro.metrics.reporting import render_table

PROBE_STEP_S = 0.5
PROBE_LIMIT_S = 30.0


def _build(files: int):
    """An indexed RF=2 deployment with a warm standby Master."""
    service = observe(PropellerService(
        num_index_nodes=3, replication_factor=2, standby_master=True,
        policy=PartitioningPolicy(split_threshold=10**9, cluster_target=10)))
    # 1s sampling: the SLO windows see the steady state around the
    # outage at the same granularity the chaos harness uses, so one
    # bounded promotion never reads as a sustained burn.
    service.enable_timeline(interval_s=1.0)
    client = service.make_client()
    client.create_index("by_size", IndexKind.BTREE, ["size"])
    vfs = service.vfs
    vfs.mkdir("/data")
    paths = []
    for i in range(files):
        path = f"/data/f{i:05d}.bin"
        vfs.write_file(path, 1024 * (i + 1), pid=100 + i)
        paths.append(path)
        client.index_path(path, pid=100 + i)
    client.flush_updates()
    # A realistic healthy runway before the fault: the burn-rate math
    # compares the outage against surrounding steady state.
    service.advance(40.0)
    service.sync_replication()
    return service, client, paths


def _available(service: PropellerService) -> bool:
    """An acting Master process is up (``service.master`` follows the
    acting role across promotions)."""
    return service.master.endpoint.up and service.master.acting


def _measure_window(service: PropellerService) -> float:
    """Crash the acting Master; virtual seconds until an acting Master
    is back (standby promotion), probed on a fine grid."""
    service.crash_master()
    start = service.clock.now()
    while service.clock.now() - start < PROBE_LIMIT_S:
        if _available(service):
            break
        service.advance(PROBE_STEP_S)
    return service.clock.now() - start


def _epochs(service: PropellerService) -> Tuple[int, int]:
    return (service.master.partitions.epoch, service.master.term)


def _sweep(cfg: BenchConfig):
    files = cfg.scale(60, 200)
    service, client, paths = _build(files)
    epochs: List[Tuple[int, int]] = [_epochs(service)]

    # Promotion path: crash the acting Master, measure until the
    # standby's promotion restores availability.
    old_acting = service.master.endpoint.name
    promotion_window = _measure_window(service)
    epochs.append(_epochs(service))

    # The client re-homes onto the promoted Master without help.
    answer = client.search("size>=1")
    rehomes = client.master_rehomes

    # The deposed ex-Master restarts from its own meta-WAL still
    # believing it is acting; the next heartbeat round fences it.
    service.restart_master(old_acting)
    service.advance(20.0)
    epochs.append(_epochs(service))
    status = service.master_status()

    # Restart path (no promotion): crash the *new* acting Master but
    # bring it straight back — meta-WAL replay, same term.
    acting = service.master.endpoint.name
    service.crash_master()
    restart_start = service.clock.now()
    service.restart_master(acting)
    service.advance(PROBE_STEP_S)
    restart_window = (service.clock.now() - restart_start
                      if _available(service) else float("inf"))
    service.advance(20.0)
    epochs.append(_epochs(service))
    final_status = service.master_status()

    route_monotonic = all(a[0] <= b[0] for a, b in zip(epochs, epochs[1:]))
    term_monotonic = all(a[1] <= b[1] for a, b in zip(epochs, epochs[1:]))
    acting_roles = [r for r in final_status["roles"].values()
                    if r["role"] == "acting"]

    rows = [
        ["standby promotion", f"{promotion_window:.2f}",
         f"{MASTER_LEASE_TIMEOUT_S:.2f}"],
        ["meta-WAL restart", f"{restart_window:.2f}",
         f"{MASTER_LEASE_TIMEOUT_S:.2f}"],
    ]
    text = render_table(
        ["failover path", "window (s)", "lease bound (s)"], rows,
        title=f"master unavailability window ({files} files, rf=2)")
    return {
        "files": files,
        "promotion_window": promotion_window,
        "restart_window": restart_window,
        "epochs": epochs,
        "route_monotonic": route_monotonic,
        "term_monotonic": term_monotonic,
        "rehomes": rehomes,
        "answer_size": len(answer),
        "fences": status["fences"],
        "promotions": final_status["promotions"],
        "acting_count": len(acting_roles),
        "text": text,
    }


def run(cfg: BenchConfig):
    r = _sweep(cfg)
    return {
        "name": "master_failover",
        "params": {"files": r["files"], "rf": 2,
                   "lease_timeout_s": MASTER_LEASE_TIMEOUT_S},
        "texts": {"master_failover": r["text"]},
        "latency_s": {"promotion_window": r["promotion_window"],
                      "restart_window": r["restart_window"]},
        "metrics": {"master_rehomes": r["rehomes"],
                    "master_fences": r["fences"],
                    "promotions": r["promotions"]},
        "extra": {
            "unavailability_window_s": r["promotion_window"],
            "restart_window_s": r["restart_window"],
            "lease_timeout_s": MASTER_LEASE_TIMEOUT_S,
            "route_epoch_monotonic": r["route_monotonic"],
            "term_monotonic": r["term_monotonic"],
            "epochs": [list(e) for e in r["epochs"]],
            "acting_masters": r["acting_count"],
        },
    }


def test_master_failover_window_and_epochs(record_result):
    cfg = default_cfg()
    r = _sweep(cfg)
    record_result("master_failover", r["text"])
    # The measured outage stays under the lease bound the standby's
    # promotion schedule promises.
    assert r["promotion_window"] < MASTER_LEASE_TIMEOUT_S, r
    assert r["restart_window"] < MASTER_LEASE_TIMEOUT_S, r
    # Epoch continuity: routing epoch and term never regress across a
    # promotion, a fence-deposed restart, or a meta-WAL replay.
    assert r["route_monotonic"], r["epochs"]
    assert r["term_monotonic"], r["epochs"]
    # The client re-homed onto the promoted Master and kept answering.
    assert r["rehomes"] >= 1
    assert r["answer_size"] > 0
    # The deposed ex-Master was fenced, and one Master is acting.
    assert r["fences"] >= 1
    assert r["promotions"] >= 1
    assert r["acting_count"] == 1
