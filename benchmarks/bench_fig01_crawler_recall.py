"""Figure 1 — recall of the crawling search engine under background I/O.

Paper setup: after a full index rebuild, a background process copies files
at 0/2/5/10 files per second while a foreground process queries
continuously for 10 minutes.  Findings to reproduce: recall is capped well
below 100% by file-type coverage (< 53%), falls with background intensity,
and collapses to 0 whenever a re-index pass is running (clearly visible at
10 FPS).

With freshness instrumentation the same run also yields the *staleness*
distribution behind the recall dips — virtual time from each background
copy to its appearance in the crawler's snapshot — retelling Figure 1 as
a staleness CDF.
"""

from __future__ import annotations

from typing import Any, Dict

import pytest

from benchmarks.harness import BenchConfig, default_cfg
from repro.baselines.crawler import CrawlerConfig, CrawlerSearchEngine
from repro.fs.vfs import VirtualFileSystem
from repro.metrics.recall import recall
from repro.metrics.reporting import render_series, render_table
from repro.metrics.stats import TimeSeries
from repro.obs.freshness import NULL_FRESHNESS, FreshnessTracker
from repro.obs.metrics import MetricsRegistry
from repro.sim.clock import SimClock
from repro.sim.events import EventLoop
from repro.workloads.datasets import populate_namespace

DURATION_S = 600.0
QUERY_PERIOD_S = 5.0
QUERY = "size>1m"
FPS_LEVELS = (0.0, 2.0, 5.0, 10.0)


def run_fps(fps: float, initial_files: int = 2000,
            duration_s: float = DURATION_S,
            freshness=NULL_FRESHNESS, freshness_node: str = "crawler",
            ) -> TimeSeries:
    clock = SimClock()
    vfs = VirtualFileSystem(clock)
    loop = EventLoop(clock)
    crawler = CrawlerSearchEngine(vfs, loop, CrawlerConfig(
        reindex_rate_fps=50.0, pass_trigger_dirty=64, pass_period_s=30.0),
        freshness=freshness, freshness_node=freshness_node)
    populate_namespace(vfs, initial_files, seed=1)
    crawler.full_rebuild()

    series = TimeSeries(f"{fps:g} FPS")
    copied = 0
    next_copy_t = 0.0
    start = clock.now()

    vfs.mkdir("/copies")
    while clock.now() - start < duration_s:
        loop.run_until(clock.now() + QUERY_PERIOD_S)
        # Background copying since the last query tick.
        if fps > 0:
            while next_copy_t <= clock.now() - start:
                size = 4 * 1024**2 if copied % 3 == 0 else 4096
                # Same type mix as the base dataset so that file-type
                # coverage (the recall cap) stays roughly constant across
                # FPS levels; only *staleness* varies.  Size and type are
                # decorrelated on purpose (different moduli).
                ext = ("txt", "so", "log", "dat", "png")[copied % 5]
                vfs.write_file(f"/copies/c{copied:06d}.{ext}", size, pid=99)
                copied += 1
                next_copy_t = copied / fps
        got = crawler.query(QUERY)
        truth = [p for p, i in vfs.namespace.files() if i.size > 1024**2]
        series.add(clock.now() - start, 100.0 * recall(got, truth))
    return series


def run(cfg: BenchConfig) -> Dict[str, Any]:
    duration_s = cfg.scale(120.0, DURATION_S)
    initial_files = cfg.scale(500, 2000)
    fps_levels = cfg.scale((0.0, 10.0), FPS_LEVELS)

    registry = MetricsRegistry()
    tracker = FreshnessTracker(registry) if cfg.instrument else NULL_FRESHNESS
    all_series = {
        fps: run_fps(fps, initial_files=initial_files, duration_s=duration_s,
                     freshness=tracker,
                     freshness_node=f"crawler_{fps:g}fps")
        for fps in fps_levels
    }

    rows = []
    for fps, series in all_series.items():
        values = series.values()
        rows.append([f"{fps:g} FPS", f"{min(values):.1f}", f"{sum(values)/len(values):.1f}",
                     f"{max(values):.1f}", f"{values[-1]:.1f}"])
    table = render_table(
        ["background load", "min recall %", "mean recall %", "max recall %", "final %"],
        rows,
        title="Figure 1 — crawler (Spotlight-analog) recall vs background FPS "
              f"({duration_s:.0f}s, query every {QUERY_PERIOD_S:.0f}s)")
    # Full series (every 6th sample) so the figure itself can be redrawn.
    series_text = "\n\n".join(
        render_series(f"{fps:g} FPS", s.points[::6], "t (s)", "recall %")
        for fps, s in all_series.items())

    staleness = tracker.summary() if cfg.instrument else {}
    latency_s = {
        f"mean_staleness_s_{fps:g}fps": node_summary["mean"]
        for fps in fps_levels
        for node_summary in [staleness.get("nodes", {}).get(f"crawler_{fps:g}fps")]
        if node_summary and node_summary["count"]
    }
    return {
        "name": "fig01_crawler_recall",
        "params": {"duration_s": duration_s, "initial_files": initial_files,
                   "fps_levels": list(fps_levels), "query": QUERY},
        "texts": {"fig01_crawler_recall": table + "\n\n" + series_text},
        "latency_s": latency_s,
        "series": {f"recall_{fps:g}fps": [[t, v] for t, v in s.points]
                   for fps, s in all_series.items()},
        "staleness": staleness,
        "extra": {"recall_values": {f"{fps:g}": s.values()
                                    for fps, s in all_series.items()}},
    }


def test_fig01_crawler_recall(benchmark, record_result):
    result = run(default_cfg())
    record_result("fig01_crawler_recall", result["texts"]["fig01_crawler_recall"])

    values = result["extra"]["recall_values"]
    quiet, stressed = values["0"], values["10"]
    # Type coverage caps recall below 53% even with no background load.
    assert max(quiet) < 53.0
    # Heavy background copying drives recall to 0 during re-index passes.
    assert min(stressed) == 0.0
    # More background load, lower average recall.
    assert (sum(stressed) / len(stressed)) < (sum(quiet) / len(quiet))
    # The crawler probe saw the copies become visible late.
    assert result["staleness"]["nodes"], result["staleness"]

    benchmark(lambda: run_fps(10.0, initial_files=300))
