"""Figure 10 — mixed update/search workload on a 50M-file dataset.

Paper: 10 000 updates to one 1 000-file group, one file-attribute search
every 1 024 updates, a background commit ("timeout") every 500 updates.
Headline: Propeller's average re-indexing (update) latency is 15.6 µs —
250× lower than MySQL's 3 980.9 µs — because each update lands in a WAL
append + in-memory cache against a 1 000-file group index, while MySQL
updates a global B+tree that misses its buffer pool.

Scale substitution: the backing dataset is 1:1000 (50k files) with the
MySQL buffer pool shrunk by the same factor; Propeller's update path does
not depend on the dataset size at all (that's the point).

The instrumented harness run additionally records a timeline (dirty
backlog, cache hit rate) sampled on virtual time and the update-to-
search-visible staleness of every commit; both only *read* the clock, so
the latency distributions are bit-identical either way.
"""

from __future__ import annotations

import pytest

from benchmarks.common import build_minisql, build_propeller
from benchmarks.harness import BenchConfig, default_cfg
from repro.metrics.reporting import format_duration, render_table
from repro.metrics.stats import LatencyCollector
from repro.workloads.mixed import MixedWorkloadConfig, mixed_stream

QUERY = "size>1m"
TIMELINE_INTERVAL_S = 1e-3


def run_propeller(total_files: int, config: MixedWorkloadConfig,
                  instrument: bool = False):
    service, client, paths = build_propeller(
        num_index_nodes=1, total_files=total_files, group_size=1000,
        single_node=True)
    if instrument:
        service.enable_timeline(interval_s=TIMELINE_INTERVAL_S)
        service.enable_freshness()
    group = paths[:1000]
    node = service.index_nodes["in1"]
    # Bounded reservoirs: the stream is long and only summary statistics
    # are reported, so retention need not grow with the run.
    updates = LatencyCollector("propeller updates", max_samples=4096)
    searches = LatencyCollector("propeller searches", max_samples=4096)
    # The paper uses a request batch size of 128 in both systems; the
    # per-update latency is therefore amortized over batches, with
    # periodic spikes (the bands in Figure 10's scatter).
    client.batch_size = 128
    for op, arg in mixed_stream(group, config):
        if op == "update":
            span = service.clock.span()
            client.index_path(arg, pid=1)
            updates.add(span.elapsed())
        elif op == "commit":
            node.cache.commit_all()
        else:
            span = service.clock.span()
            client.search(arg)
            searches.add(span.elapsed())
        # No-op unless a timeline is enabled; reads the clock, never
        # charges it.
        service.timeline.sample_if_due()
    service.timeline.sample_if_due()
    return updates, searches, service


def run_minisql(total_files: int, config: MixedWorkloadConfig):
    db, machine, paths = build_minisql(
        total_files=total_files, buffer_pool_bytes=(2 * 1024**3) // 1000)
    group = paths[:1000]
    import zlib
    ino_of = {p: zlib.crc32(p.encode()) & 0x7FFFFFFF for p in group}
    updates = LatencyCollector("minisql updates", max_samples=4096)
    searches = LatencyCollector("minisql searches", max_samples=4096)
    db.batch_size = 128
    counter = 0
    for op, arg in mixed_stream(group, config):
        if op == "update":
            counter += 1
            span = machine.clock.span()
            db.insert_file(ino_of[arg], {"size": counter, "mtime": float(counter)},
                           path=arg)
            updates.add(span.elapsed())
        elif op == "commit":
            db.flush()
        else:
            span = machine.clock.span()
            db.query(arg)
            searches.add(span.elapsed())
    return updates, searches


def _run(cfg: BenchConfig):
    total_files = cfg.scale(5_000, 20_000, 50_000)
    n_updates = cfg.scale(1_024, 4_096, 10_000)
    config = MixedWorkloadConfig(n_updates=n_updates, search_every=1024,
                                 commit_every=500, query=QUERY)
    prop_up, prop_search, service = run_propeller(
        total_files, config, instrument=cfg.instrument)
    sql_up, sql_search = run_minisql(total_files, config)

    ratio = sql_up.mean() / prop_up.mean()
    cache_hit_rate = service.registry.value("search.result_cache_hit_rate")
    rows = [
        ["Propeller", format_duration(prop_up.mean()),
         format_duration(prop_up.maximum()),
         format_duration(prop_search.mean() if len(prop_search) else 0.0)],
        ["MiniSQL", format_duration(sql_up.mean()),
         format_duration(sql_up.maximum()),
         format_duration(sql_search.mean() if len(sql_search) else 0.0)],
        ["ratio", f"{ratio:.0f}x", "", ""],
        ["(paper)", "15.6us vs 3980.9us = 250x", "", ""],
    ]
    table = render_table(
        ["system", "mean update latency", "max update", "mean search"],
        rows,
        title=f"Figure 10 — mixed workload ({n_updates} updates, search "
              "every 1024, commit every 500; dataset scaled 1:1000)")
    return (table, prop_up, prop_search, sql_up, sql_search, ratio,
            cache_hit_rate, service, total_files, n_updates)


def run(cfg: BenchConfig):
    (table, prop_up, prop_search, sql_up, sql_search, ratio,
     cache_hit_rate, service, total_files, n_updates) = _run(cfg)
    latency = {
        "prop_update_mean_s": prop_up.mean(),
        "prop_update_max_s": prop_up.maximum(),
        "sql_update_mean_s": sql_up.mean(),
        "sql_update_max_s": sql_up.maximum(),
    }
    if len(prop_search):
        latency["prop_search_mean_s"] = prop_search.mean()
    if len(sql_search):
        latency["sql_search_mean_s"] = sql_search.mean()
    return {
        "name": "fig10_mixed_workload",
        "params": {"total_files": total_files, "n_updates": n_updates,
                   "search_every": 1024, "commit_every": 500, "query": QUERY},
        "texts": {"fig10_mixed_workload": table},
        "latency_s": latency,
        "series": service.timeline.to_dict()["series"] if service.timeline.enabled else {},
        "staleness": service.freshness.summary() if service.freshness.enabled else {},
        "metrics": {"search.result_cache_hit_rate": cache_hit_rate},
        "extra": {"update_ratio": ratio},
    }


def test_fig10_mixed_workload(benchmark, record_result):
    (table, prop_up, prop_search, sql_up, _, ratio,
     cache_hit_rate, _, _, _) = _run(default_cfg(instrument=False))
    record_result("fig10_mixed_workload", table)

    # Propeller's update path is microseconds; MiniSQL's is milliseconds.
    assert prop_up.mean() < 100e-6
    assert sql_up.mean() > 500e-6
    # The paper's headline factor: two orders of magnitude or more.
    assert ratio > 50
    # Repeated identical searches between commits are served from the
    # watermark-keyed result cache (default tier runs several searches
    # against the same query string).
    if len(prop_search) > 1:
        assert cache_hit_rate >= 0.5, cache_hit_rate

    small = MixedWorkloadConfig(n_updates=512, search_every=1024,
                                commit_every=500, query=QUERY)
    benchmark(lambda: run_propeller(2_000, small))
