"""Tiered index storage — cold-start warming and cost-vs-latency tradeoff.

Two experiments against a deployment whose partitions are all frozen to
the simulated object store:

* **Cache warming**: after a cold start (resident bodies and segment
  cache dropped) the first query hydrates every frozen partition from
  the object store; subsequent queries are served from the node-local
  segment cache.  The series charts per-query latency converging to the
  warm floor.

* **Cost vs latency**: sweep the segment-cache byte budget.  A small
  cache evicts (or outright rejects) hydrated views, so every query
  pays object-store GETs — higher simulated request dollars *and*
  higher latency.  A budget that holds the working set pays for the
  hydrations once.  The curve is the tradeoff tiering navigates: RAM
  spent on cache vs dollars-plus-latency spent on the cold tier.

Hydration latency itself (first-byte + bandwidth + decompression
charge) is recorded by the Index Node in the ``tier.hydration_s``
histogram; its p95 is exported as a latency key so CI can put a budget
on it.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from benchmarks.common import build_propeller
from benchmarks.harness import BenchConfig, default_cfg
from repro.metrics.reporting import render_table

QUERY = "size>16m"
RAM_BYTES = 12 * 1024**2
FREEZE_AGE_S = 5.0


def build_frozen(total_files: int, nodes: int,
                 cache_budget_bytes: int = RAM_BYTES):
    """A deployment with every partition frozen to the cold tier."""
    service, client, _ = build_propeller(
        num_index_nodes=nodes, total_files=total_files,
        group_size=1000, ram_bytes=RAM_BYTES)
    # Same isolation as fig09: measure index/segment access, not the
    # result cache or summary pruning (guarded elsewhere).
    client.prune_searches = False
    for node in service.index_nodes.values():
        node.result_caching = False
    service.set_tiering(True, freeze_age_s=FREEZE_AGE_S, min_bytes=1,
                        cache_budget_bytes=cache_budget_bytes)
    service.advance(30.0)
    return service, client


def warming_series(total_files: int, nodes: int,
                   samples: int = 8) -> List[float]:
    """Per-query latency from a cold start: hydration, then cache hits."""
    service, client = build_frozen(total_files, nodes)
    service.drop_caches()
    latencies = []
    for _ in range(samples):
        span = service.clock.span()
        client.search(QUERY)
        latencies.append(span.elapsed())
        service.pump()
    return latencies


def cost_latency_point(total_files: int, nodes: int, budget: int,
                       queries: int = 10) -> Dict[str, float]:
    """Steady-state warm latency + accrued cold-tier dollars at one
    segment-cache budget."""
    service, client = build_frozen(total_files, nodes,
                                   cache_budget_bytes=budget)
    service.drop_caches()
    client.search(QUERY)  # warm what fits
    service.pump()
    cost_before = service.object_store.simulated_cost_usd()
    samples = []
    for _ in range(queries):
        span = service.clock.span()
        client.search(QUERY)
        samples.append(span.elapsed())
        service.pump()
    stats = [n.segment_cache.stats for n in service.index_nodes.values()]
    lookups = sum(s.hits + s.misses for s in stats)
    hits = sum(s.hits for s in stats)
    hydration_p95 = service.registry.histogram("tier.hydration_s").p95
    return {
        "warm_s": sum(samples) / len(samples),
        "query_cost_usd": (service.object_store.simulated_cost_usd()
                           - cost_before) / queries,
        "hit_rate": hits / lookups if lookups else 0.0,
        "hydration_p95_s": hydration_p95,
    }


def _budgets(cfg: BenchConfig) -> Tuple[int, ...]:
    return cfg.scale(
        (128 * 1024, 512 * 1024, 4 * 1024**2),
        (128 * 1024, 512 * 1024, 2 * 1024**2, 12 * 1024**2),
        (128 * 1024, 512 * 1024, 2 * 1024**2, 12 * 1024**2),
    )


def _sweep(cfg: BenchConfig):
    total = cfg.scale(5_000, 20_000, 50_000)
    nodes = cfg.scale(1, 2, 2)
    series = warming_series(total, nodes)
    budgets = _budgets(cfg)
    points = {b: cost_latency_point(total, nodes, b) for b in budgets}

    warm_rows = [["query #"] + [str(i + 1) for i in range(len(series))],
                 ["latency (s)"] + [f"{s:.4f}" for s in series]]
    warm_table = render_table(
        warm_rows[0], [warm_rows[1]],
        title=f"Tiered storage — cold-start cache warming, {total} files, "
              f"{nodes} node(s), query \"{QUERY}\"")

    cost_rows = []
    for b in budgets:
        p = points[b]
        cost_rows.append([f"{b // 1024}KiB", f"{p['warm_s']:.5f}",
                          f"{p['query_cost_usd'] * 1e6:.3f}",
                          f"{p['hit_rate']:.2f}",
                          f"{p['hydration_p95_s']:.4f}"])
    cost_table = render_table(
        ["cache budget", "warm (s)", "USD/query (µ$)", "hit rate",
         "hydration p95 (s)"],
        cost_rows,
        title="Tiered storage — segment-cache budget vs latency and "
              "simulated cold-tier cost")
    return total, nodes, series, budgets, points, warm_table, cost_table


def run(cfg: BenchConfig):
    total, nodes, series, budgets, points, warm_table, cost_table = \
        _sweep(cfg)
    latency = {"cold_start": series[0], "warmed": series[-1]}
    for b in budgets:
        latency[f"warm_budget_{b // 1024}k"] = points[b]["warm_s"]
    latency["hydration_p95"] = max(
        p["hydration_p95_s"] for p in points.values())
    return {
        "name": "tiered_storage",
        "params": {"total_files": total, "nodes": nodes,
                   "ram_bytes": RAM_BYTES, "query": QUERY,
                   "cache_budgets": list(budgets)},
        "texts": {"tiered_storage_warming": warm_table,
                  "tiered_storage_cost_latency": cost_table},
        "latency_s": latency,
        "extra": {
            "warming_series": series,
            "cost_latency": {str(b): points[b] for b in budgets},
        },
    }


def test_tiered_cold_start_warms_to_floor(record_result):
    total, nodes, series, budgets, points, warm_table, cost_table = \
        _sweep(default_cfg())
    record_result("tiered_storage_warming", warm_table)
    record_result("tiered_storage_cost_latency", cost_table)
    # The first (hydrating) query is far above the warm floor …
    assert series[0] > 10 * series[-1], series
    # … and the floor is reached immediately after and stays flat.
    assert max(series[1:]) <= 1.5 * min(series[1:]), series


def test_tiered_cost_latency_tradeoff():
    cfg = default_cfg()
    total = cfg.scale(5_000, 20_000, 50_000)
    nodes = cfg.scale(1, 2, 2)
    budgets = _budgets(cfg)
    points = {b: cost_latency_point(total, nodes, b) for b in budgets}
    starved, rich = points[budgets[0]], points[budgets[-1]]
    # A starved cache re-fetches from the cold tier: strictly more
    # dollars per query and slower than a cache that holds the set.
    assert starved["query_cost_usd"] > rich["query_cost_usd"], points
    assert starved["warm_s"] > rich["warm_s"], points
    assert starved["hit_rate"] < rich["hit_rate"], points
    # With the working set held, steady-state queries are free of
    # per-query cold-tier request charges.
    assert rich["query_cost_usd"] < 1e-6, points


def test_hydration_latency_budget():
    """CI latency budget: hydrating one ~1000-file segment must stay
    under 100 ms simulated (first-byte + bandwidth + decompression)."""
    cfg = default_cfg()
    total = cfg.scale(5_000, 20_000, 50_000)
    nodes = cfg.scale(1, 2, 2)
    point = cost_latency_point(total, nodes, RAM_BYTES)
    assert 0.0 < point["hydration_p95_s"] <= 0.100, point


def test_tiered_storage_deterministic():
    cfg = BenchConfig(tier="smoke")
    assert _sweep(cfg)[2] == _sweep(cfg)[2]
