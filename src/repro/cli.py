"""Command-line interface.

Main subcommands::

    repro demo       [--nodes N] [--files M]         run a live cluster demo
    repro query      QUERY [--files M] [--nodes N] [--profile]
                                                      build a namespace, search it
    repro profile    QUERY [--files M] [--nodes N] [--json]
                                                      span-tree breakdown of a query
    repro partition  (--trace FILE | --app NAME[:SCALE]) [--k K]
                                                      ACG stats + partitioning
    repro results    [--dir PATH]                     show regenerated tables
    repro bench      [NAMES...] [--smoke|--full] [--out DIR]
                                                      run benches -> BENCH_*.json
    repro bench      --compare OLD NEW [--threshold T]
                                                      fail on latency regressions
    repro chaos      [--seed S] [--steps K] [--nodes N] [--json]
                                                      deterministic fault injection
                                                      + crash-consistency audit
    repro status     [--nodes N] [--rf R] [--chaos-seed S] [--json]
                                                      health dashboard: verdicts,
                                                      gauges, SLOs, recent events
    repro events     [--type T] [--since T] [--partition P] [--json]
                                                      the cluster event journal

``main(argv)`` returns a process exit code and prints to stdout, so the
CLI is unit-testable without subprocesses.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List, Optional, Sequence

from repro import IndexKind, PropellerService
from repro.core.metis import k_way_partition
from repro.core.traceio import acg_from_trace
from repro.metrics.reporting import format_duration, render_table
from repro.workloads.datasets import populate_namespace


def _build_service(nodes: int, files: int):
    service = PropellerService(num_index_nodes=nodes)
    client = service.make_client()
    client.create_index("by_size", IndexKind.BTREE, ["size"])
    client.create_index("by_mtime", IndexKind.BTREE, ["mtime"])
    client.create_index("by_kw", IndexKind.HASH, ["keyword"])
    paths = populate_namespace(service.vfs, files, seed=1)
    client.index_paths(paths, pid=1)
    client.flush_updates()
    service.commit_all()
    return service, client


def cmd_demo(args: argparse.Namespace) -> int:
    """``repro demo``: build a cluster, index a namespace, run sample queries."""
    service, client = _build_service(args.nodes, args.files)
    print(f"cluster: 1 master + {args.nodes} index node(s); "
          f"{service.total_indexed_files()} files in {service.acg_count()} ACGs")
    for query in ("size>16m", "keyword:firefox", "size>1m & mtime<1day"):
        span = service.clock.span()
        results = client.search(query)
        print(f"  {query:<24} -> {len(results):5d} files "
              f"in {format_duration(span.elapsed())} (simulated)")
    loads = [(n, service.master.partitions.node_load(n))
             for n in service.master.index_nodes]
    print("node loads: " + ", ".join(f"{n}={load}" for n, load in loads))
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    """``repro query``: search a generated namespace and print matches."""
    service, client = _build_service(args.nodes, args.files)
    if getattr(args, "profile", False):
        service.enable_tracing()
    span = service.clock.span()
    try:
        results = client.search(args.query)
    except Exception as exc:  # surface parse errors as CLI errors
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for path in results[: args.limit]:
        print(path)
    suppressed = len(results) - min(len(results), args.limit)
    if suppressed > 0:
        print(f"... and {suppressed} more")
    print(f"# {len(results)} matches in {format_duration(span.elapsed())} "
          "(simulated)")
    if getattr(args, "profile", False):
        from repro.obs.profile import QueryProfile

        root = service.tracer.last_root("search")
        if root is not None:
            print()
            print(QueryProfile(root, query=args.query).render())
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """``repro profile``: EXPLAIN ANALYZE a query on a demo cluster."""
    import json as _json

    from repro.obs.export import render_registry

    service, client = _build_service(args.nodes, args.files)
    service.enable_tracing()
    try:
        profile = client.profile_search(args.query)
    except Exception as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        out = profile.to_dict()
        out["trace"] = {"roots_dropped": service.tracer.roots_dropped}
        print(_json.dumps(out, indent=2, sort_keys=True))
        return 0
    print(profile.render())
    print()
    print(render_registry(service.registry, prefix="cluster.client",
                          title="client metrics"))
    batching = _render_batching(service.registry)
    if batching:
        print()
        print(batching)
    tiers = _render_memory_tiers(service)
    if tiers:
        print()
        print(tiers)
    tail = _render_tail_latency(service.registry)
    if tail:
        print()
        print(tail)
    dropped = getattr(service.tracer, "roots_dropped", 0)
    if dropped:
        print()
        print(f"trace: {dropped} root span(s) dropped (ring full — "
              "raise Tracer max_roots to retain them)")
    return 0


def _render_batching(registry) -> str:
    """The group-commit readout: how large update envelopes actually
    ran (``update.batch_size``) and how much each node's WAL got out of
    every simulated fsync — the two numbers that say whether the
    batched hot path is earning its keep."""
    from repro.obs.metrics import Histogram

    rows = []
    for name, instrument in registry.items("update.batch_size"):
        if not isinstance(instrument, Histogram) or not instrument.count:
            continue
        rows.append(["update.batch_size", int(instrument.count),
                     f"{instrument.mean:.1f}", f"{instrument.p50:.0f}",
                     f"{instrument.maximum:.0f}", ""])
    for name, instrument in registry.items("cluster."):
        if not name.endswith(".wal.fsyncs"):
            continue
        node = name[len("cluster."):-len(".wal.fsyncs")]
        fsyncs = instrument.value
        if not fsyncs:
            continue
        per = registry.value(f"cluster.{node}.wal.bytes_per_fsync")
        rows.append([f"{node}.wal", int(fsyncs), "", "", "",
                     f"{per:.0f} B/fsync"])
    if not rows:
        return ""
    return render_table(
        ["batching", "n", "mean", "p50", "max", "amortization"], rows,
        title="group commit")


def _render_tail_latency(registry) -> str:
    """p50/p95/p99 across every latency histogram in the registry —
    the tail-tolerance readout (hedged search legs live or die by p99).

    The search-latency row also shows how many hedged legs fired, how
    many won the race, and how many rescue calls replaced a dead leg:
    the knobs that shape that histogram's tail."""
    from repro.obs.export import _format_observation
    from repro.obs.metrics import Histogram

    counters = {name: instrument.value
                for name, instrument in registry.items("cluster.client")
                if instrument.kind == "counter"}
    rows = []
    for name, instrument in registry.items(""):
        if not isinstance(instrument, Histogram) or not instrument.count:
            continue
        if instrument.unit != "s":
            continue  # sizes/counts (e.g. update.batch_size) are not latency
        fmt = lambda v: _format_observation(v, instrument.unit)
        hedges = rescues = ""
        if name == "cluster.client.search_latency_s":
            won = counters.get("cluster.client.hedge_wins", 0)
            hedges = (f"{counters.get('cluster.client.hedges', 0):.0f} "
                      f"({won:.0f} won)")
            rescues = f"{counters.get('cluster.client.hedge_rescues', 0):.0f}"
        rows.append([name, int(instrument.count), fmt(instrument.p50),
                     fmt(instrument.p95), fmt(instrument.p99),
                     hedges, rescues])
    if not rows:
        return ""
    return render_table(
        ["histogram", "n", "p50", "p95", "p99", "hedges", "rescues"], rows,
        title="tail latency")


def _render_memory_tiers(service) -> str:
    """Per-node byte accounting across storage tiers: live resident
    replicas, hydrated segment cache and uncommitted index cache (RAM),
    the WAL (local disk), and frozen segments (cold object store)."""
    rows = []
    for row in service.memory_tiers():
        frozen = (f"{row['frozen']} ({row['frozen_acgs']} acgs)"
                  if row["frozen_acgs"] else "0")
        rows.append([row["node"], row["resident"], row["segment_cache"],
                     row["index_cache"], row["wal"], frozen])
    if not rows:
        return ""
    return render_table(
        ["node", "resident B", "seg cache B", "idx cache B", "wal B",
         "frozen B"], rows, title="memory tiers")


def cmd_partition(args: argparse.Namespace) -> int:
    """``repro partition``: build an ACG and print its k-way partition."""
    if args.trace:
        with open(args.trace) as fh:
            graph = acg_from_trace(fh)
        source = args.trace
    else:
        from repro.workloads.apps import (
            GIT_SPEC, LINUX_SPEC, THRIFT_SPEC, CompileApplication, scaled_spec)

        name, _, scale_s = args.app.partition(":")
        specs = {"thrift": THRIFT_SPEC, "git": GIT_SPEC, "linux": LINUX_SPEC}
        if name not in specs:
            print(f"error: unknown app {name!r} (choose from {sorted(specs)})",
                  file=sys.stderr)
            return 2
        spec = specs[name]
        if scale_s:
            spec = scaled_spec(spec, float(scale_s))
        graph = CompileApplication(spec).build_acg()
        source = args.app
    components = graph.connected_components()
    print(f"ACG from {source}: {graph.vertex_count} files, "
          f"{graph.edge_count} edges, weight {graph.total_weight}, "
          f"{len(components)} component(s)")
    adjacency = graph.subgraph(components[0]).undirected_adjacency()
    parts = k_way_partition(adjacency, args.k)
    cut = sum(w for u, v, w in graph.edges()
              if _part_of(u, parts) != _part_of(v, parts))
    rows = [[i, len(p)] for i, p in enumerate(parts)]
    print(render_table(["partition", "files"], rows,
                       title=f"{args.k}-way partition of largest component"))
    total = graph.total_weight or 1
    print(f"cut weight: {cut} ({100 * cut / total:.2f}% of total)")
    return 0


def _part_of(vertex: int, parts: List[set]) -> Optional[int]:
    for i, part in enumerate(parts):
        if vertex in part:
            return i
    return None


def cmd_trace_gen(args: argparse.Namespace) -> int:
    """Generate a synthetic compile trace in the interchange format."""
    from repro.core.traceio import dump_trace
    from repro.workloads.apps import (
        GIT_SPEC, LINUX_SPEC, THRIFT_SPEC, CompileApplication, scaled_spec)

    name, _, scale_s = args.app.partition(":")
    specs = {"thrift": THRIFT_SPEC, "git": GIT_SPEC, "linux": LINUX_SPEC}
    if name not in specs:
        print(f"error: unknown app {name!r} (choose from {sorted(specs)})",
              file=sys.stderr)
        return 2
    spec = specs[name]
    if scale_s:
        spec = scaled_spec(spec, float(scale_s))
    app = CompileApplication(spec)
    with open(args.output, "w") as fh:
        count = dump_trace(app.trace(), fh)
    print(f"wrote {count} events ({spec.vertex_count} files) to {args.output}")
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    """Show which index access paths a query would use."""
    service, client = _build_service(args.nodes, args.files)
    try:
        plans = client.explain(args.query)
    except Exception as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for acg_id, descriptions in sorted(plans.items()):
        for description in descriptions:
            print(f"ACG {acg_id}: {description}")
    return 0


def _ensure_benchmarks_importable() -> None:
    """Make the repo-root ``benchmarks`` package importable.

    The CLI is normally run with ``PYTHONPATH=src`` from the repo root;
    when it isn't, derive the repo root from this package's location.
    """
    try:
        import benchmarks  # noqa: F401
        return
    except ImportError:
        pass
    import repro

    root = pathlib.Path(repro.__file__).resolve().parents[2]
    if str(root) not in sys.path:
        sys.path.insert(0, str(root))
    import benchmarks  # noqa: F401


def cmd_bench(args: argparse.Namespace) -> int:
    """``repro bench``: run the unified benchmark harness / compare runs."""
    _ensure_benchmarks_importable()
    from benchmarks import harness

    if args.compare:
        old, new = (pathlib.Path(p) for p in args.compare)
        for path in (old, new):
            if not path.exists():
                print(f"error: {path} does not exist", file=sys.stderr)
                return 2
        report, failures = harness.compare(old, new, threshold=args.threshold)
        for line in report:
            print(line)
        if failures:
            print(f"FAIL: {len(failures)} regression(s) beyond "
                  f"{args.threshold:.0%}", file=sys.stderr)
            return 1
        print("OK: no regressions")
        return 0

    benches = harness.discover()
    if args.list:
        for key in sorted(benches):
            print(key)
        return 0
    if args.names:
        unknown = sorted(set(args.names) - set(benches))
        if unknown:
            print(f"error: unknown bench(es): {', '.join(unknown)} "
                  f"(see `repro bench --list`)", file=sys.stderr)
            return 2
        selected = {name: benches[name] for name in args.names}
    else:
        selected = benches

    tier = "smoke" if args.smoke else ("full" if args.full else "default")
    from benchmarks.harness import BenchConfig

    cfg = BenchConfig(tier=tier, instrument=not args.no_instrument)
    out_dir = pathlib.Path(args.out)
    failed = []
    for key in sorted(selected):
        print(f"[bench] {key} (tier={cfg.tier}) ...", flush=True)
        try:
            artifact = harness.run_bench(key, selected[key], cfg)
        except Exception as exc:
            print(f"[bench] {key} FAILED: {exc}", file=sys.stderr)
            failed.append(key)
            continue
        path = harness.write_artifact(key, artifact, out_dir)
        n_lat = len(artifact["latency_s"])
        print(f"[bench] {key}: {n_lat} latencies, "
              f"{artifact['wall_clock_s']:.1f}s wall -> {path}")
        if args.write_results:
            for written in harness.write_results_texts(
                    artifact, pathlib.Path(args.write_results)):
                print(f"[bench] {key}: wrote {written}")
    if failed:
        print(f"error: {len(failed)} bench(es) failed: {', '.join(failed)}",
              file=sys.stderr)
        return 1
    return 0


def cmd_results(args: argparse.Namespace) -> int:
    """``repro results``: print the regenerated paper tables."""
    directory = pathlib.Path(args.dir)
    if not directory.is_dir():
        print(f"error: no results directory at {directory} "
              "(run `pytest benchmarks/ --benchmark-only` first)",
              file=sys.stderr)
        return 2
    files = sorted(directory.glob("*.txt"))
    if not files:
        print("no result files found", file=sys.stderr)
        return 2
    for path in files:
        print(path.read_text().rstrip())
        print()
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """``repro chaos``: run a seeded fault program twice and audit it.

    Exit codes: 0 — deterministic and invariant-clean; 1 — invariant
    violations; 2 — the two runs of the same seed diverged
    (nondeterminism, itself a bug in the simulation).
    """
    from repro.chaos import ChaosRunner

    reports = []
    for attempt in range(2):
        runner = ChaosRunner(args.seed, steps=args.steps, nodes=args.nodes,
                             settle_every=args.settle_every, rf=args.rf,
                             master_faults=args.master_faults,
                             tiering=args.tiering)
        runner.run()
        reports.append(runner.report_json())
    report = json.loads(reports[0])
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        counters = report["counters"]
        print(f"chaos seed={report['seed']} steps={report['steps']} "
              f"nodes={report['nodes']} rf={report.get('rf', 1)}"
              + (" master-faults" if report.get("master_faults") else "")
              + (" tiering" if report.get("tiering", {}).get("enabled")
                 else ""))
        print(f"  virtual time      {report['virtual_time_s']:.1f}s")
        print(f"  files             {report['files_created']} created, "
              f"{report['files_deleted']} deleted, "
              f"{report['files_acked_live']} acked live")
        print(f"  injected          {report['injected']['dropped']} dropped, "
              f"{report['injected']['duplicated']} duplicated, "
              f"{report['injected']['delayed']} delayed, "
              f"{report['injected']['disk_errors']} disk errors")
        print(f"  rpc               {counters['cluster.rpc.retries']:.0f} retries, "
              f"{counters['cluster.rpc.timeouts']:.0f} timeouts, "
              f"{counters['cluster.rpc.failures']:.0f} gave up")
        print(f"  failovers         {counters['cluster.master.failovers']:.0f} "
              f"({counters['cluster.master.auto_failovers']:.0f} automatic), "
              f"{counters['cluster.master.rejoins']:.0f} rejoins")
        if report.get("rf", 1) > 1:
            print(f"  replication       "
                  f"{counters.get('cluster.master.promotions', 0):.0f} promotions, "
                  f"{counters.get('cluster.master.failover_deferred', 0):.0f} deferred, "
                  f"{counters.get('cluster.client.hedges', 0):.0f} hedges "
                  f"({counters.get('cluster.client.hedge_wins', 0):.0f} wins)")
        master = report.get("master", {})
        if report.get("master_faults") or master.get("promotions"):
            print(f"  master            term {master.get('term', 1)} "
                  f"(acting {master.get('acting', 'master')}), "
                  f"{master.get('promotions', 0):.0f} promotions, "
                  f"{master.get('deposed', 0):.0f} deposed, "
                  f"{master.get('restarts', 0):.0f} restarts, "
                  f"{master.get('fences', 0)} fences")
        tiers = report.get("tiering", {})
        if tiers.get("enabled"):
            objstore = tiers.get("object_store", {})
            print(f"  tiering           {tiers['freezes']} freezes, "
                  f"{tiers['thaws']} thaws, {tiers['hydrations']} hydrations, "
                  f"{tiers['fallbacks']} fallbacks, "
                  f"{tiers['repairs']} repairs "
                  f"({tiers['frozen_now']} frozen now)")
            print(f"  object store      {objstore.get('objects', 0)} objects / "
                  f"{objstore.get('bytes', 0)} B, "
                  f"{objstore.get('gets', 0)} gets, "
                  f"{objstore.get('puts', 0)} puts, "
                  f"{objstore.get('errors', 0)} errors "
                  f"(injected {report['injected'].get('object_errors', 0)} "
                  f"errors, {report['injected'].get('slow_hydrations', 0)} "
                  f"slow hydrations)")
        print(f"  degraded queries  {report['queries_degraded']}")
        print(f"  wal replay drops  {report['wal_replay_dropped']}")
        print(f"  violations        {len(report['violations'])}")
        for violation in report["violations"]:
            print(f"    - step {violation['step']}: {violation['kind']}: "
                  f"{violation['detail']}")
    if reports[0] != reports[1]:
        print("NONDETERMINISM: two runs of the same seed produced "
              "different reports", file=sys.stderr)
        return 2
    if report["violations"]:
        return 1
    if not args.json:
        print("deterministic: two runs produced bit-identical reports; "
              "0 invariant violations")
    return 0


def _observed_service(args: argparse.Namespace):
    """A deployment with a populated journal for ``status`` / ``events``.

    Default: a fresh demo cluster (placement events only — a healthy
    baseline).  With ``--chaos-seed`` the cluster is first driven through
    a seeded fault program, so the journal shows crashes, fences,
    failovers, and the health verdict transitions they caused.
    """
    if args.chaos_seed is not None:
        from repro.chaos import ChaosRunner

        runner = ChaosRunner(args.chaos_seed, steps=args.chaos_steps,
                             nodes=args.nodes, rf=args.rf,
                             master_faults=args.master_faults)
        runner.run()
        return runner.service
    service = PropellerService(num_index_nodes=args.nodes,
                               replication_factor=args.rf)
    client = service.make_client()
    client.create_index("by_size", IndexKind.BTREE, ["size"])
    paths = populate_namespace(service.vfs, args.files, seed=1)
    client.index_paths(paths, pid=1)
    client.flush_updates()
    service.commit_all()
    service.advance(2.0)
    return service


def cmd_status(args: argparse.Namespace) -> int:
    """``repro status``: the live health plane as one snapshot dashboard.

    Exit code mirrors the verdict: 0 healthy, 1 degraded, 2 critical —
    so scripts can gate on cluster health directly.
    """
    from repro.obs.export import render_journal, render_slo

    service = _observed_service(args)
    status = service.status(events_tail=args.events)
    verdict = status["health"]["verdict"]
    code = {"healthy": 0, "degraded": 1, "critical": 2}.get(verdict, 2)
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return code
    health = status["health"]
    n_masters = len(getattr(service, "masters", [service.master]))
    print(f"cluster: {n_masters} master(s) + {args.nodes} index node(s), "
          f"rf={args.rf}; "
          f"{service.total_indexed_files()} files in "
          f"{service.acg_count()} ACGs; t={service.clock.now():.1f}s")
    causes = f"  ({', '.join(health['causes'])})" if health["causes"] else ""
    print(f"health: {verdict.upper()}{causes}")
    master = status.get("master", {})
    roles = " ".join(
        f"{name}={r['role']}{'' if r['up'] else '(down)'}"
        for name, r in sorted(master.get("roles", {}).items()))
    lag = master.get("standby_lag")
    print(f"master: term {master.get('term')}  {roles}  "
          f"standby-lag {'-' if lag is None else lag}  "
          f"promotions {master.get('promotions', 0):.0f}  "
          f"fences {master.get('fences', 0)}")
    print()
    rows = [[name, n["verdict"], ", ".join(n["causes"]) or "-"]
            for name, n in sorted(health["nodes"].items())]
    print(render_table(["node", "verdict", "causes"], rows, title="nodes"))
    print()
    tiers = _render_memory_tiers(service)
    if tiers:
        print(tiers)
        print()
    gauges = health["gauges"]
    print(render_table(["gauge", "value"],
                       [[name, gauges[name]] for name in sorted(gauges)],
                       title="health gauges"))
    print()
    print(render_slo(service.slos))
    print()
    print(render_journal(service.journal, tail=args.events))
    return code


def cmd_events(args: argparse.Namespace) -> int:
    """``repro events``: the cluster event journal, filtered."""
    from repro.obs.export import _event_context

    service = _observed_service(args)
    events = service.journal.events(type=args.type, since=args.since,
                                    acg_id=args.partition, node=args.node)
    if args.tail > 0:
        events = events[-args.tail:]
    if args.json:
        print(json.dumps({"digest": service.journal.digest(),
                          "events": [e.to_dict() for e in events]},
                         indent=2, sort_keys=True))
        return 0
    for event in events:
        d = event.to_dict()
        context = _event_context(d)
        detail = " ".join(f"{k}={v}"
                          for k, v in d.get("detail", {}).items())
        line = f"{d['seq']:>5d}  {d['t']:>9.3f}s  {d['type']:<24}"
        if context:
            line += f"  [{context}]"
        if detail:
            line += f"  {detail}"
        print(line)
    digest = service.journal.digest()
    print(f"# {len(events)} shown / {digest['retained']} retained / "
          f"{digest['total']} total ({digest['truncated']} evicted)")
    return 0


def _add_observed_cluster_args(parser: argparse.ArgumentParser) -> None:
    """Shared cluster-shape flags for ``status`` and ``events``."""
    parser.add_argument("--nodes", type=int, default=3,
                        help="index node count (default 3)")
    parser.add_argument("--files", type=int, default=500,
                        help="namespace size for the demo build "
                             "(default 500; ignored with --chaos-seed)")
    parser.add_argument("--rf", type=int, default=2,
                        help="partition replication factor (default 2)")
    parser.add_argument("--chaos-seed", type=int, default=None,
                        help="drive the cluster through a seeded fault "
                             "program first (eventful journal)")
    parser.add_argument("--chaos-steps", type=int, default=30,
                        help="fault-program length for --chaos-seed "
                             "(default 30)")
    parser.add_argument("--master-faults", action="store_true",
                        help="with --chaos-seed: include control-plane "
                             "faults (standby Master deployed)")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Propeller (ICDCS'14) reproduction — demo CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run a live cluster demo")
    demo.add_argument("--nodes", type=int, default=4)
    demo.add_argument("--files", type=int, default=2000)
    demo.set_defaults(func=cmd_demo)

    query = sub.add_parser("query", help="search a generated namespace")
    query.add_argument("query")
    query.add_argument("--files", type=int, default=2000)
    query.add_argument("--nodes", type=int, default=4)
    query.add_argument("--limit", type=int, default=20)
    query.add_argument("--profile", action="store_true",
                       help="print the traced span-tree breakdown after "
                            "the results")
    query.set_defaults(func=cmd_query)

    profile = sub.add_parser(
        "profile", help="EXPLAIN ANALYZE a query against a demo cluster")
    profile.add_argument("query")
    profile.add_argument("--files", type=int, default=2000)
    profile.add_argument("--nodes", type=int, default=4)
    profile.add_argument("--json", action="store_true",
                         help="emit the profile as JSON instead of tables")
    profile.set_defaults(func=cmd_profile)

    partition = sub.add_parser("partition", help="partition an ACG")
    source = partition.add_mutually_exclusive_group(required=True)
    source.add_argument("--trace", help="trace file (see core.traceio)")
    source.add_argument("--app", help="thrift | git | linux[:scale]")
    partition.add_argument("--k", type=int, default=2)
    partition.set_defaults(func=cmd_partition)

    trace_gen = sub.add_parser("trace-gen",
                               help="emit a synthetic compile trace file")
    trace_gen.add_argument("--app", required=True,
                           help="thrift | git | linux[:scale]")
    trace_gen.add_argument("--output", "-o", required=True)
    trace_gen.set_defaults(func=cmd_trace_gen)

    explain = sub.add_parser("explain", help="show a query's access paths")
    explain.add_argument("query")
    explain.add_argument("--files", type=int, default=2000)
    explain.add_argument("--nodes", type=int, default=2)
    explain.set_defaults(func=cmd_explain)

    results = sub.add_parser("results", help="print regenerated tables")
    results.add_argument("--dir", default="benchmarks/results")
    results.set_defaults(func=cmd_results)

    bench = sub.add_parser(
        "bench", help="run the unified benchmark harness (BENCH_*.json)")
    bench.add_argument("names", nargs="*",
                       help="bench keys to run (default: all; see --list)")
    tier_group = bench.add_mutually_exclusive_group()
    tier_group.add_argument("--smoke", action="store_true",
                            help="smallest datasets (CI regression gate)")
    tier_group.add_argument("--full", action="store_true",
                            help="paper-scale datasets (REPRO_FULL analog)")
    bench.add_argument("--out", default=".",
                       help="directory for BENCH_*.json (default: repo root)")
    bench.add_argument("--list", action="store_true",
                       help="list discoverable benches and exit")
    bench.add_argument("--no-instrument", action="store_true",
                       help="disable timeline/freshness instrumentation")
    bench.add_argument("--write-results", metavar="DIR",
                       help="also regenerate fixed-width tables under DIR")
    bench.add_argument("--compare", nargs=2, metavar=("OLD", "NEW"),
                       help="compare two artifacts or directories; exits "
                            "non-zero on latency regressions")
    bench.add_argument("--threshold", type=float, default=0.10,
                       help="relative regression threshold for --compare "
                            "(default 0.10)")
    bench.set_defaults(func=cmd_bench)

    chaos = sub.add_parser(
        "chaos", help="run a deterministic fault-injection program and "
                      "audit crash-consistency invariants")
    chaos.add_argument("--seed", type=int, default=0,
                       help="schedule/injection seed (default 0)")
    chaos.add_argument("--steps", type=int, default=50,
                       help="fault-program length (default 50)")
    chaos.add_argument("--nodes", type=int, default=3,
                       help="index node count (default 3)")
    chaos.add_argument("--settle-every", type=int, default=10,
                       help="steps between invariant audits (default 10)")
    chaos.add_argument("--rf", type=int, default=1,
                       help="partition replication factor (default 1; "
                            "2/3 enable replica sets, promotion failover "
                            "and the replicas-converge invariant)")
    chaos.add_argument("--master-faults", action="store_true",
                       help="deploy a warm standby Master and mix "
                            "master_crash / master_isolation ops into the "
                            "schedule (control-plane failover chaos)")
    chaos.add_argument("--tiering", action="store_true",
                       help="enable tiered storage (cold partitions freeze "
                            "to the simulated object store) and mix "
                            "object_store_errors / slow_hydration ops into "
                            "the schedule")
    chaos.add_argument("--json", action="store_true",
                       help="emit the full report as JSON")
    chaos.set_defaults(func=cmd_chaos)

    status = sub.add_parser(
        "status", help="snapshot health dashboard: verdicts, gauges, "
                       "SLO burn rates, recent events")
    _add_observed_cluster_args(status)
    status.add_argument("--events", type=int, default=15,
                        help="journal tail length to show (default 15)")
    status.add_argument("--json", action="store_true",
                        help="emit the full status snapshot as JSON")
    status.set_defaults(func=cmd_status)

    events = sub.add_parser(
        "events", help="dump the cluster event journal, filtered")
    _add_observed_cluster_args(events)
    events.add_argument("--type", default=None,
                        help="event type, exact or dotted prefix "
                             "(e.g. failover, repl.fence)")
    events.add_argument("--since", type=float, default=None,
                        help="only events at/after this virtual time (s)")
    events.add_argument("--partition", type=int, default=None,
                        help="only events for this partition (ACG id)")
    events.add_argument("--node", default=None,
                        help="only events from this node")
    events.add_argument("--tail", type=int, default=0,
                        help="only the most recent N matches (default all)")
    events.add_argument("--json", action="store_true",
                        help="emit digest + events as JSON")
    events.set_defaults(func=cmd_events)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
