"""MiniSQL — the centralized relational baseline.

Models the paper's MySQL setup (Section V.B): one machine, two tables —
``files`` (full path + inode attributes) and ``keywords`` (keyword → file,
keywords extracted from the path) — with *global* B+tree indices over the
attributes, an InnoDB-style buffer pool (default 2 GB), a redo log with
group commit per batch (batch size 128 in the paper), and per-statement
parse/transaction CPU overhead.

The contrast with Propeller is structural, not a constant: every MiniSQL
update descends a B+tree spanning the whole dataset, so index pages stop
fitting in the buffer pool as the dataset scales and updates start paying
random HDD reads — while Propeller's per-ACG indices stay small and hot.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.cluster.messages import IndexUpdate, UpdateOp
from repro.indexstructures.base import IndexKind
from repro.indexstructures.btree import BPlusTree
from repro.obs.tracing import NULL_TRACER
from repro.query.ast import Predicate
from repro.query.executor import AttributeStore, execute_plans
from repro.query.parser import parse_query
from repro.query.planner import KEYWORD_ATTR, IndexSpec, plan_query_set
from repro.sim.machine import Machine
from repro.sim.memory import PageCache

DEFAULT_BUFFER_POOL_BYTES = 2 * 1024**3
DEFAULT_BATCH_SIZE = 128

_STATEMENT_OPS = 40_000        # SQL parse + plan + txn bookkeeping per row
_REDO_RECORD_BYTES = 256


class _PagedStore(AttributeStore):
    """Attribute store whose row reads touch buffer-pool pages.

    Examining a candidate row during query evaluation costs a page access
    — a random disk read when the row page is not in the pool.  This is
    what makes keyword-candidate verification expensive on a big table.
    """

    ROWS_PER_PAGE = 32

    def __init__(self, buffer_pool: PageCache) -> None:
        super().__init__()
        self._pool = buffer_pool

    def attrs(self, file_id: int):
        self._pool.touch("rows", file_id // self.ROWS_PER_PAGE)
        return super().attrs(file_id)


class MiniSQL:
    """A centralized two-table store with global B+tree indices.

    The default schema follows the paper's MySQL setup (Section V.B): one
    table with the full path and inode attributes, one keyword→path
    table.  Only the primary key and the keyword column are indexed —
    pass ``indexed_attrs`` to add secondary B+tree indices (the Figure 8
    experiments use one on size/mtime; Table III's attribute queries run
    without one and scan, as the paper's schema implies).
    """

    def __init__(self, machine: Machine,
                 indexed_attrs: Sequence[str] = ("size", "mtime"),
                 buffer_pool_bytes: int = DEFAULT_BUFFER_POOL_BYTES,
                 batch_size: int = DEFAULT_BATCH_SIZE,
                 btree_order: int = 64,
                 tracer=NULL_TRACER) -> None:
        self.machine = machine
        self.batch_size = batch_size
        self.tracer = tracer
        self.buffer_pool = PageCache(machine.disk, buffer_pool_bytes)
        self.buffer_pool.tracer = tracer
        machine.disk.tracer = tracer
        self.store: AttributeStore = _PagedStore(self.buffer_pool)
        self.indexed_attrs = tuple(indexed_attrs)
        self._indexes: Dict[str, BPlusTree] = {
            attr: BPlusTree(order=btree_order, page_hook=self._hook(f"idx:{attr}"))
            for attr in self.indexed_attrs
        }
        self._keyword_index = BPlusTree(order=btree_order,
                                        page_hook=self._hook("idx:keyword"))
        self._specs = [IndexSpec(f"files_{attr}", IndexKind.BTREE, (attr,))
                       for attr in self.indexed_attrs]
        self._pending: List[IndexUpdate] = []
        self.rows_written = 0
        self.queries_served = 0

    def _hook(self, namespace: str):
        cache = self.buffer_pool

        def touch(node_id: int, write: bool) -> None:
            cache.touch(namespace, node_id, write=write)

        return touch

    # -- DML ------------------------------------------------------------------

    def insert_file(self, file_id: int, attrs: Dict[str, Any],
                    path: Optional[str] = None) -> None:
        """Queue an INSERT/REPLACE; executes when the batch fills."""
        self._pending.append(IndexUpdate.upsert(file_id, attrs, path=path))
        if len(self._pending) >= self.batch_size:
            self.flush()

    def delete_file(self, file_id: int) -> None:
        """Queue a DELETE; executes when the batch fills."""
        self._pending.append(IndexUpdate.delete(file_id))
        if len(self._pending) >= self.batch_size:
            self.flush()

    def flush(self) -> int:
        """Group commit: apply the batch and force one redo-log write."""
        if not self._pending:
            return 0
        batch, self._pending = self._pending, []
        with self.tracer.span("sql_group_commit", rows=len(batch)):
            for update in batch:
                self._apply(update)
            self.machine.disk.append(_REDO_RECORD_BYTES * len(batch))
        return len(batch)

    def _deindex(self, file_id: int) -> None:
        old = self.store.attrs(file_id)
        for attr, index in self._indexes.items():
            if attr in old:
                index.remove(old[attr], file_id)
        for token in self.store.keywords(file_id):
            self._keyword_index.remove(token, file_id)

    def _apply(self, update: IndexUpdate) -> None:
        self.machine.compute(_STATEMENT_OPS)
        # Row-store page touch (clustered primary key).
        self.buffer_pool.touch("rows", update.file_id // 32, write=True)
        if update.op is UpdateOp.DELETE:
            self._deindex(update.file_id)
            self.store.drop(update.file_id)
            self.rows_written += 1
            return
        self._deindex(update.file_id)
        self.store.put(update.file_id, update.attr_dict, path=update.path)
        attrs = self.store.attrs(update.file_id)
        for attr, index in self._indexes.items():
            if attr in attrs:
                index.insert(attrs[attr], update.file_id)
        for token in self.store.keywords(update.file_id):
            self._keyword_index.insert(token, update.file_id)
        self.rows_written += 1

    # -- queries -------------------------------------------------------------------

    def query(self, text: str) -> Set[int]:
        """SELECT matching file ids (WHERE clause in the shared grammar)."""
        return self.query_predicate(parse_query(text))

    def query_predicate(self, predicate: Predicate) -> Set[int]:
        """SELECT matching file ids for a pre-parsed predicate."""
        with self.tracer.span("sql_query") as root:
            self.flush()  # a query sees every acknowledged write
            self.queries_served += 1
            now = self.machine.clock.now()
            self.machine.compute(_STATEMENT_OPS)
            with self.tracer.span("plan") as span:
                specs = list(self._specs)
                specs.append(IndexSpec("files_kw", IndexKind.HASH, (KEYWORD_ATTR,)))
                plans = plan_query_set(predicate, specs, now)
                span.set_attribute(
                    "access_path", "; ".join(p.describe() for p in plans))
            indexes: Dict[str, Any] = {f"files_{attr}": idx
                                       for attr, idx in self._indexes.items()}
            # The keyword table serves 'keyword:' terms; MiniSQL keeps it as a
            # B+tree, which answers exact-match gets just as well.
            indexes["files_kw"] = self._keyword_index
            with self.tracer.span("index_scan") as span:
                result = execute_plans(plans, predicate, indexes, self.store, now)
                self.machine.compute(500 * max(1, len(result)))
                span.set_attribute("matches", len(result))
            root.set_attribute("matches", len(result))
        return result

    def query_paths(self, text: str) -> List[str]:
        """SELECT matching paths, sorted."""
        ids = self.query(text)
        return sorted(p for p in (self.store.attrs(f).get("path") for f in ids)
                      if p is not None)

    def __len__(self) -> int:
        return len(self.store)
