"""Brute-force file search — Table V's baseline row.

Walks the live namespace evaluating the predicate on every inode, like a
``find`` over the whole tree.  Always 100% recall (it reads ground truth)
and always slow: it pays a stat for every file — a random disk access when
the dentry/inode caches are cold, a much cheaper cached lookup when warm —
which is exactly the cold/warm Real-time split in Table V.
"""

from __future__ import annotations

from typing import List, Optional

from repro.fs.vfs import VirtualFileSystem
from repro.obs.tracing import NULL_TRACER
from repro.query.ast import Predicate, matches
from repro.query.executor import tokenize_path
from repro.query.parser import parse_query
from repro.sim.memory import PageCache

_STAT_CPU_S = 2e-6  # getattr syscall + predicate evaluation


class BruteForceSearcher:
    """Full-scan search over a VFS with page-cache-aware stat costs."""

    def __init__(self, vfs: VirtualFileSystem, page_cache: Optional[PageCache] = None,
                 tracer=NULL_TRACER) -> None:
        self.vfs = vfs
        self.page_cache = page_cache
        self.tracer = tracer
        if page_cache is not None:
            page_cache.tracer = tracer

    def query(self, text: str) -> List[str]:
        """Scan for files matching the query text; returns sorted paths."""
        return self.query_predicate(parse_query(text))

    def query_predicate(self, predicate: Predicate) -> List[str]:
        """Scan for files matching a pre-parsed predicate."""
        now = self.vfs.clock.now()
        results: List[str] = []
        with self.tracer.span("bruteforce_scan") as span:
            examined = 0
            for path, inode in self.vfs.namespace.files():
                examined += 1
                if self.page_cache is not None:
                    # Inodes pack ~32 per metadata block.
                    self.page_cache.touch("inodes", inode.ino // 32)
                self.vfs.clock.charge(_STAT_CPU_S)
                attrs = {"size": inode.size, "mtime": inode.mtime,
                         "ctime": inode.ctime, "uid": inode.uid}
                attrs.update(inode.attributes)
                if matches(predicate, attrs, tokenize_path(path), now):
                    results.append(path)
            span.set_attribute("examined", examined)
            span.set_attribute("matches", len(results))
        return sorted(results)


def brute_force_search(vfs: VirtualFileSystem, text: str,
                       page_cache: Optional[PageCache] = None) -> List[str]:
    """One-shot helper: scan ``vfs`` for files matching ``text``."""
    return BruteForceSearcher(vfs, page_cache=page_cache).query(text)
