"""Comparison systems the paper evaluates against.

* :class:`MiniSQL` — the centralized relational baseline (the paper uses
  MySQL with two tables: file attributes and keyword→path);
* :class:`CrawlerSearchEngine` — the asynchronous crawling desktop search
  engine (the paper uses Apple Spotlight);
* :func:`brute_force_search` — the full-scan baseline of Table V.
"""

from repro.baselines.bruteforce import BruteForceSearcher, brute_force_search
from repro.baselines.crawler import (
    CrawlerConfig,
    CrawlerSearchEngine,
    PeriodicCrawler,
)
from repro.baselines.sqldb import MiniSQL

__all__ = [
    "BruteForceSearcher",
    "brute_force_search",
    "CrawlerConfig",
    "CrawlerSearchEngine",
    "PeriodicCrawler",
    "MiniSQL",
]
