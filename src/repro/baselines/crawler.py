"""Crawling-based desktop search engine (the Spotlight analog).

Captures the two properties the paper's Figures 1 and 11 hinge on:

* **Limited file-type coverage** — Spotlight indexes only file types it
  has importer plug-ins for, capping recall below 100% (60.6% on the
  paper's Dataset 1, 13.86% on Dataset 2) even when fully caught up;
* **Asynchronous re-indexing** — change notifications only mark files
  dirty; a background pass (rate-limited, like ``mdworker``) folds them
  into the queryable snapshot later.  While a pass is running the index
  is being rebuilt and queries return heavily degraded results — the
  paper observed recall dropping to 0 during re-indexing under ≥10
  file-copies-per-second of background load.

Queries hit the *snapshot*, never the live namespace, so results are
exactly as stale as the crawler is behind.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.fs.namespace import Inode
from repro.fs.notification import FsEvent, FsEventKind, NotificationQueue
from repro.fs.vfs import VirtualFileSystem
from repro.obs.freshness import NULL_FRESHNESS
from repro.query.ast import Predicate, matches
from repro.query.executor import tokenize_path
from repro.query.parser import parse_query
from repro.sim.events import EventLoop

# Extensions a default plug-in set understands (documents and media —
# the kinds of files desktop importers ship for).  Everything else is
# invisible to the engine, exactly like Spotlight skipping unknown types.
DEFAULT_SUPPORTED_EXTENSIONS = frozenset({
    "txt", "md", "pdf", "doc", "docx", "xls", "xlsx", "ppt", "pptx",
    "html", "htm", "xml", "plist", "rtf",
    "c", "h", "py", "js", "java",
    "jpg", "jpeg", "png", "gif", "tiff",
    "mp3", "m4a", "mov", "mp4",
})


def default_type_filter(path: str, inode: Inode) -> bool:
    """True when some importer plug-in covers this file."""
    _, _, ext = path.rpartition(".")
    return ext.lower() in DEFAULT_SUPPORTED_EXTENSIONS


@dataclass(frozen=True)
class CrawlerConfig:
    """Tunables for the crawling engine.

    ``reindex_rate_fps`` — how many dirty files one background pass folds
    in per second (mdworker-style throttling).
    ``pass_trigger_dirty`` — a pass starts once this many files are dirty
    (or on the periodic timer).
    ``pass_period_s`` — maximum time between passes.
    ``query_cost_s`` — fixed per-query service cost (IPC + index probe;
    Spotlight answered in ~20–30 ms on the paper's Mac Mini).
    ``degraded_recall_during_pass`` — fraction of the snapshot visible
    while the index is being rebuilt (the paper observed ~0).
    """

    reindex_rate_fps: float = 200.0
    pass_trigger_dirty: int = 64
    pass_period_s: float = 30.0
    query_cost_s: float = 0.025
    per_result_cost_s: float = 10e-6
    degraded_recall_during_pass: float = 0.0
    type_filter: Callable[[str, Inode], bool] = default_type_filter


@dataclass
class _SnapshotEntry:
    path: str
    attrs: Dict[str, Any]
    keywords: FrozenSet[str]


class CrawlerSearchEngine:
    """Notification-driven asynchronous indexer + snapshot query engine."""

    def __init__(self, vfs: VirtualFileSystem, loop: EventLoop,
                 config: CrawlerConfig = CrawlerConfig(),
                 freshness=NULL_FRESHNESS,
                 freshness_node: str = "crawler") -> None:
        self.vfs = vfs
        self.loop = loop
        self.config = config
        # The staleness probe equivalent to Propeller's: a change event
        # stamps at its notification timestamp and resolves when the file
        # is folded into the queryable snapshot — so Fig. 1's recall gap
        # can be retold as a staleness CDF against the same instrument.
        self.freshness = freshness
        self.freshness_node = freshness_node
        self.notifications = NotificationQueue()
        vfs.add_observer(self.notifications)
        self._snapshot: Dict[int, _SnapshotEntry] = {}
        self._dirty: Set[int] = set()
        self._dirty_paths: Dict[int, str] = {}
        self._deleted: Set[int] = set()
        self._reindexing_until: float = 0.0
        self.passes_run = 0
        self.files_indexed = 0
        self._schedule_next_pass()

    # -- indexing machinery ------------------------------------------------------

    def _schedule_next_pass(self) -> None:
        self.loop.schedule_after(self.config.pass_period_s, self._periodic_pass)

    def _periodic_pass(self) -> None:
        # The periodic pass must look at the notification queue itself —
        # a quiet engine (no queries arriving) still has to index.
        self._drain_to_dirty()
        self._run_pass()
        self._schedule_next_pass()

    def _drain_to_dirty(self) -> None:
        for event in self.notifications.drain():
            if event.kind is FsEventKind.DELETED:
                self._dirty.discard(event.ino)
                self._dirty_paths.pop(event.ino, None)
                self._deleted.add(event.ino)
            else:
                self.freshness.stamp(event.ino, event.timestamp)
                self._deleted.discard(event.ino)
                self._dirty.add(event.ino)
                self._dirty_paths[event.ino] = event.path

    def _ingest_notifications(self) -> None:
        self._drain_to_dirty()
        if len(self._dirty) >= self.config.pass_trigger_dirty:
            self._run_pass()

    def _run_pass(self) -> None:
        """One background re-index pass over the dirty set."""
        self._ingest_pending_deletes()
        if not self._dirty:
            return
        dirty, self._dirty = self._dirty, set()
        duration = len(dirty) / self.config.reindex_rate_fps
        now = self.vfs.clock.now()
        self._reindexing_until = max(self._reindexing_until, now) + duration
        for ino in dirty:
            path = self._dirty_paths.pop(ino, None)
            if path is None or not self.vfs.exists(path):
                self._snapshot.pop(ino, None)
                self.freshness.visible(self.freshness_node, ino,
                                       self._reindexing_until)
                continue
            inode = self.vfs.stat(path)
            if not self.config.type_filter(path, inode):
                # No importer plug-in: the change never becomes visible
                # (infinite staleness), so it leaves no sample.
                self.freshness.forget(ino)
                continue
            attrs = {"size": inode.size, "mtime": inode.mtime,
                     "ctime": inode.ctime, "uid": inode.uid}
            attrs.update(inode.attributes)
            self._snapshot[ino] = _SnapshotEntry(
                path=path, attrs=attrs, keywords=tokenize_path(path))
            self.files_indexed += 1
            # Queryable only once the (rate-limited) pass finishes.
            self.freshness.visible(self.freshness_node, ino,
                                   self._reindexing_until)
        self.passes_run += 1

    def _ingest_pending_deletes(self) -> None:
        now = self.vfs.clock.now()
        for ino in self._deleted:
            self._snapshot.pop(ino, None)
            self.freshness.visible(self.freshness_node, ino, now)
        self._deleted.clear()

    def full_rebuild(self) -> int:
        """Crawl the whole namespace from scratch (Spotlight's ``mdutil -E``).

        Charges crawl time for every file and replaces the snapshot.
        """
        self.notifications.drain()
        self._dirty.clear()
        self._dirty_paths.clear()
        self._deleted.clear()
        self._snapshot.clear()
        count = 0
        for path, inode in self.vfs.namespace.files():
            count += 1
            if not self.config.type_filter(path, inode):
                continue
            attrs = {"size": inode.size, "mtime": inode.mtime,
                     "ctime": inode.ctime, "uid": inode.uid}
            attrs.update(inode.attributes)
            self._snapshot[inode.ino] = _SnapshotEntry(
                path=path, attrs=attrs, keywords=tokenize_path(path))
        self.vfs.clock.charge(count / self.config.reindex_rate_fps)
        now = self.vfs.clock.now()
        for ino in self._snapshot:
            self.freshness.visible(self.freshness_node, ino, now)
        self.files_indexed += len(self._snapshot)
        self.passes_run += 1
        return len(self._snapshot)

    # -- queries --------------------------------------------------------------------

    @property
    def reindex_in_progress(self) -> bool:
        """True while a re-index pass is still running (recall degrades)."""
        return self.vfs.clock.now() < self._reindexing_until

    def query(self, text: str) -> List[str]:
        """Query the snapshot; returns paths (possibly stale/partial)."""
        return self.query_predicate(parse_query(text))

    def query_predicate(self, predicate: Predicate) -> List[str]:
        """Query the snapshot with a pre-parsed predicate."""
        self._ingest_notifications()
        now = self.vfs.clock.now()
        self.vfs.clock.charge(self.config.query_cost_s)
        matching = [entry for entry in self._snapshot.values()
                    if matches(predicate, entry.attrs, entry.keywords, now)]
        if self.reindex_in_progress:
            keep = int(len(matching) * self.config.degraded_recall_during_pass)
            matching = matching[:keep]
        self.vfs.clock.charge(self.config.per_result_cost_s * len(matching))
        return sorted(entry.path for entry in matching)

    @property
    def snapshot_size(self) -> int:
        """Files currently in the queryable snapshot."""
        return len(self._snapshot)

    @property
    def dirty_backlog(self) -> int:
        """Changes known but not yet folded into the snapshot."""
        return len(self._dirty) + len(self.notifications)


class PeriodicCrawler:
    """A crawling search *appliance*: no change notifications at all.

    Section II contrasts desktop engines (Spotlight, Google Desktop),
    which integrate file-system notification, with distributed crawling
    appliances (Google Search Appliance-style), which simply re-crawl
    the whole namespace on a schedule.  This is the latter: the snapshot
    is as stale as the time since the last completed crawl, and a crawl
    of N files takes N / crawl_rate seconds during which the snapshot
    stays at its previous state (the appliance serves the old index
    while building the new one).
    """

    def __init__(self, vfs: VirtualFileSystem, loop: EventLoop,
                 crawl_period_s: float = 300.0,
                 crawl_rate_fps: float = 200.0,
                 query_cost_s: float = 0.03,
                 type_filter: Callable[[str, Inode], bool] = default_type_filter,
                 ) -> None:
        self.vfs = vfs
        self.loop = loop
        self.crawl_period_s = crawl_period_s
        self.crawl_rate_fps = crawl_rate_fps
        self.query_cost_s = query_cost_s
        self.type_filter = type_filter
        self._snapshot: Dict[int, _SnapshotEntry] = {}
        self._building: Optional[Dict[int, _SnapshotEntry]] = None
        self.crawls_completed = 0
        loop.schedule_after(self.crawl_period_s, self._start_crawl)

    def _start_crawl(self, reschedule: bool = True) -> None:
        """Walk the whole namespace; swap the snapshot when done."""
        building: Dict[int, _SnapshotEntry] = {}
        count = 0
        for path, inode in self.vfs.namespace.files():
            count += 1
            if not self.type_filter(path, inode):
                continue
            attrs = {"size": inode.size, "mtime": inode.mtime,
                     "ctime": inode.ctime, "uid": inode.uid}
            attrs.update(inode.attributes)
            building[inode.ino] = _SnapshotEntry(
                path=path, attrs=attrs, keywords=tokenize_path(path))
        # The crawl takes wall time; the *old* snapshot serves meanwhile,
        # so the swap is scheduled at crawl completion.
        duration = count / self.crawl_rate_fps

        def finish() -> None:
            self._snapshot = building
            self.crawls_completed += 1

        self.loop.schedule_after(duration, finish)
        if reschedule:
            self.loop.schedule_after(self.crawl_period_s, self._start_crawl)

    def crawl_now(self) -> int:
        """Synchronous initial crawl (charges its duration immediately).

        Does not add another periodic chain — the constructor's schedule
        keeps ticking independently.
        """
        self._start_crawl(reschedule=False)
        deadline = self.loop.next_deadline()
        self.loop.run_until(self.vfs.clock.now()
                            + self.vfs.namespace.file_count / self.crawl_rate_fps
                            + 1e-6)
        return len(self._snapshot)

    def query(self, text: str) -> List[str]:
        return self.query_predicate(parse_query(text))

    def query_predicate(self, predicate: Predicate) -> List[str]:
        """Query the snapshot with a pre-parsed predicate."""
        now = self.vfs.clock.now()
        self.vfs.clock.charge(self.query_cost_s)
        return sorted(entry.path for entry in self._snapshot.values()
                      if matches(predicate, entry.attrs, entry.keywords, now))
