"""Metrics registry.

Components register instruments under hierarchical dotted names
(``cluster.in1.disk.reads``) so operators can snapshot a whole deployment
— or any subtree of it — in one call.  Three instrument kinds:

* :class:`Counter` — monotonically increasing event counts;
* :class:`Gauge` — point-in-time values, either set explicitly or backed
  by a callable that reads live state on every snapshot (how
  :meth:`PropellerService.stats` stays in sync without push updates);
* :class:`Histogram` — value distributions with fixed buckets for export
  plus a bounded reservoir for p50/p95/p99, so a registry never grows
  with the number of observations.

Instruments charge **zero simulated time**: they are bookkeeping about
the simulation, not part of it.
"""

from __future__ import annotations

import bisect
import random
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError

# Log-spaced latency buckets from 1 µs to 100 s — wide enough for both a
# page-cache hit (~0.2 µs lands in the underflow bucket) and a cold
# multi-second scan.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    base * 10.0 ** exp
    for exp in range(-6, 3)
    for base in (1.0, 2.5, 5.0)
)

DEFAULT_RESERVOIR = 1024
_RESERVOIR_SEED = 0x5EED


class Counter:
    """A monotonically increasing count of events."""

    kind = "counter"
    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be non-negative) events."""
        if n < 0:
            raise SimulationError(f"counter {self.name} cannot decrease: {n}")
        self._value += n

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A point-in-time value, set explicitly by its owner."""

    kind = "gauge"
    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: Any = 0

    def set(self, value: Any) -> None:
        self._value = value

    @property
    def value(self) -> Any:
        return self._value


class CallableGauge:
    """A gauge backed by a zero-argument callable, read on every access.

    The natural fit for values the system already tracks (queue depths,
    resident bytes): registering a closure avoids double bookkeeping and
    can never drift from the source of truth.
    """

    kind = "gauge"
    __slots__ = ("name", "_fn")

    def __init__(self, name: str, fn: Callable[[], Any]) -> None:
        self.name = name
        self._fn = fn

    @property
    def value(self) -> Any:
        return self._fn()


class Histogram:
    """Fixed-bucket histogram plus a bounded reservoir for percentiles.

    Bucket counts are exact (good for export and rate math); percentiles
    come from a uniform reservoir sample of at most ``reservoir_size``
    observations, so memory stays bounded no matter how long a benchmark
    runs.  The reservoir RNG is seeded per-instrument, keeping simulated
    runs deterministic.

    ``unit`` names what one observation measures — ``"s"`` (seconds, the
    default) renders as µs/ms/s; anything else (``"count"``, ``"bytes"``)
    renders as a plain number.
    """

    kind = "histogram"

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS,
                 reservoir_size: int = DEFAULT_RESERVOIR,
                 unit: str = "s") -> None:
        if reservoir_size < 1:
            raise SimulationError(f"reservoir must hold at least 1 sample: {reservoir_size}")
        self.name = name
        self.unit = unit
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        if not self.buckets:
            raise SimulationError("histogram needs at least one bucket bound")
        # counts[i] covers (buckets[i-1], buckets[i]]; one extra overflow slot.
        self.bucket_counts: List[int] = [0] * (len(self.buckets) + 1)
        self._reservoir: List[float] = []
        self._reservoir_size = reservoir_size
        self._rng = random.Random(_RESERVOIR_SEED)
        self.count = 0
        self.total = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        self._min = value if self._min is None else min(self._min, value)
        self._max = value if self._max is None else max(self._max, value)
        self.bucket_counts[bisect.bisect_left(self.buckets, value)] += 1
        if len(self._reservoir) < self._reservoir_size:
            self._reservoir.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self._reservoir_size:
                self._reservoir[slot] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def minimum(self) -> float:
        return self._min if self._min is not None else 0.0

    @property
    def maximum(self) -> float:
        return self._max if self._max is not None else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile over the reservoir, ``p`` in [0, 100]."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100]: {p}")
        if not self._reservoir:
            return 0.0
        ordered = sorted(self._reservoir)
        rank = max(1, -(-int(p * len(ordered)) // 100))  # ceil without math
        return ordered[min(rank, len(ordered)) - 1]

    @property
    def p50(self) -> float:
        """Median over the reservoir."""
        return self.percentile(50)

    @property
    def p95(self) -> float:
        """95th percentile over the reservoir."""
        return self.percentile(95)

    @property
    def p99(self) -> float:
        """99th percentile over the reservoir."""
        return self.percentile(99)

    def reservoir_values(self) -> List[float]:
        """The retained sample, sorted — enough to draw an empirical CDF."""
        return sorted(self._reservoir)

    def summary(self) -> Dict[str, float]:
        """count/mean/min/p50/p95/p99/max in one dict (what exporters show)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.maximum,
        }


class MetricsRegistry:
    """All of a deployment's instruments, keyed by hierarchical name.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first call
    for a name creates the instrument, later calls return the same object
    (so call sites never need to pre-register).  Asking for an existing
    name as a *different* kind is a bug and raises.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Any] = {}

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def _get_or_create(self, name: str, cls, *args, **kwargs):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name, *args, **kwargs)
            self._instruments[name] = instrument
            return instrument
        if not isinstance(instrument, cls):
            raise SimulationError(
                f"metric {name!r} already registered as {instrument.kind}")
        return instrument

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the (settable) gauge called ``name``."""
        return self._get_or_create(name, Gauge)

    def gauge_fn(self, name: str, fn: Callable[[], Any]) -> CallableGauge:
        """Register (or replace) a callable-backed gauge.

        Re-registering is allowed on purpose: when a component is rebuilt
        (failover, restore) the fresh closure must win over the stale one.
        """
        gauge = CallableGauge(name, fn)
        existing = self._instruments.get(name)
        if existing is not None and not isinstance(existing, CallableGauge):
            raise SimulationError(
                f"metric {name!r} already registered as {existing.kind}")
        self._instruments[name] = gauge
        return gauge

    def histogram(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS,
                  reservoir_size: int = DEFAULT_RESERVOIR,
                  unit: str = "s") -> Histogram:
        """Get or create the histogram called ``name``."""
        return self._get_or_create(name, Histogram, buckets, reservoir_size,
                                   unit=unit)

    def value(self, name: str) -> Any:
        """The current value of a counter or gauge (raises on unknown)."""
        try:
            instrument = self._instruments[name]
        except KeyError:
            raise SimulationError(f"unknown metric: {name}") from None
        if isinstance(instrument, Histogram):
            return instrument.summary()
        return instrument.value

    def find(self, prefix: str) -> Dict[str, Any]:
        """All instruments whose name is ``prefix`` or sits under it."""
        dotted = prefix.rstrip(".") + "."
        return {name: inst for name, inst in self._instruments.items()
                if name == prefix or name.startswith(dotted)}

    def names(self) -> List[str]:
        """Every registered name, sorted."""
        return sorted(self._instruments)

    def items(self, prefix: str = ""):
        """Yield ``(name, instrument)`` pairs in name order.

        The one iteration primitive every exporter shares — no re-lookup
        dance, and ``prefix`` scopes it to a subtree like :meth:`find`.
        """
        selected = self.find(prefix) if prefix else self._instruments
        for name in sorted(selected):
            yield name, selected[name]

    def snapshot(self, prefix: str = "") -> Dict[str, Any]:
        """name → value (histograms become their summary dict), sorted.

        Callable gauges are evaluated at snapshot time, so the result is
        a consistent point-in-time view of live state.
        """
        return {name: self.value(name) for name, _ in self.items(prefix)}
