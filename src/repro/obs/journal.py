"""The cluster event journal: one causally-ordered record of what happened.

Failovers, promotions, migrations, epoch bumps, fence rejections, node
lifecycle, injected faults, and SLO breaches were scattered across
ad-hoc lists (``FailoverEvent``/``MigrationEvent``), per-node counters,
and nothing at all.  The :class:`EventJournal` unifies them: every
subsystem emits typed structured events into one bounded, virtual-clock
-ordered journal, each event carrying the source node, the partition
(ACG) it concerns, the replication and routing epochs in force, and the
id of the trace span that was open when it happened — so a fence on an
Index Node can be correlated to the failover span on the Master that
caused it.

Event taxonomy (the ``type`` field, dotted and prefix-queryable):

* ``failover.promoted`` / ``failover.adopted`` / ``failover.deferred``
  — one per failover round, payload = the ``FailoverEvent`` record;
* ``migration.start`` / ``migration.done`` / ``migration.aborted`` /
  ``migration.finish_deferred`` — online-migration lifecycle, payload
  on ``start`` = the ``MigrationEvent`` record (mutated in place as the
  protocol progresses, exactly as the old ``migration_log`` was);
* ``route.epoch_bump`` — a partition's routing changed;
* ``repl.epoch_bump`` — a replica set entered a new replication epoch
  (membership change, log-generation restart, or promotion fence);
* ``repl.fence`` — a node rejected a stale-epoch stream or install;
* ``repl.depose`` — a fenced primary stopped replicating a partition;
* ``master.promote`` / ``master.depose`` / ``master.fence`` /
  ``master.restart`` — control-plane failover: a warm standby took over
  with a term bump, a deposed Master self-fenced after an Index Node
  rejected its term, a node rejected a stale-term Master RPC, or a
  crashed Master replayed its meta-WAL back into service;
* ``node.crash`` / ``node.restart`` / ``node.rejoin`` — Index Node
  lifecycle;
* ``search.degraded`` / ``search.partial`` — a client answer that
  could not cover every partition;
* ``chaos.fault_injected`` — a fault-injection configuration change;
* ``slo.breach`` / ``slo.recover`` — burn-rate alerting transitions
  (see :mod:`repro.obs.slo`);
* ``health.degraded`` / ``health.critical`` / ``health.healthy`` —
  cluster health-verdict transitions (see :mod:`repro.obs.health`).

Like every ``repro.obs`` layer the journal charges **zero simulated
time** and draws no randomness, so an always-on journal cannot change a
benchmark's numbers or break the chaos determinism contract.  The
journal is bounded: past ``maxlen`` events the oldest are evicted, the
``truncated`` counter records how many, and the cumulative per-type
counts survive eviction (so "how many fences happened" never lies).

:data:`NULL_JOURNAL` is the inert default components hold before a
deployment wires the real journal in — the same null-object pattern as
:data:`~repro.obs.tracing.NULL_TRACER`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Any, Deque, Dict, Iterator, List,
                    Optional)

from repro.obs.tracing import NULL_TRACER

if TYPE_CHECKING:  # annotation-only: avoid a runtime cycle via sim.disk
    from repro.sim.clock import SimClock

# Generous default: chaos runs produce a few hundred events, so slicing
# views (the invariant checker reads failover_log[seen:]) never see an
# eviction in practice, while a pathological event storm stays bounded.
DEFAULT_MAX_EVENTS = 8192


def _json_safe(value: Any) -> Any:
    """Coerce one detail value into a JSON-serializable shape."""
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


@dataclass
class JournalEvent:
    """One typed, timestamped cluster event.

    ``detail`` holds JSON-safe scalars specific to the event type;
    ``payload`` optionally holds the *live* record object behind the
    event (a ``FailoverEvent``/``MigrationEvent``), kept out of the
    serialized form — the legacy log views read it, and in-place
    mutations (a migration outcome flipping to ``done``) stay visible.
    """

    seq: int
    t: float
    type: str
    node: str = ""
    acg_id: Optional[int] = None
    repl_epoch: Optional[int] = None
    route_epoch: Optional[int] = None
    span_id: Optional[int] = None
    detail: Dict[str, Any] = field(default_factory=dict)
    payload: Any = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (the payload object is deliberately omitted)."""
        out: Dict[str, Any] = {"seq": self.seq, "t": self.t,
                               "type": self.type}
        if self.node:
            out["node"] = self.node
        if self.acg_id is not None:
            out["acg_id"] = self.acg_id
        if self.repl_epoch is not None:
            out["repl_epoch"] = self.repl_epoch
        if self.route_epoch is not None:
            out["route_epoch"] = self.route_epoch
        if self.span_id is not None:
            out["span_id"] = self.span_id
        if self.detail:
            out["detail"] = {k: _json_safe(v)
                             for k, v in sorted(self.detail.items())}
        return out

    def matches(self, type: Optional[str] = None,
                since: Optional[float] = None,
                acg_id: Optional[int] = None,
                node: Optional[str] = None) -> bool:
        """Filter predicate shared by :meth:`EventJournal.events` and the
        CLI's ``repro events``.  ``type`` matches exactly or as a dotted
        prefix (``"repl"`` matches ``repl.fence``)."""
        if type is not None and self.type != type and \
                not self.type.startswith(type.rstrip(".") + "."):
            return False
        if since is not None and self.t < since:
            return False
        if acg_id is not None and self.acg_id != acg_id:
            return False
        if node is not None and self.node != node:
            return False
        return True


class EventJournal:
    """Bounded, clock-ordered journal of :class:`JournalEvent` records.

    ``tracer`` is read at emit time for the active span id; a deployment
    swaps the real tracer in via ``enable_tracing`` and the journal picks
    it up (the service re-points :attr:`tracer` when tracing toggles).
    """

    enabled = True

    def __init__(self, clock: "SimClock",
                 maxlen: int = DEFAULT_MAX_EVENTS,
                 tracer=NULL_TRACER) -> None:
        self.clock = clock
        self.tracer = tracer
        self._events: Deque[JournalEvent] = deque(maxlen=maxlen)
        self._seq = 0
        # Cumulative per-type counts: eviction must never make "how many
        # fences happened" under-report.
        self._counts: Dict[str, int] = {}
        self.truncated = 0

    # -- emission -------------------------------------------------------------

    def emit(self, type: str, node: str = "",
             acg_id: Optional[int] = None,
             repl_epoch: Optional[int] = None,
             route_epoch: Optional[int] = None,
             payload: Any = None, **detail: Any) -> JournalEvent:
        """Record one event at the current virtual time.

        The active trace span (if any) stamps its id onto the event —
        in the single-threaded simulation an RPC handler runs inside the
        caller's open span, so a fence raised while the Master's
        ``failover`` span is open carries that span's id.
        """
        self._seq += 1
        current = self.tracer.current
        event = JournalEvent(
            seq=self._seq, t=self.clock.now(), type=type, node=node,
            acg_id=acg_id, repl_epoch=repl_epoch, route_epoch=route_epoch,
            span_id=getattr(current, "span_id", None),
            detail=detail, payload=payload)
        if len(self._events) == self._events.maxlen:
            self.truncated += 1
        self._events.append(event)
        self._counts[type] = self._counts.get(type, 0) + 1
        return event

    # -- queries --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[JournalEvent]:
        return iter(self._events)

    @property
    def total(self) -> int:
        """Events ever emitted (retained + evicted)."""
        return self._seq

    def events(self, type: Optional[str] = None,
               since: Optional[float] = None,
               acg_id: Optional[int] = None,
               node: Optional[str] = None) -> List[JournalEvent]:
        """Retained events matching every given filter, oldest first."""
        return [e for e in self._events
                if e.matches(type=type, since=since, acg_id=acg_id,
                             node=node)]

    def payloads(self, type: str) -> List[Any]:
        """The live payload objects behind retained events of one type
        (or dotted type prefix) — how the legacy ``failover_log`` /
        ``migration_log`` lists are served as journal views."""
        return [e.payload for e in self._events
                if e.payload is not None and e.matches(type=type)]

    def tail(self, n: int = 20) -> List[JournalEvent]:
        """The most recent ``n`` retained events, oldest first."""
        if n <= 0:
            return []
        return list(self._events)[-n:]

    def count(self, type: str) -> int:
        """Cumulative count of one type (or dotted prefix) — survives
        eviction."""
        prefix = type.rstrip(".") + "."
        return sum(n for t, n in self._counts.items()
                   if t == type or t.startswith(prefix))

    def counts(self) -> Dict[str, int]:
        """Cumulative count per exact type, sorted by type name."""
        return {t: self._counts[t] for t in sorted(self._counts)}

    def digest(self) -> Dict[str, Any]:
        """Deterministic JSON-ready summary: totals, truncation marker,
        and the cumulative per-type counts (what chaos reports and bench
        artifacts embed)."""
        return {
            "total": self.total,
            "retained": len(self._events),
            "truncated": self.truncated,
            "by_type": self.counts(),
        }

    def clear(self) -> None:
        """Drop retained events and counts (tests only)."""
        self._events.clear()
        self._counts.clear()
        self._seq = 0
        self.truncated = 0


class NullJournal:
    """The inert journal: every operation is a free no-op.

    Components default to this so constructing them standalone (tests,
    benchmarks that never read events) costs nothing; a deployment swaps
    the real journal in at wiring time.
    """

    enabled = False
    truncated = 0
    total = 0

    def emit(self, type: str, node: str = "",
             acg_id: Optional[int] = None,
             repl_epoch: Optional[int] = None,
             route_epoch: Optional[int] = None,
             payload: Any = None, **detail: Any) -> None:
        return None

    def __len__(self) -> int:
        return 0

    def __iter__(self) -> Iterator[JournalEvent]:
        return iter(())

    def events(self, type: Optional[str] = None,
               since: Optional[float] = None,
               acg_id: Optional[int] = None,
               node: Optional[str] = None) -> List[JournalEvent]:
        return []

    def payloads(self, type: str) -> List[Any]:
        return []

    def tail(self, n: int = 20) -> List[JournalEvent]:
        return []

    def count(self, type: str) -> int:
        return 0

    def counts(self) -> Dict[str, int]:
        return {}

    def digest(self) -> Dict[str, Any]:
        return {"total": 0, "retained": 0, "truncated": 0, "by_type": {}}

    def clear(self) -> None:
        pass


NULL_JOURNAL = NullJournal()
