"""Continuous telemetry: virtual-clock time series.

A :class:`TimelineRecorder` samples a set of scalar *sources* — closures
over live state, or instruments in a :class:`MetricsRegistry` — at a
configurable virtual-time interval, building one ``(t, value)`` series
per source.  Sampling reads the shared clock but never charges it, so
(like the tracer) enabling a timeline cannot change a benchmark's
numbers.

The recorder is pulled, not pushed: whoever owns the simulation's time
(``PropellerService.advance``/``pump``, or a benchmark's own driver
loop) calls :meth:`TimelineRecorder.sample_if_due` whenever virtual time
may have crossed an interval boundary.  Timestamps within a series are
strictly increasing — repeated calls at one virtual instant record one
point.

:data:`NULL_TIMELINE` is the free disabled default, mirroring
:data:`~repro.obs.tracing.NULL_TRACER`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.metrics.reporting import render_series

if TYPE_CHECKING:  # annotation-only, matching repro.obs.tracing
    from repro.obs.metrics import MetricsRegistry
    from repro.sim.clock import SimClock

DEFAULT_INTERVAL_S = 1.0


class TimelineRecorder:
    """Per-metric time series sampled on the virtual clock."""

    enabled = True

    def __init__(self, clock: "SimClock",
                 interval_s: float = DEFAULT_INTERVAL_S) -> None:
        if interval_s <= 0:
            raise SimulationError(f"sample interval must be positive: {interval_s}")
        self.clock = clock
        self.interval_s = interval_s
        self._sources: Dict[str, Callable[[], Any]] = {}
        self._series: Dict[str, List[Tuple[float, float]]] = {}
        self._last_t: Optional[float] = None

    # -- registration --------------------------------------------------------

    def track(self, name: str, fn: Callable[[], Any]) -> None:
        """Sample ``fn()`` (any numeric scalar) under ``name`` each tick."""
        self._sources[name] = fn
        self._series.setdefault(name, [])

    def track_metric(self, registry: "MetricsRegistry", metric: str,
                     alias: Optional[str] = None) -> None:
        """Sample a counter/gauge from a registry (histograms sample their
        running mean)."""

        def read() -> float:
            value = registry.value(metric)
            if isinstance(value, dict):  # histogram summary
                return float(value.get("mean", 0.0))
            return float(value)

        self.track(alias or metric, read)

    # -- sampling ------------------------------------------------------------

    def sample_if_due(self) -> bool:
        """Record one point per series if an interval has elapsed.

        Returns True when a sample was taken.  Zero virtual-clock cost.
        """
        now = self.clock.now()
        if self._last_t is not None and now < self._last_t + self.interval_s:
            return False
        return self._sample(now)

    def sample(self) -> bool:
        """Force a sample at the current instant (e.g. end of a run).

        Still refuses duplicate timestamps, keeping series strictly
        increasing in time.
        """
        return self._sample(self.clock.now())

    def _sample(self, now: float) -> bool:
        if self._last_t is not None and now <= self._last_t:
            return False
        for name, fn in self._sources.items():
            self._series[name].append((now, float(fn())))
        self._last_t = now
        return True

    # -- reading -------------------------------------------------------------

    def __len__(self) -> int:
        """Number of samples taken so far."""
        return max((len(points) for points in self._series.values()), default=0)

    def names(self) -> List[str]:
        """Every tracked series name, sorted."""
        return sorted(self._series)

    def series(self, name: str) -> List[Tuple[float, float]]:
        """A copy of one series' ``(t, value)`` points."""
        if name not in self._series:
            raise SimulationError(f"unknown timeline series: {name}")
        return list(self._series[name])

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form: interval plus name → ``[[t, value], ...]``."""
        return {
            "interval_s": self.interval_s,
            "series": {name: [[t, v] for t, v in points]
                       for name, points in sorted(self._series.items())},
        }

    def render(self, title: str = "timeline", every: int = 1) -> str:
        """All series as aligned fixed-width columns (``every`` thins
        long series for display)."""
        blocks = [title] if title else []
        for name in self.names():
            points = self._series[name][::max(1, every)]
            blocks.append(render_series(name, points, "t (s)", name))
        return "\n\n".join(blocks)


class NullTimeline:
    """The disabled timeline: every operation is a no-op.

    Instrumented drivers call the same methods either way, so flipping a
    deployment between recorded and unrecorded changes nothing about the
    simulated costs.
    """

    enabled = False
    interval_s = 0.0

    def track(self, name: str, fn: Callable[[], Any]) -> None:
        pass

    def track_metric(self, registry: "MetricsRegistry", metric: str,
                     alias: Optional[str] = None) -> None:
        pass

    def sample_if_due(self) -> bool:
        return False

    def sample(self) -> bool:
        return False

    def __len__(self) -> int:
        return 0

    def names(self) -> List[str]:
        return []

    def series(self, name: str) -> List[Tuple[float, float]]:
        return []

    def to_dict(self) -> Dict[str, Any]:
        return {"interval_s": 0.0, "series": {}}

    def render(self, title: str = "timeline", every: int = 1) -> str:
        return ""


NULL_TIMELINE = NullTimeline()
