"""Query profiles — EXPLAIN ANALYZE for a traced search.

Turns the span tree of one search into a per-stage breakdown whose
times add up: stage *self* times along the **critical path** sum exactly
to the search's reported latency.

The subtlety is parallel fan-out.  Children of a span marked
``parallel=True`` ran as logically concurrent work (the clock lands at
``start + max(leg durations)``), so naively summing every child
over-counts.  The profile therefore follows only the slowest leg — the
one that determined the wall time, exactly the leg a tail-latency hunt
cares about — and reports the other legs separately as overlapped work.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.metrics.reporting import format_duration, render_table
from repro.obs.tracing import Span


def critical_children(span: Span) -> List[Span]:
    """The children that determined ``span``'s wall time.

    Sequential children all count; of a parallel group only the slowest
    leg does.
    """
    if span.attributes.get("parallel") and span.children:
        return [max(span.children, key=lambda s: s.duration)]
    return span.children


class ProfileRow:
    """One line of the breakdown: a span on the critical path."""

    __slots__ = ("span", "depth", "self_s", "on_critical_path")

    def __init__(self, span: Span, depth: int, self_s: float,
                 on_critical_path: bool) -> None:
        self.span = span
        self.depth = depth
        self.self_s = self_s
        self.on_critical_path = on_critical_path


class QueryProfile:
    """Per-stage breakdown of one search's span tree."""

    def __init__(self, root: Span, query: Optional[str] = None) -> None:
        if root.end is None:
            raise ValueError(f"span {root.name!r} is still open")
        self.root = root
        self.query = query if query is not None else root.attributes.get("query")
        self.total_s = root.duration
        self.rows: List[ProfileRow] = []
        self._collect(root, 0, on_critical_path=True)

    def _collect(self, span: Span, depth: int, on_critical_path: bool) -> None:
        critical = critical_children(span) if on_critical_path else []
        child_time = sum(c.duration for c in critical)
        self_s = (span.duration - child_time) if on_critical_path else 0.0
        self.rows.append(ProfileRow(span, depth, self_s, on_critical_path))
        critical_ids = {id(c) for c in critical}
        for child in span.children:
            self._collect(child, depth + 1,
                          on_critical_path and id(child) in critical_ids)

    # -- aggregation ---------------------------------------------------------

    def by_stage(self) -> Dict[str, Dict[str, float]]:
        """stage name → {calls, self_s, pct} over the critical path.

        ``self_s`` values sum (exactly, modulo float addition order) to
        :attr:`total_s`: every virtual second of the search is attributed
        to exactly one stage.
        """
        stages: Dict[str, Dict[str, float]] = {}
        for row in self.rows:
            if not row.on_critical_path:
                continue
            bucket = stages.setdefault(row.span.name,
                                       {"calls": 0, "self_s": 0.0, "pct": 0.0})
            bucket["calls"] += 1
            bucket["self_s"] += row.self_s
        for bucket in stages.values():
            bucket["pct"] = (100.0 * bucket["self_s"] / self.total_s
                             if self.total_s else 0.0)
        return stages

    def stage_time(self, name: str) -> float:
        """Critical-path self time attributed to one stage (0.0 if absent)."""
        return self.by_stage().get(name, {}).get("self_s", 0.0)

    # -- rendering -----------------------------------------------------------

    def render(self, max_depth: Optional[int] = None) -> str:
        """The breakdown as fixed-width tables (tree + per-stage totals)."""
        tree_rows = []
        for row in self.rows:
            if max_depth is not None and row.depth > max_depth:
                continue
            span = row.span
            notes = []
            for key in ("target", "acg", "access_path", "reason"):
                if key in span.attributes:
                    notes.append(f"{key}={span.attributes[key]}")
            if span.metrics:
                notes.extend(f"{k}={_fmt_metric(v)}"
                             for k, v in sorted(span.metrics.items()))
            if span.status == "error":
                notes.append(f"ERROR: {span.error}")
            label = "  " * row.depth + span.name
            if not row.on_critical_path:
                label += " *"
            tree_rows.append([
                label,
                format_duration(span.duration),
                format_duration(row.self_s) if row.on_critical_path else "-",
                f"{100.0 * row.self_s / self.total_s:.1f}%" if self.total_s
                and row.on_critical_path else "-",
                " ".join(notes),
            ])
        title = (f"query profile: {self.query!r} — total "
                 f"{format_duration(self.total_s)} (simulated)"
                 if self.query else
                 f"query profile — total {format_duration(self.total_s)} (simulated)")
        parts = [render_table(["stage", "wall", "self", "%", "detail"],
                              tree_rows, title=title)]
        stage_rows = [[name, int(agg["calls"]), format_duration(agg["self_s"]),
                       f"{agg['pct']:.1f}%"]
                      for name, agg in sorted(self.by_stage().items(),
                                              key=lambda kv: -kv[1]["self_s"])]
        parts.append(render_table(["stage", "calls", "self total", "%"],
                                  stage_rows, title="per-stage totals (critical path)"))
        parts.append("(* = overlapped parallel leg, not on the critical path)")
        return "\n\n".join(parts)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form: the span tree plus the per-stage totals."""
        from repro.obs.export import span_to_dict

        return {
            "query": self.query,
            "total_s": self.total_s,
            "stages": self.by_stage(),
            "tree": span_to_dict(self.root),
        }


def _fmt_metric(value: float) -> str:
    return str(int(value)) if float(value).is_integer() else f"{value:.6f}"
