"""Span-based tracing on the virtual clock.

A :class:`Tracer` records where simulated time goes: every instrumented
stage opens a :class:`Span`, nested spans form a tree, and span bounds
are read from the shared :class:`~repro.sim.clock.SimClock` — tracing
never *charges* the clock, so enabling it cannot change a benchmark's
numbers.  One search yields a tree like::

    search
    ├─ flush_updates
    ├─ rpc:route_search
    └─ fanout                      (parallel: wall time = slowest leg)
       ├─ rpc:search  target=in1
       │  ├─ cache_commit
       │  ├─ page_faults
       │  ├─ plan
       │  └─ index_scan
       └─ rpc:search  target=in2 ...

Children of a span whose ``parallel`` attribute is true ran as logically
concurrent work under :meth:`SimClock.parallel`: each child's bounds
cover its own rewound window, and the parent's duration is the slowest
child (see :mod:`repro.obs.profile` for critical-path accounting).

:data:`NULL_TRACER` is the default everywhere: a no-op implementation
that allocates nothing and keeps instrumented code on the exact same
simulated-cost path as uninstrumented code.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Dict, List, Optional

if TYPE_CHECKING:  # import only for annotations: sim.disk imports this
    from repro.sim.clock import SimClock  # module, so a runtime import
    # would be circular.

# Keep a bounded history of finished roots so a long-running traced
# service cannot grow without bound.
DEFAULT_MAX_ROOTS = 256


class Span:
    """One traced stage: name, virtual-time bounds, attributes, children.

    ``metrics`` holds counts annotated onto the span while it was open
    (page faults, disk reads, bytes) — cheap aggregates for events too
    frequent to deserve child spans of their own.
    """

    __slots__ = ("name", "start", "end", "attributes", "metrics",
                 "children", "status", "error", "span_id")

    def __init__(self, name: str, start: float,
                 attributes: Optional[Dict[str, Any]] = None,
                 span_id: Optional[int] = None) -> None:
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attributes: Dict[str, Any] = attributes or {}
        self.metrics: Dict[str, float] = {}
        self.children: List[Span] = []
        self.status = "ok"
        self.error: Optional[str] = None
        # Monotonic per-tracer id, the correlation key the event journal
        # stamps onto events emitted while this span is open.
        self.span_id = span_id

    @property
    def duration(self) -> float:
        """Virtual seconds the span covered (0.0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def record(self, key: str, amount: float = 1.0) -> None:
        """Add ``amount`` to an aggregate metric on this span."""
        self.metrics[key] = self.metrics.get(key, 0.0) + amount

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def mark_error(self, message: str) -> None:
        """Flag the span failed (kept on normal close for early failures)."""
        self.status = "error"
        self.error = message

    def walk(self):
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> List["Span"]:
        """Every span in this subtree with the given name."""
        return [s for s in self.walk() if s.name == name]

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, {self.duration:.6f}s, "
                f"children={len(self.children)}, status={self.status})")


class _SpanContext:
    """Context manager handed out by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is not None:
            self._span.mark_error(f"{exc_type.__name__}: {exc}")
        self._tracer._close(self._span)
        return False  # never swallow


class Tracer:
    """Builds span trees from nested :meth:`span` calls.

    The tracer reads the shared virtual clock for span bounds and is
    otherwise pure bookkeeping — it charges **zero simulated time**.
    Finished root spans are kept (most recent last) up to ``max_roots``;
    evicting past that is no longer silent: :attr:`roots_dropped` counts
    every lost root, mirrored into the registry (when one is attached)
    as the ``trace.roots_dropped`` counter so ``repro profile`` can show
    when the window was too small for the run it profiled.
    """

    enabled = True

    def __init__(self, clock: "SimClock", max_roots: int = DEFAULT_MAX_ROOTS,
                 registry=None) -> None:
        self.clock = clock
        self.registry = registry
        self._stack: List[Span] = []
        self.roots: Deque[Span] = deque(maxlen=max_roots)
        self.roots_dropped = 0
        self._next_span_id = 0

    def span(self, name: str, **attributes: Any) -> _SpanContext:
        """Open a child of the innermost open span (or a new root)."""
        self._next_span_id += 1
        span = Span(name, self.clock.now(), attributes or None,
                    span_id=self._next_span_id)
        self._stack.append(span)
        return _SpanContext(self, span)

    def _close(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            # An instrumented component closed out of order — that is a
            # bug in the instrumentation, not the workload; fail loudly.
            raise RuntimeError(f"span closed out of order: {span.name}")
        self._stack.pop()
        span.end = self.clock.now()
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            if len(self.roots) == self.roots.maxlen:
                self.roots_dropped += 1
                if self.registry is not None:
                    self.registry.counter("trace.roots_dropped").inc()
            self.roots.append(span)

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def annotate(self, key: str, amount: float = 1.0) -> None:
        """Bump an aggregate metric on the innermost open span (no-op
        when nothing is open) — the cheap path for per-page/per-IO
        events."""
        if self._stack:
            self._stack[-1].record(key, amount)

    def set_attribute(self, key: str, value: Any) -> None:
        """Set an attribute on the innermost open span, if any."""
        if self._stack:
            self._stack[-1].attributes[key] = value

    def last_root(self, name: Optional[str] = None) -> Optional[Span]:
        """The most recently finished root span (optionally by name)."""
        for span in reversed(self.roots):
            if name is None or span.name == name:
                return span
        return None

    def clear(self) -> None:
        """Drop finished roots (open spans are untouched)."""
        self.roots.clear()


class _NullSpan:
    """Inert span: accepts every mutation, stores nothing."""

    __slots__ = ()
    name = "null"
    start = 0.0
    end = 0.0
    duration = 0.0
    status = "ok"
    error = None
    span_id = None
    attributes: Dict[str, Any] = {}
    metrics: Dict[str, float] = {}
    children: List[Span] = []

    def record(self, key: str, amount: float = 1.0) -> None:
        pass

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def mark_error(self, message: str) -> None:
        pass


class _NullContext:
    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()
_NULL_CONTEXT = _NullContext()


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    Instrumented code calls the same methods either way, so flipping a
    deployment between traced and untraced changes *nothing* about the
    simulated costs — the acceptance bar for observability here.
    """

    enabled = False

    def span(self, name: str, **attributes: Any) -> _NullContext:
        return _NULL_CONTEXT

    @property
    def current(self) -> None:
        return None

    def annotate(self, key: str, amount: float = 1.0) -> None:
        pass

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def last_root(self, name: Optional[str] = None) -> None:
        return None

    def clear(self) -> None:
        pass


NULL_TRACER = NullTracer()
