"""Index-freshness instrumentation.

Propeller's headline claim is *real-timeness*: the index is updated
inline on the I/O path instead of by stale crawls (Figure 1).  This
module measures that claim directly.  A :class:`FreshnessTracker` stamps
the virtual time at which a file changed (close-after-write, create, or
an explicit re-index request) and, when the corresponding update becomes
*search-visible* — committed to an Index Node's real indices, or folded
into a crawler's snapshot — records the elapsed virtual time as that
node's ``staleness``:

* ``cluster.<node>.staleness_s`` — a per-node histogram (seconds) whose
  reservoir is enough to draw a staleness CDF;
* ``cluster.freshness.worst_s`` — the worst staleness observed anywhere
  (the deployment's freshness bound);
* ``cluster.freshness.visible_events`` — how many stamped changes have
  become visible.

Stamps are bookkeeping about the simulation: stamping and resolving
charge **zero simulated time**, so enabling freshness tracking never
changes benchmark numbers.  The pending-stamp map is bounded — a change
that never reaches an index (created-then-ignored files) is evicted
oldest-first rather than leaking.

:data:`NULL_FRESHNESS` is the free disabled default, mirroring
:data:`~repro.obs.tracing.NULL_TRACER`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Dict, List, Optional

if TYPE_CHECKING:  # annotation-only import, like repro.obs.tracing
    from repro.obs.metrics import MetricsRegistry

DEFAULT_MAX_PENDING = 65536
DEFAULT_PENDING_TTL_S = 120.0

_STALENESS_SUFFIX = ".staleness_s"
_WORST_GAUGE = "cluster.freshness.worst_s"
_VISIBLE_COUNTER = "cluster.freshness.visible_events"
_EXPIRED_COUNTER = "cluster.freshness.expired"


class FreshnessTracker:
    """Virtual time from file change to search visibility, per node.

    ``pending_ttl_s`` bounds how long a stamp may wait: a change whose
    update died with a failed node (acked, never committed anywhere) would
    otherwise sit in the pending map forever.  Re-homed updates need no
    special casing — a failed-over file that gets re-indexed commits on
    its new node and resolves the *original* stamp (earliest-wins), so the
    recorded staleness honestly spans the outage.  Only changes that never
    become visible anywhere expire, counted under
    ``cluster.freshness.expired``.  ``None`` disables expiry.
    """

    enabled = True

    def __init__(self, registry: "MetricsRegistry",
                 max_pending: int = DEFAULT_MAX_PENDING,
                 pending_ttl_s: Optional[float] = DEFAULT_PENDING_TTL_S) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be positive: {max_pending}")
        if pending_ttl_s is not None and pending_ttl_s <= 0:
            raise ValueError(f"pending_ttl_s must be positive: {pending_ttl_s}")
        self.registry = registry
        self.max_pending = max_pending
        self.pending_ttl_s = pending_ttl_s
        self._pending: "OrderedDict[int, float]" = OrderedDict()
        self.dropped = 0
        self.expired = 0

    # -- producer side -------------------------------------------------------

    def stamp(self, file_id: int, t: float) -> None:
        """A file changed at virtual time ``t``.

        The earliest stamp wins: a file re-written while its first change
        is still invisible stays accountable to the first change.
        """
        if file_id in self._pending:
            return
        while len(self._pending) >= self.max_pending:
            self._pending.popitem(last=False)
            self.dropped += 1
        self._pending[file_id] = t

    def visible(self, node: str, file_id: int, t: float) -> Optional[float]:
        """The change to ``file_id`` became search-visible on ``node``.

        Returns the observed staleness in virtual seconds, or None when
        the file carried no stamp (e.g. an update that predates enabling
        the tracker).
        """
        t0 = self._pending.pop(file_id, None)
        if t0 is None:
            return None
        staleness = max(0.0, t - t0)
        self.registry.histogram(f"cluster.{node}{_STALENESS_SUFFIX}",
                                unit="s").observe(staleness)
        worst = self.registry.gauge(_WORST_GAUGE)
        if staleness > worst.value:
            worst.set(staleness)
        self.registry.counter(_VISIBLE_COUNTER).inc()
        return staleness

    def forget(self, file_id: int) -> None:
        """Drop a pending stamp (the file was unlinked before indexing)."""
        self._pending.pop(file_id, None)

    def expire(self, now: float) -> int:
        """Drop pending stamps older than ``pending_ttl_s``.

        Called periodically by the service loop; returns how many stamps
        expired.  The pending map is insertion-ordered and stamps are
        monotone in time, so expiry scans only the stale prefix.
        """
        if self.pending_ttl_s is None:
            return 0
        expired = 0
        while self._pending:
            file_id = next(iter(self._pending))
            if now - self._pending[file_id] <= self.pending_ttl_s:
                break
            del self._pending[file_id]
            expired += 1
        if expired:
            self.expired += expired
            self.registry.counter(_EXPIRED_COUNTER).inc(expired)
        return expired

    # -- reading -------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Changes stamped but not yet search-visible."""
        return len(self._pending)

    def nodes(self) -> List[str]:
        """Every node with at least one staleness observation, sorted."""
        out = []
        for name, _ in self.registry.items():
            if name.endswith(_STALENESS_SUFFIX):
                out.append(name[len("cluster."):-len(_STALENESS_SUFFIX)])
        return sorted(out)

    def worst_s(self) -> float:
        """The worst-case freshness bound observed so far (seconds)."""
        if _WORST_GAUGE not in self.registry:
            return 0.0
        return float(self.registry.value(_WORST_GAUGE))

    def staleness_values(self, node: str) -> List[float]:
        """The retained staleness sample for one node, sorted — the
        empirical CDF Figure 1's recall story can be retold as."""
        name = f"cluster.{node}{_STALENESS_SUFFIX}"
        if name not in self.registry:
            return []
        return self.registry.find(name)[name].reservoir_values()

    def summary(self) -> Dict[str, Any]:
        """JSON-ready digest: per-node histogram summaries plus the
        worst-case gauge and pending backlog."""
        nodes = {}
        for node in self.nodes():
            name = f"cluster.{node}{_STALENESS_SUFFIX}"
            nodes[node] = self.registry.value(name)
        return {
            "worst_s": self.worst_s(),
            "pending": self.pending,
            "dropped": self.dropped,
            "expired": self.expired,
            "nodes": nodes,
        }


class NullFreshness:
    """The disabled tracker: every operation is a no-op."""

    enabled = False

    def stamp(self, file_id: int, t: float) -> None:
        pass

    def visible(self, node: str, file_id: int, t: float) -> None:
        return None

    def forget(self, file_id: int) -> None:
        pass

    def expire(self, now: float) -> int:
        return 0

    @property
    def pending(self) -> int:
        return 0

    def nodes(self) -> List[str]:
        return []

    def worst_s(self) -> float:
        return 0.0

    def staleness_values(self, node: str) -> List[float]:
        return []

    def summary(self) -> Dict[str, Any]:
        return {}


NULL_FRESHNESS = NullFreshness()
