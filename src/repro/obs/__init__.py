"""repro.obs — cluster-wide observability.

Four layers, all charging **zero simulated time**:

* :mod:`repro.obs.metrics` — a registry of counters, gauges, and
  histograms under hierarchical names (``cluster.in1.disk.reads``);
* :mod:`repro.obs.tracing` — span-based tracing on the virtual clock
  (:data:`NULL_TRACER` is the free disabled default);
* :mod:`repro.obs.timeline` / :mod:`repro.obs.freshness` — continuous
  telemetry: per-metric time series sampled at a virtual-time interval,
  and change-to-search-visible staleness tracking per node;
* :mod:`repro.obs.profile` / :mod:`repro.obs.export` — EXPLAIN
  ANALYZE-style query profiles and table/JSON exporters.

Enable on a deployment with ``service.enable_tracing()``,
``service.enable_timeline()``, ``service.enable_freshness()``; read
metrics from ``service.registry``.
"""

from repro.obs.export import (
    registry_to_dict,
    registry_to_json,
    render_registry,
    render_span_tree,
    span_to_dict,
    span_to_json,
)
from repro.obs.freshness import NULL_FRESHNESS, FreshnessTracker, NullFreshness
from repro.obs.metrics import (
    CallableGauge,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profile import QueryProfile
from repro.obs.timeline import NULL_TIMELINE, NullTimeline, TimelineRecorder
from repro.obs.tracing import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "CallableGauge",
    "Counter",
    "FreshnessTracker",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_FRESHNESS",
    "NULL_TIMELINE",
    "NULL_TRACER",
    "NullFreshness",
    "NullTimeline",
    "NullTracer",
    "QueryProfile",
    "Span",
    "TimelineRecorder",
    "Tracer",
    "registry_to_dict",
    "registry_to_json",
    "render_registry",
    "render_span_tree",
    "span_to_dict",
    "span_to_json",
]
