"""repro.obs — cluster-wide observability.

Three layers, all charging **zero simulated time**:

* :mod:`repro.obs.metrics` — a registry of counters, gauges, and
  histograms under hierarchical names (``cluster.in1.disk.reads``);
* :mod:`repro.obs.tracing` — span-based tracing on the virtual clock
  (:data:`NULL_TRACER` is the free disabled default);
* :mod:`repro.obs.profile` / :mod:`repro.obs.export` — EXPLAIN
  ANALYZE-style query profiles and table/JSON exporters.

Enable on a deployment with ``service.enable_tracing()``; read metrics
from ``service.registry``.
"""

from repro.obs.export import (
    registry_to_dict,
    registry_to_json,
    render_registry,
    render_span_tree,
    span_to_dict,
    span_to_json,
)
from repro.obs.metrics import (
    CallableGauge,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profile import QueryProfile
from repro.obs.tracing import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "CallableGauge",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "QueryProfile",
    "Span",
    "Tracer",
    "registry_to_dict",
    "registry_to_json",
    "render_registry",
    "render_span_tree",
    "span_to_dict",
    "span_to_json",
]
