"""repro.obs — cluster-wide observability.

Six layers, all charging **zero simulated time**:

* :mod:`repro.obs.metrics` — a registry of counters, gauges, and
  histograms under hierarchical names (``cluster.in1.disk.reads``);
* :mod:`repro.obs.tracing` — span-based tracing on the virtual clock
  (:data:`NULL_TRACER` is the free disabled default);
* :mod:`repro.obs.timeline` / :mod:`repro.obs.freshness` — continuous
  telemetry: per-metric time series sampled at a virtual-time interval,
  and change-to-search-visible staleness tracking per node;
* :mod:`repro.obs.journal` — the bounded, clock-ordered cluster event
  journal (failovers, epoch bumps, fences, faults, SLO transitions),
  span-id correlated (:data:`NULL_JOURNAL` is the free default);
* :mod:`repro.obs.slo` / :mod:`repro.obs.health` — declarative SLOs
  with multi-window burn-rate alerting, and the health plane deriving
  per-node + cluster verdicts from live deployment state;
* :mod:`repro.obs.profile` / :mod:`repro.obs.export` — EXPLAIN
  ANALYZE-style query profiles and table/JSON exporters.

Enable tracing on a deployment with ``service.enable_tracing()``; the
journal, SLO tracker, and health monitor are always on (they cost
nothing).  Read metrics from ``service.registry``, events from
``service.journal``, verdicts from ``service.health``.
"""

from repro.obs.export import (
    journal_to_dict,
    journal_to_json,
    registry_to_dict,
    registry_to_json,
    render_journal,
    render_registry,
    render_slo,
    render_span_tree,
    slo_to_dict,
    slo_to_json,
    span_to_dict,
    span_to_json,
)
from repro.obs.freshness import NULL_FRESHNESS, FreshnessTracker, NullFreshness
from repro.obs.health import (
    NULL_HEALTH,
    HealthMonitor,
    HealthVerdict,
    NullHealthMonitor,
)
from repro.obs.journal import (
    NULL_JOURNAL,
    EventJournal,
    JournalEvent,
    NullJournal,
)
from repro.obs.metrics import (
    CallableGauge,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profile import QueryProfile
from repro.obs.slo import (
    NULL_SLOS,
    NullSloTracker,
    SloSpec,
    SloTracker,
    default_specs,
)
from repro.obs.timeline import NULL_TIMELINE, NullTimeline, TimelineRecorder
from repro.obs.tracing import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "CallableGauge",
    "Counter",
    "EventJournal",
    "FreshnessTracker",
    "Gauge",
    "HealthMonitor",
    "HealthVerdict",
    "Histogram",
    "JournalEvent",
    "MetricsRegistry",
    "NULL_FRESHNESS",
    "NULL_HEALTH",
    "NULL_JOURNAL",
    "NULL_SLOS",
    "NULL_TIMELINE",
    "NULL_TRACER",
    "NullFreshness",
    "NullHealthMonitor",
    "NullJournal",
    "NullSloTracker",
    "NullTimeline",
    "NullTracer",
    "QueryProfile",
    "SloSpec",
    "SloTracker",
    "Span",
    "TimelineRecorder",
    "Tracer",
    "default_specs",
    "journal_to_dict",
    "journal_to_json",
    "registry_to_dict",
    "registry_to_json",
    "render_journal",
    "render_registry",
    "render_slo",
    "render_span_tree",
    "slo_to_dict",
    "slo_to_json",
    "span_to_dict",
    "span_to_json",
]
