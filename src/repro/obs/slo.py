"""Declarative SLOs with multi-window burn-rate alerting.

An :class:`SloSpec` names an objective over one registry instrument
(wildcards allowed): "no more than ``budget`` of search legs slower than
``target``", "replication lag stays under ``target`` records".  The
:class:`SloTracker` samples every spec at a virtual-time interval and
keeps, per spec, a sliding window of cumulative (total, bad) event
counts:

* **histogram-backed specs** count *events*: an observation is bad when
  it exceeded ``target`` (read from the histogram's exact bucket counts
  — the target is effectively rounded up to the covering bucket bound,
  a conservative under-count);
* **gauge-backed specs** count *samples*: a sample is bad when the worst
  matching gauge exceeded ``target`` at sampling time.

Alerting is the SRE multi-window burn-rate rule adapted to simulated
time: with ``bad_fraction`` the share of bad events in a window, the
*burn rate* is ``bad_fraction / budget`` (1.0 = consuming the error
budget exactly as fast as allowed).  A spec **breaches** when the fast
window burns at ≥ ``fast_burn`` *and* the slow window burns at ≥ 1.0 —
fast spikes need sustained evidence, slow drifts need a current spike —
and **recovers** when the fast window is clean (zero bad events), the
pragmatic choice for post-fault convergence on a virtual clock.  Both
transitions emit ``slo.breach`` / ``slo.recover`` into the event
journal, wrapped in a short ``slo_alert`` span so the events correlate
to a trace span id like every other journal entry.

Sampling draws no randomness and charges zero simulated time, so an
always-on tracker never perturbs benchmarks or chaos determinism.
"""

from __future__ import annotations

import bisect
from collections import deque
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import TYPE_CHECKING, Any, Deque, Dict, List, Optional, Tuple

from repro.obs.journal import NULL_JOURNAL
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.tracing import NULL_TRACER

if TYPE_CHECKING:
    from repro.sim.clock import SimClock

DEFAULT_INTERVAL_S = 1.0


@dataclass(frozen=True)
class SloSpec:
    """One service-level objective over one (possibly wildcard) metric.

    ``metric`` may contain ``*`` wildcards (``cluster.*.staleness_s``
    matches every node's freshness histogram); when several instruments
    match, their event counts are summed (histograms) or the worst value
    is taken (gauges).
    """

    name: str              # short id, e.g. "search_latency"
    metric: str            # instrument name or fnmatch pattern
    target: float          # one event/sample must stay at or under this
    budget: float = 0.01   # tolerated bad fraction (error budget)
    fast_window_s: float = 30.0
    slow_window_s: float = 240.0
    fast_burn: float = 2.0  # fast-window burn-rate threshold for breach
    unit: str = "s"
    description: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "metric": self.metric,
            "target": self.target,
            "budget": self.budget,
            "fast_window_s": self.fast_window_s,
            "slow_window_s": self.slow_window_s,
            "fast_burn": self.fast_burn,
            "unit": self.unit,
            "description": self.description,
        }


def default_specs() -> Tuple[SloSpec, ...]:
    """The deployment-wide defaults: generous targets a healthy cluster
    never breaches (the CI smoke gate asserts exactly that), tight
    enough that a crashed primary or a straggler storm shows up."""
    return (
        SloSpec("search_latency", "cluster.client.search_latency_s",
                target=5.0, budget=0.01,
                description="search answers within 5s simulated"),
        SloSpec("update_ack", "cluster.client.update_ack_latency_s",
                target=5.0, budget=0.01,
                description="update batches acknowledged within 5s"),
        SloSpec("freshness", "cluster.*.staleness_s",
                target=60.0, budget=0.05,
                description="change-to-search-visible within 60s (p95)"),
        SloSpec("replication_lag", "cluster.health.repl_lag_max",
                target=64.0, budget=0.10, unit="records",
                description="worst follower applied-watermark lag"),
        # The budget is deliberately generous: one standby promotion
        # (well under the lease timeout) must never breach a short run,
        # while a Master staying dark — no standby, or promotion wedged —
        # burns through it and alerts.
        SloSpec("master_availability", "cluster.health.master_unavailable",
                target=0.0, budget=0.25, unit="bool",
                description="an acting Master is up and answering"),
    )


class _SpecState:
    """Sliding window + breach state machine for one spec."""

    __slots__ = ("spec", "window", "breached", "breaches",
                 "_gauge_total", "_gauge_bad", "last_observed")

    def __init__(self, spec: SloSpec) -> None:
        self.spec = spec
        # (t, cumulative_total, cumulative_bad) snapshots, oldest first.
        self.window: Deque[Tuple[float, int, int]] = deque()
        self.breached = False
        self.breaches = 0
        # Gauge-backed specs synthesize one event per sample.
        self._gauge_total = 0
        self._gauge_bad = 0
        self.last_observed: float = 0.0

    def burn(self, now: float, window_s: float) -> Tuple[float, int]:
        """(bad_fraction, events) over the trailing ``window_s``."""
        if not self.window:
            return 0.0, 0
        cutoff = now - window_s
        # The newest snapshot at or before the cutoff anchors the delta;
        # fall back to the oldest retained when none is old enough.
        anchor = self.window[0]
        for snap in self.window:
            if snap[0] <= cutoff:
                anchor = snap
            else:
                break
        head = self.window[-1]
        total = head[1] - anchor[1]
        bad = head[2] - anchor[2]
        if total <= 0:
            return 0.0, 0
        return bad / total, total


def _over_count(hist: Histogram, target: float) -> int:
    """Observations strictly above the bucket bound covering ``target``.

    Exact when the target sits on a bucket boundary; otherwise a
    conservative under-count (events in (target, bound] are not blamed).
    """
    j = bisect.bisect_left(hist.buckets, target)
    return sum(hist.bucket_counts[j + 1:])


class SloTracker:
    """Evaluates every spec on a sampling interval; emits breach events.

    ``journal`` and ``tracer`` are attributes so a deployment can wire
    them after construction (the service re-points ``tracer`` whenever
    tracing toggles).
    """

    enabled = True

    def __init__(self, clock: "SimClock", registry: MetricsRegistry,
                 journal=NULL_JOURNAL,
                 specs: Optional[Tuple[SloSpec, ...]] = None,
                 interval_s: float = DEFAULT_INTERVAL_S,
                 tracer=NULL_TRACER) -> None:
        self.clock = clock
        self.registry = registry
        self.journal = journal
        self.tracer = tracer
        self.interval_s = interval_s
        self._states: Dict[str, _SpecState] = {}
        for spec in (specs if specs is not None else default_specs()):
            self.add_spec(spec)
        self._last_sample: Optional[float] = None

    def add_spec(self, spec: SloSpec) -> None:
        if spec.name in self._states:
            raise ValueError(f"duplicate SLO spec: {spec.name}")
        self._states[spec.name] = _SpecState(spec)

    def specs(self) -> List[SloSpec]:
        return [self._states[name].spec for name in sorted(self._states)]

    # -- sampling -------------------------------------------------------------

    def sample_if_due(self) -> None:
        """Evaluate every spec if the interval elapsed (pump/advance
        call this; free when nothing is due)."""
        now = self.clock.now()
        if self._last_sample is not None and \
                now - self._last_sample < self.interval_s:
            return
        self.sample()

    def _matching(self, pattern: str) -> List[Any]:
        if "*" not in pattern and "?" not in pattern:
            inst = self.registry._instruments.get(pattern)
            return [inst] if inst is not None else []
        return [inst for name, inst in self.registry.items()
                if fnmatchcase(name, pattern)]

    def _observe(self, state: _SpecState) -> Tuple[int, int]:
        """Cumulative (total, bad) event counts for one spec right now."""
        spec = state.spec
        instruments = self._matching(spec.metric)
        hists = [i for i in instruments if isinstance(i, Histogram)]
        if hists:
            total = sum(h.count for h in hists)
            bad = sum(_over_count(h, spec.target) for h in hists)
            state.last_observed = max((h.maximum for h in hists if h.count),
                                      default=0.0)
            return total, bad
        worst = 0.0
        seen = False
        for inst in instruments:
            try:
                value = float(inst.value)
            except (TypeError, ValueError):
                continue
            worst = value if not seen else max(worst, value)
            seen = True
        if seen:
            state._gauge_total += 1
            if worst > spec.target:
                state._gauge_bad += 1
            state.last_observed = worst
        return state._gauge_total, state._gauge_bad

    def sample(self) -> None:
        """One evaluation round over every spec (forced, interval aside)."""
        now = self.clock.now()
        self._last_sample = now
        for name in sorted(self._states):
            state = self._states[name]
            spec = state.spec
            total, bad = self._observe(state)
            if state.window and state.window[-1][0] == now:
                state.window[-1] = (now, total, bad)
            else:
                state.window.append((now, total, bad))
            # Trim past the slow window, keeping one pre-boundary anchor.
            cutoff = now - spec.slow_window_s
            while len(state.window) >= 2 and state.window[1][0] <= cutoff:
                state.window.popleft()
            self._alert(state, now)

    def _alert(self, state: _SpecState, now: float) -> None:
        spec = state.spec
        fast_frac, fast_n = state.burn(now, spec.fast_window_s)
        slow_frac, _slow_n = state.burn(now, spec.slow_window_s)
        fast_rate = fast_frac / spec.budget if spec.budget > 0 else 0.0
        slow_rate = slow_frac / spec.budget if spec.budget > 0 else 0.0
        if not state.breached:
            if fast_n > 0 and fast_rate >= spec.fast_burn and slow_rate >= 1.0:
                state.breached = True
                state.breaches += 1
                self.registry.counter(f"slo.{spec.name}.breaches").inc()
                self._emit("slo.breach", state, fast_rate, slow_rate)
        else:
            if fast_frac == 0.0:
                state.breached = False
                self._emit("slo.recover", state, fast_rate, slow_rate)

    def _emit(self, type: str, state: _SpecState,
              fast_rate: float, slow_rate: float) -> None:
        spec = state.spec
        # A short span of our own so breach/recover events carry a trace
        # span id even when sampling fires outside any request.
        with self.tracer.span("slo_alert", slo=spec.name, kind=type):
            self.journal.emit(
                type, slo=spec.name, metric=spec.metric,
                target=spec.target, budget=spec.budget,
                fast_burn_rate=round(fast_rate, 6),
                slow_burn_rate=round(slow_rate, 6),
                observed=round(state.last_observed, 9))

    # -- readouts -------------------------------------------------------------

    def breached(self) -> List[str]:
        """Names of currently-breached SLOs, sorted."""
        return [name for name in sorted(self._states)
                if self._states[name].breached]

    def breach_count(self) -> int:
        """Total breach transitions across every spec."""
        return sum(s.breaches for s in self._states.values())

    def summary(self) -> Dict[str, Any]:
        """JSON-ready per-spec state: target, observed window burn rates,
        breach count — what bench artifacts embed and ``repro status``
        renders."""
        now = self.clock.now()
        specs: Dict[str, Any] = {}
        for name in sorted(self._states):
            state = self._states[name]
            spec = state.spec
            fast_frac, fast_n = state.burn(now, spec.fast_window_s)
            slow_frac, slow_n = state.burn(now, spec.slow_window_s)
            budget = spec.budget if spec.budget > 0 else 1.0
            specs[name] = {
                "target": spec.target,
                "unit": spec.unit,
                "budget": spec.budget,
                "metric": spec.metric,
                "observed": round(state.last_observed, 9),
                "fast_bad_fraction": round(fast_frac, 6),
                "slow_bad_fraction": round(slow_frac, 6),
                "fast_burn_rate": round(fast_frac / budget, 6),
                "slow_burn_rate": round(slow_frac / budget, 6),
                "window_events": max(fast_n, slow_n),
                "breached": state.breached,
                "breaches": state.breaches,
            }
        return {"specs": specs, "breaches": self.breach_count(),
                "breached_now": self.breached()}


class NullSloTracker:
    """Inert tracker for components that only poke sample hooks."""

    enabled = False

    def sample_if_due(self) -> None:
        pass

    def sample(self) -> None:
        pass

    def breached(self) -> List[str]:
        return []

    def breach_count(self) -> int:
        return 0

    def summary(self) -> Dict[str, Any]:
        return {"specs": {}, "breaches": 0, "breached_now": []}


NULL_SLOS = NullSloTracker()
