"""Exporters: registry snapshots and span trees as tables or JSON.

Fixed-width rendering reuses :mod:`repro.metrics.reporting` so operator
output looks like every benchmark table; the JSON forms are plain dicts
of built-in types, ready for ``json.dumps`` in benchmark harnesses.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.metrics.reporting import format_duration, render_table
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.tracing import Span

__all__ = [
    "journal_to_dict", "journal_to_json", "render_journal",
    "registry_to_dict", "registry_to_json", "render_registry",
    "render_span_tree", "slo_to_dict", "slo_to_json", "render_slo",
    "span_to_dict", "span_to_json",
]


# -- span trees ---------------------------------------------------------------

def span_to_dict(span: Span) -> Dict[str, Any]:
    """One span (and its subtree) as JSON-ready nested dicts."""
    out: Dict[str, Any] = {
        "name": span.name,
        "start_s": span.start,
        "duration_s": span.duration,
        "status": span.status,
    }
    if span.error:
        out["error"] = span.error
    if span.attributes:
        out["attributes"] = dict(span.attributes)
    if span.metrics:
        out["metrics"] = dict(span.metrics)
    if span.children:
        out["children"] = [span_to_dict(child) for child in span.children]
    return out


def span_to_json(span: Span, indent: int = 2) -> str:
    """The span tree serialized as a JSON string."""
    return json.dumps(span_to_dict(span), indent=indent, sort_keys=True)


def render_span_tree(span: Span, title: str = "") -> str:
    """An indented fixed-width view of one span tree."""
    rows = []

    def visit(node: Span, depth: int) -> None:
        notes = []
        for key, value in sorted(node.attributes.items()):
            notes.append(f"{key}={value}")
        for key, value in sorted(node.metrics.items()):
            notes.append(f"{key}={value:g}")
        if node.status == "error":
            notes.append(f"ERROR: {node.error}")
        rows.append(["  " * depth + node.name,
                     format_duration(node.duration),
                     " ".join(notes)])
        for child in node.children:
            visit(child, depth + 1)

    visit(span, 0)
    return render_table(["span", "wall", "detail"], rows, title=title)


# -- registries ---------------------------------------------------------------

def registry_to_dict(registry: MetricsRegistry, prefix: str = "") -> Dict[str, Any]:
    """A JSON-ready snapshot: name → value / histogram summary."""
    return registry.snapshot(prefix)


def registry_to_json(registry: MetricsRegistry, prefix: str = "",
                     indent: int = 2) -> str:
    """The registry snapshot serialized as a JSON string."""
    return json.dumps(registry_to_dict(registry, prefix),
                      indent=indent, sort_keys=True)


def _format_observation(value: float, unit: str) -> str:
    """One histogram statistic in its own unit.

    Only second-valued histograms get µs/ms/s formatting; count-valued
    ones (page faults, rows scanned) are plain numbers.
    """
    if unit in ("s", "seconds"):
        return format_duration(value)
    return f"{value:g}"


def render_registry(registry: MetricsRegistry, prefix: str = "",
                    title: str = "metrics") -> str:
    """The registry as a fixed-width table, one instrument per row.

    Histograms show count/mean and the reservoir percentiles (formatted
    per their ``unit``); counters and gauges show their value.
    """
    rows = []
    for name, instrument in registry.items(prefix):
        if isinstance(instrument, Histogram):
            s = instrument.summary()
            fmt = lambda v: _format_observation(v, instrument.unit)
            detail = (f"n={int(s['count'])} mean={fmt(s['mean'])} "
                      f"p50={fmt(s['p50'])} "
                      f"p95={fmt(s['p95'])} "
                      f"p99={fmt(s['p99'])} "
                      f"max={fmt(s['max'])}")
            rows.append([name, instrument.kind, detail])
        else:
            rows.append([name, instrument.kind, instrument.value])
    return render_table(["metric", "kind", "value"], rows, title=title)


# -- event journal ------------------------------------------------------------

def journal_to_dict(journal, tail: int = 0) -> Dict[str, Any]:
    """The journal as JSON-ready dicts: digest (cumulative per-type
    counts + the ``truncated`` eviction marker) and the retained events
    (all of them, or the most recent ``tail``)."""
    events = journal.tail(tail) if tail > 0 else list(journal)
    return {
        "digest": journal.digest(),
        "events": [e.to_dict() for e in events],
    }


def journal_to_json(journal, tail: int = 0, indent: int = 2) -> str:
    """The journal serialized as a JSON string."""
    return json.dumps(journal_to_dict(journal, tail=tail),
                      indent=indent, sort_keys=True)


def _event_context(event_dict: Dict[str, Any]) -> str:
    """The compact context column: node, partition, epochs, span id."""
    parts = []
    if event_dict.get("node"):
        parts.append(event_dict["node"])
    if event_dict.get("acg_id") is not None:
        parts.append(f"acg={event_dict['acg_id']}")
    if event_dict.get("repl_epoch") is not None:
        parts.append(f"re={event_dict['repl_epoch']}")
    if event_dict.get("route_epoch") is not None:
        parts.append(f"rte={event_dict['route_epoch']}")
    if event_dict.get("span_id") is not None:
        parts.append(f"span={event_dict['span_id']}")
    return " ".join(parts)


def render_journal(journal, tail: int = 20,
                   title: str = "events") -> str:
    """The most recent journal events as a fixed-width table."""
    rows = []
    for event in journal.tail(tail):
        d = event.to_dict()
        detail = " ".join(f"{k}={v}" for k, v in d.get("detail", {}).items())
        rows.append([d["seq"], f"{d['t']:.3f}", d["type"],
                     _event_context(d), detail])
    digest = journal.digest()
    suffix = (f" (showing {len(rows)}/{digest['retained']} retained, "
              f"{digest['truncated']} evicted, {digest['total']} total)")
    return render_table(["seq", "t", "type", "where", "detail"], rows,
                        title=title + suffix)


# -- SLOs ---------------------------------------------------------------------

def slo_to_dict(slos) -> Dict[str, Any]:
    """The tracker summary, already JSON-ready (kept as an exporter for
    symmetry with the other sections bench artifacts embed)."""
    return slos.summary()


def slo_to_json(slos, indent: int = 2) -> str:
    """The SLO summary serialized as a JSON string."""
    return json.dumps(slo_to_dict(slos), indent=indent, sort_keys=True)


def render_slo(slos, title: str = "slos") -> str:
    """Per-SLO state as a fixed-width table: target vs observed, burn
    rates over both windows, breach counts."""
    summary = slos.summary()
    rows = []
    for name, s in summary["specs"].items():
        fmt = lambda v: _format_observation(v, s["unit"])
        status = "BREACHED" if s["breached"] else "ok"
        rows.append([
            name, fmt(s["target"]), fmt(s["observed"]),
            f"{s['fast_burn_rate']:.2f}", f"{s['slow_burn_rate']:.2f}",
            s["breaches"], status,
        ])
    return render_table(
        ["slo", "target", "observed", "burn(fast)", "burn(slow)",
         "breaches", "status"],
        rows, title=title)
