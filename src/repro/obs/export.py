"""Exporters: registry snapshots and span trees as tables or JSON.

Fixed-width rendering reuses :mod:`repro.metrics.reporting` so operator
output looks like every benchmark table; the JSON forms are plain dicts
of built-in types, ready for ``json.dumps`` in benchmark harnesses.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.metrics.reporting import format_duration, render_table
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.tracing import Span


# -- span trees ---------------------------------------------------------------

def span_to_dict(span: Span) -> Dict[str, Any]:
    """One span (and its subtree) as JSON-ready nested dicts."""
    out: Dict[str, Any] = {
        "name": span.name,
        "start_s": span.start,
        "duration_s": span.duration,
        "status": span.status,
    }
    if span.error:
        out["error"] = span.error
    if span.attributes:
        out["attributes"] = dict(span.attributes)
    if span.metrics:
        out["metrics"] = dict(span.metrics)
    if span.children:
        out["children"] = [span_to_dict(child) for child in span.children]
    return out


def span_to_json(span: Span, indent: int = 2) -> str:
    """The span tree serialized as a JSON string."""
    return json.dumps(span_to_dict(span), indent=indent, sort_keys=True)


def render_span_tree(span: Span, title: str = "") -> str:
    """An indented fixed-width view of one span tree."""
    rows = []

    def visit(node: Span, depth: int) -> None:
        notes = []
        for key, value in sorted(node.attributes.items()):
            notes.append(f"{key}={value}")
        for key, value in sorted(node.metrics.items()):
            notes.append(f"{key}={value:g}")
        if node.status == "error":
            notes.append(f"ERROR: {node.error}")
        rows.append(["  " * depth + node.name,
                     format_duration(node.duration),
                     " ".join(notes)])
        for child in node.children:
            visit(child, depth + 1)

    visit(span, 0)
    return render_table(["span", "wall", "detail"], rows, title=title)


# -- registries ---------------------------------------------------------------

def registry_to_dict(registry: MetricsRegistry, prefix: str = "") -> Dict[str, Any]:
    """A JSON-ready snapshot: name → value / histogram summary."""
    return registry.snapshot(prefix)


def registry_to_json(registry: MetricsRegistry, prefix: str = "",
                     indent: int = 2) -> str:
    """The registry snapshot serialized as a JSON string."""
    return json.dumps(registry_to_dict(registry, prefix),
                      indent=indent, sort_keys=True)


def render_registry(registry: MetricsRegistry, prefix: str = "",
                    title: str = "metrics") -> str:
    """The registry as a fixed-width table, one instrument per row.

    Histograms show count/mean and the reservoir percentiles; counters
    and gauges show their value.
    """
    rows = []
    instruments = registry.find(prefix) if prefix else {
        name: registry.find(name)[name] for name in registry.names()}
    for name in sorted(instruments):
        instrument = instruments[name]
        if isinstance(instrument, Histogram):
            s = instrument.summary()
            detail = (f"n={int(s['count'])} mean={format_duration(s['mean'])} "
                      f"p50={format_duration(s['p50'])} "
                      f"p95={format_duration(s['p95'])} "
                      f"p99={format_duration(s['p99'])} "
                      f"max={format_duration(s['max'])}")
            rows.append([name, instrument.kind, detail])
        else:
            rows.append([name, instrument.kind, instrument.value])
    return render_table(["metric", "kind", "value"], rows, title=title)
