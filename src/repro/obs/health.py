"""The health plane: heartbeat-state gauges and cluster verdicts.

The :class:`HealthMonitor` samples the live deployment state the Master
and Index Nodes already maintain into ``cluster.health.*`` gauges —
per-replica applied-watermark lag, under-replicated partition count, a
time-to-catch-up estimate, and route-table staleness — and derives a
per-node plus whole-cluster **verdict**: ``healthy``, ``degraded``, or
``critical``, always with named causes (``node_down:in2``,
``under_replicated``, ``slo_breach:search_latency``) rather than a bare
traffic light.

Verdict *transitions* are emitted into the event journal as
``health.degraded`` / ``health.critical`` / ``health.healthy`` events,
so a chaos run's journal shows the cluster going degraded at the crash
and healthy again after recovery — the readout ``repro status`` renders.

Node rules (first match wins):

* endpoint down while still registered → **critical** (``down`` — its
  partitions are stranded until failover);
* endpoint down after failover removed it → **degraded** (``departed``);
* endpoint up but not registered → **degraded** (``awaiting_rejoin``);
* otherwise **healthy**.

Cluster rules (worst wins, every matching cause named):

* any partition placed on no live node → **critical**
  (``partitions_stranded`` / ``unplaced_partitions``);
* any node critical → **critical**;
* under-replicated partitions (RF > 1) → **degraded**;
* any node degraded → **degraded**;
* any currently-breached SLO → **degraded**;
* otherwise **healthy**.

Like every observability layer: zero simulated time, no randomness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.obs.journal import NULL_JOURNAL
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import NULL_SLOS

if TYPE_CHECKING:
    from repro.sim.clock import SimClock

DEFAULT_INTERVAL_S = 1.0

HEALTHY = "healthy"
DEGRADED = "degraded"
CRITICAL = "critical"
_RANK = {HEALTHY: 0, DEGRADED: 1, CRITICAL: 2}


@dataclass
class HealthVerdict:
    """One verdict with its named causes, per node and cluster-wide."""

    verdict: str
    causes: Tuple[str, ...]
    nodes: Dict[str, Tuple[str, Tuple[str, ...]]]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "verdict": self.verdict,
            "causes": list(self.causes),
            "nodes": {name: {"verdict": v, "causes": list(c)}
                      for name, (v, c) in sorted(self.nodes.items())},
        }


class HealthMonitor:
    """Derives gauges and verdicts from Master + Index Node live state."""

    enabled = True

    def __init__(self, clock: "SimClock", registry: MetricsRegistry,
                 master, nodes: Dict[str, Any],
                 journal=NULL_JOURNAL, slos=NULL_SLOS,
                 interval_s: float = DEFAULT_INTERVAL_S,
                 lag_threshold: int = 0) -> None:
        self.clock = clock
        self.registry = registry
        self.master = master
        self.nodes = nodes
        self.journal = journal
        self.slos = slos
        self.interval_s = interval_s
        # Follower lag beyond this many records marks a node's partition
        # as catching up (0 = any lag counts).
        self.lag_threshold = lag_threshold
        self._last_sample: Optional[float] = None
        self._last_verdict = HEALTHY
        # Route-table staleness: when we last saw the routing epoch move.
        self._route_epoch_seen = master.partitions.epoch
        self._route_epoch_t = clock.now()
        # Catch-up rate estimation: previous (t, total_lag) observation.
        self._prev_lag: Optional[Tuple[float, int]] = None
        self._catchup_eta_s = 0.0
        registry.gauge_fn("cluster.health.repl_lag_max", self.repl_lag_max)
        registry.gauge_fn("cluster.health.under_replicated",
                          lambda: len(self.under_replicated()))
        registry.gauge_fn("cluster.health.nodes_down",
                          lambda: sum(1 for n in self.nodes.values()
                                      if not n.endpoint.up))
        registry.gauge_fn("cluster.health.route_staleness_s",
                          self.route_staleness_s)
        registry.gauge_fn("cluster.health.catchup_eta_s",
                          lambda: self._catchup_eta_s)
        # 1 while no acting Master is up (crash before the standby's
        # lease expires, or no standby at all); the master-availability
        # SLO burns its budget against this gauge.  ``self.master`` is
        # re-pointed by the deployment on standby promotion, so the
        # gauge follows the acting role, not one process.
        registry.gauge_fn("cluster.health.master_unavailable",
                          self.master_unavailable)

    # -- gauges ---------------------------------------------------------------

    def _replica_lags(self) -> Dict[int, int]:
        """Per-partition worst follower applied-watermark lag (records)."""
        sets = self.master.replica_sets
        if sets is None:
            return {}
        lags: Dict[int, int] = {}
        for acg_id in sets.partitions():
            state = sets.get(acg_id)
            if state is None or not state.followers:
                continue
            worst = max(state.primary_seq - state.applied.get(f, 0)
                        for f in state.followers)
            lags[acg_id] = max(0, worst)
        return lags

    def repl_lag_max(self) -> int:
        """Worst per-replica applied-watermark lag across the cluster."""
        lags = self._replica_lags()
        return max(lags.values()) if lags else 0

    def under_replicated(self) -> List[int]:
        """Placed partitions with fewer live followers than RF requires."""
        sets = self.master.replica_sets
        if sets is None:
            return []
        needed = sets.rf - 1
        out: List[int] = []
        for partition in self.master.partitions.partitions():
            if partition.node is None:
                continue
            state = sets.get(partition.partition_id)
            followers = state.followers if state is not None else ()
            live = sum(1 for f in followers
                       if f in self.master.index_nodes
                       and f in self.nodes and self.nodes[f].endpoint.up)
            if live < needed:
                out.append(partition.partition_id)
        return sorted(out)

    def master_unavailable(self) -> int:
        """1 when the deployment has no up-and-acting Master."""
        return 0 if (self.master.endpoint.up
                     and getattr(self.master, "acting", True)) else 1

    def route_staleness_s(self) -> float:
        """Virtual seconds since the routing epoch last moved (as this
        monitor observed it)."""
        self._note_route_epoch()
        return self.clock.now() - self._route_epoch_t

    def _note_route_epoch(self) -> None:
        epoch = self.master.partitions.epoch
        if epoch != self._route_epoch_seen:
            self._route_epoch_seen = epoch
            self._route_epoch_t = self.clock.now()

    def _update_catchup_eta(self, now: float) -> None:
        """Estimate time-to-catch-up from the lag's observed slope:
        lag / drain-rate while shrinking, 0 when caught up, -1 (unknown)
        while lag holds or grows."""
        total_lag = sum(self._replica_lags().values())
        prev = self._prev_lag
        self._prev_lag = (now, total_lag)
        if total_lag == 0:
            self._catchup_eta_s = 0.0
            return
        if prev is None or now <= prev[0] or total_lag >= prev[1]:
            self._catchup_eta_s = -1.0
            return
        rate = (prev[1] - total_lag) / (now - prev[0])
        self._catchup_eta_s = total_lag / rate

    # -- verdicts -------------------------------------------------------------

    def node_verdict(self, name: str) -> Tuple[str, Tuple[str, ...]]:
        node = self.nodes[name]
        registered = name in self.master.index_nodes
        if not node.endpoint.up:
            if registered:
                return CRITICAL, ("down",)
            return DEGRADED, ("departed",)
        if not registered:
            return DEGRADED, ("awaiting_rejoin",)
        return HEALTHY, ()

    def verdict(self) -> HealthVerdict:
        nodes = {name: self.node_verdict(name)
                 for name in sorted(self.nodes)}
        causes: List[str] = []
        worst = HEALTHY
        stranded = [p.partition_id
                    for p in self.master.partitions.partitions()
                    if p.node is not None and p.node in self.nodes
                    and not self.nodes[p.node].endpoint.up]
        unplaced = [p.partition_id
                    for p in self.master.partitions.partitions()
                    if p.node is None and p.files]
        if self.master_unavailable():
            worst = CRITICAL
            causes.append("master_unavailable")
        if stranded:
            worst = CRITICAL
            causes.append("partitions_stranded:" +
                          ",".join(str(i) for i in sorted(stranded)))
        if unplaced:
            worst = CRITICAL
            causes.append("unplaced_partitions:" +
                          ",".join(str(i) for i in sorted(unplaced)))
        for name, (v, node_causes) in sorted(nodes.items()):
            if _RANK[v] > _RANK[HEALTHY]:
                label = "node_down" if v == CRITICAL else "node_degraded"
                causes.append(f"{label}:{name}" +
                              (f"({node_causes[0]})" if node_causes else ""))
                if _RANK[v] > _RANK[worst]:
                    worst = v
        under = self.under_replicated()
        if under:
            causes.append("under_replicated:" +
                          ",".join(str(i) for i in under))
            if _RANK[worst] < _RANK[DEGRADED]:
                worst = DEGRADED
        for slo_name in self.slos.breached():
            causes.append(f"slo_breach:{slo_name}")
            if _RANK[worst] < _RANK[DEGRADED]:
                worst = DEGRADED
        return HealthVerdict(worst, tuple(causes), nodes)

    # -- sampling -------------------------------------------------------------

    def sample_if_due(self) -> None:
        now = self.clock.now()
        if self._last_sample is not None and \
                now - self._last_sample < self.interval_s:
            return
        self.sample()

    def sample(self) -> HealthVerdict:
        """One evaluation round: refresh derived gauges, compute the
        verdict, journal the transition if it changed."""
        now = self.clock.now()
        self._last_sample = now
        self._note_route_epoch()
        self._update_catchup_eta(now)
        verdict = self.verdict()
        if verdict.verdict != self._last_verdict:
            self.journal.emit(f"health.{verdict.verdict}",
                              previous=self._last_verdict,
                              causes=list(verdict.causes))
            self._last_verdict = verdict.verdict
        return verdict

    def summary(self) -> Dict[str, Any]:
        """JSON-ready snapshot: verdict + the health gauges."""
        verdict = self.verdict()
        out = verdict.to_dict()
        out["gauges"] = {
            "repl_lag_max": self.repl_lag_max(),
            "under_replicated": len(self.under_replicated()),
            "nodes_down": sum(1 for n in self.nodes.values()
                              if not n.endpoint.up),
            "route_staleness_s": round(self.route_staleness_s(), 6),
            "catchup_eta_s": round(self._catchup_eta_s, 6),
            "master_unavailable": self.master_unavailable(),
        }
        return out


class NullHealthMonitor:
    """Inert monitor for sample hooks on undecorated deployments."""

    enabled = False

    def sample_if_due(self) -> None:
        pass

    def sample(self) -> None:
        return None

    def verdict(self) -> HealthVerdict:
        return HealthVerdict(HEALTHY, (), {})

    def summary(self) -> Dict[str, Any]:
        return {"verdict": HEALTHY, "causes": [], "nodes": {}, "gauges": {}}


NULL_HEALTH = NullHealthMonitor()
