"""Access-Causality Graph.

A weighted directed graph over file ids: an edge (fA, fB, w) means fA was a
content producer of fB in ``w`` observed co-accesses.  Partitioning works on
the *undirected* view (the cut cost of an index partition does not care
about edge direction), so the class exposes both.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List, Set, Tuple


class AccessCausalityGraph:
    """Weighted directed multigraph of file access causality."""

    def __init__(self) -> None:
        # out[u][v] = weight of directed edge u -> v
        self._out: Dict[int, Dict[int, int]] = {}
        self._in: Dict[int, Dict[int, int]] = {}

    # -- construction --------------------------------------------------------

    def add_file(self, file_id: int) -> None:
        """Ensure a vertex exists (isolated files are valid graph members)."""
        self._out.setdefault(file_id, {})
        self._in.setdefault(file_id, {})

    def add_causality(self, producer: int, consumer: int, weight: int = 1) -> None:
        """Record ``weight`` observations of producer → consumer."""
        if weight <= 0:
            raise ValueError(f"weight must be positive: {weight}")
        if producer == consumer:
            raise ValueError("self-causality is not recorded")
        self.add_file(producer)
        self.add_file(consumer)
        self._out[producer][consumer] = self._out[producer].get(consumer, 0) + weight
        self._in[consumer][producer] = self._in[consumer].get(producer, 0) + weight

    def add_pairs(self, pairs: Iterable[Tuple[int, int]]) -> None:
        """Record a stream of (producer, consumer) causality pairs."""
        for producer, consumer in pairs:
            self.add_causality(producer, consumer)

    def remove_file(self, file_id: int) -> None:
        """Delete a vertex and its incident edges (file was unlinked)."""
        for consumer in list(self._out.get(file_id, ())):
            del self._in[consumer][file_id]
        for producer in list(self._in.get(file_id, ())):
            del self._out[producer][file_id]
        self._out.pop(file_id, None)
        self._in.pop(file_id, None)

    def merge(self, other: "AccessCausalityGraph") -> None:
        """Fold another ACG into this one, summing edge weights.

        This is what an Index Node does when a client flushes its cached
        in-RAM ACG after a process finishes.
        """
        for u in other._out:
            self.add_file(u)
        for u, targets in other._out.items():
            for v, w in targets.items():
                self.add_causality(u, v, w)

    # -- inspection -------------------------------------------------------------

    @property
    def vertex_count(self) -> int:
        """Number of files in the graph."""
        return len(self._out)

    @property
    def edge_count(self) -> int:
        """Number of directed edges."""
        return sum(len(t) for t in self._out.values())

    @property
    def total_weight(self) -> int:
        """Sum of directed edge weights (Table II's 'total weight')."""
        return sum(w for t in self._out.values() for w in t.values())

    def vertices(self) -> Iterator[int]:
        """Iterate all file ids in the graph."""
        return iter(self._out)

    def has_vertex(self, file_id: int) -> bool:
        """Whether a file id is a vertex of this graph."""
        return file_id in self._out

    def edges(self) -> Iterator[Tuple[int, int, int]]:
        """Directed (producer, consumer, weight) triples."""
        for u, targets in self._out.items():
            for v, w in targets.items():
                yield u, v, w

    def weight(self, producer: int, consumer: int) -> int:
        """Weight of the directed edge producer -> consumer (0 if absent)."""
        return self._out.get(producer, {}).get(consumer, 0)

    def successors(self, file_id: int) -> Dict[int, int]:
        """Outgoing edges of a file: {consumer: weight}."""
        return dict(self._out.get(file_id, {}))

    def predecessors(self, file_id: int) -> Dict[int, int]:
        """Incoming edges of a file: {producer: weight}."""
        return dict(self._in.get(file_id, {}))

    # -- undirected view (what partitioning operates on) ---------------------------

    def undirected_adjacency(self) -> Dict[int, Dict[int, int]]:
        """Symmetric adjacency with weights summed across both directions."""
        adj: Dict[int, Dict[int, int]] = {u: {} for u in self._out}
        for u, v, w in self.edges():
            adj[u][v] = adj[u].get(v, 0) + w
            adj[v][u] = adj[v].get(u, 0) + w
        return adj

    def neighbors(self, file_id: int) -> Set[int]:
        """All files connected to this one, ignoring direction."""
        return set(self._out.get(file_id, ())) | set(self._in.get(file_id, ()))

    def connected_components(self) -> List[Set[int]]:
        """Connected components of the undirected view, largest first."""
        seen: Set[int] = set()
        components: List[Set[int]] = []
        for start in self._out:
            if start in seen:
                continue
            component = {start}
            queue = deque([start])
            seen.add(start)
            while queue:
                node = queue.popleft()
                for neighbor in self.neighbors(node):
                    if neighbor not in seen:
                        seen.add(neighbor)
                        component.add(neighbor)
                        queue.append(neighbor)
            components.append(component)
        components.sort(key=len, reverse=True)
        return components

    def subgraph(self, vertices: Set[int]) -> "AccessCausalityGraph":
        """The induced subgraph on ``vertices`` (used when splitting)."""
        sub = AccessCausalityGraph()
        for v in vertices:
            if v in self._out:
                sub.add_file(v)
        for u, v, w in self.edges():
            if u in vertices and v in vertices:
                sub.add_causality(u, v, w)
        return sub

    def cut_weight(self, side_a: Set[int]) -> int:
        """Total weight of edges crossing between ``side_a`` and the rest."""
        return sum(w for u, v, w in self.edges() if (u in side_a) != (v in side_a))

    # -- aging -----------------------------------------------------------------------

    def decay(self, factor: float) -> None:
        """Scale every edge weight by ``factor`` (0 < factor <= 1),
        dropping edges whose weight rounds to zero.

        Application behaviour is stable but not eternal; deployments age
        causality so that a workload shift (files repurposed by another
        application) can eventually re-partition.  Vertices are kept even
        when they lose their last edge — files still exist.
        """
        if not 0.0 < factor <= 1.0:
            raise ValueError(f"decay factor must be in (0, 1]: {factor}")
        for u in list(self._out):
            for v in list(self._out[u]):
                scaled = int(self._out[u][v] * factor)
                if scaled <= 0:
                    del self._out[u][v]
                    del self._in[v][u]
                else:
                    self._out[u][v] = scaled
                    self._in[v][u] = scaled

    def prune_below(self, min_weight: int) -> int:
        """Drop every edge lighter than ``min_weight``; returns count.

        Weak causality (one-off co-accesses) adds noise to partitioning;
        pruning keeps the graph dominated by the stable application
        structure.
        """
        removed = 0
        for u in list(self._out):
            for v in list(self._out[u]):
                if self._out[u][v] < min_weight:
                    del self._out[u][v]
                    del self._in[v][u]
                    removed += 1
        return removed

    # -- serialization ---------------------------------------------------------------

    def to_records(self) -> List[Tuple[int, int, int]]:
        """Edge list plus isolated vertices encoded as (v, -1, 0)."""
        records = list(self.edges())
        connected = {u for u, _, _ in records} | {v for _, v, _ in records}
        records.extend((v, -1, 0) for v in self._out if v not in connected)
        return records

    @classmethod
    def from_records(cls, records: Iterable[Tuple[int, int, int]]) -> "AccessCausalityGraph":
        """Rebuild a graph from :meth:`to_records` output."""
        graph = cls()
        for u, v, w in records:
            if v == -1:
                graph.add_file(u)
            else:
                graph.add_causality(u, v, w)
        return graph

    def __repr__(self) -> str:
        return (f"AccessCausalityGraph(vertices={self.vertex_count}, "
                f"edges={self.edge_count}, weight={self.total_weight})")
