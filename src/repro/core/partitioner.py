"""Partitioning policy: ACG components → index partitions.

Section III: Propeller partitions files by the connected components of the
ACG; small components from the same application are clustered into one
partition to prevent index fragmentation; a component that grows past a
threshold (the paper uses 50 000 files) is cut in two balanced halves with
minimal cut weight by the multilevel bisector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.core.acg import AccessCausalityGraph
from repro.core.metis import bisect


@dataclass(frozen=True)
class PartitioningPolicy:
    """Tunables for ACG partitioning.

    ``split_threshold`` — component/partition size above which a split is
    triggered (paper: 50 000 files).
    ``cluster_target`` — small components are packed together until a
    partition reaches about this many files.
    ``balance_tolerance`` — allowed imbalance for a split (0.05 = 55/45).
    """

    split_threshold: int = 50_000
    cluster_target: int = 1_000
    balance_tolerance: float = 0.05

    def __post_init__(self) -> None:
        if self.split_threshold < 2:
            raise ValueError("split_threshold must be >= 2")
        if self.cluster_target < 1:
            raise ValueError("cluster_target must be >= 1")


AppOf = Optional[Callable[[int], object]]


def partition_components(graph: AccessCausalityGraph,
                         policy: PartitioningPolicy = PartitioningPolicy(),
                         app_of: AppOf = None) -> List[Set[int]]:
    """Turn an ACG into index partitions.

    Components above ``split_threshold`` are recursively bisected; small
    components are greedily packed into partitions of about
    ``cluster_target`` files.  When ``app_of`` is given (file id → app
    label), only components of the same application are packed together —
    the paper's anti-fragmentation rule.
    """
    partitions: List[Set[int]] = []
    packers: Dict[object, Set[int]] = {}
    for component in graph.connected_components():
        if len(component) > policy.split_threshold:
            partitions.extend(_split_recursive(graph, component, policy))
        elif len(component) >= policy.cluster_target:
            partitions.append(component)
        else:
            label = app_of(next(iter(component))) if app_of else None
            bucket = packers.setdefault(label, set())
            bucket.update(component)
            if len(bucket) >= policy.cluster_target:
                partitions.append(bucket)
                packers[label] = set()
    partitions.extend(bucket for bucket in packers.values() if bucket)
    return partitions


def _split_recursive(graph: AccessCausalityGraph, component: Set[int],
                     policy: PartitioningPolicy) -> List[Set[int]]:
    if len(component) <= policy.split_threshold:
        return [component]
    adjacency = graph.subgraph(component).undirected_adjacency()
    result = bisect(adjacency, balance_tolerance=policy.balance_tolerance)
    halves = []
    for side in (result.side_a, result.side_b):
        if not side:
            continue
        halves.extend(_split_recursive(graph, side, policy))
    return halves


def split_partition(graph: AccessCausalityGraph, files: Set[int],
                    policy: PartitioningPolicy = PartitioningPolicy()) -> List[Set[int]]:
    """One split step: bisect an oversized partition into two balanced,
    minimal-cut halves (what an Index Node runs in the background)."""
    if len(files) < 2:
        return [set(files)]
    adjacency = graph.subgraph(files).undirected_adjacency()
    # Files the ACG never saw still belong to the partition; spread them
    # over both halves to preserve balance.
    orphans = sorted(f for f in files if f not in adjacency)
    result = bisect(adjacency, balance_tolerance=policy.balance_tolerance)
    side_a, side_b = set(result.side_a), set(result.side_b)
    for i, orphan in enumerate(orphans):
        (side_a if (len(side_a) <= len(side_b)) else side_b).add(orphan)
    return [side for side in (side_a, side_b) if side]
