"""Streaming graph partitioning (Stanton–Kliot, KDD'12).

The paper cites streaming partitioners [42] among the algorithms usable
for splitting ACGs.  The Linear Deterministic Greedy (LDG) heuristic
assigns vertices one at a time — the natural fit for Propeller's *online*
file placement, where the Master must place each new file as its first
causality edge arrives, without seeing the whole graph:

    place v in the partition P maximizing |N(v) ∩ P| · (1 − |P|/C)

with C the per-partition capacity.  Used by the partitioner ablation as
the online alternative to offline multilevel bisection.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.core.metis import Adjacency


class StreamingPartitioner:
    """Online LDG placement of a growing graph."""

    def __init__(self, num_partitions: int, capacity: int) -> None:
        if num_partitions < 1:
            raise ValueError("need at least one partition")
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.partitions: List[Set[int]] = [set() for _ in range(num_partitions)]
        self.assignment: Dict[int, int] = {}

    def place(self, vertex: int, neighbors: Iterable[int]) -> int:
        """Assign one vertex given its (currently known) neighbors.

        Returns the chosen partition id.  Idempotent for already-placed
        vertices.
        """
        if vertex in self.assignment:
            return self.assignment[vertex]
        neighbor_set = set(neighbors)
        best_partition = None
        best_key = None
        for pid, members in enumerate(self.partitions):
            if len(members) >= self.capacity:
                continue
            affinity = len(neighbor_set & members)
            score = affinity * (1.0 - len(members) / self.capacity)
            # Deterministic tie-break: emptier partition wins, then id.
            key = (score, -len(members), -pid)
            if best_key is None or key > best_key:
                best_key, best_partition = key, pid
        if best_partition is None:
            raise ValueError("all partitions are at capacity")
        self.partitions[best_partition].add(vertex)
        self.assignment[vertex] = best_partition
        return best_partition

    def cut_weight(self, adjacency: Adjacency) -> int:
        """Edge weight crossing partitions under the final assignment."""
        cut = 0
        for u, targets in adjacency.items():
            for v, w in targets.items():
                if u < v and self.assignment.get(u) != self.assignment.get(v):
                    cut += w
        return cut


def streaming_partition(adjacency: Adjacency, num_partitions: int,
                        order: Optional[Sequence[int]] = None,
                        slack: float = 1.1) -> StreamingPartitioner:
    """Partition a whole graph by streaming its vertices through LDG.

    ``order`` fixes the arrival order (default: sorted — file ids arrive
    roughly in creation order in Propeller); ``slack`` over-provisions
    capacity so placement never wedges.
    """
    vertices = list(order) if order is not None else sorted(adjacency)
    capacity = max(1, int(slack * len(vertices) / num_partitions) + 1)
    partitioner = StreamingPartitioner(num_partitions, capacity)
    for vertex in vertices:
        partitioner.place(vertex, adjacency.get(vertex, {}))
    return partitioner
