"""Spectral bisection baseline.

The paper cites spectral methods (Hagen–Kahng ratio cut [24], Ng–Jordan–
Weiss [37]) as alternative partitioners.  This implements classic Fiedler-
vector bisection: split at the median of the second-smallest eigenvector of
the graph Laplacian.  Used in the partitioner ablation as a quality/speed
comparison point against the multilevel scheme in :mod:`repro.core.metis`.
"""

from __future__ import annotations

from typing import Set

import numpy as np

from repro.core.metis import Adjacency, BisectionResult, cut_of, total_edge_weight


def fiedler_vector(adjacency: Adjacency) -> np.ndarray:
    """Eigenvector of the Laplacian's second-smallest eigenvalue.

    Uses scipy's sparse Lanczos solver for big graphs and dense ``eigh``
    for small ones (Lanczos needs k < n and is unreliable for tiny n).
    """
    vertices = sorted(adjacency)
    n = len(vertices)
    pos = {v: i for i, v in enumerate(vertices)}
    if n < 3:
        return np.array([-1.0, 1.0][:n])
    if n <= 64:
        laplacian = np.zeros((n, n))
        for u, targets in adjacency.items():
            for v, w in targets.items():
                laplacian[pos[u], pos[v]] = -w
            laplacian[pos[u], pos[u]] = sum(targets.values())
        _, eigenvectors = np.linalg.eigh(laplacian)
        return eigenvectors[:, 1]
    from scipy.sparse import lil_matrix
    from scipy.sparse.linalg import eigsh

    laplacian = lil_matrix((n, n))
    for u, targets in adjacency.items():
        for v, w in targets.items():
            laplacian[pos[u], pos[v]] = -w
        laplacian[pos[u], pos[u]] = sum(targets.values())
    _, eigenvectors = eigsh(laplacian.tocsr(), k=2, which="SM", maxiter=5000)
    return eigenvectors[:, 1]


def spectral_bisect(adjacency: Adjacency) -> BisectionResult:
    """Bisect by thresholding the Fiedler vector at its median."""
    vertices = sorted(adjacency)
    if len(vertices) < 2:
        return BisectionResult(set(vertices), set(), 0, total_edge_weight(adjacency))
    fiedler = fiedler_vector(adjacency)
    order = np.argsort(fiedler, kind="stable")
    half = len(vertices) // 2
    side_a: Set[int] = {vertices[i] for i in order[:half]}
    side_b = set(vertices) - side_a
    return BisectionResult(side_a, side_b, cut_of(adjacency, side_a),
                           total_edge_weight(adjacency))
