"""Static partitioning schemes — the alternatives Section III rejects.

Existing file-search systems partition by *static* attributes:

* **namespace-based** (Spyglass [30], GIGA+ [38]) — files grouped by
  directory subtree;
* **hash-based** (what SQL/NoSQL sharding does to a path key) — files
  spread by a hash of the path.

Both are blind to file-access patterns, so one application's accesses
fan out across partitions (Figure 3's Firefox example).  They are
implemented here as first-class library functions so ablations and
downstream comparisons can use the real thing rather than ad-hoc copies.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Sequence, Tuple


def namespace_partition(paths: Sequence[str], depth: int = 1,
                        group_size: int = 0) -> Dict[str, int]:
    """Partition by the first ``depth`` path components.

    Directories bigger than ``group_size`` (when positive) are split
    round-robin into numbered sub-partitions — the GIGA+ move for giant
    fan-out directories.  Returns path → partition id.
    """
    if depth < 1:
        raise ValueError(f"depth must be >= 1: {depth}")
    prefixes: Dict[str, int] = {}
    counts: Dict[Tuple[int, int], int] = {}
    mapping: Dict[str, int] = {}
    next_id = 0
    for path in paths:
        parts = [p for p in path.split("/") if p]
        prefix = "/" + "/".join(parts[:depth])
        if prefix not in prefixes:
            prefixes[prefix] = next_id
            next_id += 1
        base = prefixes[prefix]
        if group_size > 0:
            seen = counts.get((base, 0), 0)
            counts[(base, 0)] = seen + 1
            mapping[path] = base * 1_000_000 + seen // group_size
        else:
            mapping[path] = base
    return mapping


def hash_partition(paths: Sequence[str], num_partitions: int) -> Dict[str, int]:
    """Partition by a stable hash of the full path (sharding by key)."""
    if num_partitions < 1:
        raise ValueError(f"num_partitions must be >= 1: {num_partitions}")
    return {path: zlib.crc32(path.encode("utf-8")) % num_partitions
            for path in paths}


def partitions_touched(mapping: Dict[str, int], accesses: Sequence[str]) -> int:
    """How many distinct partitions an access stream crosses — the
    quantity Figure 2(b) shows dominating inline-indexing cost."""
    return len({mapping[path] for path in accesses if path in mapping})


def partition_sizes(mapping: Dict[str, int]) -> List[int]:
    """Partition sizes, descending (for balance inspection)."""
    counts: Dict[int, int] = {}
    for partition in mapping.values():
        counts[partition] = counts.get(partition, 0) + 1
    return sorted(counts.values(), reverse=True)
