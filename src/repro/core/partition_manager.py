"""Partition lifecycle bookkeeping.

The Master Node's view of the world: which partition (ACG group) each file
belongs to, how big each partition is, and which Index Node hosts it.  The
heavy lifting (holding indices, storing the ACG, computing splits) happens
on Index Nodes; this class is the metadata side the paper assigns to the
Master Node, periodically checkpointed to shared storage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import UnknownAcg


@dataclass
class Partition:
    """Metadata for one ACG group."""

    partition_id: int
    files: Set[int] = field(default_factory=set)
    node: Optional[str] = None

    @property
    def size(self) -> int:
        """Number of files in this partition."""
        return len(self.files)


class PartitionManager:
    """file → partition mapping plus per-partition metadata."""

    def __init__(self) -> None:
        self._next_id = 1
        self._partitions: Dict[int, Partition] = {}
        self._file_to_partition: Dict[int, int] = {}
        # Routing epoch: bumped on every event that changes *where*
        # requests must be sent (split, merge, migrate, rebalance,
        # failover, new-partition placement).  Adding files to an
        # existing partition does not bump — membership changes don't
        # invalidate cached node routes.
        self._epoch = 1

    @property
    def epoch(self) -> int:
        """The current routing epoch (monotonically increasing)."""
        return self._epoch

    @property
    def next_id(self) -> int:
        """The id the next partition will get (never reused, so a
        restored manager must carry it forward — see ``from_records``)."""
        return self._next_id

    def bump_epoch(self) -> int:
        """Advance the routing epoch; returns the new value."""
        self._epoch += 1
        return self._epoch

    # -- queries --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._partitions)

    def partitions(self) -> List[Partition]:
        """All partitions, as a list."""
        return list(self._partitions.values())

    def get(self, partition_id: int) -> Partition:
        """Fetch one partition by id or raise :class:`UnknownAcg`."""
        try:
            return self._partitions[partition_id]
        except KeyError:
            raise UnknownAcg(f"partition {partition_id}") from None

    def partition_of(self, file_id: int) -> Optional[int]:
        """The partition id holding a file (None if unmapped)."""
        return self._file_to_partition.get(file_id)

    def node_load(self, node: str) -> int:
        """Total files hosted by one Index Node."""
        return sum(p.size for p in self._partitions.values() if p.node == node)

    def least_loaded(self, nodes: Sequence[str]) -> str:
        """The Index Node with the fewest hosted files (ties: first)."""
        if not nodes:
            raise ValueError("no index nodes registered")
        return min(nodes, key=lambda n: (self.node_load(n), nodes.index(n)))

    # -- mutation ----------------------------------------------------------------

    def new_partition(self, files: Iterable[int] = (), node: Optional[str] = None) -> Partition:
        """Create a partition, optionally pre-filled and placed."""
        partition = Partition(partition_id=self._next_id, node=node)
        self._next_id += 1
        self._partitions[partition.partition_id] = partition
        for file_id in files:
            self.add_file(partition.partition_id, file_id)
        return partition

    def add_file(self, partition_id: int, file_id: int) -> None:
        """Map a file into a partition, moving it if already mapped."""
        old = self._file_to_partition.get(file_id)
        if old == partition_id:
            return
        if old is not None:
            self._partitions[old].files.discard(file_id)
        self.get(partition_id).files.add(file_id)
        self._file_to_partition[file_id] = partition_id

    def remove_file(self, file_id: int) -> Optional[int]:
        """Forget a deleted file; returns the partition it was in."""
        partition_id = self._file_to_partition.pop(file_id, None)
        if partition_id is not None:
            self._partitions[partition_id].files.discard(file_id)
        return partition_id

    def assign_node(self, partition_id: int, node: str) -> None:
        """Place a partition on an Index Node."""
        self.get(partition_id).node = node

    def split(self, partition_id: int, halves: Sequence[Set[int]],
              new_node: Optional[str] = None) -> Tuple[Partition, Partition]:
        """Apply a computed split: the first half stays in place, the
        second becomes a new partition (optionally on a new node)."""
        if len(halves) != 2:
            raise ValueError(f"split needs exactly 2 halves, got {len(halves)}")
        original = self.get(partition_id)
        moved = set(halves[1])
        stay = set(halves[0])
        if stay | moved != original.files or stay & moved:
            raise ValueError("halves must exactly partition the original files")
        new = self.new_partition(node=new_node if new_node is not None else original.node)
        for file_id in moved:
            self.add_file(new.partition_id, file_id)
        return original, new

    def drop_partition(self, partition_id: int) -> None:
        """Delete an empty partition."""
        partition = self.get(partition_id)
        if partition.files:
            raise ValueError(f"partition {partition_id} still holds files")
        del self._partitions[partition_id]

    # -- checkpointing (MN flushes metadata to shared storage) ---------------------

    def to_records(self) -> List[Tuple[int, Optional[str], Tuple[int, ...]]]:
        """Serializable snapshot of all partitions (for checkpoints)."""
        return [(p.partition_id, p.node, tuple(sorted(p.files)))
                for p in self._partitions.values()]

    @classmethod
    def from_records(cls, records: Iterable[Tuple[int, Optional[str], Tuple[int, ...]]],
                     epoch: Optional[int] = None,
                     next_id: Optional[int] = None) -> "PartitionManager":
        """Rebuild a manager from :meth:`to_records` output.

        ``epoch`` and ``next_id`` restore the routing epoch and the id
        counter when the caller (meta-WAL replay) knows them; otherwise
        the epoch restarts at 1 and the counter resumes past the highest
        surviving id, which is only safe when no partition was ever
        dropped and no routes were ever cached."""
        manager = cls()
        max_id = 0
        for partition_id, node, files in records:
            partition = Partition(partition_id=partition_id, node=node)
            manager._partitions[partition_id] = partition
            for file_id in files:
                partition.files.add(file_id)
                manager._file_to_partition[file_id] = partition_id
            max_id = max(max_id, partition_id)
        manager._next_id = next_id if next_id is not None else max_id + 1
        if epoch is not None:
            manager._epoch = epoch
        return manager
