"""Multilevel 2-way graph partitioning in the METIS style.

The paper splits oversized ACG components with METIS [28] because it
reliably produces approximately equal halves with a small edge cut.  This
module re-implements the multilevel scheme from scratch:

1. **Coarsening** — heavy-edge matching collapses the graph level by level
   until it is small;
2. **Initial bisection** — greedy graph growing (BFS region growth from a
   seed, stopping at half the total vertex weight), best of several seeds;
3. **Uncoarsening + refinement** — project the bisection back up, running
   Fiduccia–Mattheyses boundary refinement with a balance constraint at
   every level.

Input graphs are symmetric weighted adjacency dicts
(``{u: {v: weight}}``); vertices may carry weights (they do after
coarsening — a coarse vertex stands for many files).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

Adjacency = Dict[int, Dict[int, int]]

_COARSEST_SIZE = 48
_GROW_SEEDS = 8
_FM_MAX_PASSES = 8


@dataclass
class BisectionResult:
    """Outcome of a 2-way partition."""

    side_a: Set[int]
    side_b: Set[int]
    cut_weight: int
    total_weight: int

    @property
    def balance(self) -> float:
        """max side fraction; 0.5 is perfect."""
        total = len(self.side_a) + len(self.side_b)
        if total == 0:
            return 0.5
        return max(len(self.side_a), len(self.side_b)) / total

    @property
    def cut_fraction(self) -> float:
        """Cut weight / total edge weight (Table II's percentage)."""
        return self.cut_weight / self.total_weight if self.total_weight else 0.0


def _validate(adjacency: Adjacency) -> None:
    for u, targets in adjacency.items():
        for v, w in targets.items():
            if v == u:
                raise ValueError(f"self-loop at {u}")
            if adjacency.get(v, {}).get(u) != w:
                raise ValueError(f"adjacency not symmetric at ({u}, {v})")


def cut_of(adjacency: Adjacency, side_a: Set[int]) -> int:
    """Total weight of edges with exactly one endpoint in ``side_a``."""
    cut = 0
    for u in side_a:
        for v, w in adjacency.get(u, {}).items():
            if v not in side_a:
                cut += w
    return cut


def total_edge_weight(adjacency: Adjacency) -> int:
    """Sum of undirected edge weights."""
    return sum(w for u, t in adjacency.items() for v, w in t.items() if u < v)


# -- coarsening -----------------------------------------------------------------


def _heavy_edge_matching(adjacency: Adjacency, vertex_weight: Dict[int, int],
                         rng: random.Random,
                         max_vertex_weight: Optional[int] = None,
                         ) -> Tuple[Adjacency, Dict[int, int], Dict[int, int]]:
    """One coarsening level.  Returns (coarse_adj, coarse_vweight, mapping)
    where ``mapping[fine_vertex] = coarse_vertex``.

    ``max_vertex_weight`` caps how heavy a merged vertex may get — without
    it, dense regions collapse into one super-vertex heavier than half the
    graph and no balanced bisection exists at the coarsest level.
    """
    order = list(adjacency)
    rng.shuffle(order)
    matched: Set[int] = set()
    mapping: Dict[int, int] = {}
    next_id = 0
    for u in order:
        if u in matched:
            continue
        # Match u with its heaviest unmatched neighbor that keeps the
        # merged vertex under the weight cap.
        best_v, best_w = None, -1
        for v, w in adjacency[u].items():
            if v in matched or w <= best_w:
                continue
            if (max_vertex_weight is not None
                    and vertex_weight[u] + vertex_weight[v] > max_vertex_weight):
                continue
            best_v, best_w = v, w
        matched.add(u)
        mapping[u] = next_id
        if best_v is not None:
            matched.add(best_v)
            mapping[best_v] = next_id
        next_id += 1
    coarse_vweight: Dict[int, int] = {}
    for fine, coarse in mapping.items():
        coarse_vweight[coarse] = coarse_vweight.get(coarse, 0) + vertex_weight[fine]
    coarse_adj: Adjacency = {c: {} for c in range(next_id)}
    for u, targets in adjacency.items():
        cu = mapping[u]
        for v, w in targets.items():
            cv = mapping[v]
            if cu == cv:
                continue
            coarse_adj[cu][cv] = coarse_adj[cu].get(cv, 0) + w
    return coarse_adj, coarse_vweight, mapping


# -- initial bisection ---------------------------------------------------------------


def _greedy_grow(adjacency: Adjacency, vertex_weight: Dict[int, int],
                 seed_vertex: int, half_weight: float) -> Set[int]:
    """Grow a region from ``seed_vertex`` by strongest attachment until it
    holds about half the vertex weight."""
    side: Set[int] = set()
    side_weight = 0
    # gain[v] = total edge weight from v into the region.
    gain: Dict[int, int] = {seed_vertex: 0}
    while gain and side_weight < half_weight:
        v = max(gain, key=lambda x: (gain[x], -x))
        del gain[v]
        side.add(v)
        side_weight += vertex_weight[v]
        for u, w in adjacency[v].items():
            if u not in side:
                gain[u] = gain.get(u, 0) + w
    return side


def _initial_bisection(adjacency: Adjacency, vertex_weight: Dict[int, int],
                       rng: random.Random) -> Set[int]:
    vertices = list(adjacency)
    total = sum(vertex_weight[v] for v in vertices)
    half = total / 2
    best_side: Optional[Set[int]] = None
    best_cut = None
    seeds = rng.sample(vertices, min(_GROW_SEEDS, len(vertices)))
    for seed_vertex in seeds:
        side = _greedy_grow(adjacency, vertex_weight, seed_vertex, half)
        if not side or len(side) == len(vertices):
            continue
        cut = cut_of(adjacency, side)
        if best_cut is None or cut < best_cut:
            best_cut, best_side = cut, side
    if best_side is None:
        # Degenerate graph (e.g. 1 vertex): split arbitrarily.
        best_side = set(vertices[: max(1, len(vertices) // 2)])
    return best_side


# -- FM refinement ----------------------------------------------------------------------


def _gain_of(adjacency: Adjacency, side: Set[int], v: int) -> int:
    internal = external = 0
    in_a = v in side
    for u, w in adjacency[v].items():
        if (u in side) == in_a:
            internal += w
        else:
            external += w
    return external - internal


def _fm_refine(adjacency: Adjacency, vertex_weight: Dict[int, int],
               side_a: Set[int], balance_tolerance: float) -> Set[int]:
    """Fiduccia–Mattheyses passes: repeatedly move the boundary vertex with
    the best cut gain, subject to balance; keep the best prefix of moves.

    Candidate selection uses a lazy max-heap seeded with the boundary
    vertices, so a pass costs O(E log V) rather than O(V^2).
    """
    import heapq

    total_weight = sum(vertex_weight.values())
    max_side = total_weight * (0.5 + balance_tolerance)

    side = set(side_a)
    for _ in range(_FM_MAX_PASSES):
        gains: Dict[int, int] = {}
        heap: List[Tuple[int, int]] = []
        for v in adjacency:
            in_a = v in side
            if any((u in side) != in_a for u in adjacency[v]):
                gains[v] = _gain_of(adjacency, side, v)
                heap.append((-gains[v], v))
        heapq.heapify(heap)
        locked: Set[int] = set()
        moves: List[int] = []
        cumulative = 0
        best_prefix, best_gain = 0, 0
        current_weight_a = sum(vertex_weight[v] for v in side)
        # Abandon a pass after a long non-improving tail: full FM moves
        # every vertex once, but the payoff is almost always in a short
        # prefix and the tail costs O(V log V) for nothing.
        max_tail = max(500, len(adjacency) // 10)
        while heap:
            if len(moves) - best_prefix > max_tail:
                break
            neg_gain, v = heapq.heappop(heap)
            if v in locked or v not in gains or -neg_gain != gains[v]:
                continue  # stale heap entry
            if v in side:
                new_a = current_weight_a - vertex_weight[v]
            else:
                new_a = current_weight_a + vertex_weight[v]
            if new_a > max_side or (total_weight - new_a) > max_side:
                continue  # balance-blocked; skip in this pass
            locked.add(v)
            moves.append(v)
            cumulative += gains.pop(v)
            was_in_a = v in side
            if was_in_a:
                side.discard(v)
                current_weight_a -= vertex_weight[v]
            else:
                side.add(v)
                current_weight_a += vertex_weight[v]
            for u, w in adjacency[v].items():
                if u in locked:
                    continue
                if u in gains:
                    if (u in side) == was_in_a:
                        gains[u] += 2 * w
                    else:
                        gains[u] -= 2 * w
                else:
                    gains[u] = _gain_of(adjacency, side, u)
                heapq.heappush(heap, (-gains[u], u))
            if cumulative > best_gain:
                best_gain, best_prefix = cumulative, len(moves)
        # Roll back moves beyond the best prefix.
        for v in moves[best_prefix:]:
            if v in side:
                side.discard(v)
            else:
                side.add(v)
        if best_gain <= 0:
            break
    return side


# -- public API ---------------------------------------------------------------------------


def bisect(adjacency: Adjacency, balance_tolerance: float = 0.05,
           seed: int = 0, validate: bool = False) -> BisectionResult:
    """2-way partition a connected weighted graph, METIS style.

    ``balance_tolerance`` bounds how far either side may exceed half the
    vertex weight (0.05 = 55/45 worst case).  Deterministic for a given
    ``seed``.
    """
    if validate:
        _validate(adjacency)
    vertices = list(adjacency)
    if len(vertices) < 2:
        side_a = set(vertices[:1])
        return BisectionResult(side_a, set(vertices[1:]), 0,
                               total_edge_weight(adjacency))
    rng = random.Random(seed)
    vertex_weight = {v: 1 for v in vertices}

    # Coarsening phase.  The weight cap keeps every coarse vertex light
    # enough that a balanced bisection exists at the coarsest level.
    max_vertex_weight = max(1, len(vertices) // (2 * _COARSEST_SIZE // 3))
    levels: List[Tuple[Adjacency, Dict[int, int], Dict[int, int]]] = []
    current_adj, current_vw = adjacency, vertex_weight
    while len(current_adj) > _COARSEST_SIZE:
        coarse_adj, coarse_vw, mapping = _heavy_edge_matching(
            current_adj, current_vw, rng, max_vertex_weight=max_vertex_weight)
        if len(coarse_adj) >= 0.95 * len(current_adj):
            break  # no real shrink: graph is matching-resistant
        levels.append((current_adj, current_vw, mapping))
        current_adj, current_vw = coarse_adj, coarse_vw

    # Initial bisection on the coarsest graph, then refine.
    side = _initial_bisection(current_adj, current_vw, rng)
    side = _fm_refine(current_adj, current_vw, side, balance_tolerance)

    # Uncoarsening with per-level refinement.
    for fine_adj, fine_vw, mapping in reversed(levels):
        side = {v for v, c in mapping.items() if c in side}
        side = _fm_refine(fine_adj, fine_vw, side, balance_tolerance)

    side_b = set(adjacency) - side
    return BisectionResult(side, side_b, cut_of(adjacency, side),
                           total_edge_weight(adjacency))


def k_way_partition(adjacency: Adjacency, k: int,
                    balance_tolerance: float = 0.05,
                    seed: int = 0) -> List[Set[int]]:
    """k-way partition by recursive bisection (the classic METIS recipe).

    ``k`` need not be a power of two: each recursion splits the part
    count as evenly as possible and sizes the halves proportionally via
    the balance target.  Returns exactly ``k`` (possibly empty) parts.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1: {k}")
    if k == 1:
        return [set(adjacency)]
    result = bisect(adjacency, balance_tolerance=balance_tolerance, seed=seed)
    k_left = k // 2
    k_right = k - k_left
    # Recurse on induced subgraphs.
    left_adj = {u: {v: w for v, w in t.items() if v in result.side_a}
                for u, t in adjacency.items() if u in result.side_a}
    right_adj = {u: {v: w for v, w in t.items() if v in result.side_b}
                 for u, t in adjacency.items() if u in result.side_b}
    return (k_way_partition(left_adj, k_left, balance_tolerance, seed + 1)
            + k_way_partition(right_adj, k_right, balance_tolerance, seed + 2))


def random_bisect(adjacency: Adjacency, seed: int = 0) -> BisectionResult:
    """Random half/half split — the ablation baseline METIS should beat."""
    rng = random.Random(seed)
    vertices = list(adjacency)
    rng.shuffle(vertices)
    side_a = set(vertices[: len(vertices) // 2])
    return BisectionResult(side_a, set(vertices) - side_a,
                           cut_of(adjacency, side_a), total_edge_weight(adjacency))
