"""Propeller's primary contribution: access-causality index partitioning.

Two files fA and fB are *access-causal* (fA → fB) when one process opened
fA for reading or writing at t0 and then opened fB for writing at t1 > t0 —
fA is a content producer of fB (Section III).  The
:class:`AccessCausalityGraph` accumulates these relations with edge weights
equal to co-access counts; the :mod:`partitioner` turns connected
components into index partitions, clustering small components and splitting
oversized ones with the from-scratch METIS-style multilevel bisector in
:mod:`metis` (spectral baseline in :mod:`spectral`).
"""

from repro.core.acg import AccessCausalityGraph
from repro.core.metis import BisectionResult, bisect, k_way_partition
from repro.core.partition_manager import Partition, PartitionManager
from repro.core.partitioner import PartitioningPolicy, partition_components
from repro.core.spectral import spectral_bisect
from repro.core.streaming import StreamingPartitioner, streaming_partition
from repro.core.trace import AccessEvent, TraceRecorder, causal_pairs
from repro.core.traceio import acg_from_trace, dump_trace, load_trace

__all__ = [
    "AccessCausalityGraph",
    "BisectionResult",
    "bisect",
    "k_way_partition",
    "Partition",
    "PartitionManager",
    "PartitioningPolicy",
    "partition_components",
    "spectral_bisect",
    "StreamingPartitioner",
    "streaming_partition",
    "AccessEvent",
    "TraceRecorder",
    "causal_pairs",
    "acg_from_trace",
    "dump_trace",
    "load_trace",
]
