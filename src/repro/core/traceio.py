"""Trace file import/export.

The paper builds ACGs from traces of real applications (Git, Thrift, the
Linux kernel build) captured by the FUSE client.  This module defines a
plain-text interchange format so users can feed *their own* captured
traces (e.g. converted from ``strace -f -e trace=open,openat`` output)
into the library:

    # comment lines start with '#'
    <pid> <mode> <file_id> <t_open>

where ``mode`` is ``r``, ``w`` or ``rw``.  One event per line, whitespace
separated.  A second form accepts paths instead of numeric ids, mapping
them to stable ids on the fly.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, TextIO, Tuple, Union

from repro.core.acg import AccessCausalityGraph
from repro.core.trace import AccessEvent, causal_pairs
from repro.errors import ReproError


class TraceFormatError(ReproError):
    """A trace line failed to parse."""


_MODES = {"r": (True, False), "w": (False, True), "rw": (True, True)}


def format_event(event: AccessEvent) -> str:
    """One event in the interchange format."""
    mode = "rw" if (event.read and event.write) else ("w" if event.write else "r")
    return f"{event.pid} {mode} {event.file_id} {event.t_open:.6f}"


def dump_trace(events: Iterable[AccessEvent], out: TextIO) -> int:
    """Write events to a text stream; returns the count."""
    count = 0
    out.write("# repro trace v1: pid mode file_id t_open\n")
    for event in events:
        out.write(format_event(event) + "\n")
        count += 1
    return count


def parse_trace(lines: Iterable[str]) -> Iterator[AccessEvent]:
    """Parse interchange-format lines into events (lazily).

    File fields may be numeric ids or paths; paths get stable ids in
    first-seen order.
    """
    path_ids: Dict[str, int] = {}
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 4:
            raise TraceFormatError(
                f"line {lineno}: expected 4 fields, got {len(parts)}: {line!r}")
        pid_s, mode, file_field, t_s = parts
        if mode not in _MODES:
            raise TraceFormatError(f"line {lineno}: bad mode {mode!r}")
        read, write = _MODES[mode]
        try:
            pid = int(pid_s)
            t_open = float(t_s)
        except ValueError as exc:
            raise TraceFormatError(f"line {lineno}: {exc}") from None
        if file_field.lstrip("-").isdigit():
            file_id = int(file_field)
        else:
            file_id = path_ids.setdefault(file_field, len(path_ids) + 1)
        yield AccessEvent(pid=pid, file_id=file_id, read=read, write=write,
                          t_open=t_open)


def load_trace(source: Union[TextIO, Iterable[str]]) -> List[AccessEvent]:
    """Parse a whole trace into a list."""
    return list(parse_trace(source))


def acg_from_trace(source: Union[TextIO, Iterable[str]]) -> AccessCausalityGraph:
    """Parse a trace and build its Access-Causality Graph in one step."""
    events = load_trace(source)
    graph = AccessCausalityGraph()
    for event in events:
        graph.add_file(event.file_id)
    graph.add_pairs(causal_pairs(events))
    return graph
