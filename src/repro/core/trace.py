"""File-access traces and causality extraction.

The unit of observation is one *open* of a file by a process: who (pid),
what (file id), how (read/write), when (open time).  Causality
(Section III): fA → fB iff the same process opened fA with any mode at t0
and opened fB *for writing* at t1 > t0.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class AccessEvent:
    """One file open by one process."""

    pid: int
    file_id: int
    read: bool
    write: bool
    t_open: float

    def __post_init__(self) -> None:
        if not (self.read or self.write):
            raise ValueError("an access must read or write (or both)")


def causal_pairs(events: Iterable[AccessEvent]) -> Iterator[Tuple[int, int]]:
    """Yield (producer_file, consumer_file) pairs from an event stream.

    For each *write* access to fB at t1, every file the same process
    touched earlier (read or write) is a producer: fA → fB.  Self-loops
    are skipped; repeated producer accesses to the same file yield one
    pair per (earlier file, write) combination, so edge weights count
    co-access frequency the way Figure 4 increments them.
    """
    history: Dict[int, List[Tuple[float, int]]] = {}
    ordered = sorted(events, key=lambda e: (e.t_open, e.file_id))
    for event in ordered:
        seen = history.setdefault(event.pid, [])
        if event.write:
            producers = {fid for t, fid in seen if t < event.t_open and fid != event.file_id}
            for producer in sorted(producers):
                yield producer, event.file_id
        seen.append((event.t_open, event.file_id))


class TraceRecorder:
    """Accumulates events per process and emits causal pairs incrementally.

    Unlike :func:`causal_pairs` (batch, exact), the recorder is the online
    form the client runs: events must arrive in nondecreasing time order
    per process, and causal pairs are produced as writes happen.

    ``window`` bounds how many recent accesses per process count as
    producers.  Without a bound, a process that writes N files makes the
    client-side ACG quadratic (every new file consumes *all* earlier
    ones) — hundreds of megabytes for a few thousand files.  Real
    application working sets are small (Table I), and ACGs are weakly
    consistent anyway, so truncating ancient history costs placement
    quality only, never correctness.
    """

    def __init__(self, window: int = 256) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1: {window}")
        self.window = window
        self._history: Dict[int, List[Tuple[float, int]]] = {}
        self.events: List[AccessEvent] = []

    def record(self, event: AccessEvent) -> List[Tuple[int, int]]:
        """Ingest one event; return the new (producer, consumer) pairs."""
        self.events.append(event)
        seen = self._history.setdefault(event.pid, [])
        pairs: List[Tuple[int, int]] = []
        if event.write:
            producers = {fid for t, fid in seen if t < event.t_open and fid != event.file_id}
            pairs = [(producer, event.file_id) for producer in sorted(producers)]
        seen.append((event.t_open, event.file_id))
        if len(seen) > self.window:
            del seen[: len(seen) - self.window]
        return pairs

    def last_file(self, pid: int, exclude: Optional[int] = None) -> Optional[int]:
        """Most recent file this process touched (None if unseen) — used
        as the placement hint for files the process creates next.

        ``exclude`` skips one file id, so the hint for a freshly-created
        file is its causal *producer*, not the file itself.
        """
        seen = self._history.get(pid)
        if not seen:
            return None
        for _, file_id in reversed(seen):
            if file_id != exclude:
                return file_id
        return None

    def finish_process(self, pid: int) -> None:
        """Drop a process's history once it exits (bounds client memory)."""
        self._history.pop(pid, None)

    def clear(self) -> None:
        """Forget all recorded history and events."""
        self._history.clear()
        self.events.clear()
