"""The chaos harness: execute a fault program and prove invariants.

:class:`ChaosRunner` builds a fresh deployment hardened the way a real
one would be — retry policy on every RPC, auto-failover on heartbeat
loss, degraded queries — attaches a seeded :class:`FaultInjector` to the
RPC network and every Index Node disk, executes a seeded schedule, and
checks the :mod:`repro.chaos.check` invariants at settle points.

Everything is driven by the virtual clock and seeded RNGs, so a run is a
pure function of ``(seed, steps, nodes)``: the CLI's determinism gate
runs each schedule twice and insists the canonical JSON reports match
byte for byte.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.chaos.check import _NEVER, AckLedger, InvariantChecker
from repro.chaos.faults import FaultInjector
from repro.chaos.schedule import ChaosStep, build_schedule
from repro.cluster.service import PropellerService
from repro.core.partitioner import PartitioningPolicy
from repro.errors import ClusterError
from repro.indexstructures.base import IndexKind
from repro.sim.rpc import RetryPolicy

# Counters worth reporting, in stable order.
_REPORT_COUNTERS = (
    "cluster.rpc.retries",
    "cluster.rpc.timeouts",
    "cluster.rpc.failures",
    "cluster.rpc.duplicates",
    "cluster.master.failovers",
    "cluster.master.auto_failovers",
    "cluster.master.reassigned_partitions",
    "cluster.master.partitions_lost",
    "cluster.master.rejoins",
    "cluster.client.degraded_searches",
    "cluster.client.unreachable_partitions",
    "cluster.client.requeued_updates",
    "cluster.client.lost_deletes",
    "cluster.client.stale_route_nacks",
    "cluster.client.route_refreshes",
    "cluster.master.route_rpcs",
    "cluster.master.migrations",
    "cluster.master.migrations_aborted",
    "cluster.master.migration_finish_deferred",
    "cluster.freshness.expired",
    "search.prune_attempts",
    "search.partitions_pruned",
    "search.partitions_searched",
    "cluster.client.summary_refreshes",
    "cluster.master.promotions",
    "cluster.master.failover_deferred",
    "cluster.client.hedges",
    "cluster.client.hedge_wins",
    "cluster.client.hedge_rescues",
    "cluster.master.standby_promotions",
    "cluster.master.deposed",
    "cluster.master.restarts",
    "cluster.client.master_rehomes",
)


class ChaosRunner:
    """Runs one seeded fault program against one fresh deployment."""

    def __init__(self, seed: int, steps: int = 50, nodes: int = 3,
                 settle_every: int = 10,
                 retry_policy: Optional[RetryPolicy] = None,
                 rf: int = 1, master_faults: bool = False,
                 batching: bool = True, tiering: bool = False) -> None:
        self.seed = seed
        self.steps = steps
        self.nodes = nodes
        self.rf = rf
        self.master_faults = master_faults
        self.batching = batching
        self.tiering = tiering
        self.settle_every = max(1, settle_every)
        self.schedule: List[ChaosStep] = build_schedule(
            seed, steps, nodes, master_faults=master_faults,
            tiering=tiering)
        # Splits are disabled (huge threshold): the interplay of mid-split
        # faults with metadata mutation is out of the fault model's scope,
        # and a surprise split would make missing-file excuses ambiguous.
        self.service = PropellerService(
            num_index_nodes=nodes,
            # Small partitions spread data across every node, so crashes
            # actually take partitions away (an empty victim tests nothing).
            policy=PartitioningPolicy(split_threshold=10**9,
                                      cluster_target=8),
            retry_policy=retry_policy or RetryPolicy(),
            rpc_seed=seed,
            auto_failover=True,
            heartbeat_timeout_s=15.0,
            replication_factor=rf,
            # Master-fault schedules need somewhere for the control plane
            # to fail over *to*; baseline schedules keep the historical
            # single-Master deployment so their runs stay byte-identical.
            standby_master=master_faults,
        )
        # Random message faults never hit the Master(s): the paper's
        # fault model assumes a reachable metadata server, and the
        # master-fault ops fail it *deliberately* (crash / isolation)
        # instead of by lottery — so the control-plane outage windows a
        # report shows are the scheduled ones, not rate noise.
        immune = (frozenset({"master", "master2"}) if master_faults
                  else frozenset({"master"}))
        self.faults = FaultInjector(seed + 1, registry=self.service.registry,
                                    immune_targets=immune,
                                    journal=self.service.journal)
        self.service.rpc.faults = self.faults
        for node in self.service.index_nodes.values():
            node.machine.disk.faults = self.faults
        self.service.enable_freshness()
        self.service.enable_timeline(interval_s=5.0)
        # ``batching=False`` pins the legacy per-op hot path — the
        # byte-identical baseline the batched stack is audited against.
        self.service.set_batching(batching)
        # Cold-tier faults go through the same injector; attaching the
        # hook is free when tiering is off (the decision methods draw no
        # randomness while their rates are zero).
        self.service.object_store.faults = self.faults
        if tiering:
            # A 4s freeze age sits under the 6s settle advance, so every
            # settle window gives cold partitions a chance to freeze and
            # the frozen-answer invariant real segments to audit; the
            # size floor drops to 256 B because chaos partitions are tiny.
            self.service.set_tiering(True, freeze_age_s=4.0, min_bytes=256)
        self.client = self.service.make_client(batch_size=128)
        self.ledger = AckLedger()
        self.checker = InvariantChecker(self.service, self.client, self.ledger)
        self.violations: List[Dict[str, Any]] = []
        self.executed: List[str] = []
        self.skipped = 0
        self.aborted_ops = 0
        self.degraded_queries = 0
        self._next_file = 0
        self._submitted: List[int] = []
        self._failovers_seen = 0
        # Pending-at-crash file ids per node, pending WAL-drop attribution.
        self._crashed_pending: Dict[str, List[int]] = {}
        self.service.vfs.mkdir("/chaos", parents=True)
        self.client.create_index("by_chaos", IndexKind.BTREE, ["chaos"])

    # -- helpers --------------------------------------------------------------

    def _node_name(self, ordinal: int) -> str:
        return f"in{(ordinal % self.nodes) + 1}"

    def _live_count(self) -> int:
        return sum(1 for n in self.service.index_nodes.values()
                   if n.endpoint.up)

    def _now(self) -> float:
        return self.service.clock.now()

    def _locate_partition(self, file_id: int) -> Optional[int]:
        """Which ACG actually holds a file — committed or still pending
        in an Index Node's cache.  Ledger ground truth when neither the
        client's route cache (evicted by a full-table refresh) nor the
        Master's lazily-learned file map can attribute an ack."""
        from repro.cluster.messages import UpdateOp

        for name in sorted(self.service.index_nodes):
            node = self.service.index_nodes[name]
            for acg_id in sorted(node.replicas):
                if file_id in node.replicas[acg_id].store:
                    return acg_id
            for acg_id in sorted(node.cache.pending_acgs()):
                for update in node.cache.pending_ops(acg_id):
                    if update.file_id == file_id and update.op is UpdateOp.UPSERT:
                        return acg_id
        return None

    def _sync_acks(self) -> None:
        """Anything we submitted that is no longer waiting in the client
        was delivered (acked) at some point during the last step."""
        waiting = {u.file_id for _, u in self.client._pending}
        partitions = self.service.master.partitions
        for file_id in self._submitted:
            record = self.ledger.files[file_id]
            if record.acked or record.deleted or file_id in waiting:
                continue
            # Client-placed files live in the client's route cache; the
            # Master only learns them lazily (split adoption, merges).
            partition = self.client._file_routes.get(file_id)
            if partition is None:
                partition = partitions.partition_of(file_id)
            if partition is None:
                partition = self._locate_partition(file_id)
            self.ledger.acked(file_id, self._now(), partition)

    def _observe_failovers(self) -> None:
        """Turn new failover events into missing-file excuse windows."""
        log = self.service.master.failover_log
        for event in log[self._failovers_seen:]:
            victim = self.service.index_nodes[event.node]
            self.ledger.add_window(event.moved, victim.last_checkpoint_t,
                                   f"failover_of_{event.node}")
            self.ledger.add_window(event.lost, _NEVER,
                                   f"partition_lost_with_{event.node}")
            # Promotion's durability boundary is much tighter than the
            # checkpoint: the promoted follower held everything its
            # primary had streamed as of the victim's last heartbeat
            # (promotion viability is checked against that watermark), so
            # only acks *after* that heartbeat may be missing.
            self.ledger.add_window(getattr(event, "promoted", ()),
                                   getattr(event, "victim_heartbeat_t", 0.0),
                                   f"promotion_from_{event.node}")
            # Whatever was pending on the victim at its crash died with
            # its WAL; the windows above already cover post-checkpoint
            # acks, so no separate excuse is needed here.
        self._failovers_seen = len(log)

    def _after_restart(self, name: str) -> None:
        """Attribute torn-tail WAL drops to the records that rode them."""
        node = self.service.index_nodes[name]
        pending = self._crashed_pending.pop(name, [])
        if node.wal.replay_dropped > 0 and pending:
            self.ledger.excuse_wal_tail(pending)

    # -- step execution -------------------------------------------------------

    def _do_create_files(self, count: int) -> None:
        vfs = self.service.vfs
        for _ in range(count):
            i = self._next_file
            self._next_file += 1
            path = f"/chaos/f{i:05d}"
            # One pid per file: no causal chain, so placement follows the
            # cluster-target rule and data spreads across every node —
            # a crash then always takes real partitions away.
            pid = 100 + i
            vfs.write_file(path, 1024 + 17 * i, pid=pid)
            vfs.setattr(path, "chaos", i, pid=pid)
            self.ledger.created(vfs.stat(path).ino, path, self._now())
            self._submitted.append(vfs.stat(path).ino)
            self.client.index_path(path, pid=pid)
        self.client.flush_updates()

    def _do_delete_file(self, pick: int) -> None:
        alive = sorted(r.file_id for r in self.ledger.files.values()
                       if not r.deleted)
        if not alive:
            return
        file_id = alive[pick % len(alive)]
        record = self.ledger.files[file_id]
        before = len(self.client.lost_deletes)
        self.service.vfs.unlink(record.path, pid=1)
        lost = len(self.client.lost_deletes) > before
        self.ledger.deleted(file_id, self._now(), lost)

    def _do_query(self) -> None:
        try:
            answer = self.client.search_detailed("chaos>=0")
        except ClusterError:
            self.aborted_ops += 1
            return
        if answer.degraded:
            self.degraded_queries += 1
        known = self.ledger.known_paths()
        for path in answer.paths:
            if path not in known:
                self.violations.append({
                    "step": -1, "kind": "search_phantom_path",
                    "detail": f"mid-chaos search returned unknown {path}"})
                break
        self._check_prune_recall()

    def _check_prune_recall(self) -> None:
        """Pruned-vs-unpruned recall oracle, interleaved with the faults.

        ``chaos`` values are monotonic, so a newest-window query is
        exactly the selective shape summaries prune: every partition
        whose zone-map high sits below the cutoff can be skipped.  The
        same query re-run with pruning disabled is the ground truth —
        any difference (when neither run was degraded) means pruning
        dropped a matching file, which must be impossible.
        """
        cutoff = max(0, self._next_file - 8)
        query = f"chaos>={cutoff}"
        try:
            pruned_run = self.client.search_detailed(query)
            self.client.prune_searches = False
            try:
                full_run = self.client.search_detailed(query)
            finally:
                self.client.prune_searches = True
        except ClusterError:
            self.client.prune_searches = True
            self.aborted_ops += 1
            return
        if pruned_run.degraded or full_run.degraded:
            # A leg failed in one of the runs: the answers may diverge
            # for availability reasons, not pruning ones.
            return
        if set(pruned_run.paths) != set(full_run.paths):
            self.violations.append({
                "step": -1, "kind": "prune_recall_loss",
                "detail": (f"query {query!r}: pruned fan-out returned "
                           f"{sorted(pruned_run.paths)} but the unpruned "
                           f"fan-out returned {sorted(full_run.paths)}")})

    def _do_migrate(self, pick: int, target_ordinal: int) -> None:
        """Online-migrate one placed partition to a (live) target node.

        A migration that cannot run — no placed partitions, a dead
        target, unresolved debris mid-fault-storm — counts as an aborted
        op; the protocol's own abort path also lands here."""
        target = self._node_name(target_ordinal)
        if not self.service.index_nodes[target].endpoint.up:
            self.skipped += 1
            return
        placed = sorted(p.partition_id
                        for p in self.service.master.partitions.partitions()
                        if p.node and p.node != target)
        if not placed:
            self.skipped += 1
            return
        acg_id = placed[pick % len(placed)]
        try:
            self.service.master.migrate_partition(acg_id, target)
        except ClusterError:
            self.aborted_ops += 1

    def _do_crash(self, ordinal: int, torn: int) -> None:
        name = self._node_name(ordinal)
        node = self.service.index_nodes[name]
        if not node.endpoint.up or self._live_count() <= 1:
            self.skipped += 1
            return
        self.service.journal.emit("chaos.fault_injected", node=name,
                                  fault="crash", torn_tail_bytes=torn)
        pending = node.crash(torn_tail_bytes=torn)
        self._crashed_pending.setdefault(name, []).extend(pending)

    def _do_crash_restart(self, ordinal: int, torn: int) -> None:
        name = self._node_name(ordinal)
        node = self.service.index_nodes[name]
        if node.endpoint.up:
            self.service.journal.emit("chaos.fault_injected", node=name,
                                      fault="crash_restart",
                                      torn_tail_bytes=torn)
            pending = node.crash(torn_tail_bytes=torn)
            self._crashed_pending.setdefault(name, []).extend(pending)
            node.restart()
            self._after_restart(name)
        else:
            self._do_recover(ordinal)

    def _do_recover(self, ordinal: int) -> None:
        name = self._node_name(ordinal)
        node = self.service.index_nodes[name]
        if node.endpoint.up:
            self.skipped += 1
            return
        rejoin = name not in self.service.master.index_nodes
        self.service.recover_node(name)
        if rejoin:
            # The node came back empty; nothing it was holding survived
            # locally, but failover windows already excuse those.
            self._crashed_pending.pop(name, None)
        else:
            self._after_restart(name)

    def _do_master_crash(self, down_s: float) -> None:
        """Kill the acting Master, leave it down for ``down_s``, restart.

        If the outage outlives the standby's lease the standby promotes
        mid-window and the restarted ex-Master gets fenced back into a
        standby role at the next heartbeat round; shorter outages replay
        the meta-WAL and resume the same term.  Skipped unless both
        Master processes are up — overlapping a crash with an isolation
        window (or a previous unfinished crash) is outside the
        single-control-plane-failure fault model."""
        masters = getattr(self.service, "masters", [])
        if len(masters) < 2 or not all(m.endpoint.up for m in masters) \
                or self.faults.isolated:
            self.skipped += 1
            return
        victim = self.service.master.endpoint.name
        self.service.journal.emit("chaos.fault_injected", node=victim,
                                  fault="master_crash", down_s=down_s)
        self.service.crash_master()
        self.service.advance(down_s)
        self.service.restart_master(victim)

    def _do_master_isolation(self, duration_s: float) -> None:
        """Partition the acting Master off the network for a while.

        Unlike a crash its process stays alive and still believes it is
        acting; if the standby promotes during the window, the healed
        ex-Master's first term-stamped heartbeat round gets fenced —
        the split-brain path the term exists for."""
        masters = getattr(self.service, "masters", [])
        if len(masters) < 2 or not all(m.endpoint.up for m in masters) \
                or self.faults.isolated:
            self.skipped += 1
            return
        target = self.service.master.endpoint.name
        self.service.journal.emit("chaos.fault_injected", node=target,
                                  fault="master_isolation",
                                  duration_s=duration_s)
        self.faults.isolate(target)
        self.service.advance(duration_s)
        self.faults.clear_isolation(target)

    def _execute(self, step: ChaosStep) -> None:
        p = step.params
        if step.op == "create_files":
            self._do_create_files(p["count"])
        elif step.op == "delete_file":
            self._do_delete_file(p["pick"])
        elif step.op == "query":
            self._do_query()
        elif step.op == "advance":
            self.service.advance(p["seconds"])
        elif step.op == "crash_node":
            self._do_crash(p["node"], p["torn_tail_bytes"])
        elif step.op == "crash_restart_wal":
            self._do_crash_restart(p["node"], p["torn_tail_bytes"])
        elif step.op == "recover_node":
            self._do_recover(p["node"])
        elif step.op == "set_message_faults":
            self.faults.set_message_faults(
                drop=p["drop"], duplicate=p["duplicate"],
                delay=p["delay"], delay_s=p["delay_s"])
        elif step.op == "clear_faults":
            self.faults.clear_message_faults()
            self.faults.set_disk_error_rate(0.0)
            self.faults.clear_object_faults()
        elif step.op == "slow_node":
            self.faults.slow_node(self._node_name(p["node"]), p["extra_s"])
        elif step.op == "disk_errors":
            self.faults.set_disk_error_rate(p["rate"])
        elif step.op == "migrate_partition":
            self._do_migrate(p["pick"], p["target"])
        elif step.op == "master_crash":
            self._do_master_crash(p["down_s"])
        elif step.op == "master_isolation":
            self._do_master_isolation(p["duration_s"])
        elif step.op == "object_store_errors":
            self.faults.set_object_error_rate(p["rate"])
        elif step.op == "slow_hydration":
            self.faults.set_hydration_delay(p["extra_s"],
                                            probability=p["probability"])
        elif step.op == "cache_pressure":
            for name in sorted(self.service.index_nodes):
                node = self.service.index_nodes[name]
                if node.endpoint.up:
                    node.drop_caches()
        elif step.op == "flush":
            self.client.flush_updates()
        else:  # pragma: no cover - schedule and runner move in lockstep
            raise ValueError(f"unknown chaos op: {step.op}")

    # -- settle points --------------------------------------------------------

    def _settle(self, step_index: int) -> None:
        """Give every promise a chance to land, then audit."""
        self.faults.clear_message_faults()
        self.faults.set_disk_error_rate(0.0)
        self.faults.clear_object_faults()
        # Two delivery rounds: the first may still route to a crashed
        # node the Master has not yet failed over; advancing time runs
        # heartbeat polls (auto-failover) between them.
        self.client.flush_updates()
        self.service.advance(6.0)
        self.client.flush_updates()
        self.service.pump()
        for node in self.service.index_nodes.values():
            if node.endpoint.up:
                node.cache.commit_all()
        self._sync_acks()
        self._observe_failovers()
        # Replica catch-up is incremental in steady state; drive it to a
        # fixpoint so the replicas-converge invariant sees the settled
        # picture rather than a stream mid-flight.
        self.service.sync_replication()
        self.violations.extend(self.checker.check(step_index))

    # -- the run --------------------------------------------------------------

    def run(self) -> Dict[str, Any]:
        """Execute the whole program; returns the (JSON-ready) report."""
        for step in self.schedule:
            self._execute(step)
            self.executed.append(step.describe())
            self._sync_acks()
            self._observe_failovers()
            if (step.index + 1) % self.settle_every == 0:
                self._settle(step.index)
        self._settle(self.schedule[-1].index if self.schedule else 0)
        return self.report()

    def _counter(self, name: str) -> float:
        registry = self.service.registry
        return registry.value(name) if name in registry else 0

    def _tier_report(self) -> Dict[str, Any]:
        """Cold-tier digest: summed node counters plus the store's view."""
        nodes = self.service.index_nodes.values()
        store = self.service.object_store
        return {
            "enabled": self.tiering,
            "freezes": sum(n.tier_freezes for n in nodes),
            "thaws": sum(n.tier_thaws for n in nodes),
            "hydrations": sum(n.tier_hydrations for n in nodes),
            "fallbacks": sum(n.tier_fallbacks for n in nodes),
            "summary_prunes": sum(n.tier_summary_prunes for n in nodes),
            "repairs": sum(n.tier_repairs for n in nodes),
            "frozen_now": sum(len(n.frozen) for n in nodes),
            "object_store": {
                "objects": len(store.keys()),
                "bytes": store.stored_bytes(),
                "gets": store.stats.gets,
                "puts": store.stats.puts,
                "errors": store.stats.errors,
            },
        }

    def report(self) -> Dict[str, Any]:
        """Canonical, deterministic digest of the run."""
        ledger = self.ledger
        live = [r for r in ledger.live_acked()]
        wal_drops = sum(n.wal_replay_dropped_total
                        for n in self.service.index_nodes.values())
        status = self.service.master_status()
        return {
            "seed": self.seed,
            "steps": self.steps,
            "nodes": self.nodes,
            "rf": self.rf,
            "master_faults": self.master_faults,
            "tiering": self._tier_report(),
            "master": {
                "term": status["term"],
                "acting": status["acting"],
                "promotions": status["promotions"],
                "deposed": status["deposed"],
                "restarts": status["restarts"],
                "fences": status["fences"],
                "standby_lag": status["standby_lag"],
            },
            "virtual_time_s": round(self._now(), 6),
            "files_created": len(ledger.files),
            "files_acked_live": len(live),
            "files_deleted": sum(1 for r in ledger.files.values() if r.deleted),
            "queries_degraded": self.degraded_queries,
            "ops_aborted": self.aborted_ops,
            "steps_skipped": self.skipped,
            "wal_replay_dropped": wal_drops,
            "injected": self.faults.summary(),
            "journal": self.service.journal.digest(),
            "slo": {"breaches": self.service.slos.breach_count(),
                    "breached_now": self.service.slos.breached()},
            "counters": {name: self._counter(name)
                         for name in _REPORT_COUNTERS},
            "excuse_windows": len(ledger.windows),
            "live_nodes": sorted(
                name for name, n in self.service.index_nodes.items()
                if n.endpoint.up),
            "violations": self.violations,
        }

    def report_json(self) -> str:
        """The report as canonical JSON (sorted keys, no whitespace
        variance) — the unit of the bit-identical determinism check."""
        return json.dumps(self.report(), sort_keys=True,
                          separators=(",", ":"))


def run_chaos(seed: int, steps: int = 50, nodes: int = 3,
              settle_every: int = 10, rf: int = 1,
              master_faults: bool = False,
              tiering: bool = False) -> Dict[str, Any]:
    """Convenience: one fresh runner, one full run, one report."""
    runner = ChaosRunner(seed, steps=steps, nodes=nodes,
                         settle_every=settle_every, rf=rf,
                         master_faults=master_faults, tiering=tiering)
    return runner.run()
