"""Crash-consistency invariants.

The :class:`AckLedger` is the chaos harness's ground truth: which files
the cluster *acknowledged* indexing, when, into which partition, and
which deletions it accepted.  The :class:`InvariantChecker` compares that
ledger against what live Index Nodes actually hold and what a search
actually returns, at *settle points* — moments when message faults are
cleared and every pending batch has had a delivery chance — so transient
states never masquerade as corruption.

Invariants (with their principled excuses):

1. **No lost acked updates** — every acknowledged, undeleted file is
   present on some live node.  Excused when the loss is the documented
   durability boundary: the file's partition failed over and the ack
   postdates the victim's last checkpoint; the partition was lost
   outright (victim never checkpointed it); the record sat in a WAL tail
   torn off by a crash (counted by ``wal.replay_dropped``); or the update
   is still waiting in the client's re-queue.
2. **No duplicates** — no file id is hosted by more than one live node,
   even after duplicated RPC delivery, replayed WALs and failovers
   (handlers must be idempotent; rejoining nodes must reset).
3. **Deletions stick** — an acknowledged deletion never resurrects.
   Excused when the delete itself was lost to a dead node (recorded
   client debt) or rolled back by a checkpoint-failover of its partition.
4. **Search agrees with storage** — a settle-point search returns
   exactly the paths live nodes hold (stale entries from excused
   lost-deletes may appear; nothing else may), and is not degraded.
5. **Ownership agreement** — at a settle point every live node holding
   a partition's data is the node the Master routes that partition to
   (migration debris must sit behind a durable handoff intent), and no
   node ever *applied* an update to a partition it was handing off —
   stamped updates must be forwarded or NACKed, never absorbed.
6. **Replicas converge** (RF > 1 only) — for every partition with a live
   primary, each live follower the Master lists has applied the
   primary's full replication log (applied seq == log last seq) and its
   follower store holds exactly the primary store's file-id set.
   Follower replicas are volatile, so a settle point *drives* catch-up
   first (``sync_replication``); what this invariant rules out is silent
   divergence — a follower that claims the primary's watermark while
   holding different data.
7. **One acting Master** — at a settle point exactly one live Master
   process claims the acting role; a deposed-but-alive Master must have
   been term-fenced by the heartbeat round the settle ran.
8. **Master term monotonic** — promotions bump the term, meta-WAL
   replays restore it, nothing rolls it back.
9. **Routing epoch monotonic across failover** — a promoted standby or
   replayed restart continues the epoch sequence (clients may never be
   left trusting a silently stale route table).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

_NEVER = -1e18


@dataclass
class FileRecord:
    """One file's lifecycle as the harness observed it."""

    file_id: int
    path: str
    submitted_t: float
    acked: bool = False
    ack_t: float = 0.0
    partition: Optional[int] = None
    deleted: bool = False
    deleted_t: float = 0.0
    delete_lost: bool = False


@dataclass
class ExcuseWindow:
    """Files in these partitions acked after ``after_t`` may be missing
    (the checkpoint-failover durability boundary)."""

    partitions: Set[int]
    after_t: float
    reason: str


class AckLedger:
    """What the cluster promised: every ack and accepted delete."""

    def __init__(self) -> None:
        self.files: Dict[int, FileRecord] = {}
        # File ids that may have ridden a WAL tail torn off by a crash.
        self.wal_excused: Set[int] = set()
        self.windows: List[ExcuseWindow] = []

    def created(self, file_id: int, path: str, t: float) -> None:
        self.files[file_id] = FileRecord(file_id=file_id, path=path,
                                         submitted_t=t)

    def acked(self, file_id: int, t: float, partition: Optional[int]) -> None:
        record = self.files[file_id]
        record.acked = True
        record.ack_t = t
        record.partition = partition

    def deleted(self, file_id: int, t: float, lost: bool) -> None:
        record = self.files[file_id]
        record.deleted = True
        record.deleted_t = t
        record.delete_lost = lost

    def add_window(self, partitions, after_t: float, reason: str) -> None:
        if partitions:
            self.windows.append(ExcuseWindow(set(partitions), after_t, reason))

    def excuse_wal_tail(self, file_ids) -> None:
        self.wal_excused.update(file_ids)

    # -- queries --------------------------------------------------------------

    def known_paths(self) -> Set[str]:
        return {r.path for r in self.files.values()}

    def live_acked(self) -> List[FileRecord]:
        return [r for r in self.files.values() if r.acked and not r.deleted]

    def excused_missing(self, record: FileRecord) -> Optional[str]:
        """Why this acked file may legitimately be absent (None = no
        excuse — absence is a violation)."""
        if record.file_id in self.wal_excused:
            return "wal_torn_tail"
        for window in self.windows:
            if record.partition in window.partitions and record.ack_t > window.after_t:
                return window.reason
        return None

    def excused_resurrection(self, record: FileRecord) -> Optional[str]:
        """Why this deleted file may legitimately still be indexed."""
        if record.delete_lost:
            return "delete_lost_to_dead_node"
        if record.file_id in self.wal_excused:
            return "wal_torn_tail"
        for window in self.windows:
            if record.partition in window.partitions and record.deleted_t > window.after_t:
                return window.reason
        return None


class InvariantChecker:
    """Checks the ledger against live cluster state at a settle point."""

    def __init__(self, service, client, ledger: AckLedger) -> None:
        self.service = service
        self.client = client
        self.ledger = ledger
        # Monotonicity watermarks for the control-plane invariants: the
        # master term and the routing epoch may only move forward across
        # settle points, promotions and meta-WAL replays included.
        self._last_term = 0
        self._last_route_epoch = 0

    def presence(self) -> Dict[int, List[str]]:
        """file id → live nodes hosting it (sorted), from the replica
        stores directly — no RPC, no search path."""
        hosts: Dict[int, List[str]] = {}
        for name in sorted(self.service.index_nodes):
            node = self.service.index_nodes[name]
            if not node.endpoint.up:
                continue
            for replica in node.replicas.values():
                for file_id in replica.store.file_ids():
                    hosts.setdefault(file_id, []).append(name)
        return hosts

    def check(self, step: int) -> List[Dict[str, Any]]:
        """Run every invariant; returns the violations found."""
        violations: List[Dict[str, Any]] = []

        def violate(kind: str, detail: str) -> None:
            violations.append({"step": step, "kind": kind, "detail": detail})

        # The settle-point search runs *first*: it flushes the client's
        # requeued batch (updates held back for, e.g., migration debris
        # may deliver now) and commits caches, so the presence snapshot
        # below sees the same storage state the search answered from.
        answer = self.client.search_detailed("chaos>=0")
        hosts = self.presence()
        requeued = {u.file_id for _, u in self.client._pending}

        # 2. No duplicates across live nodes.
        for file_id in sorted(hosts):
            if len(hosts[file_id]) > 1:
                violate("duplicate_hosting",
                        f"file {file_id} on {hosts[file_id]}")

        # 1. No lost acked updates.
        for record in sorted(self.ledger.live_acked(),
                             key=lambda r: r.file_id):
            if record.file_id in hosts or record.file_id in requeued:
                continue
            excuse = self.ledger.excused_missing(record)
            if excuse is None:
                violate("lost_acked_update",
                        f"file {record.file_id} ({record.path}) acked at "
                        f"t={record.ack_t:.3f} into partition "
                        f"{record.partition} is on no live node")

        # 3. Deletions stick.
        for record in sorted(self.ledger.files.values(),
                             key=lambda r: r.file_id):
            if not record.deleted or record.file_id not in hosts:
                continue
            excuse = self.ledger.excused_resurrection(record)
            if excuse is None:
                violate("resurrected_delete",
                        f"file {record.file_id} ({record.path}) deleted at "
                        f"t={record.deleted_t:.3f} still hosted on "
                        f"{hosts[record.file_id]}")

        # 4. Search agrees with storage (and is whole at a settle point).
        if answer.degraded:
            violate("degraded_at_settle",
                    f"settle-point search degraded; unreachable partitions "
                    f"{answer.unreachable_partitions}")
        by_id = {r.file_id: r for r in self.ledger.files.values()}
        stored_paths = set()
        allowed_stale = set()
        for file_id, nodes in hosts.items():
            record = by_id.get(file_id)
            if record is None:
                continue  # not a chaos-harness file
            if record.deleted:
                allowed_stale.add(record.path)
            else:
                stored_paths.add(record.path)
        got = set(answer.paths)
        for path in sorted(stored_paths - got):
            violate("search_missing_stored_file",
                    f"{path} is hosted on a live node but absent from a "
                    f"settle-point search")
        for path in sorted(got - stored_paths - allowed_stale):
            violate("search_phantom_path",
                    f"search returned {path}, which no live node hosts")

        # 5. Ownership agreement.
        partitions = self.service.master.partitions
        known = {p.partition_id: p for p in partitions.partitions()}
        for name in sorted(self.service.index_nodes):
            node = self.service.index_nodes[name]
            if not node.endpoint.up:
                continue
            if node.nonowner_applied:
                violate("nonowner_update_applied",
                        f"{name} applied {node.nonowner_applied} updates to "
                        f"partitions it was handing off")
            for acg_id in sorted(node.replicas):
                if node.replicas[acg_id].file_count == 0:
                    continue  # empty debris (a drained merge source) is inert
                if acg_id in node.handoff_intents:
                    continue  # migration debris awaiting its finish retry
                partition = known.get(acg_id)
                if partition is None or partition.node != name:
                    routed = partition.node if partition is not None else None
                    violate("ownership_divergence",
                            f"{name} holds data for partition {acg_id} which "
                            f"the Master routes to {routed}")

        # 6. Replicas converge (RF > 1).
        if getattr(self.service, "replication_factor", 1) > 1:
            self._check_replica_convergence(known, violate)

        # 7. One acting Master per settle point.  A heartbeat round ran
        # during settle (6s advance > 5s period), so any deposed-but-
        # alive Master has been fenced by now; two processes still both
        # claiming the acting role here is split-brain.
        masters = getattr(self.service, "masters", [self.service.master])
        acting = sorted(m.endpoint.name for m in masters
                        if m.endpoint.up and getattr(m, "acting", True))
        if len(acting) != 1:
            violate("acting_master_count",
                    f"live Masters claiming the acting role: {acting}")

        # 8. Master term is monotonic: promotions bump it, restarts
        # replay it, nothing ever rolls it back.
        term = max((getattr(m, "term", 0) for m in masters), default=0)
        if term < self._last_term:
            violate("master_term_regressed",
                    f"term {term} < previously observed {self._last_term}")
        else:
            self._last_term = term

        # 9. Routing epoch is monotonic across Master failover: a
        # promoted standby (or a replayed restart) must continue the
        # epoch sequence, never restart it — a regressed epoch would let
        # clients keep serving from silently stale route tables.
        epoch = self.service.master.partitions.epoch
        if epoch < self._last_route_epoch:
            violate("route_epoch_regressed",
                    f"routing epoch {epoch} < previously observed "
                    f"{self._last_route_epoch}")
        else:
            self._last_route_epoch = epoch

        # 10. Frozen partitions still answer (tiering only): a frozen
        # ACG's segment-path search must return exactly what its live
        # backing replica would — cold-tier faults may only degrade a
        # leg to the replica fallback, never to a wrong answer.  Object
        # faults are cleared at settle, so hydration itself must also
        # succeed here.
        if getattr(self.service, "tiering", False):
            self._check_frozen_answers(violate)
        return violations

    def _check_frozen_answers(self, violate) -> None:
        """Frozen-vs-live oracle: every frozen partition's search answer
        equals an exact scan of its retained backing replica."""
        from repro.query import parse_query
        from repro.query.ast import matches

        predicate = parse_query("chaos>=0")
        now = self.service.clock.now()
        for name in sorted(self.service.index_nodes):
            node = self.service.index_nodes[name]
            if not node.endpoint.up:
                continue
            for acg_id in sorted(node.frozen):
                if acg_id in node.handoff_intents:
                    continue  # mid-migration: the target answers now
                replica = node.replicas.get(acg_id)
                if replica is None:
                    violate("frozen_without_replica",
                            f"{name} lists partition {acg_id} frozen but "
                            f"holds no backing replica")
                    continue
                result = node._search_one(acg_id, predicate, None)
                oracle = {fid for fid in replica.store.file_ids()
                          if matches(predicate, replica.store.attrs(fid),
                                     replica.store.keywords(fid), now)}
                if set(result.file_ids) != oracle:
                    extra = sorted(set(result.file_ids) - oracle)[:5]
                    missing = sorted(oracle - set(result.file_ids))[:5]
                    violate("frozen_answer_divergence",
                            f"{name} partition {acg_id}: frozen search "
                            f"differs from the backing replica "
                            f"(extra={extra}, missing={missing})")

    def _check_replica_convergence(self, known, violate) -> None:
        """Every live follower matches its live primary's log watermark
        *and* store contents (seq-equal but content-divergent replicas
        are exactly the bug class this exists to catch)."""
        replica_sets = self.service.master.replica_sets
        if replica_sets is None:
            return
        for acg_id in replica_sets.partitions():
            partition = known.get(acg_id)
            if partition is None or not partition.node:
                continue
            primary = self.service.index_nodes.get(partition.node)
            if primary is None or not primary.endpoint.up:
                continue
            state = primary.repl.get(acg_id)
            rs = replica_sets.state(acg_id)
            if state is None or rs is None:
                continue
            replica = primary.replicas.get(acg_id)
            primary_ids = (set(replica.store.file_ids())
                           if replica is not None else set())
            for follower in sorted(rs.followers):
                fnode = self.service.index_nodes.get(follower)
                if fnode is None or not fnode.endpoint.up:
                    continue
                fstate = fnode.followers.get(acg_id)
                if fstate is None:
                    violate("replica_divergence",
                            f"partition {acg_id}: {follower} is listed as "
                            f"follower but holds no replica")
                    continue
                if fstate.applied_seq != state.log.last_seq:
                    violate("replica_divergence",
                            f"partition {acg_id}: follower {follower} "
                            f"applied seq {fstate.applied_seq} != primary "
                            f"{partition.node} log seq {state.log.last_seq}")
                    continue
                follower_ids = set(fstate.replica.store.file_ids())
                if follower_ids != primary_ids:
                    extra = sorted(follower_ids - primary_ids)[:5]
                    missing = sorted(primary_ids - follower_ids)[:5]
                    violate("replica_divergence",
                            f"partition {acg_id}: follower {follower} store "
                            f"differs from primary {partition.node} "
                            f"(extra={extra}, missing={missing})")
