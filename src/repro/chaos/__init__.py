"""repro.chaos — deterministic fault injection and crash-consistency checking.

The subsystem has four parts, each usable alone:

* :class:`FaultInjector` (:mod:`repro.chaos.faults`) — seeded per-message
  and per-read fault decisions, attached to ``RpcNetwork.faults`` and
  ``DiskDevice.faults``;
* :func:`build_schedule` (:mod:`repro.chaos.schedule`) — seeded fault
  programs mixing workload with crashes, torn WAL tails, lossy links,
  stragglers and disk errors;
* :class:`AckLedger` / :class:`InvariantChecker`
  (:mod:`repro.chaos.check`) — ground truth of every acknowledgement and
  the crash-consistency invariants audited against it;
* :class:`ChaosRunner` (:mod:`repro.chaos.runner`) — wires the above to a
  fresh hardened deployment and produces a canonical, bit-reproducible
  JSON report (`repro chaos` runs every schedule twice to prove it).
"""

from repro.chaos.check import AckLedger, ExcuseWindow, FileRecord, InvariantChecker
from repro.chaos.faults import FaultInjector
from repro.chaos.runner import ChaosRunner, run_chaos
from repro.chaos.schedule import ChaosStep, build_schedule

__all__ = [
    "AckLedger",
    "ChaosRunner",
    "ChaosStep",
    "ExcuseWindow",
    "FaultInjector",
    "FileRecord",
    "InvariantChecker",
    "build_schedule",
    "run_chaos",
]
