"""Seeded fault-program generation.

A chaos *schedule* is a list of :class:`ChaosStep` records drawn from one
seeded RNG: workload steps (create / delete / query / advance) mixed with
fault steps (crashes, restarts with torn WAL tails, message-fault phases,
stragglers, disk errors).  Generation is pure — the same seed and length
always produce the same program — and runtime-safety decisions (never
crash the last live node, only recover a down node) are made by the
runner from equally deterministic state, so a schedule never needs to
predict cluster liveness.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List

# Step kinds, with generation weights.  Workload dominates; faults are
# frequent enough that a 50-step program exercises every kind.
_WEIGHTED_OPS = [
    ("create_files", 22),
    ("delete_file", 8),
    ("query", 16),
    ("advance", 16),
    ("crash_node", 7),
    ("crash_restart_wal", 5),
    ("recover_node", 9),
    ("set_message_faults", 5),
    ("clear_faults", 4),
    ("slow_node", 3),
    ("disk_errors", 3),
    ("migrate_partition", 4),
    ("flush", 2),
]

# Extra ops mixed in only when a schedule opts into master faults
# (``build_schedule(..., master_faults=True)``).  Kept out of the
# baseline list so every pre-existing seeded schedule keeps drawing the
# byte-identical program it always did.
_MASTER_FAULT_OPS = [
    ("master_crash", 4),
    ("master_isolation", 3),
]

# Extra ops mixed in only when a schedule opts into tiered storage
# (``build_schedule(..., tiering=True)``).  Same opt-in rule as the
# master-fault pool: the baseline op list keeps drawing the
# byte-identical program it always did.
_TIERING_OPS = [
    ("object_store_errors", 4),
    ("slow_hydration", 3),
    # Memory pressure evicts the node-local result and segment caches,
    # so the next frozen-partition search must revisit the cold tier —
    # without it, settle-point hydrations would leave every segment
    # cached and the two fault ops above would never fire mid-schedule.
    ("cache_pressure", 4),
]


@dataclass(frozen=True)
class ChaosStep:
    """One step of a fault program: an op name plus its parameters."""

    index: int
    op: str
    params: Dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"[{self.index}] {self.op}({inner})"


def build_schedule(seed: int, steps: int, nodes: int,
                   master_faults: bool = False,
                   tiering: bool = False) -> List[ChaosStep]:
    """Generate a deterministic ``steps``-long fault program.

    ``nodes`` is the Index Node count; node-targeted steps carry a node
    *ordinal* (the runner maps it onto the node list) so the same program
    is meaningful for any cluster of that size.  ``master_faults`` mixes
    control-plane faults (crash the acting Master, isolate it off the
    network) into the op pool; ``tiering`` mixes in cold-tier faults
    (object-store read errors, slow hydration).  With both off (the
    default), the generated program is byte-identical to what this
    function always produced.
    """
    if steps < 1:
        raise ValueError(f"steps must be positive: {steps}")
    if nodes < 1:
        raise ValueError(f"nodes must be positive: {nodes}")
    rng = random.Random(seed)
    weighted = (_WEIGHTED_OPS
                + (_MASTER_FAULT_OPS if master_faults else [])
                + (_TIERING_OPS if tiering else []))
    ops = [op for op, weight in weighted for _ in range(weight)]
    program: List[ChaosStep] = []
    for i in range(steps):
        if i == 0:
            # Every program opens with data so early faults have stakes.
            program.append(ChaosStep(i, "create_files",
                                     {"count": 8 + rng.randrange(8)}))
            continue
        op = rng.choice(ops)
        params: Dict[str, Any] = {}
        if op == "create_files":
            params["count"] = 1 + rng.randrange(12)
        elif op == "delete_file":
            params["pick"] = rng.randrange(1 << 30)
        elif op == "advance":
            params["seconds"] = round(0.5 + 19.5 * rng.random(), 3)
        elif op in ("crash_node", "recover_node", "slow_node"):
            params["node"] = rng.randrange(nodes)
            if op == "crash_node":
                params["torn_tail_bytes"] = (
                    rng.choice([0, 0, 7, 16, 40]))
            if op == "slow_node":
                params["extra_s"] = round(0.02 + 0.2 * rng.random(), 4)
        elif op == "crash_restart_wal":
            params["node"] = rng.randrange(nodes)
            params["torn_tail_bytes"] = rng.choice([0, 5, 11, 23, 64])
        elif op == "set_message_faults":
            params["drop"] = round(rng.choice([0.05, 0.1, 0.2]), 3)
            params["duplicate"] = round(rng.choice([0.05, 0.1, 0.2]), 3)
            params["delay"] = round(rng.choice([0.0, 0.1, 0.3]), 3)
            params["delay_s"] = round(0.01 + 0.09 * rng.random(), 4)
        elif op == "disk_errors":
            params["rate"] = round(rng.choice([0.01, 0.05, 0.1]), 3)
        elif op == "migrate_partition":
            params["pick"] = rng.randrange(1 << 30)
            params["target"] = rng.randrange(nodes)
        elif op == "master_crash":
            # Long enough that the standby's lease expires mid-outage
            # (3 missed 2s ticks against a 10s lease) on most draws.
            params["down_s"] = round(6.0 + 20.0 * rng.random(), 3)
        elif op == "master_isolation":
            params["duration_s"] = round(6.0 + 14.0 * rng.random(), 3)
        elif op == "object_store_errors":
            params["rate"] = round(rng.choice([0.05, 0.1, 0.25]), 3)
        elif op == "slow_hydration":
            params["extra_s"] = round(0.05 + 0.45 * rng.random(), 4)
            params["probability"] = round(rng.choice([0.25, 0.5, 1.0]), 3)
        program.append(ChaosStep(i, op, params))
    return program
