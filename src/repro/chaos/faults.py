"""Seed-driven fault injection.

One :class:`FaultInjector` instance attaches to the points failures enter
the simulation:

* ``RpcNetwork.faults`` — per-message fates (:meth:`message_fate`
  decides drop / delay / duplicate) plus per-node straggler latency
  (:meth:`extra_latency_s`);
* ``DiskDevice.faults`` — injected medium errors on reads
  (:meth:`disk_read_fails`).

Every decision is drawn from one seeded :class:`random.Random`, so a
schedule replayed against the same seed makes byte-identical choices —
the determinism contract ``repro chaos`` verifies by running every
schedule twice.  All rates default to zero: an attached but quiescent
injector changes nothing.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

_DROPPED = "chaos.messages_dropped"
_DELAYED = "chaos.messages_delayed"
_DUPLICATED = "chaos.messages_duplicated"
_DISK_ERRORS = "chaos.disk_errors"
_OBJECT_ERRORS = "chaos.object_errors"
_SLOW_HYDRATIONS = "chaos.slow_hydrations"


class FaultInjector:
    """Decides, message by message and read by read, what goes wrong.

    ``immune_targets`` names RPC targets that never suffer *random*
    message faults — chaos schedules exempt the Master(s) so the random
    fault model matches the paper's (Index Nodes fail; the metadata
    server is assumed reachable).  The exemption is explicit plumbing,
    not a hardcoded name: a schedule that opts into master faults simply
    passes a different set.  Straggler latency still applies to immune
    targets (a slow master is a performance fault, not a partition), and
    so do *targeted* faults — armed one-shot drops and isolation — which
    exist precisely to fail a specific endpoint on purpose.
    """

    def __init__(self, seed: int = 0, registry=None,
                 immune_targets: Optional[frozenset] = None,
                 journal=None) -> None:
        self.rng = random.Random(seed)
        self.registry = registry
        self.immune_targets = frozenset(immune_targets or ())
        # Every configuration change journals a chaos.fault_injected
        # event so a chaos run's journal shows what was done to the
        # cluster next to what the cluster did about it.
        from repro.obs.journal import NULL_JOURNAL

        self.journal = journal if journal is not None else NULL_JOURNAL
        self.drop_rate = 0.0
        self.duplicate_rate = 0.0
        self.delay_rate = 0.0
        self.delay_s = 0.05
        self.disk_error_rate = 0.0
        # Cold-tier (object store) faults: GET error probability and
        # slow-hydration stretch (probability + extra seconds).  All
        # default off, and the decision points consult no RNG while off,
        # so non-tiered schedules keep their byte-identical streams.
        self.object_error_rate = 0.0
        self.hydration_delay_rate = 0.0
        self.hydration_extra_s = 0.0
        self.slow_nodes: Dict[str, float] = {}
        # Per-node probability the straggler tax applies to one message
        # (absent = always).  Intermittent stragglers are the tail-latency
        # shape hedged reads exist for.
        self.slow_probability: Dict[str, float] = {}
        # Armed one-shot fates: (target, method) → how many of the next
        # matching messages meet the armed fate.  Unlike the random
        # rates these hit immune targets too — they exist so tests can
        # fail one *specific* protocol step (e.g. the finish_migration
        # RPC) deterministically.
        self.armed: Dict[Tuple[str, str], int] = {}
        # Isolated targets: every message to them drops, immunity
        # notwithstanding — a network partition of one endpoint.  Checked
        # without consuming a draw so arming/clearing isolation never
        # desynchronizes the RNG stream.
        self.isolated: set = set()
        self.dropped = 0
        self.delayed = 0
        self.duplicated = 0
        self.disk_errors = 0
        self.object_errors = 0
        self.slow_hydrations = 0

    # -- configuration (schedule steps call these) ---------------------------

    def set_message_faults(self, drop: float = 0.0, duplicate: float = 0.0,
                           delay: float = 0.0, delay_s: float = 0.05) -> None:
        """Set the per-message fault probabilities (all in [0, 1))."""
        self.drop_rate = drop
        self.duplicate_rate = duplicate
        self.delay_rate = delay
        self.delay_s = delay_s
        if drop or duplicate or delay:
            self.journal.emit("chaos.fault_injected", fault="message_faults",
                              drop=drop, duplicate=duplicate, delay=delay,
                              delay_s=delay_s)

    def clear_message_faults(self) -> None:
        """Back to a healthy network (stragglers and armed fates too)."""
        self.set_message_faults()
        self.slow_nodes.clear()
        self.slow_probability.clear()
        self.armed.clear()
        # Isolation is deliberately *not* cleared here: a partitioned
        # endpoint stays partitioned until the isolation fault itself is
        # lifted (clear_isolation), exactly like a crashed node stays
        # down across a clear_faults step.

    def slow_node(self, node: str, extra_s: float,
                  probability: float = 1.0) -> None:
        """Make one node a straggler: messages to it pay ``extra_s``.

        ``probability`` < 1 makes the straggle intermittent — each
        message to the node independently draws whether it pays the tax,
        which is the classic p99-ruining tail shape hedged search legs
        are built to absorb."""
        self.slow_nodes[node] = extra_s
        if probability < 1.0:
            self.slow_probability[node] = probability
        else:
            self.slow_probability.pop(node, None)
        self.journal.emit("chaos.fault_injected", node=node,
                          fault="straggler", extra_s=extra_s,
                          probability=probability)

    def clear_slow(self, node: str) -> None:
        """Stop straggling one node."""
        self.slow_nodes.pop(node, None)
        self.slow_probability.pop(node, None)

    def set_disk_error_rate(self, rate: float) -> None:
        """Probability an attached disk's read hits a medium error."""
        self.disk_error_rate = rate
        if rate:
            self.journal.emit("chaos.fault_injected", fault="disk_errors",
                              rate=rate)

    def set_object_error_rate(self, rate: float) -> None:
        """Probability an attached object store's GET fails."""
        self.object_error_rate = rate
        if rate:
            self.journal.emit("chaos.fault_injected", fault="object_errors",
                              rate=rate)

    def set_hydration_delay(self, extra_s: float, probability: float = 1.0) -> None:
        """Stretch object-store GETs by ``extra_s`` with ``probability``.

        The slow-hydration fault: a congested cold tier serving segment
        reads at tail latency rather than failing them outright."""
        self.hydration_extra_s = extra_s
        self.hydration_delay_rate = probability if extra_s > 0.0 else 0.0
        if extra_s > 0.0:
            self.journal.emit("chaos.fault_injected", fault="slow_hydration",
                              extra_s=extra_s, probability=probability)

    def clear_object_faults(self) -> None:
        """Back to a healthy cold tier."""
        self.object_error_rate = 0.0
        self.hydration_delay_rate = 0.0
        self.hydration_extra_s = 0.0

    def arm_method_fault(self, target: str, method: str, count: int = 1) -> None:
        """Drop the next ``count`` messages of one (target, method) pair.

        Deterministic surgical injection for protocol tests: the armed
        fate fires regardless of the random rates and of immunity."""
        self.armed[(target, method)] = self.armed.get((target, method), 0) + count
        self.journal.emit("chaos.fault_injected", node=target,
                          fault="armed_drop", method=method, count=count)

    def isolate(self, target: str) -> None:
        """Partition one endpoint off the network: every message to it
        drops until :meth:`clear_isolation`.  Overrides immunity — this
        is the targeted fault master-isolation chaos uses."""
        self.isolated.add(target)
        self.journal.emit("chaos.fault_injected", node=target,
                          fault="isolation")

    def clear_isolation(self, target: Optional[str] = None) -> None:
        """Heal one isolation (or all of them when no target given)."""
        if target is None:
            self.isolated.clear()
        else:
            self.isolated.discard(target)

    @property
    def quiescent(self) -> bool:
        """True when no fault of any kind is currently armed."""
        return (self.drop_rate == 0.0 and self.duplicate_rate == 0.0
                and self.delay_rate == 0.0 and self.disk_error_rate == 0.0
                and self.object_error_rate == 0.0
                and self.hydration_delay_rate == 0.0
                and not self.slow_nodes and not self.armed
                and not self.isolated)

    # -- decision points (the instrumented layers call these) ----------------

    def _count(self, name: str) -> None:
        if self.registry is not None:
            self.registry.counter(name).inc()

    def message_fate(self, target: str, method: str) -> str:
        """One message's fate: ``ok`` / ``drop`` / ``delay`` / ``duplicate``.

        Exactly one draw per message keeps the RNG stream aligned across
        replays regardless of which rates are armed.
        """
        draw = self.rng.random()
        key = (target, method)
        if self.armed.get(key, 0) > 0:
            self.armed[key] -= 1
            if not self.armed[key]:
                del self.armed[key]
            self.dropped += 1
            self._count(_DROPPED)
            return "drop"
        if target in self.isolated:
            self.dropped += 1
            self._count(_DROPPED)
            return "drop"
        if target in self.immune_targets:
            return "ok"
        if draw < self.drop_rate:
            self.dropped += 1
            self._count(_DROPPED)
            return "drop"
        draw -= self.drop_rate
        if draw < self.duplicate_rate:
            self.duplicated += 1
            self._count(_DUPLICATED)
            return "duplicate"
        draw -= self.duplicate_rate
        if draw < self.delay_rate:
            self.delayed += 1
            self._count(_DELAYED)
            return "delay"
        return "ok"

    def extra_latency_s(self, node: str) -> float:
        """Straggler tax for one message to ``node`` (0 when healthy).

        The RNG is consulted only for *intermittent* stragglers
        (``probability`` < 1), so schedules that never use them draw the
        byte-identical random stream they always did."""
        extra = self.slow_nodes.get(node, 0.0)
        if not extra:
            return 0.0
        probability = self.slow_probability.get(node)
        if probability is not None and self.rng.random() >= probability:
            return 0.0
        return extra

    def disk_read_fails(self) -> bool:
        """Whether the next disk read hits an injected medium error."""
        if self.disk_error_rate <= 0.0:
            return False
        if self.rng.random() < self.disk_error_rate:
            self.disk_errors += 1
            self._count(_DISK_ERRORS)
            return True
        return False

    def object_read_fails(self) -> bool:
        """Whether the next object-store GET fails (no draw when off)."""
        if self.object_error_rate <= 0.0:
            return False
        if self.rng.random() < self.object_error_rate:
            self.object_errors += 1
            self._count(_OBJECT_ERRORS)
            return True
        return False

    def hydration_delay_s(self) -> float:
        """Extra seconds the next object-store GET pays (0 when healthy).

        Consults the RNG only for intermittent delays (probability < 1),
        mirroring :meth:`extra_latency_s`."""
        if self.hydration_delay_rate <= 0.0 or self.hydration_extra_s <= 0.0:
            return 0.0
        if (self.hydration_delay_rate < 1.0
                and self.rng.random() >= self.hydration_delay_rate):
            return 0.0
        self.slow_hydrations += 1
        self._count(_SLOW_HYDRATIONS)
        return self.hydration_extra_s

    def summary(self) -> Dict[str, int]:
        """JSON-ready injection totals."""
        return {
            "dropped": self.dropped,
            "delayed": self.delayed,
            "duplicated": self.duplicated,
            "disk_errors": self.disk_errors,
            "object_errors": self.object_errors,
            "slow_hydrations": self.slow_hydrations,
        }
