"""Per-file-system cost profiles and the pass-through layer (PTFS).

Table VI compares Propeller's raw I/O against native (Ext4, Btrfs) and
FUSE-based (NTFS-3g, ZFS-fuse) file systems plus PTFS — the authors'
pass-through FUSE layer that isolates FUSE's own overhead.  We cannot run
those file systems, so each gets a :class:`FSProfile` whose per-operation
costs are calibrated to the *published* PostMark numbers; the Propeller
row is PTFS's profile plus Propeller's actually-measured inline-indexing
work, so the paper's headline ratio (≈2.37× over PTFS) is reproduced by
the indexing path, not encoded as a constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.fs.namespace import Inode
from repro.fs.vfs import OpenMode, VirtualFileSystem


@dataclass(frozen=True)
class FSProfile:
    """Per-operation virtual-time costs for one file system.

    Calibrated so PostMark's 'files created per second' matches Table VI:
    create_cost ≈ 1 / published_creation_rate, minus the shared data-
    transfer term.  ``fuse`` marks user-space file systems (context-switch
    overhead is inside the calibrated constants).
    """

    name: str
    create_cost_s: float
    unlink_cost_s: float
    open_cost_s: float
    close_cost_s: float
    write_byte_cost_s: float
    read_byte_cost_s: float
    fuse: bool = False


# Calibration anchors: Table VI 'Files Created per second' — Ext4 16747,
# Btrfs 5582, PTFS 6289, NTFS-3g 2392, ZFS-fuse 2093.  Per-byte costs are
# set so read/write throughput ratios follow the same table.
PROFILES: Dict[str, FSProfile] = {
    "ext4": FSProfile("ext4", 1 / 16747, 1 / 33000, 2e-6, 1e-6, 1 / 84e6, 1 / 84e6),
    "btrfs": FSProfile("btrfs", 1 / 5582, 1 / 11000, 3e-6, 1.5e-6, 1 / 28.1e6, 1 / 28.1e6),
    "ptfs": FSProfile("ptfs", 1 / 6289, 1 / 12500, 8e-6, 4e-6, 1 / 31.51e6, 1 / 31.51e6, fuse=True),
    "ntfs-3g": FSProfile("ntfs-3g", 1 / 2392, 1 / 4800, 12e-6, 6e-6, 1 / 12e6, 1 / 12e6, fuse=True),
    "zfs-fuse": FSProfile("zfs-fuse", 1 / 2093, 1 / 4200, 14e-6, 7e-6, 1 / 12.61e6, 1 / 12.61e6, fuse=True),
}


class ProfiledFS:
    """A VFS wrapper charging an :class:`FSProfile`'s costs per call.

    ``index_hook(path, inode)`` — when set, runs *inline* after every
    namespace/data change and its virtual-time cost lands on the I/O
    critical path: this is how the Propeller row of Table VI pays for
    real-time indexing.
    """

    def __init__(self, vfs: VirtualFileSystem, profile: FSProfile,
                 index_hook: Optional[Callable[[str, Inode], None]] = None) -> None:
        self.vfs = vfs
        self.profile = profile
        self.index_hook = index_hook
        self.clock = vfs.clock

    def _indexed(self, path: str) -> None:
        if self.index_hook is not None:
            self.index_hook(path, self.vfs.stat(path))

    def create(self, path: str, pid: int = 0, uid: int = 0) -> Inode:
        """Create a file, charging the profile and running the index hook."""
        self.clock.charge(self.profile.create_cost_s)
        inode = self.vfs.create(path, pid=pid, uid=uid)
        self._indexed(path)
        return inode

    def mkdir(self, path: str, uid: int = 0, parents: bool = False) -> Inode:
        """Create a directory, charging the profile's create cost."""
        self.clock.charge(self.profile.create_cost_s)
        return self.vfs.mkdir(path, uid=uid, parents=parents)

    def unlink(self, path: str, pid: int = 0) -> None:
        """Remove a file, charging the profile and de-indexing it."""
        self.clock.charge(self.profile.unlink_cost_s)
        inode = self.vfs.stat(path)
        if self.index_hook is not None:
            # Deletion must reach the index too (remove is an index write).
            self.index_hook(path, inode)
        self.vfs.unlink(path, pid=pid)

    def open(self, path: str, mode: OpenMode = OpenMode.READ, pid: int = 0,
             create: bool = False, uid: int = 0) -> int:
        """Open (optionally create) a file, charging the profile."""
        self.clock.charge(self.profile.open_cost_s)
        if create and not self.vfs.exists(path):
            self.clock.charge(self.profile.create_cost_s)
            fd = self.vfs.open(path, mode, pid=pid, create=True, uid=uid)
            self._indexed(path)
            return fd
        return self.vfs.open(path, mode, pid=pid, create=False, uid=uid)

    def write(self, fd: int, nbytes: int) -> None:
        """Append bytes, charging the profile's per-byte write cost."""
        self.clock.charge(nbytes * self.profile.write_byte_cost_s)
        self.vfs.write(fd, nbytes)

    def read(self, fd: int, nbytes: int) -> int:
        """Read bytes, charging the profile's per-byte read cost."""
        self.clock.charge(nbytes * self.profile.read_byte_cost_s)
        return self.vfs.read(fd, nbytes)

    def close(self, fd: int) -> None:
        """Close the descriptor; a written file is re-indexed inline."""
        self.clock.charge(self.profile.close_cost_s)
        record = self.vfs._lookup_fd(fd)
        path, wrote = record.path, bool(record.mode & OpenMode.WRITE)
        self.vfs.close(fd)
        if wrote:
            self._indexed(path)
