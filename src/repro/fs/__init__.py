"""Virtual file system substrate.

Propeller's client is a FUSE file system whose File Access Management
module intercepts every open and close (Section IV).  We have no FUSE, so
this subpackage provides an in-process equivalent: a hierarchical namespace
of inodes (:mod:`namespace`), a POSIX-flavoured call surface
(:class:`VirtualFileSystem`), an observer API from which the
File Access Management interceptor (:mod:`interceptor`) and the
inotify-style notification queue (:mod:`notification`) are built, and the
pass-through / profiled layers used by the PostMark comparison
(:mod:`passthrough`).
"""

from repro.fs.interceptor import FileAccessManager
from repro.fs.namespace import FileKind, Inode, Namespace
from repro.fs.notification import FsEvent, FsEventKind, NotificationQueue
from repro.fs.passthrough import FSProfile, PROFILES, ProfiledFS
from repro.fs.vfs import OpenMode, VirtualFileSystem

__all__ = [
    "FileAccessManager",
    "FileKind",
    "Inode",
    "Namespace",
    "FsEvent",
    "FsEventKind",
    "NotificationQueue",
    "FSProfile",
    "PROFILES",
    "ProfiledFS",
    "OpenMode",
    "VirtualFileSystem",
]
