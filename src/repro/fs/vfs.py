"""POSIX-flavoured virtual file system with an observer API.

Every state-changing call notifies registered observers — this is the hook
that FUSE gave the paper's prototype.  Two observers matter:

* :class:`~repro.fs.interceptor.FileAccessManager` builds ACGs from
  open/close pairs (Propeller's client);
* :class:`~repro.fs.notification.NotificationQueue` feeds the
  crawling-based baseline (inotify/FSEvents analog).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Protocol

from repro.errors import BadFileDescriptor, IsADirectory
from repro.fs.namespace import FileKind, Inode, Namespace, normalize
from repro.sim.clock import SimClock


class OpenMode(enum.Flag):
    """Access mode flags for open()."""
    READ = enum.auto()
    WRITE = enum.auto()
    RW = READ | WRITE


class FsObserver(Protocol):
    """Callbacks a VFS observer may implement (all optional)."""

    def on_open(self, pid: int, path: str, inode: Inode, mode: OpenMode, t: float) -> None: ...
    def on_close(self, pid: int, path: str, inode: Inode, mode: OpenMode, t: float) -> None: ...
    def on_create(self, pid: int, path: str, inode: Inode, t: float) -> None: ...
    def on_unlink(self, pid: int, path: str, inode: Inode, t: float) -> None: ...
    def on_rename(self, pid: int, old_path: str, new_path: str, inode: Inode, t: float) -> None: ...
    def on_write(self, pid: int, path: str, inode: Inode, nbytes: int, t: float) -> None: ...
    def on_setattr(self, pid: int, path: str, inode: Inode, name: str, value: Any, t: float) -> None: ...


@dataclass
class _OpenFile:
    fd: int
    pid: int
    path: str
    inode: Inode
    mode: OpenMode
    opened_at: float


class VirtualFileSystem:
    """The shared-storage file system Propeller sits under.

    All mutation paths update inode attributes (size/mtime) so that
    attribute queries have live ground truth, and broadcast to observers.
    """

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.namespace = Namespace()
        self._fds = itertools.count(3)
        self._open_files: Dict[int, _OpenFile] = {}
        self._observers: List[FsObserver] = []
        # Dynamic query-directory handler: when set (by a Propeller
        # client), ``readdir("/foo/?size>1m")`` runs the file search
        # instead of listing a real directory (Section IV).
        self._query_handler: Optional[Any] = None

    # -- observers -----------------------------------------------------------

    def add_observer(self, observer: FsObserver) -> None:
        """Register an observer for namespace/I-O events."""
        self._observers.append(observer)

    def remove_observer(self, observer: FsObserver) -> None:
        """Detach a previously registered observer."""
        self._observers.remove(observer)

    def _notify(self, method: str, *args: Any) -> None:
        for observer in self._observers:
            callback = getattr(observer, method, None)
            if callback is not None:
                callback(*args)

    # -- namespace operations ---------------------------------------------------

    def mkdir(self, path: str, uid: int = 0, parents: bool = False) -> Inode:
        """Create a directory (optionally with parents)."""
        return self.namespace.mkdir(path, now=self.clock.now(), uid=uid, parents=parents)

    def create(self, path: str, pid: int = 0, uid: int = 0) -> Inode:
        """Create a file and notify observers."""
        inode = self.namespace.create(path, now=self.clock.now(), uid=uid)
        self._notify("on_create", pid, normalize(path), inode, self.clock.now())
        return inode

    def unlink(self, path: str, pid: int = 0) -> Inode:
        """Remove a file and notify observers."""
        inode = self.namespace.unlink(path, now=self.clock.now())
        self._notify("on_unlink", pid, normalize(path), inode, self.clock.now())
        return inode

    def rename(self, old: str, new: str, pid: int = 0) -> Inode:
        """Move a file or directory; observers get on_rename."""
        inode = self.namespace.rename(old, new, now=self.clock.now())
        self._notify("on_rename", pid, normalize(old), normalize(new),
                     inode, self.clock.now())
        return inode

    def set_query_handler(self, handler) -> None:
        """Install the File Query Engine behind query-directories.

        ``handler(query_path)`` receives the full ``/scope/?query`` path
        and returns matching file paths.
        """
        self._query_handler = handler

    def readdir(self, path: str) -> List[str]:
        """List a directory — or, for ``/scope/?query`` paths with a
        query handler installed, run the file search and return the
        matches as directory entries (full paths)."""
        if "?" in path:
            if self._query_handler is None:
                from repro.errors import QueryError

                raise QueryError(
                    f"no query engine attached for query-directory {path!r}")
            return list(self._query_handler(path))
        return self.namespace.readdir(path)

    def stat(self, path: str) -> Inode:
        """Resolve a path to its inode."""
        return self.namespace.resolve(path)

    def exists(self, path: str) -> bool:
        """Whether a path resolves."""
        return self.namespace.exists(path)

    # -- file I/O ------------------------------------------------------------------

    # An open is a real syscall with nonzero duration.  Charging it also
    # guarantees strictly increasing open timestamps, which the
    # access-causality definition (t0 < t1, strict) relies on.
    OPEN_SYSCALL_COST_S = 1e-6

    def open(self, path: str, mode: OpenMode = OpenMode.READ, pid: int = 0,
             create: bool = False, uid: int = 0) -> int:
        """Open a file, optionally creating it; returns a descriptor."""
        self.clock.charge(self.OPEN_SYSCALL_COST_S)
        if create and not self.namespace.exists(path):
            self.create(path, pid=pid, uid=uid)
        inode = self.namespace.resolve(path)
        if inode.is_dir:
            raise IsADirectory(normalize(path))
        fd = next(self._fds)
        record = _OpenFile(fd, pid, normalize(path), inode, mode, self.clock.now())
        self._open_files[fd] = record
        self._notify("on_open", pid, record.path, inode, mode, self.clock.now())
        return fd

    def _lookup_fd(self, fd: int) -> _OpenFile:
        try:
            return self._open_files[fd]
        except KeyError:
            raise BadFileDescriptor(str(fd)) from None

    def write(self, fd: int, nbytes: int) -> None:
        """Append ``nbytes`` to the file (sizes matter; contents do not)."""
        record = self._lookup_fd(fd)
        if not record.mode & OpenMode.WRITE:
            raise BadFileDescriptor(f"fd {fd} not open for writing")
        record.inode.size += nbytes
        record.inode.data = None  # size-only write invalidates byte content
        record.inode.mtime = self.clock.now()
        self._notify("on_write", record.pid, record.path, record.inode,
                     nbytes, self.clock.now())

    def truncate(self, fd: int, size: int = 0) -> None:
        """Reset a file's size (invalidates byte content)."""
        record = self._lookup_fd(fd)
        if not record.mode & OpenMode.WRITE:
            raise BadFileDescriptor(f"fd {fd} not open for writing")
        record.inode.size = size
        record.inode.data = None
        record.inode.mtime = self.clock.now()
        self._notify("on_write", record.pid, record.path, record.inode,
                     0, self.clock.now())

    def read(self, fd: int, nbytes: int) -> int:
        """Read up to ``nbytes``; returns how many are available."""
        record = self._lookup_fd(fd)
        if not record.mode & OpenMode.READ:
            raise BadFileDescriptor(f"fd {fd} not open for reading")
        return min(nbytes, record.inode.size)

    def close(self, fd: int) -> None:
        """Close a descriptor and notify observers."""
        record = self._open_files.pop(fd, None)
        if record is None:
            raise BadFileDescriptor(str(fd))
        self._notify("on_close", record.pid, record.path, record.inode,
                     record.mode, self.clock.now())

    def setattr(self, path: str, name: str, value: Any, pid: int = 0) -> None:
        """Set a user-defined attribute (the arbitrary fields Propeller
        indexes beyond inode metadata)."""
        inode = self.namespace.resolve(path)
        inode.attributes[name] = value
        inode.mtime = self.clock.now()
        self._notify("on_setattr", pid, normalize(path), inode, name, value,
                     self.clock.now())

    # -- whole-file byte content (shared-storage persistence) ------------------------

    def write_bytes(self, path: str, data: bytes, pid: int = 0, uid: int = 0) -> Inode:
        """Replace a file's contents with real bytes (creating it if
        needed).  Used by components that persist state to the shared
        file system — checkpointed indices, ACGs, Master metadata."""
        fd = self.open(path, OpenMode.WRITE, pid=pid, create=True, uid=uid)
        try:
            record = self._lookup_fd(fd)
            record.inode.data = bytes(data)
            record.inode.size = len(data)
            record.inode.mtime = self.clock.now()
            self._notify("on_write", record.pid, record.path, record.inode,
                         len(data), self.clock.now())
        finally:
            self.close(fd)
        return self.namespace.resolve(path)

    def read_bytes(self, path: str, pid: int = 0) -> bytes:
        """Read a file's full byte content (b'' for size-only files)."""
        fd = self.open(path, OpenMode.READ, pid=pid)
        try:
            record = self._lookup_fd(fd)
            return bytes(record.inode.data) if record.inode.data is not None else b""
        finally:
            self.close(fd)

    # -- convenience -----------------------------------------------------------------

    def write_file(self, path: str, nbytes: int, pid: int = 0, uid: int = 0) -> Inode:
        """create+open+write+close in one call (used by workload generators)."""
        fd = self.open(path, OpenMode.WRITE, pid=pid, create=True, uid=uid)
        try:
            self.write(fd, nbytes)
        finally:
            self.close(fd)
        return self.namespace.resolve(path)
