"""File Access Management — the client-side FUSE shim.

Observes a :class:`~repro.fs.vfs.VirtualFileSystem`, converting open calls
into :class:`~repro.core.trace.AccessEvent`s and building a per-client ACG
in RAM exactly as the paper's client does (Section IV).  Create/unlink are
surfaced through callbacks so the Propeller client can keep the Master
Node's file→ACG mapping current.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from repro.core.acg import AccessCausalityGraph
from repro.core.trace import AccessEvent, TraceRecorder
from repro.fs.namespace import Inode
from repro.fs.vfs import OpenMode
from repro.obs.freshness import NULL_FRESHNESS


class FileAccessManager:
    """Intercepts open/close/create/unlink and maintains an in-RAM ACG.

    ``on_create(path, inode)`` / ``on_unlink(path, inode)`` callbacks fire
    on namespace changes; :meth:`drain` hands over the accumulated ACG (the
    client flushes it to Index Nodes when the I/O process finishes, with
    *weak* consistency — losing a drained ACG is tolerable by design).
    """

    def __init__(self,
                 on_create: Optional[Callable[[str, Inode], None]] = None,
                 on_unlink: Optional[Callable[[str, Inode], None]] = None,
                 on_rename: Optional[Callable[[str, str, Inode], None]] = None,
                 pid_filter: Optional[set] = None) -> None:
        self._recorder = TraceRecorder()
        self._acg = AccessCausalityGraph()
        self._create_cb = on_create
        self._unlink_cb = on_unlink
        self._rename_cb = on_rename
        self._pid_filter = pid_filter
        self.events_seen = 0
        # Freshness instrumentation (wired by the client / service): a
        # close-after-write is the instant a file's content changed, so
        # it is where the staleness stopwatch starts.
        self.freshness = NULL_FRESHNESS
        # Dirty-file coalescing buffer for the batched update path:
        # every close-after-write marks the file dirty, keyed by inode
        # so a rewrite burst collapses to one entry (the latest path
        # wins — a rename between writes must index the new name).
        # ``drain_dirty`` hands the set to the client's group-commit
        # feed; an unlink drops the entry so a dead file is never
        # re-indexed from stale dirt.
        self._dirty: "dict[int, str]" = {}

    def _watches(self, pid: int) -> bool:
        # Negative pids are system components (checkpoint writers, the
        # service itself); their I/O is never part of application
        # causality.
        if pid < 0:
            return False
        return self._pid_filter is None or pid in self._pid_filter

    # -- VFS observer callbacks ---------------------------------------------

    def on_open(self, pid: int, path: str, inode: Inode, mode: OpenMode, t: float) -> None:
        """VFS observer hook: record an open as an access event."""
        if not self._watches(pid):
            return
        event = AccessEvent(
            pid=pid,
            file_id=inode.ino,
            read=bool(mode & OpenMode.READ),
            write=bool(mode & OpenMode.WRITE),
            t_open=t,
        )
        self.events_seen += 1
        self._acg.add_file(inode.ino)
        for producer, consumer in self._recorder.record(event):
            self._acg.add_causality(producer, consumer)

    def on_close(self, pid: int, path: str, inode: Inode, mode: OpenMode, t: float) -> None:
        # Close marks the end of the access; causality is keyed on opens,
        # so nothing to extract — but a close-after-write is the moment
        # the file's content changed, which starts the staleness clock.
        if not self._watches(pid):
            return
        if mode & OpenMode.WRITE:
            self.freshness.stamp(inode.ino, t)
            self._dirty[inode.ino] = path

    def on_create(self, pid: int, path: str, inode: Inode, t: float) -> None:
        """VFS observer hook: register the new file as an ACG vertex."""
        if not self._watches(pid):
            return
        self._acg.add_file(inode.ino)
        self.freshness.stamp(inode.ino, t)
        if self._create_cb is not None:
            self._create_cb(path, inode)

    def on_unlink(self, pid: int, path: str, inode: Inode, t: float) -> None:
        """VFS observer hook: drop the file's vertex and notify the client."""
        if not self._watches(pid):
            return
        self._acg.remove_file(inode.ino)
        self._dirty.pop(inode.ino, None)
        if self._unlink_cb is not None:
            self._unlink_cb(path, inode)

    def on_rename(self, pid: int, old_path: str, new_path: str,
                  inode: Inode, t: float) -> None:
        # Causality is keyed on inodes, so the ACG is untouched; but the
        # client needs to refresh the path-derived index entries.
        if not self._watches(pid):
            return
        if inode.ino in self._dirty:
            self._dirty[inode.ino] = new_path
        if self._rename_cb is not None:
            self._rename_cb(old_path, new_path, inode)

    # -- client-side API -------------------------------------------------------

    def last_file(self, pid: int, exclude: Optional[int] = None) -> Optional[int]:
        """The file this process touched most recently (placement hint)."""
        return self._recorder.last_file(pid, exclude=exclude)

    def process_finished(self, pid: int) -> None:
        """Forget a process's open history once it exits."""
        self._recorder.finish_process(pid)

    def peek(self) -> AccessCausalityGraph:
        """The ACG accumulated so far (not cleared)."""
        return self._acg

    def dirty_count(self) -> int:
        """How many distinct files are waiting in the dirty buffer."""
        return len(self._dirty)

    def drain_dirty(self) -> List[Tuple[int, str]]:
        """Hand over the coalesced dirty set (insertion order) and reset.

        Each entry is one distinct written file — however many times it
        was rewritten — under its most recent path.
        """
        dirty, self._dirty = self._dirty, {}
        return list(dirty.items())

    def drain(self) -> AccessCausalityGraph:
        """Hand over the cached ACG and start a fresh one (client flush)."""
        acg, self._acg = self._acg, AccessCausalityGraph()
        return acg
