"""Inode table and hierarchical namespace.

Inodes carry the attributes the paper's queries touch (size, mtime, uid,
file type) plus an open dict of user-defined attributes — Propeller is a
*general-purpose* search service indexing arbitrary user-defined fields.
"""

from __future__ import annotations

import enum
import itertools
import posixpath
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import (
    FileExists,
    FileNotFound,
    FileSystemError,
    IsADirectory,
    NotADirectory,
)


class FileKind(enum.Enum):
    """Regular file or directory."""
    FILE = "file"
    DIRECTORY = "dir"


@dataclass
class Inode:
    """One file-system object."""

    ino: int
    kind: FileKind
    size: int = 0
    mtime: float = 0.0
    ctime: float = 0.0
    uid: int = 0
    attributes: Dict[str, Any] = field(default_factory=dict)
    # Directory children: name -> ino.  Empty for regular files.
    children: Dict[str, int] = field(default_factory=dict)
    # Optional real content.  Most workloads only track sizes (data stays
    # None); shared-storage persistence (checkpointed indices, ACGs,
    # Master metadata) stores actual bytes.
    data: Optional[bytes] = None

    @property
    def is_dir(self) -> bool:
        """Whether this inode is a directory."""
        return self.kind is FileKind.DIRECTORY


def normalize(path: str) -> str:
    """Canonicalize a path to the '/a/b/c' form used as namespace keys."""
    if not path.startswith("/"):
        path = "/" + path
    norm = posixpath.normpath(path)
    return "/" if norm in (".", "/") else norm


def split(path: str) -> Tuple[str, str]:
    """(parent_path, basename) of a normalized path."""
    norm = normalize(path)
    parent, name = posixpath.split(norm)
    return parent, name


class Namespace:
    """The inode table plus the directory tree rooted at '/'."""

    def __init__(self) -> None:
        self._ids = itertools.count(2)
        self.root = Inode(ino=1, kind=FileKind.DIRECTORY)
        self._inodes: Dict[int, Inode] = {1: self.root}

    def __len__(self) -> int:
        """Total number of inodes (including the root directory)."""
        return len(self._inodes)

    @property
    def file_count(self) -> int:
        """Number of regular files."""
        return sum(1 for i in self._inodes.values() if not i.is_dir)

    def inode(self, ino: int) -> Inode:
        """Fetch an inode by number or raise :class:`FileNotFound`."""
        try:
            return self._inodes[ino]
        except KeyError:
            raise FileNotFound(f"inode {ino}") from None

    # -- path resolution -------------------------------------------------

    def resolve(self, path: str) -> Inode:
        """Return the inode at ``path`` or raise :class:`FileNotFound`."""
        node = self.root
        norm = normalize(path)
        if norm == "/":
            return node
        for part in norm.strip("/").split("/"):
            if not node.is_dir:
                raise NotADirectory(norm)
            try:
                node = self._inodes[node.children[part]]
            except KeyError:
                raise FileNotFound(norm) from None
        return node

    def exists(self, path: str) -> bool:
        """Whether a path resolves to an inode."""
        try:
            self.resolve(path)
            return True
        except (FileNotFound, NotADirectory):
            return False

    def path_of(self, ino: int) -> Optional[str]:
        """Reverse lookup: slow, intended for tests and reporting."""
        for path, node in self.walk():
            if node.ino == ino:
                return path
        return None

    # -- mutation ----------------------------------------------------------

    def _new_inode(self, kind: FileKind, now: float, uid: int) -> Inode:
        node = Inode(ino=next(self._ids), kind=kind, mtime=now, ctime=now, uid=uid)
        self._inodes[node.ino] = node
        return node

    def mkdir(self, path: str, now: float = 0.0, uid: int = 0,
              parents: bool = False) -> Inode:
        """Create a directory (optionally with parents)."""
        norm = normalize(path)
        if norm == "/":
            return self.root
        parent_path, name = split(norm)
        if parents and not self.exists(parent_path):
            self.mkdir(parent_path, now=now, uid=uid, parents=True)
        parent = self.resolve(parent_path)
        if not parent.is_dir:
            raise NotADirectory(parent_path)
        if name in parent.children:
            existing = self._inodes[parent.children[name]]
            if parents and existing.is_dir:
                return existing
            raise FileExists(norm)
        node = self._new_inode(FileKind.DIRECTORY, now, uid)
        parent.children[name] = node.ino
        parent.mtime = now
        return node

    def create(self, path: str, now: float = 0.0, uid: int = 0) -> Inode:
        """Create a regular file under an existing directory."""
        norm = normalize(path)
        parent_path, name = split(norm)
        parent = self.resolve(parent_path)
        if not parent.is_dir:
            raise NotADirectory(parent_path)
        if name in parent.children:
            raise FileExists(norm)
        node = self._new_inode(FileKind.FILE, now, uid)
        parent.children[name] = node.ino
        parent.mtime = now
        return node

    def unlink(self, path: str, now: float = 0.0) -> Inode:
        """Remove a file (or an empty directory)."""
        norm = normalize(path)
        parent_path, name = split(norm)
        parent = self.resolve(parent_path)
        if name not in parent.children:
            raise FileNotFound(norm)
        node = self._inodes[parent.children[name]]
        if node.is_dir:
            if node.children:
                raise IsADirectory(f"directory not empty: {norm}")
        del parent.children[name]
        del self._inodes[node.ino]
        parent.mtime = now
        return node

    def rename(self, old: str, new: str, now: float = 0.0) -> Inode:
        """Move a file or directory to a new path (no overwrite)."""
        old_norm, new_norm = normalize(old), normalize(new)
        if old_norm == "/":
            raise FileSystemError("cannot rename the root directory")
        if new_norm == old_norm or new_norm.startswith(old_norm + "/"):
            raise FileSystemError(
                f"cannot rename {old_norm!r} into itself ({new_norm!r})")
        node = self.resolve(old_norm)
        if self.exists(new_norm):
            raise FileExists(new_norm)
        new_parent_path, new_name = split(new_norm)
        new_parent = self.resolve(new_parent_path)
        if not new_parent.is_dir:
            raise NotADirectory(new_parent_path)
        old_parent_path, old_name = split(old_norm)
        old_parent = self.resolve(old_parent_path)
        del old_parent.children[old_name]
        new_parent.children[new_name] = node.ino
        old_parent.mtime = now
        new_parent.mtime = now
        return node

    def readdir(self, path: str) -> List[str]:
        """Sorted child names of a directory."""
        node = self.resolve(path)
        if not node.is_dir:
            raise NotADirectory(normalize(path))
        return sorted(node.children)

    # -- iteration -------------------------------------------------------------

    def walk(self, start: str = "/") -> Iterator[Tuple[str, Inode]]:
        """Depth-first (path, inode) pairs under ``start``, excluding it."""
        base = self.resolve(start)
        prefix = normalize(start).rstrip("/")
        stack: List[Tuple[str, Inode]] = [(prefix, base)]
        while stack:
            path, node = stack.pop()
            for name in sorted(node.children, reverse=True):
                child = self._inodes[node.children[name]]
                child_path = f"{path}/{name}"
                yield child_path, child
                if child.is_dir:
                    stack.append((child_path, child))

    def files(self, start: str = "/") -> Iterator[Tuple[str, Inode]]:
        """(path, inode) pairs for regular files only."""
        for path, node in self.walk(start):
            if not node.is_dir:
                yield path, node
