"""inotify/FSEvents-style change notification.

Desktop search engines (Spotlight, Google Desktop) integrate file-system
notification so they respond faster than pure crawlers (Section II).  The
crawling baseline consumes this queue to mark files dirty between re-index
passes — crucially it still indexes *asynchronously*, which is what makes
its results stale under write-intensive workloads (Figures 1 and 11).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Deque, List

from repro.fs.namespace import Inode
from repro.fs.vfs import OpenMode


class FsEventKind(enum.Enum):
    """The change types a notification can report."""
    CREATED = "created"
    MODIFIED = "modified"
    DELETED = "deleted"
    MOVED = "moved"


@dataclass(frozen=True)
class FsEvent:
    """One namespace-change notification."""
    kind: FsEventKind
    path: str
    ino: int
    timestamp: float


class NotificationQueue:
    """Bounded FIFO of namespace-change events (a VFS observer).

    Real notification systems drop events under pressure (inotify's queue
    overflows); ``capacity`` models that, and ``dropped`` counts losses —
    a crawler that falls behind also loses change information.
    """

    def __init__(self, capacity: int = 65536) -> None:
        self.capacity = capacity
        self._queue: Deque[FsEvent] = deque()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._queue)

    def _push(self, event: FsEvent) -> None:
        if len(self._queue) >= self.capacity:
            self.dropped += 1
            return
        self._queue.append(event)

    # -- VFS observer callbacks -----------------------------------------------

    def on_create(self, pid: int, path: str, inode: Inode, t: float) -> None:
        self._push(FsEvent(FsEventKind.CREATED, path, inode.ino, t))

    def on_unlink(self, pid: int, path: str, inode: Inode, t: float) -> None:
        self._push(FsEvent(FsEventKind.DELETED, path, inode.ino, t))

    def on_write(self, pid: int, path: str, inode: Inode, nbytes: int, t: float) -> None:
        self._push(FsEvent(FsEventKind.MODIFIED, path, inode.ino, t))

    def on_setattr(self, pid: int, path: str, inode: Inode, name: str,
                   value: object, t: float) -> None:
        self._push(FsEvent(FsEventKind.MODIFIED, path, inode.ino, t))

    def on_rename(self, pid: int, old_path: str, new_path: str,
                  inode: Inode, t: float) -> None:
        # inotify reports MOVED_FROM/MOVED_TO; one MOVED event carrying
        # the new path is enough for consumers keyed by inode.
        self._push(FsEvent(FsEventKind.MOVED, new_path, inode.ino, t))

    # -- consumer API --------------------------------------------------------------

    def drain(self) -> List[FsEvent]:
        """Remove and return all pending events in arrival order."""
        events = list(self._queue)
        self._queue.clear()
        return events
