"""Tail-tolerant search hedging: p95-derived timers and hedged leg replies.

The policy follows "The Tail at Scale": send the leg to the primary; if no
answer arrives within roughly the observed p95 leg latency, issue the same
leg to a follower replica and take the first *sound* answer.  Soundness is
watermark-checked — a follower that has not applied every update the
client has been acked for a partition cannot silently serve a stale
answer (it may still serve one explicitly, under the client's opt-in
partial-results deadline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

# Leg-latency histogram the policy derives its timer from.
LEG_HISTOGRAM = "cluster.client.search_leg_s"

# Observations needed before the p95 estimate is trusted over the default.
_MIN_SAMPLES = 8


class HedgePolicy:
    """Decides when a search leg gets hedged to a follower replica.

    ``delay_s()`` is the hedge timer: the observed p95 of primary leg
    latencies once enough samples exist, else ``default_delay_s``.  The
    client feeds every primary leg duration back via :meth:`observe`, so
    the timer adapts as the cluster's tail moves.  ``enabled`` turns the
    whole mechanism off (benchmarks compare both modes).
    """

    def __init__(self, registry, default_delay_s: float = 0.05,
                 enabled: bool = True) -> None:
        self.registry = registry
        self.default_delay_s = default_delay_s
        self.enabled = enabled
        self._hist = registry.histogram(LEG_HISTOGRAM)

    def observe(self, leg_seconds: float) -> None:
        """Record one primary leg's latency."""
        self._hist.observe(leg_seconds)

    def delay_s(self) -> float:
        """Virtual seconds to wait before hedging a leg."""
        if self._hist.count >= _MIN_SAMPLES:
            return self._hist.p95
        return self.default_delay_s


@dataclass
class HedgedReply:
    """A search leg's answer after hedge resolution.

    Duck-type compatible with :class:`~repro.cluster.messages.SearchReply`
    (``results`` / ``not_owned`` / ``epoch`` / ``pruned_ok``) so
    ``scatter_gather`` unpacks it unchanged.  The extra fields record how
    the leg was answered: ``from_replica`` when a follower won, and
    ``lagging`` naming partitions the follower answered *below* the
    client's read watermark (only ever non-empty under the opt-in
    partial-results deadline).
    """

    node: str
    epoch: int = 0
    results: List = field(default_factory=list)
    not_owned: Tuple[int, ...] = ()
    pruned_ok: Tuple[int, ...] = ()
    from_replica: bool = False
    lagging: Tuple[int, ...] = ()
