"""Partition replica sets: primary/follower replication and tail-tolerant reads.

Each ACG partition can carry a *replica set* of configurable replication
factor (RF).  The owning Index Node (the primary) keeps a per-partition
:class:`ReplicationLog` of committed updates and streams suffixes of it to
follower nodes; the Master's :class:`ReplicaSetManager` tracks membership
and per-follower applied watermarks from heartbeats, so failover can
*promote* a caught-up follower (an epoch bump, no WAL replay) instead of
replaying a checkpoint on a cold survivor.  On the read path a
:class:`HedgePolicy` arms a p95-derived timer per search leg and hedges
the leg to a follower when the primary dawdles.
"""

from repro.replication.hedging import HedgedReply, HedgePolicy
from repro.replication.log import ReplicationLog
from repro.replication.replica_set import ReplicaSetManager, ReplicaSetState

__all__ = [
    "HedgePolicy",
    "HedgedReply",
    "ReplicaSetManager",
    "ReplicaSetState",
    "ReplicationLog",
]
