"""Per-partition replication log kept by the primary.

The log assigns each committed update a monotonically increasing sequence
number (1-based) and retains the records so follower catch-up can re-send
any suffix.  A follower that has applied sequence ``k`` asks for
``since(k)``; if the log has trimmed past ``k`` the answer is ``None`` and
the primary must fall back to a full snapshot bootstrap.

Records are the committed :class:`~repro.cluster.messages.IndexUpdate`
objects themselves — the follower applies the same update stream the
primary's replica applied, so converged logs imply converged stores.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cluster.messages import IndexUpdate


class ReplicationLog:
    """Sequenced record buffer for one partition's committed updates."""

    def __init__(self, base: int = 0) -> None:
        # ``base`` is the seq of the record *before* _records[0]: a
        # promoted follower continues the partition's sequence from its
        # applied watermark instead of restarting at 1.
        self._records: List[IndexUpdate] = []
        self._base = base

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest record (0 when empty)."""
        return self._base + len(self._records)

    @property
    def first_seq(self) -> int:
        """Sequence number of the oldest retained record (base+1)."""
        return self._base + 1

    def __len__(self) -> int:
        return len(self._records)

    def append(self, update: IndexUpdate) -> int:
        """Add one committed update; returns its sequence number."""
        self._records.append(update)
        return self.last_seq

    def since(self, seq: int) -> Optional[Tuple[Tuple[int, IndexUpdate], ...]]:
        """Records after ``seq`` as ``(seq, update)`` pairs, oldest first.

        Returns ``None`` when ``seq`` predates the retained window (the
        follower is too far behind to stream — bootstrap it instead).
        """
        if seq < self._base:
            return None
        start = seq - self._base
        return tuple((self._base + start + i + 1, update)
                     for i, update in enumerate(self._records[start:]))

    def trim_to(self, seq: int) -> int:
        """Drop records at or below ``seq``; returns how many were dropped.

        Callers trim only up to the minimum acked sequence across
        followers, so a live follower never needs a trimmed suffix.
        """
        keep_from = max(0, min(seq, self.last_seq) - self._base)
        dropped = keep_from
        if dropped:
            self._records = self._records[keep_from:]
            self._base += dropped
        return dropped

    def __repr__(self) -> str:
        return (f"ReplicationLog(first={self.first_seq}, "
                f"last={self.last_seq}, retained={len(self._records)})")
