"""Master-side replica-set membership and watermark bookkeeping.

One :class:`ReplicaSetState` per partition records who the followers are,
the replication epoch (bumped on every membership change, promotion, or
log-generation restart, so a deposed primary's late stream is rejected),
and the applied/acked sequence watermarks the heartbeat loop reports.
The :class:`ReplicaSetManager` owns the map and the promotion-candidate
logic: a follower is *viable* for promotion exactly when it is in the
current replication epoch and its applied sequence has caught up to the
last sequence the dead primary was known to have committed.

Sequence numbers are only comparable **within one epoch**: a split,
merge, adoption, or install restarts the primary's replication log at
zero, so every epoch bump zeroes ``primary_seq`` and the per-follower
watermark maps instead of carrying stale-generation maxima forward.
(Promotion is the one exception — the promoted primary continues the
old sequence from its applied watermark — so ``bump_epoch`` fences
without zeroing.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.journal import NULL_JOURNAL


@dataclass
class ReplicaSetState:
    """Replication status of one partition, as the Master last heard it."""

    acg_id: int
    followers: Tuple[str, ...] = ()
    repl_epoch: int = 1
    # Last committed sequence the primary reported (its log's last_seq).
    primary_seq: int = 0
    # follower node -> applied sequence, from follower heartbeats.
    applied: Dict[str, int] = field(default_factory=dict)
    # follower node -> acked sequence, from the primary's heartbeat (what
    # the primary believes it has successfully streamed).
    acked: Dict[str, int] = field(default_factory=dict)


class ReplicaSetManager:
    """Tracks replica sets for every partition when RF > 1."""

    def __init__(self, rf: int) -> None:
        if rf < 2:
            raise ValueError(f"replica sets need rf >= 2, got {rf}")
        self.rf = rf
        self._sets: Dict[int, ReplicaSetState] = {}
        # Epoch bumps are fencing events worth a journal entry; the
        # owning Master points this at the deployment's journal.
        self.journal = NULL_JOURNAL

    def state(self, acg_id: int) -> ReplicaSetState:
        """Get or create the partition's replica-set state."""
        st = self._sets.get(acg_id)
        if st is None:
            st = self._sets[acg_id] = ReplicaSetState(acg_id)
        return st

    def get(self, acg_id: int) -> Optional[ReplicaSetState]:
        return self._sets.get(acg_id)

    def drop(self, acg_id: int) -> None:
        """Forget a partition (merged away)."""
        self._sets.pop(acg_id, None)

    def set_followers(self, acg_id: int, followers: Tuple[str, ...],
                      force: bool = False) -> int:
        """Install a new follower tuple; bumps and returns the repl epoch.

        A no-op (same followers) keeps the current epoch so steady-state
        reassignment retries do not churn epochs — unless ``force`` is
        set, which callers use after a content change outside the
        replication stream (split, merge, adoption, install): the
        primary's log restarted, so the old epoch's watermarks are no
        longer comparable and a bump is mandatory even with unchanged
        membership.  Every bump zeroes the watermark state: sequences
        from the previous epoch must never gate (or satisfy) promotion
        in the new one.
        """
        st = self.state(acg_id)
        if force or st.followers != followers:
            st.followers = followers
            st.repl_epoch += 1
            st.primary_seq = 0
            st.applied = {f: 0 for f in followers}
            st.acked = {f: 0 for f in followers}
            self.journal.emit("repl.epoch_bump", acg_id=acg_id,
                              repl_epoch=st.repl_epoch,
                              reason="forced" if force else "membership",
                              followers=list(followers))
        return st.repl_epoch

    def _enter_epoch(self, st: ReplicaSetState, repl_epoch: int) -> None:
        """Adopt a newer epoch reported by a node.

        A report from a higher epoch than recorded means the primary
        restarted its log generation (``_reset_repl`` self-bumps) before
        this Master's own bump landed, or a bump raced a heartbeat.
        Old-generation watermarks are not comparable to the new log's
        sequences, so they are dropped rather than kept as maxima —
        keeping them would both unsoundly qualify stale replicas for
        promotion and permanently over-raise the viability bar.
        """
        if repl_epoch > st.repl_epoch:
            st.repl_epoch = repl_epoch
            st.primary_seq = 0
            st.applied = {f: 0 for f in st.followers}
            st.acked = {f: 0 for f in st.followers}

    def record_primary(self, acg_id: int, repl_epoch: int, last_seq: int,
                       acked: Tuple[Tuple[str, int], ...]) -> None:
        """Fold a primary's heartbeat report into the state."""
        st = self.state(acg_id)
        if repl_epoch < st.repl_epoch:
            return  # stale primary (pre-promotion) — ignore
        self._enter_epoch(st, repl_epoch)
        st.primary_seq = max(st.primary_seq, last_seq)
        for follower, seq in acked:
            if seq > st.acked.get(follower, 0):
                st.acked[follower] = seq

    def record_follower(self, acg_id: int, node: str, repl_epoch: int,
                        applied_seq: int) -> None:
        """Fold a follower's heartbeat report into the state."""
        st = self.state(acg_id)
        if repl_epoch < st.repl_epoch:
            return
        self._enter_epoch(st, repl_epoch)
        if applied_seq > st.applied.get(node, 0):
            st.applied[node] = applied_seq

    def promotion_candidates(self, acg_id: int) -> List[Tuple[str, int]]:
        """Followers ordered most-caught-up first as (node, applied_seq)."""
        st = self._sets.get(acg_id)
        if st is None:
            return []
        return sorted(((f, st.applied.get(f, 0)) for f in st.followers),
                      key=lambda pair: (-pair[1], pair[0]))

    def restore(self, acg_id: int, repl_epoch: int,
                followers: Tuple[str, ...]) -> None:
        """Reinstall one partition's epoch and membership after a Master
        restart or standby promotion (meta-WAL replay).

        Unlike :meth:`set_followers` this never bumps: the epoch being
        installed *is* the durable record of the last bump.  Watermarks
        are soft state and start at zero — the next heartbeat round
        re-teaches them, and :meth:`_enter_epoch` keeps cross-generation
        sequences from qualifying stale candidates in the meantime."""
        st = self.state(acg_id)
        st.followers = tuple(followers)
        st.repl_epoch = repl_epoch
        st.primary_seq = 0
        st.applied = {f: 0 for f in st.followers}
        st.acked = {f: 0 for f in st.followers}

    def bump_epoch(self, acg_id: int) -> int:
        """Force a repl-epoch bump (promotion fences the old primary).

        Unlike :meth:`set_followers`, this keeps the watermark state: a
        promoted primary *continues* the sequence from its applied
        watermark, so promotion does not start a new log generation."""
        st = self.state(acg_id)
        st.repl_epoch += 1
        self.journal.emit("repl.epoch_bump", acg_id=acg_id,
                          repl_epoch=st.repl_epoch, reason="promotion",
                          followers=list(st.followers))
        return st.repl_epoch

    def partitions(self) -> List[int]:
        """Every tracked partition id, sorted."""
        return sorted(self._sets)
