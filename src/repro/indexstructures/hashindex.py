"""Extendible hash index.

A directory of 2^d pointers to buckets, each bucket holding at most
``bucket_capacity`` distinct keys.  A full bucket splits by local depth;
when local depth would exceed global depth the directory doubles.  This is
the disk-friendly hash organisation database systems used in the paper's
era, and it gives the page hook a natural unit (one bucket = one page).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterator, List, Tuple

from repro.indexstructures.base import Index, IndexKind, PageHook

DEFAULT_BUCKET_CAPACITY = 32
_HASH_BITS = 64
_HASH_MASK = (1 << _HASH_BITS) - 1


def _stable_hash(key: Any) -> int:
    """Deterministic across runs (unlike str hash with PYTHONHASHSEED)."""
    if isinstance(key, bytes):
        data = key
    elif isinstance(key, str):
        data = key.encode("utf-8")
    elif isinstance(key, bool):
        data = b"\x01" if key else b"\x00"
    elif isinstance(key, int):
        data = key.to_bytes(16, "little", signed=True)
    elif isinstance(key, float):
        data = repr(key).encode("ascii")
    elif isinstance(key, tuple):
        h = 0x345678
        for item in key:
            h = (h * 1000003) ^ _stable_hash(item)
        return h & _HASH_MASK
    else:
        raise TypeError(f"unhashable index key type: {type(key).__name__}")
    # FNV-1a
    h = 0xCBF29CE484222325
    for byte in data:
        h = ((h ^ byte) * 0x100000001B3) & _HASH_MASK
    return h


class _Bucket:
    __slots__ = ("bucket_id", "local_depth", "entries")

    def __init__(self, bucket_id: int, local_depth: int) -> None:
        self.bucket_id = bucket_id
        self.local_depth = local_depth
        self.entries: Dict[Any, List[Any]] = {}


class ExtendibleHashIndex(Index):
    """Extendible hashing multimap for exact-match lookups."""

    kind = IndexKind.HASH

    def __init__(self, bucket_capacity: int = DEFAULT_BUCKET_CAPACITY,
                 page_hook: PageHook = None) -> None:
        if bucket_capacity < 1:
            raise ValueError(f"bucket_capacity must be >= 1: {bucket_capacity}")
        self.bucket_capacity = bucket_capacity
        self._page_hook = page_hook
        self._ids = itertools.count()
        self.global_depth = 1
        b0 = _Bucket(next(self._ids), 1)
        b1 = _Bucket(next(self._ids), 1)
        self._directory: List[_Bucket] = [b0, b1]
        self._size = 0

    # -- internals ---------------------------------------------------------

    def _touch(self, bucket: _Bucket, write: bool = False) -> None:
        if self._page_hook is not None:
            self._page_hook(bucket.bucket_id, write)

    def _bucket_for(self, key: Any) -> _Bucket:
        slot = _stable_hash(key) & ((1 << self.global_depth) - 1)
        bucket = self._directory[slot]
        self._touch(bucket)
        return bucket

    def _split(self, bucket: _Bucket) -> None:
        if bucket.local_depth == self.global_depth:
            self._directory = self._directory + list(self._directory)
            self.global_depth += 1
        new_depth = bucket.local_depth + 1
        sibling = _Bucket(next(self._ids), new_depth)
        bucket.local_depth = new_depth
        high_bit = 1 << (new_depth - 1)
        # Repoint directory slots whose new bit is set.
        for slot, b in enumerate(self._directory):
            if b is bucket and slot & high_bit:
                self._directory[slot] = sibling
        # Redistribute entries.
        stay: Dict[Any, List[Any]] = {}
        for key, values in bucket.entries.items():
            if _stable_hash(key) & high_bit:
                sibling.entries[key] = values
            else:
                stay[key] = values
        bucket.entries = stay
        self._touch(bucket, write=True)
        self._touch(sibling, write=True)

    # -- Index API ----------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def bucket_count(self) -> int:
        """Number of distinct buckets behind the directory."""
        return len({id(b) for b in self._directory})

    def insert(self, key: Any, value: Any) -> None:
        """Add one (key, value) pair, splitting buckets as needed."""
        for _ in range(_HASH_BITS):
            bucket = self._bucket_for(key)
            values = bucket.entries.get(key)
            if values is not None:
                if value not in values:
                    values.append(value)
                    self._size += 1
                self._touch(bucket, write=True)
                return
            if len(bucket.entries) < self.bucket_capacity:
                bucket.entries[key] = [value]
                self._size += 1
                self._touch(bucket, write=True)
                return
            self._split(bucket)
        raise RuntimeError("extendible hash split did not converge")

    def bulk_insert(self, pairs: Iterator[Tuple[Any, Any]]) -> int:
        """Insert many (key, value) pairs, grouped by key.

        The group-commit path for keyword postings: pairs sharing a key
        (one keyword, many files) resolve the bucket once instead of
        re-walking the directory per pair.  Returns pairs added.
        """
        grouped: dict = {}
        for key, value in pairs:
            bucket = grouped.setdefault(key, [])
            if value not in bucket:
                bucket.append(value)
        added = 0
        for key, new_values in grouped.items():
            first = new_values[0]
            before = self._size
            self.insert(key, first)  # may split; re-resolves the bucket
            bucket = self._bucket_for(key)
            values = bucket.entries[key]
            for value in new_values[1:]:
                if value not in values:
                    values.append(value)
                    self._size += 1
            added += self._size - before
        return added

    def remove(self, key: Any, value: Any = None) -> int:
        """Remove one value under ``key`` (or all); returns pairs removed."""
        bucket = self._bucket_for(key)
        values = bucket.entries.get(key)
        if values is None:
            return 0
        if value is None:
            removed = len(values)
            del bucket.entries[key]
        else:
            if value not in values:
                return 0
            values.remove(value)
            removed = 1
            if not values:
                del bucket.entries[key]
        self._size -= removed
        self._touch(bucket, write=True)
        return removed

    def get(self, key: Any) -> List[Any]:
        """All values stored under exactly ``key`` ([] if absent)."""
        bucket = self._bucket_for(key)
        return list(bucket.entries.get(key, []))

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """Every (key, value) pair (arbitrary order)."""
        seen = set()
        for bucket in self._directory:
            if id(bucket) in seen:
                continue
            seen.add(id(bucket))
            for key, values in bucket.entries.items():
                for value in values:
                    yield key, value

    # -- validation ----------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert directory/bucket invariants; raises AssertionError."""
        assert len(self._directory) == 1 << self.global_depth
        seen = {}
        for slot, bucket in enumerate(self._directory):
            assert bucket.local_depth <= self.global_depth
            # All slots pointing to one bucket agree on the low local_depth bits.
            low = slot & ((1 << bucket.local_depth) - 1)
            if id(bucket) in seen:
                assert seen[id(bucket)] == low, "inconsistent directory pointers"
            seen[id(bucket)] = low
            for key in bucket.entries:
                h = _stable_hash(key)
                assert h & ((1 << bucket.local_depth) - 1) == low, "key in wrong bucket"
