"""Binary framing shared by index serialization and the write-ahead log.

Values are tagged, length-prefixed little-endian records.  Supported value
types are the ones file indices actually store: ints, floats, strings,
bytes, None, and flat tuples of those.
"""

from __future__ import annotations

import struct
from typing import Any, Iterator, List, Tuple

from repro.indexstructures.base import Index, IndexKind, make_index

_TAG_INT = 0
_TAG_FLOAT = 1
_TAG_STR = 2
_TAG_BYTES = 3
_TAG_NONE = 4
_TAG_TUPLE = 5


def dump_value(value: Any) -> bytes:
    """Encode one value as a tagged binary record."""
    if value is None:
        return struct.pack("<B", _TAG_NONE)
    if isinstance(value, bool):
        # Store bools as ints; they round-trip as 0/1 which is what
        # attribute predicates compare against.
        return struct.pack("<Bq", _TAG_INT, int(value))
    if isinstance(value, int):
        return struct.pack("<Bq", _TAG_INT, value)
    if isinstance(value, float):
        return struct.pack("<Bd", _TAG_FLOAT, value)
    if isinstance(value, str):
        raw = value.encode("utf-8")
        return struct.pack("<BI", _TAG_STR, len(raw)) + raw
    if isinstance(value, bytes):
        return struct.pack("<BI", _TAG_BYTES, len(value)) + value
    if isinstance(value, tuple):
        parts = [struct.pack("<BI", _TAG_TUPLE, len(value))]
        parts.extend(dump_value(item) for item in value)
        return b"".join(parts)
    raise TypeError(f"cannot serialize value of type {type(value).__name__}")


def load_value(data: bytes, offset: int) -> Tuple[Any, int]:
    """Decode one record at ``offset``; return (value, next_offset)."""
    (tag,) = struct.unpack_from("<B", data, offset)
    offset += 1
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_INT:
        (v,) = struct.unpack_from("<q", data, offset)
        return v, offset + 8
    if tag == _TAG_FLOAT:
        (v,) = struct.unpack_from("<d", data, offset)
        return v, offset + 8
    if tag == _TAG_STR:
        (n,) = struct.unpack_from("<I", data, offset)
        offset += 4
        return data[offset:offset + n].decode("utf-8"), offset + n
    if tag == _TAG_BYTES:
        (n,) = struct.unpack_from("<I", data, offset)
        offset += 4
        return bytes(data[offset:offset + n]), offset + n
    if tag == _TAG_TUPLE:
        (n,) = struct.unpack_from("<I", data, offset)
        offset += 4
        items: List[Any] = []
        for _ in range(n):
            item, offset = load_value(data, offset)
            items.append(item)
        return tuple(items), offset
    raise ValueError(f"unknown value tag: {tag}")


def dump_record(fields: Tuple[Any, ...]) -> bytes:
    """Encode a record (tuple of values) with a length prefix."""
    body = dump_value(fields)
    return struct.pack("<I", len(body)) + body


def iter_records(data: bytes) -> Iterator[Tuple[Any, ...]]:
    """Decode back-to-back :func:`dump_record` frames."""
    offset = 0
    while offset < len(data):
        (n,) = struct.unpack_from("<I", data, offset)
        offset += 4
        value, end = load_value(data, offset)
        if end != offset + n:
            raise ValueError("record length mismatch")
        offset = end
        yield value


def dump_index(index: Index) -> bytes:
    """Serialize any index to its generic on-disk form (kind + pairs)."""
    header = dump_value(index.kind.value)
    extra: Tuple[Any, ...] = ()
    if index.kind is IndexKind.KDTREE:
        extra = (index.dimensions,)  # type: ignore[attr-defined]
    chunks = [struct.pack("<I", len(header)), header, dump_value(extra)]
    pairs = list(index.items())
    chunks.append(struct.pack("<Q", len(pairs)))
    for key, value in pairs:
        chunks.append(dump_value(key if not isinstance(key, tuple) else tuple(key)))
        chunks.append(dump_value(value))
    return b"".join(chunks)


def load_index(data: bytes, page_hook=None) -> Index:
    """Rebuild an index from :func:`dump_index` output."""
    (hlen,) = struct.unpack_from("<I", data, 0)
    offset = 4
    kind_value, offset = load_value(data, offset)
    extra, offset = load_value(data, offset)
    kind = IndexKind(kind_value)
    kwargs = {}
    if kind is IndexKind.KDTREE and extra:
        kwargs["dimensions"] = extra[0]
    index = make_index(kind, page_hook=page_hook, **kwargs)
    (count,) = struct.unpack_from("<Q", data, offset)
    offset += 8
    for _ in range(count):
        key, offset = load_value(data, offset)
        value, offset = load_value(data, offset)
        index.insert(key, value)
    return index
