"""K-D tree index over fixed-dimension numeric attribute vectors.

The paper indexes multi-attribute inode data (size, mtime, uid, …) in a
K-D tree per ACG and notes the prototype stores it *serialized*, loading
the whole tree into RAM per query group — the dominant cold-query cost in
Table V.  This implementation mirrors that: points are kept in a classic
k-d tree (median-built, incremental inserts, tombstone deletes with
automatic rebuild), and :meth:`serialize`/:meth:`deserialize` produce the
on-disk form whose byte size drives the simulated load cost.
"""

from __future__ import annotations

import itertools
import math
import struct
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.indexstructures.base import Index, IndexKind, PageHook

# Fraction of tombstoned nodes that triggers a compacting rebuild.
REBUILD_TOMBSTONE_RATIO = 0.5


class _KDNode:
    __slots__ = ("node_id", "point", "values", "axis", "left", "right", "deleted")

    def __init__(self, node_id: int, point: Tuple[float, ...], axis: int) -> None:
        self.node_id = node_id
        self.point = point
        self.values: List[Any] = []
        self.axis = axis
        self.left: Optional[_KDNode] = None
        self.right: Optional[_KDNode] = None
        self.deleted = False


class KDTreeIndex(Index):
    """K-D tree multimap supporting orthogonal range queries.

    Keys are tuples of ``dimensions`` numbers.  Range queries take per-axis
    (low, high) bounds with ``None`` meaning unbounded.
    """

    kind = IndexKind.KDTREE

    def __init__(self, dimensions: int = 2, page_hook: PageHook = None) -> None:
        if dimensions < 1:
            raise ValueError(f"dimensions must be >= 1: {dimensions}")
        self.dimensions = dimensions
        self._page_hook = page_hook
        self._ids = itertools.count()
        self._root: Optional[_KDNode] = None
        self._size = 0
        self._live_points = 0
        self._tombstones = 0

    # -- internals -----------------------------------------------------------

    def _touch(self, node: _KDNode, write: bool = False) -> None:
        if self._page_hook is not None:
            self._page_hook(node.node_id, write)

    def _check_key(self, key: Any) -> Tuple[float, ...]:
        if not isinstance(key, (tuple, list)) or len(key) != self.dimensions:
            raise TypeError(
                f"KD-tree key must be a {self.dimensions}-tuple, got {key!r}"
            )
        return tuple(float(x) for x in key)

    def _find(self, point: Tuple[float, ...]) -> Optional[_KDNode]:
        node = self._root
        while node is not None:
            self._touch(node)
            if node.point == point:
                return node
            if point[node.axis] < node.point[node.axis]:
                node = node.left
            else:
                node = node.right
        return None

    # -- Index API -------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def insert(self, key: Any, value: Any) -> None:
        """Add one (point, value) pair; duplicate pairs are idempotent."""
        point = self._check_key(key)
        if self._root is None:
            self._root = _KDNode(next(self._ids), point, 0)
            self._root.values.append(value)
            self._size += 1
            self._live_points += 1
            self._touch(self._root, write=True)
            return
        node = self._root
        while True:
            self._touch(node)
            if node.point == point:
                if node.deleted:
                    node.deleted = False
                    self._tombstones -= 1
                    self._live_points += 1
                    node.values = []
                if value not in node.values:
                    node.values.append(value)
                    self._size += 1
                self._touch(node, write=True)
                return
            axis = node.axis
            child_attr = "left" if point[axis] < node.point[axis] else "right"
            child = getattr(node, child_attr)
            if child is None:
                new = _KDNode(next(self._ids), point, (axis + 1) % self.dimensions)
                new.values.append(value)
                setattr(node, child_attr, new)
                self._size += 1
                self._live_points += 1
                self._touch(new, write=True)
                return
            node = child

    def remove(self, key: Any, value: Any = None) -> int:
        """Remove one value at ``key`` (or all); returns pairs removed."""
        point = self._check_key(key)
        node = self._find(point)
        if node is None or node.deleted:
            return 0
        if value is None:
            removed = len(node.values)
            node.values = []
        else:
            if value not in node.values:
                return 0
            node.values.remove(value)
            removed = 1
        if not node.values:
            node.deleted = True
            self._live_points -= 1
            self._tombstones += 1
        self._size -= removed
        self._touch(node, write=True)
        self._maybe_rebuild()
        return removed

    def get(self, key: Any) -> List[Any]:
        """All values stored at exactly this point ([] if absent)."""
        point = self._check_key(key)
        node = self._find(point)
        if node is None or node.deleted:
            return []
        return list(node.values)

    def items(self) -> Iterator[Tuple[Tuple[float, ...], Any]]:
        """Every (point, value) pair in in-order traversal."""
        yield from self._iter_subtree(self._root)

    def _iter_subtree(self, node: Optional[_KDNode]) -> Iterator[Tuple[Tuple[float, ...], Any]]:
        if node is None:
            return
        yield from self._iter_subtree(node.left)
        if not node.deleted:
            for value in node.values:
                yield node.point, value
        yield from self._iter_subtree(node.right)

    # -- range search ------------------------------------------------------------

    def range(self, lows: Sequence[Optional[float]],
              highs: Sequence[Optional[float]]) -> Iterator[Tuple[Tuple[float, ...], Any]]:
        """Orthogonal range query: yield points with
        lows[i] <= point[i] <= highs[i] on every axis (None = unbounded)."""
        if len(lows) != self.dimensions or len(highs) != self.dimensions:
            raise TypeError("range bounds must match tree dimensionality")
        lo = tuple(-math.inf if v is None else float(v) for v in lows)
        hi = tuple(math.inf if v is None else float(v) for v in highs)
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node is None:
                continue
            self._touch(node)
            axis, coord = node.axis, node.point[node.axis]
            if coord >= lo[axis] and node.left is not None:
                stack.append(node.left)
            if coord <= hi[axis] and node.right is not None:
                stack.append(node.right)
            if not node.deleted and all(lo[i] <= node.point[i] <= hi[i]
                                        for i in range(self.dimensions)):
                for value in node.values:
                    yield node.point, value

    # -- rebuild / bulk load -------------------------------------------------------

    def _maybe_rebuild(self) -> None:
        total = self._live_points + self._tombstones
        if total >= 16 and self._tombstones / total > REBUILD_TOMBSTONE_RATIO:
            self.rebuild()

    def rebuild(self) -> None:
        """Compact tombstones and rebuild a balanced tree by medians."""
        pairs: List[Tuple[Tuple[float, ...], List[Any]]] = [
            (n.point, list(n.values)) for n in self._all_nodes() if not n.deleted
        ]
        self._root = self._build_median(pairs, 0)
        self._tombstones = 0
        self._live_points = len(pairs)

    def _all_nodes(self) -> Iterator[_KDNode]:
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node is None:
                continue
            yield node
            stack.append(node.left)
            stack.append(node.right)

    def _build_median(self, pairs: List[Tuple[Tuple[float, ...], List[Any]]],
                      axis: int) -> Optional[_KDNode]:
        if not pairs:
            return None
        pairs.sort(key=lambda p: p[0][axis])
        mid = len(pairs) // 2
        point, values = pairs[mid]
        node = _KDNode(next(self._ids), point, axis)
        node.values = values
        next_axis = (axis + 1) % self.dimensions
        node.left = self._build_median(pairs[:mid], next_axis)
        node.right = self._build_median(pairs[mid + 1:], next_axis)
        return node

    @classmethod
    def bulk_load(cls, dimensions: int,
                  pairs: Sequence[Tuple[Sequence[float], Any]],
                  page_hook: PageHook = None) -> "KDTreeIndex":
        """Build a balanced tree from (point, value) pairs in one pass."""
        tree = cls(dimensions=dimensions, page_hook=page_hook)
        grouped: dict = {}
        for key, value in pairs:
            point = tree._check_key(key)
            grouped.setdefault(point, []).append(value)
        tree._root = tree._build_median([(p, vs) for p, vs in grouped.items()], 0)
        tree._live_points = len(grouped)
        tree._size = sum(len(vs) for vs in grouped.values())
        return tree

    # -- serialization ------------------------------------------------------------

    def serialize(self) -> bytes:
        """Flatten to the on-disk form (pre-order, length-prefixed).

        Byte size of the result is what the cluster charges when a cold
        query has to page the whole serialized tree into RAM.
        """
        from repro.indexstructures.serialization import dump_value

        chunks = [struct.pack("<II", self.dimensions, self._live_points)]
        for node in self._all_nodes():
            if node.deleted:
                continue
            chunks.append(struct.pack(f"<{self.dimensions}d", *node.point))
            chunks.append(struct.pack("<I", len(node.values)))
            for value in node.values:
                chunks.append(dump_value(value))
        return b"".join(chunks)

    @classmethod
    def deserialize(cls, data: bytes, page_hook: PageHook = None) -> "KDTreeIndex":
        """Rebuild a balanced tree from :meth:`serialize` output."""
        from repro.indexstructures.serialization import load_value

        dimensions, count = struct.unpack_from("<II", data, 0)
        offset = 8
        pairs: List[Tuple[Tuple[float, ...], Any]] = []
        for _ in range(count):
            point = struct.unpack_from(f"<{dimensions}d", data, offset)
            offset += 8 * dimensions
            (nvals,) = struct.unpack_from("<I", data, offset)
            offset += 4
            for _ in range(nvals):
                value, offset = load_value(data, offset)
                pairs.append((point, value))
        return cls.bulk_load(dimensions, pairs, page_hook=page_hook)
