"""Roaring-style posting lists for keyword search.

Airphant (PAPERS.md) shows that compact posting-list layouts are the
query-side counterpart to batched ingest: once updates arrive in bulk,
the per-document ``set`` intersections on the read path become the next
bottleneck.  :class:`PostingList` stores document ids in 2^16-wide
chunks keyed by the high bits, each chunk either a sorted array (sparse)
or a bitmap (dense) — the classic roaring layout.  Bitmaps are plain
Python ints, so AND/OR/ANDNOT compile down to word-at-a-time bit ops in
the interpreter: one ``&`` touches 64 documents per machine word, which
is the "vectorized" execution the cost model credits.

The container is exact — ``set(PostingList.from_iterable(xs))`` equals
``set(xs)`` for any non-negative ids — and the executor keeps an oracle
test against the old set-based path (``tests/test_postings.py``).
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Dict, Iterable, Iterator, List, Union

# A chunk covers ids [base << 16, (base + 1) << 16).  Sparse chunks are
# sorted lists; once a chunk holds more than ARRAY_MAX ids the bitmap
# (8 KiB worst case) is both smaller and faster, matching roaring's
# 4096-element threshold.
CHUNK_SHIFT = 16
CHUNK_MASK = (1 << CHUNK_SHIFT) - 1
ARRAY_MAX = 4096

# A chunk is either a sorted ``list`` of low-16-bit values (sparse) or
# an ``int`` bitmap (dense).  Python ints are arbitrary precision, so a
# dense chunk is a single 2^16-bit integer.
_Chunk = Union[List[int], int]


def _to_bitmap(arr: List[int]) -> int:
    bits = 0
    for low in arr:
        bits |= 1 << low
    return bits


def _bit_count(bits: int) -> int:
    # int.bit_count() needs 3.10; bin().count works everywhere.
    return bin(bits).count("1")


def _iter_bits(bits: int) -> Iterator[int]:
    while bits:
        low_bit = bits & -bits
        yield low_bit.bit_length() - 1
        bits ^= low_bit


class PostingList:
    """A set of non-negative document ids with vectorized set algebra."""

    __slots__ = ("_chunks", "_len")

    def __init__(self) -> None:
        self._chunks: Dict[int, _Chunk] = {}
        self._len = 0

    # -- construction -------------------------------------------------------

    @classmethod
    def from_iterable(cls, ids: Iterable[int]) -> "PostingList":
        pl = cls()
        for doc in ids:
            pl.add(doc)
        return pl

    # -- point updates ------------------------------------------------------

    def add(self, doc: int) -> None:
        if doc < 0:
            raise ValueError("posting lists hold non-negative ids")
        base, low = doc >> CHUNK_SHIFT, doc & CHUNK_MASK
        chunk = self._chunks.get(base)
        if chunk is None:
            self._chunks[base] = [low]
            self._len += 1
        elif isinstance(chunk, int):
            bit = 1 << low
            if not chunk & bit:
                self._chunks[base] = chunk | bit
                self._len += 1
        else:
            i = bisect_left(chunk, low)
            if i == len(chunk) or chunk[i] != low:
                insort(chunk, low)
                self._len += 1
                if len(chunk) > ARRAY_MAX:
                    self._chunks[base] = _to_bitmap(chunk)

    def discard(self, doc: int) -> None:
        if doc < 0:
            return
        base, low = doc >> CHUNK_SHIFT, doc & CHUNK_MASK
        chunk = self._chunks.get(base)
        if chunk is None:
            return
        if isinstance(chunk, int):
            bit = 1 << low
            if chunk & bit:
                chunk &= ~bit
                self._len -= 1
                if chunk:
                    self._chunks[base] = chunk
                else:
                    del self._chunks[base]
        else:
            i = bisect_left(chunk, low)
            if i < len(chunk) and chunk[i] == low:
                chunk.pop(i)
                self._len -= 1
                if not chunk:
                    del self._chunks[base]

    # -- protocol -----------------------------------------------------------

    def __contains__(self, doc: int) -> bool:
        if doc < 0:
            return False
        chunk = self._chunks.get(doc >> CHUNK_SHIFT)
        if chunk is None:
            return False
        low = doc & CHUNK_MASK
        if isinstance(chunk, int):
            return bool(chunk & (1 << low))
        i = bisect_left(chunk, low)
        return i < len(chunk) and chunk[i] == low

    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0

    def __iter__(self) -> Iterator[int]:
        for base in sorted(self._chunks):
            chunk = self._chunks[base]
            hi = base << CHUNK_SHIFT
            if isinstance(chunk, int):
                for low in _iter_bits(chunk):
                    yield hi | low
            else:
                for low in chunk:
                    yield hi | low

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PostingList):
            return self._len == other._len and set(self) == set(other)
        if isinstance(other, (set, frozenset)):
            return self._len == len(other) and set(self) == other
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PostingList({self._len} ids, {len(self._chunks)} chunks)"

    # -- vectorized algebra -------------------------------------------------

    def _chunk_as_bitmap(self, base: int) -> int:
        chunk = self._chunks[base]
        return chunk if isinstance(chunk, int) else _to_bitmap(chunk)

    @staticmethod
    def _store(pl: "PostingList", base: int, bits: int) -> None:
        if not bits:
            return
        n = _bit_count(bits)
        if n <= ARRAY_MAX:
            pl._chunks[base] = list(_iter_bits(bits))
        else:
            pl._chunks[base] = bits
        pl._len += n

    def intersection(self, other: "PostingList") -> "PostingList":
        """Vectorized AND: word-at-a-time over the shared chunks."""
        out = PostingList()
        small, large = (self, other) if len(self._chunks) <= len(other._chunks) else (other, self)
        for base in small._chunks:
            if base in large._chunks:
                self._store(out, base,
                            small._chunk_as_bitmap(base) & large._chunk_as_bitmap(base))
        return out

    def union(self, other: "PostingList") -> "PostingList":
        """Vectorized OR over the union of chunk keys."""
        out = PostingList()
        for base in set(self._chunks) | set(other._chunks):
            bits = 0
            if base in self._chunks:
                bits |= self._chunk_as_bitmap(base)
            if base in other._chunks:
                bits |= other._chunk_as_bitmap(base)
            self._store(out, base, bits)
        return out

    def difference(self, other: "PostingList") -> "PostingList":
        """Vectorized ANDNOT."""
        out = PostingList()
        for base in self._chunks:
            bits = self._chunk_as_bitmap(base)
            if base in other._chunks:
                bits &= ~other._chunk_as_bitmap(base)
            self._store(out, base, bits)
        return out

    def __and__(self, other: "PostingList") -> "PostingList":
        return self.intersection(other)

    def __or__(self, other: "PostingList") -> "PostingList":
        return self.union(other)

    def __sub__(self, other: "PostingList") -> "PostingList":
        return self.difference(other)

    # -- serialization ------------------------------------------------------

    # Chunk payload tags for dump_chunks/from_chunks.
    _ARRAY_TAG = 0
    _BITMAP_TAG = 1

    def dump_chunks(self) -> tuple:
        """Chunk-structured dump: ``((base, kind, payload), ...)``.

        Sparse chunks serialize as 2-byte little-endian low values
        (``kind == 0``), dense chunks as the raw 8 KiB bitmap
        (``kind == 1``) — the on-disk shape frozen segments store, an
        order of magnitude smaller than one int per document.  The dump
        is canonical (chunks sorted by base), so equal sets dump to
        equal bytes.
        """
        out = []
        for base in sorted(self._chunks):
            chunk = self._chunks[base]
            if isinstance(chunk, int):
                payload = chunk.to_bytes((1 << CHUNK_SHIFT) // 8, "little")
                out.append((base, self._BITMAP_TAG, payload))
            else:
                payload = b"".join(low.to_bytes(2, "little") for low in chunk)
                out.append((base, self._ARRAY_TAG, payload))
        return tuple(out)

    @classmethod
    def from_chunks(cls, chunks: Iterable[tuple]) -> "PostingList":
        """Rebuild a posting list from :meth:`dump_chunks` output."""
        pl = cls()
        for base, kind, payload in chunks:
            if kind == cls._BITMAP_TAG:
                bits = int.from_bytes(payload, "little")
                pl._chunks[base] = bits
                pl._len += _bit_count(bits)
            elif kind == cls._ARRAY_TAG:
                arr = [int.from_bytes(payload[i:i + 2], "little")
                       for i in range(0, len(payload), 2)]
                if arr:
                    pl._chunks[base] = arr
                    pl._len += len(arr)
            else:
                raise ValueError(f"unknown posting-chunk kind: {kind!r}")
        return pl

    # -- introspection ------------------------------------------------------

    def chunk_kinds(self) -> Dict[str, int]:
        """How many chunks are arrays vs bitmaps (for tests/metrics)."""
        kinds = {"array": 0, "bitmap": 0}
        for chunk in self._chunks.values():
            kinds["bitmap" if isinstance(chunk, int) else "array"] += 1
        return kinds


def intersect_all(lists: Iterable[PostingList]) -> PostingList:
    """AND together posting lists, smallest first to shrink work early."""
    ordered = sorted(lists, key=len)
    if not ordered:
        return PostingList()
    acc = ordered[0]
    for pl in ordered[1:]:
        if not acc:
            break
        acc = acc.intersection(pl)
    return acc
