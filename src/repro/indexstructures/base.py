"""Common index interface.

Every index is a *multimap*: one key maps to a set of values (file ids).
Keys must be mutually comparable within one index (ints, floats, strings,
or — for the K-D tree — fixed-length numeric tuples).
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from typing import Any, Callable, Iterator, List, Optional, Tuple

PageHook = Optional[Callable[[int, bool], None]]


class IndexKind(enum.Enum):
    """The three index categories the prototype supports (Section IV)."""

    BTREE = "btree"
    HASH = "hash"
    KDTREE = "kdtree"


class Index(ABC):
    """Abstract multimap index.

    Concrete classes: :class:`~repro.indexstructures.btree.BPlusTree`,
    :class:`~repro.indexstructures.hashindex.ExtendibleHashIndex`,
    :class:`~repro.indexstructures.kdtree.KDTreeIndex`.
    """

    kind: IndexKind

    @abstractmethod
    def insert(self, key: Any, value: Any) -> None:
        """Add one (key, value) pair.  Duplicate pairs are idempotent."""

    @abstractmethod
    def remove(self, key: Any, value: Any = None) -> int:
        """Remove one value under ``key`` (or all values if ``value`` is
        None).  Returns the number of pairs removed; 0 if absent."""

    @abstractmethod
    def get(self, key: Any) -> List[Any]:
        """All values stored under exactly ``key`` ([] if absent)."""

    @abstractmethod
    def items(self) -> Iterator[Tuple[Any, Any]]:
        """Iterate every (key, value) pair in structure order."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of (key, value) pairs stored."""

    def __contains__(self, key: Any) -> bool:
        return bool(self.get(key))


def make_index(kind: IndexKind, page_hook: PageHook = None, **kwargs: Any) -> Index:
    """Factory used by Index Nodes when a user creates a named index."""
    from repro.indexstructures.btree import BPlusTree
    from repro.indexstructures.hashindex import ExtendibleHashIndex
    from repro.indexstructures.kdtree import KDTreeIndex

    if kind is IndexKind.BTREE:
        return BPlusTree(page_hook=page_hook, **kwargs)
    if kind is IndexKind.HASH:
        return ExtendibleHashIndex(page_hook=page_hook, **kwargs)
    if kind is IndexKind.KDTREE:
        return KDTreeIndex(page_hook=page_hook, **kwargs)
    raise ValueError(f"unknown index kind: {kind!r}")
