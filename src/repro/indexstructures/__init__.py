"""Index structures used by Propeller Index Nodes.

The paper's prototype supports three index categories per ACG — B-tree,
hash table and K-D tree (Section IV).  All three are implemented here from
scratch as multimaps (a file attribute value can be shared by many files).

Each structure accepts an optional ``page_hook(node_id, write)`` callback
invoked once per internal node/bucket touched; the cluster layer wires this
to the simulated page cache so that *index size directly determines I/O
cost* — the mechanism behind Figure 2(a).
"""

from repro.indexstructures.base import Index, IndexKind, make_index
from repro.indexstructures.bloom import BloomFilter
from repro.indexstructures.btree import BPlusTree
from repro.indexstructures.hashindex import ExtendibleHashIndex
from repro.indexstructures.kdtree import KDTreeIndex

__all__ = [
    "Index",
    "IndexKind",
    "make_index",
    "BloomFilter",
    "BPlusTree",
    "ExtendibleHashIndex",
    "KDTreeIndex",
]
