"""Bloom filter for partition keyword summaries.

A fixed-width bit array with ``k`` derived hash positions per token
(double hashing over the two halves of a BLAKE2b digest — fully
deterministic, so two runs of the same simulation build bit-identical
filters).  The filter is
*add-only*: deletes leave it over-approximate, which is exactly the
safety direction partition pruning needs — a stale bit can only cost a
wasted search leg (false positive), never a missed match.

The bit array is carried as a single Python int (``bits``), which makes
snapshots cheap to ship on heartbeats, hashable for change detection,
and trivially mergeable with ``|``.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

DEFAULT_BITS = 8192
DEFAULT_HASHES = 4


def _positions(token: str, m_bits: int, k: int) -> Iterable[int]:
    """The ``k`` bit positions for one token (Kirsch–Mitzenmacher
    double hashing: h1 + i*h2 mod m).

    The base hashes are the two halves of a BLAKE2b digest: linear
    checksums like CRC32 put tokens from structured families (shared
    filename prefixes/suffixes) on *correlated* positions, which
    inflates the false-positive rate exactly where partition pruning
    meets it."""
    data = token.encode("utf-8", "surrogatepass")
    digest = hashlib.blake2b(data, digest_size=16).digest()
    h1 = int.from_bytes(digest[:8], "little")
    h2 = int.from_bytes(digest[8:], "little") | 1  # odd: strides cover [0, m)
    for i in range(k):
        yield (h1 + i * h2) % m_bits


class BloomFilter:
    """Deterministic add-only Bloom filter over string tokens."""

    __slots__ = ("m_bits", "k", "bits", "count")

    def __init__(self, m_bits: int = DEFAULT_BITS, k: int = DEFAULT_HASHES,
                 bits: int = 0, count: int = 0) -> None:
        if m_bits <= 0 or k <= 0:
            raise ValueError(f"need positive geometry: m={m_bits}, k={k}")
        self.m_bits = m_bits
        self.k = k
        self.bits = bits
        self.count = count  # tokens added (not distinct; sizing heuristic)

    def add(self, token: str) -> None:
        """Set the token's bits."""
        for pos in _positions(token, self.m_bits, self.k):
            self.bits |= 1 << pos
        self.count += 1

    def add_all(self, tokens: Iterable[str]) -> None:
        for token in tokens:
            self.add(token)

    def might_contain(self, token: str) -> bool:
        """False means *definitely absent*; True means "maybe"."""
        return all(self.bits >> pos & 1
                   for pos in _positions(token, self.m_bits, self.k))

    def __contains__(self, token: str) -> bool:
        return self.might_contain(token)

    def merge(self, other: "BloomFilter") -> None:
        """Union another filter into this one (same geometry required)."""
        if (other.m_bits, other.k) != (self.m_bits, self.k):
            raise ValueError("cannot merge Bloom filters of different geometry")
        self.bits |= other.bits
        self.count += other.count

    def fill_ratio(self) -> float:
        """Fraction of bits set (a saturation / false-positive proxy)."""
        return bin(self.bits).count("1") / self.m_bits

    def copy(self) -> "BloomFilter":
        return BloomFilter(self.m_bits, self.k, bits=self.bits,
                           count=self.count)
