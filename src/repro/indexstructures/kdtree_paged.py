"""Paged (on-disk-friendly) K-D tree — the paper's stated future work.

Section V.E: "the inode attribute index in the Propeller prototyping
process is implemented in a serialized KD-tree... Propeller has to load
the entire KD-tree in RAM, which accounts for most of its latency...
With a specialized design of the on-disk structure of KD-tree... it is
possible to substantially reduce the IOs so that the query latency of
Propeller can be dramatically improved further."

This module is that design: a static, bulk-loaded K-D tree whose nodes
are packed into pages along DFS order, so every subtree is page-local.
A range query then touches only the pages on its traversal frontier —
for selective queries, a tiny fraction of the tree — instead of paging
the whole serialized blob in.  The ablation bench
(``bench_ablation_paged_kdtree.py``) quantifies the cold-query win.

The structure is read-optimized and immutable; Propeller's update path
keeps using the dynamic :class:`~repro.indexstructures.kdtree.KDTreeIndex`
and rebuilds the paged form at commit/serialization points (the standard
read-optimized-store pattern).
"""

from __future__ import annotations

import math
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.indexstructures.base import PageHook

DEFAULT_NODES_PER_PAGE = 128


class _StaticNode:
    __slots__ = ("point", "values", "axis", "left", "right", "page")

    def __init__(self, point: Tuple[float, ...], values: List[Any], axis: int) -> None:
        self.point = point
        self.values = values
        self.axis = axis
        self.left: Optional["_StaticNode"] = None
        self.right: Optional["_StaticNode"] = None
        self.page = 0


class PagedKDTree:
    """Immutable K-D tree with DFS-blocked page layout.

    Build with :meth:`bulk_load`; query with :meth:`range` / :meth:`get`.
    ``page_hook(page_id, write)`` fires once per *page* entered during a
    traversal (not per node), which is what an on-disk layout costs.
    """

    def __init__(self, dimensions: int,
                 nodes_per_page: int = DEFAULT_NODES_PER_PAGE,
                 page_hook: PageHook = None) -> None:
        if dimensions < 1:
            raise ValueError(f"dimensions must be >= 1: {dimensions}")
        if nodes_per_page < 1:
            raise ValueError(f"nodes_per_page must be >= 1: {nodes_per_page}")
        self.dimensions = dimensions
        self.nodes_per_page = nodes_per_page
        self._page_hook = page_hook
        self._root: Optional[_StaticNode] = None
        self._size = 0
        self._node_count = 0
        self.page_count = 0

    # -- construction -------------------------------------------------------

    @classmethod
    def bulk_load(cls, dimensions: int,
                  pairs: Sequence[Tuple[Sequence[float], Any]],
                  nodes_per_page: int = DEFAULT_NODES_PER_PAGE,
                  page_hook: PageHook = None) -> "PagedKDTree":
        """Build a balanced tree by medians and assign DFS-blocked pages."""
        tree = cls(dimensions, nodes_per_page=nodes_per_page,
                   page_hook=page_hook)
        grouped: dict = {}
        for key, value in pairs:
            point = tuple(float(x) for x in key)
            if len(point) != dimensions:
                raise TypeError(
                    f"point {key!r} does not have {dimensions} dimensions")
            grouped.setdefault(point, []).append(value)
        tree._root = tree._build(sorted(grouped.items()), 0)
        tree._size = sum(len(v) for v in grouped.values())
        tree._node_count = len(grouped)
        # DFS page assignment: consecutive DFS ranks share a page, so a
        # subtree of k nodes spans ~k/nodes_per_page pages.
        counter = 0
        stack = [tree._root] if tree._root else []
        while stack:
            node = stack.pop()
            node.page = counter // nodes_per_page
            counter += 1
            if node.right is not None:
                stack.append(node.right)
            if node.left is not None:
                stack.append(node.left)
        tree.page_count = -(-counter // nodes_per_page) if counter else 0
        return tree

    def _build(self, items: List[Tuple[Tuple[float, ...], List[Any]]],
               axis: int) -> Optional[_StaticNode]:
        if not items:
            return None
        items = sorted(items, key=lambda kv: kv[0][axis])
        mid = len(items) // 2
        point, values = items[mid]
        node = _StaticNode(point, list(values), axis)
        next_axis = (axis + 1) % self.dimensions
        node.left = self._build(items[:mid], next_axis)
        node.right = self._build(items[mid + 1:], next_axis)
        return node

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def node_count(self) -> int:
        """Number of distinct points (tree nodes)."""
        return self._node_count

    def _touch(self, page: int) -> None:
        if self._page_hook is not None:
            self._page_hook(page, False)

    def range(self, lows: Sequence[Optional[float]],
              highs: Sequence[Optional[float]]) -> Iterator[Tuple[Tuple[float, ...], Any]]:
        """Orthogonal range query touching only the visited pages."""
        if len(lows) != self.dimensions or len(highs) != self.dimensions:
            raise TypeError("range bounds must match tree dimensionality")
        lo = tuple(-math.inf if v is None else float(v) for v in lows)
        hi = tuple(math.inf if v is None else float(v) for v in highs)
        stack = [self._root]
        last_page = -1
        while stack:
            node = stack.pop()
            if node is None:
                continue
            if node.page != last_page:
                self._touch(node.page)
                last_page = node.page
            axis, coord = node.axis, node.point[node.axis]
            if coord >= lo[axis] and node.left is not None:
                stack.append(node.left)
            if coord <= hi[axis] and node.right is not None:
                stack.append(node.right)
            if all(lo[i] <= node.point[i] <= hi[i] for i in range(self.dimensions)):
                for value in node.values:
                    yield node.point, value

    def get(self, key: Sequence[float]) -> List[Any]:
        """Exact-point lookup."""
        point = tuple(float(x) for x in key)
        if len(point) != self.dimensions:
            raise TypeError(f"key must have {self.dimensions} dimensions")
        node = self._root
        last_page = -1
        while node is not None:
            if node.page != last_page:
                self._touch(node.page)
                last_page = node.page
            if node.point == point:
                return list(node.values)
            if point[node.axis] < node.point[node.axis]:
                node = node.left
            else:
                node = node.right
        return []

    def items(self) -> Iterator[Tuple[Tuple[float, ...], Any]]:
        """Every (point, value) pair (touches every page)."""
        yield from self.range((None,) * self.dimensions,
                              (None,) * self.dimensions)
