"""B+tree multimap.

Classic B+tree: values live only in leaves, leaves form a sorted linked
list for range scans, internal nodes hold separator keys.  Deletion
rebalances by borrowing from a sibling or merging, so the height invariant
holds under any workload — hypothesis tests in
``tests/indexstructures/test_btree.py`` check this against an oracle.
"""

from __future__ import annotations

import bisect
import itertools
from typing import Any, Iterator, List, Optional, Tuple

from repro.indexstructures.base import Index, IndexKind, PageHook

DEFAULT_ORDER = 64


class _Node:
    __slots__ = ("node_id", "keys")

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.keys: List[Any] = []


class _Leaf(_Node):
    __slots__ = ("values", "next")

    def __init__(self, node_id: int) -> None:
        super().__init__(node_id)
        self.values: List[List[Any]] = []
        self.next: Optional[_Leaf] = None


class _Internal(_Node):
    __slots__ = ("children",)

    def __init__(self, node_id: int) -> None:
        super().__init__(node_id)
        self.children: List[_Node] = []


class BPlusTree(Index):
    """A B+tree multimap with leaf-chained range scans.

    ``order`` is the maximum number of keys per node; nodes split above it
    and rebalance below ``order // 2``.
    """

    kind = IndexKind.BTREE

    def __init__(self, order: int = DEFAULT_ORDER, page_hook: PageHook = None) -> None:
        if order < 3:
            raise ValueError(f"order must be >= 3: {order}")
        self.order = order
        self._page_hook = page_hook
        self._ids = itertools.count()
        self._root: _Node = _Leaf(next(self._ids))
        self._size = 0
        self._height = 1

    # -- cost accounting -------------------------------------------------

    def _touch(self, node: _Node, write: bool = False) -> None:
        if self._page_hook is not None:
            self._page_hook(node.node_id, write)

    # -- properties ------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Levels from root to leaves (1 for a single-leaf tree)."""
        return self._height

    # -- search ----------------------------------------------------------

    def _find_leaf(self, key: Any) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            self._touch(node)
            idx = bisect.bisect_right(node.keys, key)
            node = node.children[idx]
        self._touch(node)
        return node  # type: ignore[return-value]

    def get(self, key: Any) -> List[Any]:
        """All values stored under exactly ``key`` ([] if absent)."""
        leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return list(leaf.values[idx])
        return []

    def range(self, low: Any = None, high: Any = None,
              include_low: bool = True, include_high: bool = True) -> Iterator[Tuple[Any, Any]]:
        """Yield (key, value) pairs with low <= key <= high in key order.

        ``None`` bounds are open-ended; ``include_*`` toggles strictness.
        """
        if low is None:
            leaf: Optional[_Leaf] = self._leftmost_leaf()
            idx = 0
        else:
            leaf = self._find_leaf(low)
            if include_low:
                idx = bisect.bisect_left(leaf.keys, low)
            else:
                idx = bisect.bisect_right(leaf.keys, low)
        while leaf is not None:
            self._touch(leaf)
            while idx < len(leaf.keys):
                key = leaf.keys[idx]
                if high is not None:
                    if include_high:
                        if key > high:
                            return
                    elif key >= high:
                        return
                for value in leaf.values[idx]:
                    yield key, value
                idx += 1
            leaf = leaf.next
            idx = 0

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """Every (key, value) pair in ascending key order."""
        return self.range()

    def min_key(self) -> Any:
        """Smallest key, or None when empty."""
        leaf = self._leftmost_leaf()
        return leaf.keys[0] if leaf.keys else None

    def _leftmost_leaf(self) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            self._touch(node)
            node = node.children[0]
        return node  # type: ignore[return-value]

    # -- insert ----------------------------------------------------------

    def insert(self, key: Any, value: Any) -> None:
        """Add one (key, value) pair; duplicate pairs are idempotent."""
        split = self._insert(self._root, key, value)
        if split is not None:
            sep, right = split
            new_root = _Internal(next(self._ids))
            new_root.keys = [sep]
            new_root.children = [self._root, right]
            self._root = new_root
            self._height += 1
            self._touch(new_root, write=True)

    def _insert(self, node: _Node, key: Any, value: Any) -> Optional[Tuple[Any, _Node]]:
        if isinstance(node, _Leaf):
            return self._insert_leaf(node, key, value)
        self._touch(node)
        idx = bisect.bisect_right(node.keys, key)
        split = self._insert(node.children[idx], key, value)
        if split is None:
            return None
        sep, right = split
        node.keys.insert(idx, sep)
        node.children.insert(idx + 1, right)
        self._touch(node, write=True)
        if len(node.keys) <= self.order:
            return None
        return self._split_internal(node)

    def _insert_leaf(self, leaf: _Leaf, key: Any, value: Any) -> Optional[Tuple[Any, _Node]]:
        idx = bisect.bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            if value not in leaf.values[idx]:
                leaf.values[idx].append(value)
                self._size += 1
            self._touch(leaf, write=True)
            return None
        leaf.keys.insert(idx, key)
        leaf.values.insert(idx, [value])
        self._size += 1
        self._touch(leaf, write=True)
        if len(leaf.keys) <= self.order:
            return None
        return self._split_leaf(leaf)

    def _split_leaf(self, leaf: _Leaf) -> Tuple[Any, _Node]:
        mid = len(leaf.keys) // 2
        right = _Leaf(next(self._ids))
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        right.next = leaf.next
        leaf.next = right
        self._touch(right, write=True)
        return right.keys[0], right

    def _split_internal(self, node: _Internal) -> Tuple[Any, _Node]:
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Internal(next(self._ids))
        right.keys = node.keys[mid + 1:]
        right.children = node.children[mid + 1:]
        node.keys = node.keys[:mid]
        node.children = node.children[:mid + 1]
        self._touch(right, write=True)
        return sep, right

    # -- delete ----------------------------------------------------------

    def remove(self, key: Any, value: Any = None) -> int:
        """Remove one value under ``key`` (or all); returns pairs removed."""
        removed = self._remove(self._root, key, value)
        if isinstance(self._root, _Internal) and len(self._root.children) == 1:
            self._root = self._root.children[0]
            self._height -= 1
        self._size -= removed
        return removed

    def _min_keys(self) -> int:
        return self.order // 2

    def _remove(self, node: _Node, key: Any, value: Any) -> int:
        if isinstance(node, _Leaf):
            return self._remove_from_leaf(node, key, value)
        self._touch(node)
        idx = bisect.bisect_right(node.keys, key)
        child = node.children[idx]
        removed = self._remove(child, key, value)
        if removed and self._underflow(child):
            self._rebalance(node, idx)
        return removed

    def _remove_from_leaf(self, leaf: _Leaf, key: Any, value: Any) -> int:
        idx = bisect.bisect_left(leaf.keys, key)
        if idx >= len(leaf.keys) or leaf.keys[idx] != key:
            return 0
        if value is None:
            removed = len(leaf.values[idx])
        else:
            if value not in leaf.values[idx]:
                return 0
            leaf.values[idx].remove(value)
            removed = 1
        if value is None or not leaf.values[idx]:
            del leaf.keys[idx]
            del leaf.values[idx]
        self._touch(leaf, write=True)
        return removed

    def _underflow(self, node: _Node) -> bool:
        if node is self._root:
            return False
        if isinstance(node, _Leaf):
            return len(node.keys) < self._min_keys()
        return len(node.children) < self._min_keys() + 1

    def _rebalance(self, parent: _Internal, idx: int) -> None:
        child = parent.children[idx]
        left = parent.children[idx - 1] if idx > 0 else None
        right = parent.children[idx + 1] if idx + 1 < len(parent.children) else None
        if left is not None and self._can_lend(left):
            self._borrow_from_left(parent, idx)
        elif right is not None and self._can_lend(right):
            self._borrow_from_right(parent, idx)
        elif left is not None:
            self._merge(parent, idx - 1)
        elif right is not None:
            self._merge(parent, idx)
        self._touch(parent, write=True)

    def _can_lend(self, node: _Node) -> bool:
        if isinstance(node, _Leaf):
            return len(node.keys) > self._min_keys()
        return len(node.children) > self._min_keys() + 1

    def _borrow_from_left(self, parent: _Internal, idx: int) -> None:
        left, child = parent.children[idx - 1], parent.children[idx]
        if isinstance(child, _Leaf):
            assert isinstance(left, _Leaf)
            child.keys.insert(0, left.keys.pop())
            child.values.insert(0, left.values.pop())
            parent.keys[idx - 1] = child.keys[0]
        else:
            assert isinstance(left, _Internal) and isinstance(child, _Internal)
            child.keys.insert(0, parent.keys[idx - 1])
            parent.keys[idx - 1] = left.keys.pop()
            child.children.insert(0, left.children.pop())
        self._touch(left, write=True)
        self._touch(child, write=True)

    def _borrow_from_right(self, parent: _Internal, idx: int) -> None:
        child, right = parent.children[idx], parent.children[idx + 1]
        if isinstance(child, _Leaf):
            assert isinstance(right, _Leaf)
            child.keys.append(right.keys.pop(0))
            child.values.append(right.values.pop(0))
            parent.keys[idx] = right.keys[0]
        else:
            assert isinstance(right, _Internal) and isinstance(child, _Internal)
            child.keys.append(parent.keys[idx])
            parent.keys[idx] = right.keys.pop(0)
            child.children.append(right.children.pop(0))
        self._touch(right, write=True)
        self._touch(child, write=True)

    def _merge(self, parent: _Internal, idx: int) -> None:
        """Merge children[idx+1] into children[idx]."""
        left, right = parent.children[idx], parent.children[idx + 1]
        if isinstance(left, _Leaf):
            assert isinstance(right, _Leaf)
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next = right.next
        else:
            assert isinstance(left, _Internal) and isinstance(right, _Internal)
            left.keys.append(parent.keys[idx])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        del parent.keys[idx]
        del parent.children[idx + 1]
        self._touch(left, write=True)

    # -- bulk loading -----------------------------------------------------

    @classmethod
    def bulk_load(cls, pairs, order: int = DEFAULT_ORDER,
                  page_hook: PageHook = None) -> "BPlusTree":
        """Build a tree from (key, value) pairs in one bottom-up pass.

        Much faster than repeated inserts for restore/adoption paths
        (sorted leaf runs are packed ~full, then internal levels built on
        top).  Input need not be sorted or unique; duplicate (key, value)
        pairs collapse.
        """
        tree = cls(order=order, page_hook=page_hook)
        grouped: dict = {}
        for key, value in pairs:
            bucket = grouped.setdefault(key, [])
            if value not in bucket:
                bucket.append(value)
        if not grouped:
            return tree
        sorted_keys = sorted(grouped)
        fill = max(2, (order * 2) // 3)  # pack leaves ~2/3 full
        min_keys = order // 2
        leaves: List[_Leaf] = []
        for i in range(0, len(sorted_keys), fill):
            leaf = _Leaf(next(tree._ids))
            leaf.keys = sorted_keys[i:i + fill]
            leaf.values = [grouped[k] for k in leaf.keys]
            if leaves:
                leaves[-1].next = leaf
            leaves.append(leaf)
        # The last leaf may be under-full: even it out with its neighbor
        # so the min-fill invariant holds for later deletes.
        if len(leaves) > 1 and len(leaves[-1].keys) < min_keys:
            prev, last = leaves[-2], leaves[-1]
            merged_keys = prev.keys + last.keys
            merged_values = prev.values + last.values
            if len(merged_keys) <= order:
                # Fold the runt into its neighbor entirely.
                prev.keys, prev.values = merged_keys, merged_values
                prev.next = last.next
                leaves.pop()
            else:
                half = len(merged_keys) // 2
                prev.keys, last.keys = merged_keys[:half], merged_keys[half:]
                prev.values, last.values = merged_values[:half], merged_values[half:]
        tree._size = sum(len(v) for v in grouped.values())
        level: List[_Node] = list(leaves)
        height = 1
        min_children = min_keys + 1
        while len(level) > 1:
            parents: List[_Internal] = []
            for i in range(0, len(level), fill + 1):
                node = _Internal(next(tree._ids))
                node.children = level[i:i + fill + 1]
                node.keys = [tree._leftmost_key_of(c) for c in node.children[1:]]
                parents.append(node)
            # Even out an under-full last parent the same way.
            if len(parents) > 1 and len(parents[-1].children) < min_children:
                prev, last = parents[-2], parents[-1]
                merged = prev.children + last.children
                if len(merged) <= order + 1:
                    prev.children = merged
                    prev.keys = [tree._leftmost_key_of(c) for c in merged[1:]]
                    parents.pop()
                else:
                    half = len(merged) // 2
                    prev.children, last.children = merged[:half], merged[half:]
                    prev.keys = [tree._leftmost_key_of(c) for c in prev.children[1:]]
                    last.keys = [tree._leftmost_key_of(c) for c in last.children[1:]]
            level = list(parents)
            height += 1
        tree._root = level[0]
        tree._height = height
        return tree

    def _leftmost_key_of(self, node: _Node) -> Any:
        while isinstance(node, _Internal):
            node = node.children[0]
        return node.keys[0]

    # -- validation (used by tests) ---------------------------------------

    def check_invariants(self) -> None:
        """Assert structural invariants; raises AssertionError on violation."""
        self._check_node(self._root, depth=1, is_root=True)
        # Leaf chain must be sorted and cover all keys.
        keys = [k for k, _ in self.items()]
        assert keys == sorted(keys), "leaf chain out of order"

    def _check_node(self, node: _Node, depth: int, is_root: bool) -> int:
        assert node.keys == sorted(node.keys), "node keys out of order"
        if isinstance(node, _Leaf):
            assert depth == self._height, "leaf at wrong depth"
            if not is_root:
                assert len(node.keys) >= self._min_keys(), "leaf underflow"
            assert len(node.keys) == len(node.values)
            return depth
        assert isinstance(node, _Internal)
        assert len(node.children) == len(node.keys) + 1
        if not is_root:
            assert len(node.children) >= self._min_keys() + 1, "internal underflow"
        else:
            assert len(node.children) >= 2, "root internal with one child"
        depths = {self._check_node(c, depth + 1, False) for c in node.children}
        assert len(depths) == 1, "uneven leaf depth"
        return depths.pop()
